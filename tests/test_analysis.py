"""Tests for metrics and report formatting."""

import pytest

from repro.analysis import (
    effective_gops,
    format_ratio,
    format_table,
    gops_per_watt,
    relative_error,
    speedup,
)


def test_speedup():
    assert speedup(8.0, 2.0) == 4.0
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


def test_effective_gops():
    assert effective_gops(2_000_000_000, 1.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        effective_gops(1, 0.0)


def test_gops_per_watt():
    assert gops_per_watt(17.73, 3.45) == pytest.approx(5.139, rel=1e-3)
    with pytest.raises(ValueError):
        gops_per_watt(1.0, 0.0)


def test_relative_error():
    assert relative_error(11.0, 10.0) == pytest.approx(0.1)
    assert relative_error(0.0, 0.0) == 0.0
    assert relative_error(1.0, 0.0) == float("inf")


def test_format_table_alignment():
    table = format_table(["A", "Bee"], [[1, 2], ["long-cell", 3]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "long-cell" in lines[3]
    # All rows have equal rendered width.
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["A", "B"], [[1]])


def test_format_ratio():
    text = format_ratio(17.64, 17.73, unit="GOPS")
    assert "17.64 GOPS" in text
    assert "paper: 17.73" in text
