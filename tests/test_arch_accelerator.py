"""Integration tests for the top-level ESCA accelerator simulator."""

import numpy as np
import pytest

from repro.arch import (
    AcceleratorConfig,
    AnalyticalModel,
    EscaAccelerator,
    SystemOverheadModel,
)
from repro.arch.config import SdmuTiming
from repro.nn import SSUNet, UNetConfig, submanifold_conv3d
from repro.quant import ACT_INT16, quantize_tensor
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def test_layer_run_is_bit_exact_vs_reference():
    """The headline correctness property: the cycle-accurate pipeline's
    accumulators equal the integer rulebook reference exactly."""
    tensor = random_sparse_tensor(seed=130, shape=(16, 16, 16), nnz=70, channels=4)
    accel = EscaAccelerator(AcceleratorConfig())
    # verify=True raises on any accumulator mismatch.
    result = accel.run_layer(tensor, out_channels=8, verify=True)
    assert result.matches > 0
    assert result.total_cycles > 0


def test_layer_output_tracks_float_reference():
    tensor = random_sparse_tensor(seed=131, shape=(12, 12, 12), nnz=40, channels=3)
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((27, 3, 5)) * 0.3
    accel = EscaAccelerator()
    result = accel.run_layer(tensor, weights=weights, verify=True)
    reference = submanifold_conv3d(tensor, weights)
    peak = np.abs(reference.features).max()
    err = np.abs(result.output.features - reference.features).max()
    assert err / peak < 0.02  # INT8 weight quantization budget


def test_accumulators_equal_manual_integer_reference():
    tensor = random_sparse_tensor(seed=132, shape=(10, 10, 10), nnz=30, channels=2)
    rng = np.random.default_rng(1)
    weights = rng.standard_normal((27, 2, 4))
    accel = EscaAccelerator()
    result = accel.run_layer(tensor, weights=weights)
    # Recompute with the quantized reference path.
    from repro.quant import QuantizedSubConv

    qconv = QuantizedSubConv(weights, weight_scale=result.weight_scale)
    acts_q = quantize_tensor(tensor.features, ACT_INT16, scale=result.act_scale)
    expected = qconv.integer_forward(acts_q.data, tensor)
    assert np.array_equal(result.accumulators, expected)


def test_matches_equal_rulebook_total():
    from repro.nn import build_submanifold_rulebook

    tensor = random_sparse_tensor(seed=133, shape=(16, 16, 16), nnz=50, channels=2)
    accel = EscaAccelerator()
    result = accel.run_layer(tensor, out_channels=4)
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert result.matches == rulebook.total_matches
    assert result.active_srfs == tensor.nnz
    assert result.effective_ops == rulebook.effective_ops(2, 4)


def test_requires_weights_or_out_channels():
    tensor = random_sparse_tensor(seed=134, nnz=10)
    with pytest.raises(ValueError):
        EscaAccelerator().run_layer(tensor)


def test_channel_mismatch_rejected():
    tensor = random_sparse_tensor(seed=135, nnz=10, channels=2)
    with pytest.raises(ValueError):
        EscaAccelerator().run_layer(tensor, weights=np.zeros((27, 3, 4)))


def test_analytical_model_matches_simulator():
    """The closed-form estimate tracks the cycle simulator within 5%."""
    accel = EscaAccelerator()
    model = AnalyticalModel(accel.config)
    for seed, cin, cout in ((136, 4, 8), (137, 16, 16), (138, 32, 32)):
        tensor = random_sparse_tensor(
            seed=seed, shape=(16, 16, 16), nnz=80, channels=cin
        )
        result = accel.run_layer(tensor, out_channels=cout)
        estimate = model.estimate_layer(tensor, cin, cout)
        assert estimate == pytest.approx(result.total_cycles, rel=0.05)


def test_analytical_no_zero_removing_is_slower():
    model = AnalyticalModel()
    tensor = random_sparse_tensor(seed=139, shape=(32, 32, 32), nnz=50, channels=4)
    with_removal = model.estimate_layer(tensor, 4, 4)
    without = model.estimate_layer_without_zero_removing(tensor, 4, 4)
    assert without > with_removal


def test_cc_bound_layer_reaches_high_utilization():
    """64 -> 64 channels on a dense block saturate the 16x16 array."""
    coords = np.array(
        [[x, y, z] for x in range(8) for y in range(8) for z in range(8)]
    )
    rng = np.random.default_rng(140)
    tensor = SparseTensor3D(
        coords, rng.standard_normal((512, 64)), (16, 16, 16)
    )
    result = EscaAccelerator().run_layer(tensor, out_channels=64)
    assert result.cc_utilization > 0.9


def test_sdmu_bound_layer_has_low_cc_utilization():
    tensor = random_sparse_tensor(seed=141, shape=(16, 16, 16), nnz=40, channels=1)
    result = EscaAccelerator().run_layer(tensor, out_channels=16)
    assert result.cc_utilization < 0.5


def test_overheads_accounted_separately():
    tensor = random_sparse_tensor(seed=142, shape=(16, 16, 16), nnz=30, channels=4)
    with_oh = EscaAccelerator().run_layer(tensor, out_channels=4)
    ideal = EscaAccelerator(
        overheads=SystemOverheadModel(enabled=False)
    ).run_layer(tensor, out_channels=4)
    assert with_oh.total_cycles == ideal.total_cycles
    assert with_oh.overhead_seconds > 0
    assert ideal.overhead_seconds == 0
    assert with_oh.total_seconds > with_oh.time_seconds
    assert ideal.total_seconds == ideal.time_seconds
    assert with_oh.system_gops() < with_oh.effective_gops()


def test_transfer_volume_fields():
    tensor = random_sparse_tensor(seed=143, shape=(16, 16, 16), nnz=25, channels=4)
    result = EscaAccelerator().run_layer(tensor, out_channels=8)
    transfer = result.transfer
    assert transfer.weight_bytes == 27 * 4 * 8  # K^3 * Cin * Cout * 1 byte
    assert transfer.input_activation_bytes == 25 * 4 * 2
    assert transfer.output_activation_bytes == 25 * 8 * 2
    assert transfer.total_bytes > 0


def test_small_fifo_still_correct():
    """Correctness must be independent of FIFO sizing (only speed changes)."""
    tensor = random_sparse_tensor(seed=144, shape=(12, 12, 12), nnz=60, channels=2)
    deep = EscaAccelerator(AcceleratorConfig(fifo_depth=16)).run_layer(
        tensor, out_channels=4, verify=True
    )
    shallow = EscaAccelerator(AcceleratorConfig(fifo_depth=1)).run_layer(
        tensor, out_channels=4, verify=True
    )
    assert np.array_equal(deep.accumulators, shallow.accumulators)
    assert shallow.total_cycles >= deep.total_cycles


def test_cadence_one_is_faster():
    tensor = random_sparse_tensor(seed=145, shape=(16, 16, 16), nnz=40, channels=1)
    default = EscaAccelerator().run_layer(tensor, out_channels=4)
    fast = EscaAccelerator(
        AcceleratorConfig(timing=SdmuTiming(srf_cadence_cycles=1))
    ).run_layer(tensor, out_channels=4)
    assert fast.total_cycles < default.total_cycles


def test_run_network_covers_subconv_layers():
    tensor = random_sparse_tensor(seed=146, shape=(16, 16, 16), nnz=50, channels=1)
    net = SSUNet(UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2))
    accel = EscaAccelerator()
    result = accel.run_network(net, tensor, verify=True)
    # levels=2 -> enc0, bottom, dec0 (3 Sub-Conv layers with K=3; 1^3 head skipped).
    assert len(result.layers) == 3
    assert result.total_cycles == sum(l.total_cycles for l in result.layers)
    assert result.effective_ops > 0
    assert result.system_gops() < result.effective_gops()


def test_empty_input_layer():
    tensor = SparseTensor3D.empty((16, 16, 16), channels=4)
    result = EscaAccelerator().run_layer(tensor, out_channels=4)
    assert result.matches == 0
    assert result.active_srfs == 0
    assert result.scanned_positions == 0
