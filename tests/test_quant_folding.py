"""Tests for batch-norm folding and saturation accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import AcceleratorConfig, EscaAccelerator
from repro.nn import submanifold_conv3d
from repro.quant import fold_batchnorm
from repro.sparse import scale_features
from tests.conftest import random_sparse_tensor


def test_fold_batchnorm_exact_equivalence():
    """conv -> BN must equal folded-conv, exactly (it is pure algebra)."""
    rng = np.random.default_rng(240)
    tensor = random_sparse_tensor(seed=241, shape=(8, 8, 8), nnz=30, channels=3)
    weights = rng.standard_normal((27, 3, 5))
    bias = rng.standard_normal(5)
    bn_scale = 1.0 + 0.1 * rng.standard_normal(5)
    bn_shift = 0.1 * rng.standard_normal(5)

    unfolded = scale_features(
        submanifold_conv3d(tensor, weights, bias=bias), bn_scale, bn_shift
    )
    folded_w, folded_b = fold_batchnorm(weights, bias, bn_scale, bn_shift)
    folded = submanifold_conv3d(tensor, folded_w, bias=folded_b)
    assert np.allclose(unfolded.features, folded.features, atol=1e-12)


def test_fold_batchnorm_no_bias():
    rng = np.random.default_rng(242)
    weights = rng.standard_normal((27, 2, 4))
    folded_w, folded_b = fold_batchnorm(
        weights, None, np.ones(4) * 2.0, np.ones(4) * 3.0
    )
    assert np.allclose(folded_w, weights * 2.0)
    assert np.allclose(folded_b, 3.0)


def test_fold_batchnorm_validation():
    with pytest.raises(ValueError):
        fold_batchnorm(np.zeros((27, 2)), None, np.ones(2), np.ones(2))
    with pytest.raises(ValueError):
        fold_batchnorm(np.zeros((27, 2, 4)), None, np.ones(3), np.ones(4))


@given(st.integers(0, 2000))
@settings(max_examples=20, deadline=None)
def test_property_folding_commutes(seed):
    rng = np.random.default_rng(seed)
    tensor = random_sparse_tensor(seed=seed, shape=(6, 6, 6), nnz=15, channels=2)
    weights = rng.standard_normal((27, 2, 3))
    scale = 0.5 + rng.random(3)
    shift = rng.standard_normal(3)
    folded_w, folded_b = fold_batchnorm(weights, None, scale, shift)
    a = scale_features(submanifold_conv3d(tensor, weights), scale, shift)
    b = submanifold_conv3d(tensor, folded_w, bias=folded_b)
    assert np.allclose(a.features, b.features, atol=1e-10)


def test_saturation_accounting_zero_for_calibrated_inputs():
    tensor = random_sparse_tensor(seed=243, shape=(12, 12, 12), nnz=40, channels=8)
    result = EscaAccelerator().run_layer(tensor, out_channels=8)
    assert result.saturated_accumulators == 0


def test_saturation_accounting_detects_narrow_accumulator():
    """With an 8-bit accumulator, INT16 x INT8 products overflow."""
    config = AcceleratorConfig(accumulator_bits=8)
    tensor = random_sparse_tensor(seed=244, shape=(8, 8, 8), nnz=20, channels=4)
    result = EscaAccelerator(config).run_layer(tensor, out_channels=4)
    assert result.saturated_accumulators > 0
