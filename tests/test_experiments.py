"""Integration tests: the four paper experiments reproduce the right shape.

These are the headline reproduction checks — who wins, by roughly what
factor — with tolerance bands documented in EXPERIMENTS.md.  The heavier
Table III / Fig. 10 runs are exercised once per session (module-scoped
fixtures) to keep the suite fast.
"""

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    run_fig10,
    run_table1,
    run_table2,
    run_table3,
)


@pytest.fixture(scope="module")
def table1():
    return run_table1(seed=0)


@pytest.fixture(scope="module")
def table2():
    return run_table2()


@pytest.fixture(scope="module")
def table3():
    return run_table3(seed=0)


@pytest.fixture(scope="module")
def fig10():
    return run_fig10(seed=0)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def test_table1_structure(table1):
    assert len(table1.rows) == 8  # 2 datasets x 4 tile sizes
    assert {row.dataset for row in table1.rows} == {"shapenet", "nyu"}


def test_table1_total_tiles_exact(table1):
    for row in table1.rows:
        assert row.total_tiles == PAPER_TABLE1[row.dataset][row.tile_size][1]


def test_table1_removing_ratio_band(table1):
    """All removing ratios are >= 99%, the paper's headline claim."""
    for row in table1.rows:
        assert row.removing_ratio > 0.99
        # Within 1 percentage point of the paper's ratio.
        assert abs(row.removing_ratio * 100 - row.paper_removing_ratio) < 1.0


def test_table1_active_tiles_band(table1):
    for row in table1.rows:
        assert 0.5 * row.paper_active_tiles <= row.active_tiles \
            <= 1.6 * row.paper_active_tiles


def test_table1_format(table1):
    text = table1.format()
    assert "Active Tiles" in text
    assert "shapenet" in text and "nyu" in text


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def test_table2_matches_paper(table2):
    assert table2.frequency_mhz == pytest.approx(270.0)
    by_name = {row.resource: row for row in table2.rows}
    assert by_name["DSP"].used == 256
    assert by_name["BRAM"].used == pytest.approx(365.5)
    assert by_name["LUT"].used == pytest.approx(17614, rel=0.02)
    assert by_name["FF"].used == pytest.approx(12142, rel=0.02)
    for row in table2.rows:
        assert row.utilization == pytest.approx(
            row.paper_utilization / 100, abs=0.003
        )


def test_table2_format(table2):
    text = table2.format()
    assert "270 MHz" in text
    assert "BRAM" in text


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def test_table3_esca_performance_band(table3):
    ours = table3.row("ours")
    # Paper: 17.73 GOPS on the SS U-Net; we accept +-15%.
    assert ours.performance_gops == pytest.approx(17.73, rel=0.15)
    assert ours.power_watts == pytest.approx(3.45, rel=0.05)
    assert ours.power_efficiency == pytest.approx(5.14, rel=0.15)


def test_table3_gpu_operating_point(table3):
    gpu = table3.row("GPU")
    assert gpu.performance_gops == pytest.approx(9.40, rel=0.15)
    assert gpu.power_watts == pytest.approx(90.56)


def test_table3_shape_esca_wins(table3):
    """Who wins, by roughly what factor (paper: 1.88x perf, ~51x GOPS/W)."""
    assert table3.performance_ratio_vs_gpu == pytest.approx(1.88, rel=0.2)
    assert table3.efficiency_ratio_vs_gpu == pytest.approx(51, rel=0.2)
    ours = table3.row("ours")
    fpga19 = table3.row("[19]")
    assert ours.performance_gops > fpga19.performance_gops
    assert ours.power_efficiency > fpga19.power_efficiency


def test_table3_published_row_19(table3):
    row = table3.row("[19]")
    assert row.performance_gops == pytest.approx(1.21)
    assert row.power_watts == pytest.approx(2.15)
    assert row.precision == "INT16"


def test_table3_format(table3):
    text = table3.format()
    assert "Tesla P100" in text
    assert "ZCU102" in text
    assert "paper: 1.88x" in text


# ----------------------------------------------------------------------
# Fig. 10
# ----------------------------------------------------------------------
def test_fig10_ordering(fig10):
    """CPU slowest, GPU middle, ESCA fastest — the figure's shape."""
    cpu = fig10.entry("CPU").layer_seconds
    gpu = fig10.entry("GPU").layer_seconds
    esca = fig10.entry("ESCA").layer_seconds
    assert cpu > gpu > esca


def test_fig10_speedup_bands(fig10):
    cpu_slowdown = fig10.entry("CPU").layer_seconds / fig10.entry("ESCA").layer_seconds
    gpu_slowdown = fig10.entry("GPU").layer_seconds / fig10.entry("ESCA").layer_seconds
    assert cpu_slowdown == pytest.approx(8.41, rel=0.15)
    assert gpu_slowdown == pytest.approx(1.89, rel=0.15)


def test_fig10_times_in_paper_range(fig10):
    """The figure's axis runs 0-9 ms; all platforms must land inside."""
    for entry in fig10.entries:
        assert 0.0 < entry.layer_seconds < 9.5e-3


def test_fig10_format(fig10):
    text = fig10.format()
    assert "ESCA" in text and "GPU" in text and "CPU" in text
