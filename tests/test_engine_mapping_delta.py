"""MappingCache / DeltaMappingCache: digest caching and delta splicing.

Acceptance (tentpole): warm lookups hit without recomputation, and a
delta-spliced neighbor table is bit-identical to a from-scratch search
on the churned coordinates — the same guarantee DeltaRulebookCache
gives the rulebook path.
"""

import numpy as np
import pytest

from repro.engine import mapping as M
from repro.engine.mapping_delta import (
    DeltaMappingCache,
    MappingCache,
    array_digest,
)

RESOLUTION = 128


def voxel_coords(seed, n=2500):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, RESOLUTION, size=(n, 3)).astype(np.int64)
    return np.unique(coords, axis=0)


def churned(coords, remove, add, seed):
    """A canonically sorted near-copy with ``remove``/``add`` row churn."""
    rng = np.random.default_rng(seed)
    keep = np.ones(len(coords), dtype=bool)
    keep[rng.choice(len(coords), size=remove, replace=False)] = False
    extra = rng.integers(0, RESOLUTION, size=(add, 3)).astype(np.int64)
    return np.unique(np.concatenate([coords[keep], extra]), axis=0)


# ---------------------------------------------------------------------------
# Plain digest cache
# ---------------------------------------------------------------------------
def test_cache_hits_on_identical_operands():
    cache = MappingCache()
    coords = voxel_coords(0)
    first = cache.knn(coords, 8)
    second = cache.knn(coords.copy(), 8)
    assert second is first  # digest-keyed: same content, same object
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5
    # Different parameters are different entries.
    cache.knn(coords, 4)
    assert cache.misses == 2
    cache.ball_query(coords, 2.0, 8)
    cache.farthest_point_sample(coords, 32)
    assert cache.misses == 4 and len(cache) == 4


def test_cache_results_match_direct_kernels():
    cache = MappingCache()
    coords = voxel_coords(1)
    assert np.array_equal(
        cache.knn(coords, 6).indices, M.knn(coords, k=6).indices
    )
    assert np.array_equal(
        cache.ball_query(coords, 2.0, 8).indices,
        M.ball_query(coords, radius=2.0, max_samples=8).indices,
    )
    assert np.array_equal(
        cache.farthest_point_sample(coords, 16).indices,
        M.farthest_point_sample(coords, 16).indices,
    )


def test_cache_explicit_queries_are_keyed_separately():
    cache = MappingCache()
    coords = voxel_coords(2)
    queries = coords[:40]
    self_result = cache.knn(coords, 4)
    query_result = cache.knn(coords, 4, queries=queries)
    assert cache.misses == 2
    assert query_result.indices.shape == (40, 4)
    assert self_result.indices.shape == (len(coords), 4)


def test_cache_lru_eviction():
    cache = MappingCache(capacity=2)
    coords = [voxel_coords(seed, n=50) for seed in range(3)]
    cache.knn(coords[0], 2)
    cache.knn(coords[1], 2)
    cache.knn(coords[0], 2)  # refresh 0 -> 1 is now least recent
    cache.knn(coords[2], 2)  # evicts 1
    assert len(cache) == 2
    cache.knn(coords[1], 2)
    assert cache.misses == 4  # 0, 1, 2, then 1 again after eviction


def test_cache_validation_and_reset():
    with pytest.raises(ValueError, match="capacity"):
        MappingCache(capacity=0)
    cache = MappingCache()
    cache.knn(voxel_coords(0, n=30), 2)
    cache.reset_stats()
    assert cache.lookups == 0 and len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_array_digest_distinguishes_dtype_shape_content():
    base = np.arange(12, dtype=np.int64).reshape(4, 3)
    assert array_digest(base) == array_digest(base.copy())
    assert array_digest(base) != array_digest(base.astype(np.int32))
    assert array_digest(base) != array_digest(base.reshape(3, 4))
    bumped = base.copy()
    bumped[0, 0] += 1
    assert array_digest(base) != array_digest(bumped)


# ---------------------------------------------------------------------------
# Delta splicing
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("op", ["knn", "ball_query"])
def test_delta_patched_tables_bit_identical_to_cold(op):
    cache = DeltaMappingCache(threshold=0.25)
    coords = voxel_coords(0)
    for step in range(4):
        if op == "knn":
            warm = cache.knn(coords, 8)
            cold = M.knn(coords, k=8)
        else:
            warm = cache.ball_query(coords, 2.5, 8)
            cold = M.ball_query(coords, radius=2.5, max_samples=8)
        assert np.array_equal(warm.indices, cold.indices), step
        assert np.array_equal(warm.distances, cold.distances), step
        assert np.array_equal(warm.counts, cold.counts), step
        coords = churned(coords, remove=25, add=25, seed=step + 1)
    assert cache.patches == 3
    assert cache.rebuilds == 1
    assert cache.patched_added > 0 and cache.patched_removed > 0
    # Patched results advertise their provenance.
    assert warm.stats.method == "delta-patch"


def test_delta_threshold_gates_patching():
    cache = DeltaMappingCache(threshold=0.01)
    coords = voxel_coords(3)
    cache.knn(coords, 4)
    # ~40% churn is far over the 1% threshold: rebuild, never patch.
    heavy = churned(coords, remove=len(coords) // 2, add=200, seed=7)
    result = cache.knn(heavy, 4)
    assert cache.patches == 0 and cache.rebuilds == 2
    assert result.stats.method == "bucket"
    assert np.array_equal(result.indices, M.knn(heavy, k=4).indices)


def test_delta_ineligible_lookups_fall_back():
    cache = DeltaMappingCache(threshold=0.25)
    coords = voxel_coords(4)
    floats = coords.astype(np.float64)
    cache.knn(floats, 4)
    cache.knn(churned(coords, 10, 10, seed=1).astype(np.float64), 4)
    # Float clouds are digest-cached but never delta-tracked.
    assert cache.patches == 0 and cache.rebuilds == 0
    # Explicit-query lookups are likewise ineligible.
    cache.knn(coords, 4, queries=coords[:10])
    assert cache.rebuilds == 0
    # FPS is rebuild-only by design (cascading picks).
    cache.farthest_point_sample(coords, 8)
    cache.farthest_point_sample(churned(coords, 5, 5, seed=2), 8)
    assert cache.patches == 0


def test_delta_unsorted_coords_ineligible():
    cache = DeltaMappingCache(threshold=0.25)
    coords = voxel_coords(5)
    shuffled = coords[::-1].copy()  # valid rows, non-canonical order
    cache.knn(shuffled, 4)
    assert cache.rebuilds == 0  # not tracked for splicing
    result = cache.knn(shuffled, 4)
    assert cache.hits == 1  # still digest-cached
    assert np.array_equal(result.indices, M.knn(shuffled, k=4).indices)


def test_delta_geometry_must_match_source():
    cache = DeltaMappingCache(threshold=0.25)
    coords = voxel_coords(6)
    cache.knn(coords, 4)
    moved = churned(coords, 10, 10, seed=3)
    # Same point set lineage, different k: no patch source.
    cache.knn(moved, 8)
    assert cache.patches == 0 and cache.rebuilds == 2
    # Matching geometry patches.
    cache.knn(churned(moved, 10, 10, seed=4), 8)
    assert cache.patches == 1


def test_delta_stats_snapshot_and_reset():
    cache = DeltaMappingCache(threshold=0.25)
    coords = voxel_coords(7)
    cache.knn(coords, 4)
    cache.knn(churned(coords, 10, 10, seed=5), 4)
    snap = cache.stats
    assert snap.patches == 1 and snap.rebuilds == 1
    assert snap.patch_rate == 0.5
    assert snap.lookups == 2
    cache.reset_stats()
    assert cache.stats.lookups == 0 and cache.stats.patches == 0
    assert len(cache) == 2  # reset clears counters, not entries


def test_delta_validation():
    with pytest.raises(ValueError, match="threshold"):
        DeltaMappingCache(threshold=0.0)
    with pytest.raises(ValueError, match="threshold"):
        DeltaMappingCache(threshold=1.5)
    with pytest.raises(ValueError, match="max_candidates"):
        DeltaMappingCache(max_candidates=0)


def test_delta_eviction_drops_coord_sets():
    cache = DeltaMappingCache(capacity=1, threshold=0.25)
    a = voxel_coords(8, n=60)
    b = churned(a, 2, 2, seed=1)
    cache.knn(a, 2)
    cache.knn(b, 2)  # patches from a, then evicts a's entry
    assert len(cache) == 1
    assert len(cache._coord_sets) == 1  # bookkeeping follows eviction
