"""Canonical CSR lowering: one code path for cold prepare and splice.

PR satellite: :meth:`ScipySparseBackend.prepare` now lowers its
operators through the same ``_lower_operators`` routine the delta
splice of :meth:`ScipySparseBackend.refresh` uses (CSC -> sorted CSR in
one conversion pass), so a cold-prepared plan and a spliced plan for
the same rulebook are array-for-array identical — indptr, indices, and
data, dtypes included — not merely numerically equivalent.
"""

import numpy as np
import pytest

from repro.engine.backend import ScipySparseBackend
from tests.test_engine_backend import _assert_csr_plans_identical, _patched_pair


def _scipy_backend():
    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    return backend


def test_cold_prepare_matches_coo_lowering():
    """The canonical lowering reproduces the COO fallback's operators."""
    backend = _scipy_backend()
    _, new, _, patched = _patched_pair()
    plan_gs = patched.plan()
    canonical = backend._lower_operators(
        plan_gs, patched.num_inputs, patched.num_outputs
    )
    fallback = backend._lower_operators_coo(
        plan_gs, patched.num_inputs, patched.num_outputs
    )
    assert canonical is not None
    for mine, theirs in zip(canonical, fallback):
        assert mine.shape == theirs.shape
        assert np.array_equal(
            np.asarray(mine.indptr), np.asarray(theirs.indptr)
        )
        assert np.array_equal(
            np.asarray(mine.indices), np.asarray(theirs.indices)
        )
        assert np.array_equal(mine.data, theirs.data)


def test_cold_prepared_and_spliced_plans_identical():
    """Satellite acceptance: cold prepare == delta splice, array for array."""
    warm = _scipy_backend()
    cold = ScipySparseBackend()
    _, _, old_rulebook, patched = _patched_pair()
    warm.plan_for(old_rulebook)  # warm the old plan so refresh can splice
    warm.refresh(old_rulebook, patched, patched._splice)
    assert warm.plans_spliced == 1
    spliced = warm.plan_for(patched)
    prepared = cold.prepare(patched)
    _assert_csr_plans_identical(spliced, prepared)


def test_cold_prepare_survives_missing_c_kernel(monkeypatch):
    """Without ``csc_tocsr`` the public-conversion fallback lowers the
    same sorted arrays (scipy >= 1.14 dropped the standalone kernel)."""
    backend = _scipy_backend()
    _, _, _, patched = _patched_pair()
    plan_gs = patched.plan()
    reference = backend._lower_operators(
        plan_gs, patched.num_inputs, patched.num_outputs
    )
    tools = getattr(backend._sparse, "_sparsetools", None)
    if tools is not None and hasattr(tools, "csc_tocsr"):
        monkeypatch.delattr(tools, "csc_tocsr")
    via_public = backend._lower_operators(
        plan_gs, patched.num_inputs, patched.num_outputs
    )
    for mine, theirs in zip(via_public, reference):
        assert np.array_equal(
            np.asarray(mine.indptr), np.asarray(theirs.indptr)
        )
        assert np.array_equal(
            np.asarray(mine.indices), np.asarray(theirs.indices)
        )
        assert np.array_equal(mine.data, theirs.data)
