"""Tests for the quantization fidelity analysis."""

import numpy as np
import pytest

from repro.quant import (
    FixedPointFormat,
    QuantizedSubConv,
    feature_snr_db,
    find_point,
    max_relative_error,
    sweep_precision,
)
from tests.conftest import random_sparse_tensor


def test_snr_identical_is_infinite():
    x = np.array([[1.0, 2.0]])
    assert feature_snr_db(x, x) == float("inf")


def test_snr_known_value():
    reference = np.array([[1.0, 0.0]])
    candidate = np.array([[1.1, 0.0]])
    # SNR = 10 log10(1 / 0.01) = 20 dB.
    assert feature_snr_db(reference, candidate) == pytest.approx(20.0)


def test_snr_zero_signal():
    zero = np.zeros((2, 2))
    noisy = np.ones((2, 2))
    assert feature_snr_db(zero, noisy) == float("-inf")


def test_snr_shape_mismatch():
    with pytest.raises(ValueError):
        feature_snr_db(np.zeros((2, 2)), np.zeros((3, 2)))


def test_max_relative_error():
    reference = np.array([[2.0, -4.0]])
    candidate = np.array([[2.0, -3.0]])
    assert max_relative_error(reference, candidate) == pytest.approx(0.25)
    assert max_relative_error(np.zeros((1, 2)), np.zeros((1, 2))) == 0.0


def test_quantized_subconv_custom_formats():
    rng = np.random.default_rng(210)
    tensor = random_sparse_tensor(seed=211, shape=(8, 8, 8), nnz=30, channels=4)
    weights = rng.standard_normal((27, 4, 4)) * 0.2
    coarse = QuantizedSubConv(
        weights,
        weight_fmt=FixedPointFormat(bits=4, name="INT4"),
        act_fmt=FixedPointFormat(bits=8, name="INT8"),
    )
    assert np.abs(coarse.weights_q.data).max() <= 7  # 4-bit range


def test_sweep_precision_monotone_in_weight_bits():
    rng = np.random.default_rng(212)
    tensor = random_sparse_tensor(seed=213, shape=(10, 10, 10), nnz=40, channels=8)
    weights = rng.standard_normal((27, 8, 8)) * 0.3
    points = sweep_precision(
        tensor, weights, weight_bits=(4, 8, 12), activation_bits=(16,)
    )
    assert len(points) == 3
    snrs = [p.snr_db for p in points]
    assert snrs == sorted(snrs)
    # More bits -> smaller worst-case error.
    errors = [p.max_rel_error for p in points]
    assert errors == sorted(errors, reverse=True)


def test_find_point():
    rng = np.random.default_rng(214)
    tensor = random_sparse_tensor(seed=215, shape=(8, 8, 8), nnz=20, channels=4)
    weights = rng.standard_normal((27, 4, 4))
    points = sweep_precision(
        tensor, weights, weight_bits=(8,), activation_bits=(16,)
    )
    assert find_point(points, 8, 16) is points[0]
    assert find_point(points, 4, 16) is None
