"""Tests for the computing core and output writer (Sec. III-D, Fig. 8)."""

import numpy as np
import pytest

from repro.arch import AcceleratorConfig, ComputingCore
from repro.arch.computing_core import OutputWriter
from repro.arch.sdmu import Match


def make_core(cin=4, cout=4, n=8, seed=0, **cfg_kwargs):
    rng = np.random.default_rng(seed)
    config = AcceleratorConfig(**cfg_kwargs)
    acts = rng.integers(-100, 100, size=(n, cin))
    weights = rng.integers(-128, 127, size=(27, cin, cout))
    return ComputingCore(config, acts, weights, num_outputs=n), acts, weights


def match(row, widx, seq=0, lane=0):
    return Match(srf_seq=seq, lane=lane, activation_row=row, weight_index=widx)


def test_single_match_accumulation():
    core, acts, weights = make_core()
    core.accept(match(2, 5), output_row=3)
    expected = acts[2].astype(np.int64) @ weights[5].astype(np.int64)
    assert np.array_equal(core.accumulators[3], expected)
    assert np.all(core.accumulators[[0, 1, 2, 4, 5, 6, 7]] == 0)


def test_accumulation_adds_up():
    core, acts, weights = make_core()
    core.accept(match(0, 0), output_row=1)
    core.tick()
    core.accept(match(3, 13), output_row=1)
    expected = (
        acts[0].astype(np.int64) @ weights[0].astype(np.int64)
        + acts[3].astype(np.int64) @ weights[13].astype(np.int64)
    )
    assert np.array_equal(core.accumulators[1], expected)


def test_occupancy_cycles_per_match():
    # 32 ICs x 32 OCs on a 16x16 array -> 4 cycles per match.
    core, _, _ = make_core(cin=32, cout=32)
    assert core.cycles_per_match == 4
    core.accept(match(0, 0), output_row=0)
    assert not core.can_accept
    for _ in range(3):
        core.tick()
        assert not core.can_accept
    core.tick()
    assert core.can_accept


def test_accept_while_busy_raises():
    core, _, _ = make_core(cin=32, cout=32)
    core.accept(match(0, 0), output_row=0)
    with pytest.raises(RuntimeError):
        core.accept(match(1, 1), output_row=1)


def test_effective_ops_accounting():
    core, _, _ = make_core(cin=4, cout=4)
    core.accept(match(0, 0), output_row=0)
    core.tick()
    core.accept(match(1, 1), output_row=1)
    assert core.effective_macs == 2 * 4 * 4
    assert core.effective_ops == 2 * core.effective_macs


def test_utilization_tracking():
    core, _, _ = make_core()
    core.accept(match(0, 0), output_row=0)
    core.tick()  # busy
    core.tick()  # idle
    assert core.util.busy_cycles == 1
    assert core.util.total_cycles == 2
    assert core.util.fraction == pytest.approx(0.5)


def test_validation_errors():
    config = AcceleratorConfig()
    with pytest.raises(ValueError):
        ComputingCore(config, np.zeros((4,)), np.zeros((27, 4, 4)), 4)
    with pytest.raises(ValueError):
        ComputingCore(config, np.zeros((4, 4)), np.zeros((27, 4)), 4)
    with pytest.raises(ValueError):
        ComputingCore(config, np.zeros((4, 3)), np.zeros((27, 4, 4)), 4)


def test_integer_arithmetic_is_exact():
    """Large values must not lose precision (int64 accumulation)."""
    config = AcceleratorConfig()
    acts = np.full((1, 16), 32767, dtype=np.int64)
    weights = np.full((27, 16, 16), 127, dtype=np.int64)
    core = ComputingCore(config, acts, weights, num_outputs=1)
    core.accept(match(0, 0), output_row=0)
    assert core.accumulators[0, 0] == 32767 * 127 * 16


def test_output_writer_cycles():
    config = AcceleratorConfig()
    writer = OutputWriter(config, out_channels=48)  # ceil(48/16) = 3 cycles
    assert writer.cycles_per_row == 3
    writer.accept_row()
    assert not writer.can_accept
    with pytest.raises(RuntimeError):
        writer.accept_row()
    for _ in range(3):
        writer.tick()
    assert writer.can_accept
    assert writer.rows_written == 1
    assert writer.is_idle()
