"""Tests for the host-side (PS) execution model of non-Sub-Conv layers."""

import pytest

from repro.arch import EscaAccelerator, HostExecutionModel
from repro.nn import SSUNet, UNetConfig
from repro.nn.unet import LayerExecution, collect_all_executions
from tests.conftest import random_sparse_tensor


@pytest.fixture()
def net_and_tensor():
    tensor = random_sparse_tensor(seed=160, shape=(16, 16, 16), nnz=50, channels=1)
    net = SSUNet(UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2))
    return net, tensor


def test_collect_all_executions_kinds(net_and_tensor):
    net, tensor = net_and_tensor
    executions = collect_all_executions(net, tensor)
    kinds = [ex.kind for ex in executions]
    # levels=2: enc0(sub), down0, bottom(sub), up0, dec0(sub), head(sub).
    assert kinds.count("subconv") == 4
    assert kinds.count("sparseconv") == 1
    assert kinds.count("invconv") == 1


def test_invconv_record_carries_fine_reference(net_and_tensor):
    net, tensor = net_and_tensor
    executions = collect_all_executions(net, tensor)
    inv = next(ex for ex in executions if ex.kind == "invconv")
    # The transposed conv restores the full-resolution site set.
    assert inv.nnz == tensor.nnz


def test_host_model_timing_positive(net_and_tensor):
    net, tensor = net_and_tensor
    executions = collect_all_executions(net, tensor)
    model = HostExecutionModel()
    runs = model.run_layers(executions)
    assert len(runs) == len(executions)
    for run in runs:
        assert run.seconds > 0
        assert run.effective_ops >= 0


def test_host_model_unknown_kind_rejected():
    execution = LayerExecution(
        name="x",
        input_tensor=random_sparse_tensor(seed=161, nnz=5),
        in_channels=1,
        out_channels=1,
        kernel_size=3,
        kind="mystery",
    )
    with pytest.raises(ValueError):
        HostExecutionModel().run_layer(execution)


def test_host_model_validation():
    with pytest.raises(ValueError):
        HostExecutionModel(gemm_ops_per_s=0)
    with pytest.raises(ValueError):
        HostExecutionModel(probe_rate_per_s=-1)
    with pytest.raises(ValueError):
        HostExecutionModel(dispatch_seconds=-1)


def test_run_network_with_host_layers(net_and_tensor):
    net, tensor = net_and_tensor
    accel = EscaAccelerator()
    without = accel.run_network(net, tensor)
    with_host = accel.run_network(net, tensor, include_host_layers=True)
    assert without.host_layers == []
    assert without.host_seconds == 0.0
    # Host side covers down0, up0 and the 1^3 head.
    assert len(with_host.host_layers) == 3
    assert with_host.host_seconds > 0
    assert with_host.end_to_end_seconds == pytest.approx(
        with_host.total_seconds + with_host.host_seconds
    )
    # Accelerated portion identical either way.
    assert with_host.total_cycles == without.total_cycles


def test_host_model_accepts_session_rulebook(net_and_tensor):
    """A session-provided rulebook short-circuits matching entirely and
    yields the same estimate as the self-built path."""
    from repro.nn.rulebook import build_sparse_conv_rulebook

    net, tensor = net_and_tensor
    executions = collect_all_executions(net, tensor)
    down = next(ex for ex in executions if ex.kind == "sparseconv")
    rulebook, _ = build_sparse_conv_rulebook(
        down.input_tensor, kernel_size=down.kernel_size, stride=down.stride
    )
    model = HostExecutionModel()
    provided = model.run_layer(down, rulebook=rulebook)
    rebuilt = model.run_layer(down)
    assert provided == rebuilt


def test_host_model_threads_cache(net_and_tensor):
    """With a shared cache the host model stops rebuilding rulebooks:
    the down and inverse conv share one matching pass."""
    from repro.nn import RulebookCache

    net, tensor = net_and_tensor
    executions = collect_all_executions(net, tensor)
    host_side = [ex for ex in executions if ex.kind != "subconv"]
    cache = RulebookCache()
    model = HostExecutionModel()
    first = model.run_layers(host_side, cache=cache)
    # down0 and up0 share the strided matching keyed on the fine tensor.
    assert cache.misses == 1
    assert cache.hits == 1
    second = model.run_layers(host_side, cache=cache)
    assert cache.misses == 1
    assert first == second


def test_run_network_threads_session_cache(net_and_tensor):
    """run_network with a session cache performs no matching beyond what
    a warm session already holds."""
    from repro.engine import InferenceSession

    net, tensor = net_and_tensor
    session = InferenceSession(net=net)
    session.warm(tensor)
    passes = session.rulebook_cache.misses
    hits_before = session.rulebook_cache.hits
    result = EscaAccelerator().run_network(
        net,
        tensor,
        include_host_layers=True,
        host_model=session.host_model,
        rulebook_cache=session.rulebook_cache,
    )
    assert session.rulebook_cache.misses == passes
    # Not vacuous: the recording forward (6 conv layers for levels=2) and
    # the host model (3 layers) must actually consult the cache, not
    # silently rebuild outside it.
    assert session.rulebook_cache.hits >= hits_before + 9
    assert len(result.host_layers) == 3


def test_host_layers_minor_vs_accelerated(net_and_tensor):
    """The non-Sub-Conv layers are a small fraction of total work, which
    is why the paper focuses the accelerator on Sub-Conv."""
    net, tensor = net_and_tensor
    result = EscaAccelerator().run_network(net, tensor, include_host_layers=True)
    host_ops = sum(run.effective_ops for run in result.host_layers)
    assert host_ops < result.effective_ops
