"""Tests for the network compiler (buffer-constrained layer mapping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    AcceleratorConfig,
    BufferBudget,
    CompilationError,
    NetworkCompiler,
)
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def small_budget(**overrides):
    defaults = dict(
        weight_words=512,
        activation_words_per_bank=64,
        output_words=64,
        mask_bits=1 << 20,
    )
    defaults.update(overrides)
    return BufferBudget(**defaults)


def test_budget_from_config():
    config = AcceleratorConfig()
    budget = BufferBudget.from_config(config)
    assert budget.weight_words == config.weight_buffer_depth
    assert budget.output_words == config.output_buffer_depth


def test_single_pass_when_layer_fits():
    compiler = NetworkCompiler()
    passes = compiler.plan_channel_passes(16, 16)
    assert len(passes) == 1
    only = passes[0]
    assert (only.ic_size, only.oc_size) == (16, 16)


def test_oc_split_when_weights_overflow():
    # weight words for (64, 64) at K=3: 27 * 64 * 4 = 6912 > 512 budget.
    compiler = NetworkCompiler(budget=small_budget(weight_words=2048))
    passes = compiler.plan_channel_passes(64, 64)
    assert len(passes) > 1
    # OC split only: every pass covers the full IC range.
    assert all(p.ic_size == 64 for p in passes)
    # Passes cover all output channels exactly once.
    covered = sorted((p.oc_start, p.oc_stop) for p in passes)
    stops = [c[1] for c in covered]
    starts = [c[0] for c in covered]
    assert starts[0] == 0 and stops[-1] == 64
    assert all(stops[i] == starts[i + 1] for i in range(len(covered) - 1))
    # Every pass respects the budget.
    for p in passes:
        assert compiler.weight_words(p.ic_size, p.oc_size) <= 2048


def test_ic_split_when_single_oc_lane_overflows():
    # One OC lane with full IC: 27 * 16 * ceil(256/16) = 6912 words.
    compiler = NetworkCompiler(budget=small_budget(weight_words=3000))
    passes = compiler.plan_channel_passes(256, 16)
    assert len(passes) > 1
    assert any(p.ic_size < 256 for p in passes)
    for p in passes:
        assert compiler.weight_words(p.ic_size, p.oc_size) <= 3000


def test_impossible_layer_raises():
    compiler = NetworkCompiler(budget=small_budget(weight_words=10))
    with pytest.raises(CompilationError):
        compiler.plan_channel_passes(1024, 1024)


def test_tile_chunking_respects_capacity():
    tensor = random_sparse_tensor(seed=200, shape=(32, 32, 32), nnz=120, channels=16)
    compiler = NetworkCompiler(budget=small_budget(
        weight_words=1 << 20, activation_words_per_bank=40, output_words=40
    ))
    chunks = compiler.plan_tile_chunks(tensor, in_channels=16)
    assert len(chunks) > 1
    for chunk in chunks:
        assert chunk.nnz <= 40
    assert sum(chunk.nnz for chunk in chunks) == tensor.nnz


def test_tile_chunk_matches_sum_to_rulebook_total():
    from repro.nn import build_submanifold_rulebook

    tensor = random_sparse_tensor(seed=201, shape=(24, 24, 24), nnz=80, channels=4)
    compiler = NetworkCompiler()
    chunks = compiler.plan_tile_chunks(tensor, in_channels=4)
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert sum(chunk.matches for chunk in chunks) == rulebook.total_matches


def test_oversized_single_tile_raises():
    # A dense 8^3 tile has 512 sites; capacity 100 cannot hold it.
    coords = np.array(
        [[x, y, z] for x in range(8) for y in range(8) for z in range(8)]
    )
    tensor = SparseTensor3D(coords, np.ones((512, 1)), (8, 8, 8))
    compiler = NetworkCompiler(budget=small_budget(
        weight_words=1 << 20, activation_words_per_bank=100, output_words=100
    ))
    with pytest.raises(CompilationError):
        compiler.plan_tile_chunks(tensor, in_channels=1)


def test_layer_plan_commands_structure():
    tensor = random_sparse_tensor(seed=202, shape=(16, 16, 16), nnz=50, channels=16)
    plan = NetworkCompiler().plan_layer(tensor, out_channels=16, name="enc0")
    kinds = [cmd.kind for cmd in plan.commands]
    assert kinds.count("load_masks") == plan.num_chunks
    assert kinds.count("load_activations") == plan.num_chunks
    assert kinds.count("store_outputs") == plan.num_chunks
    assert kinds.count("run") == plan.num_chunks * plan.num_passes
    assert kinds.count("load_weights") == plan.num_chunks * plan.num_passes
    assert plan.total_run_cycles > 0


def test_plan_transfer_bytes_match_overhead_model_single_pass():
    """With one pass and one chunk, the command-stream bytes equal the
    overhead model's transfer volume."""
    from repro.arch import layer_transfer_volume
    from repro.arch.encoding import EncodedFeatureMap

    tensor = random_sparse_tensor(seed=203, shape=(16, 16, 16), nnz=40, channels=16)
    config = AcceleratorConfig()
    plan = NetworkCompiler(config).plan_layer(tensor, out_channels=16)
    assert plan.num_passes == 1
    assert plan.num_chunks == 1
    encoded = EncodedFeatureMap(tensor, config.tile_shape)
    volume = layer_transfer_volume(
        nnz_in=tensor.nnz,
        nnz_out=tensor.nnz,
        in_channels=16,
        out_channels=16,
        kernel_volume=27,
        mask_bits=encoded.storage_report().mask_bits,
        weight_bits=config.weight_bits,
        activation_bits=config.activation_bits,
    )
    assert plan.total_bytes == volume.total_bytes


def test_run_cycles_track_analytical_model():
    """Single chunk + single pass: compiler run-cycles equal the
    analytical model's estimate."""
    from repro.arch import AnalyticalModel

    tensor = random_sparse_tensor(seed=204, shape=(16, 16, 16), nnz=60, channels=16)
    config = AcceleratorConfig()
    plan = NetworkCompiler(config).plan_layer(tensor, out_channels=16)
    assert plan.num_chunks == 1 and plan.num_passes == 1
    estimate = AnalyticalModel(config).estimate_layer(tensor, 16, 16)
    assert plan.total_run_cycles == estimate


def test_plan_network_list():
    tensors = [
        random_sparse_tensor(seed=s, shape=(16, 16, 16), nnz=30, channels=8)
        for s in (205, 206)
    ]
    plans = NetworkCompiler().plan_network(
        [(tensors[0], 8, "a"), (tensors[1], 16, "b")]
    )
    assert [plan.name for plan in plans] == ["a", "b"]


@given(st.integers(1, 256), st.integers(1, 256))
@settings(max_examples=40, deadline=None)
def test_property_channel_passes_cover_everything(cin, cout):
    """Passes tile the (IC, OC) rectangle exactly, within budget."""
    compiler = NetworkCompiler(budget=small_budget(weight_words=2000))
    try:
        passes = compiler.plan_channel_passes(cin, cout)
    except CompilationError:
        return  # acceptable for extreme sizes against a tiny budget
    covered = np.zeros((cin, cout), dtype=int)
    for p in passes:
        covered[p.ic_start:p.ic_stop, p.oc_start:p.oc_stop] += 1
        assert compiler.weight_words(p.ic_size, p.oc_size) <= 2000
    assert np.all(covered == 1)


# ----------------------------------------------------------------------
# Session rulebook threading
# ----------------------------------------------------------------------
def test_compiler_uses_session_cache():
    """Channel-pass planning stops rebuilding rulebooks when the compiler
    shares a session's rulebook cache."""
    from repro.nn import RulebookCache

    tensor = random_sparse_tensor(seed=70, shape=(16, 16, 16), nnz=60, channels=4)
    cache = RulebookCache()
    compiler = NetworkCompiler(rulebook_cache=cache)
    plan_cold = compiler.plan_layer(tensor, 8)
    assert cache.misses == 1
    plan_warm = compiler.plan_layer(tensor, 8)
    assert cache.misses == 1
    assert cache.hits == 1
    assert [c.nnz for c in plan_warm.chunks] == [c.nnz for c in plan_cold.chunks]
    assert [c.matches for c in plan_warm.chunks] == [
        c.matches for c in plan_cold.chunks
    ]


def test_compiler_accepts_explicit_rulebook():
    """An explicit session-provided rulebook bypasses matching entirely
    and yields the identical chunking."""
    from repro.nn import build_submanifold_rulebook

    tensor = random_sparse_tensor(seed=71, shape=(16, 16, 16), nnz=50, channels=2)
    compiler = NetworkCompiler()
    rulebook = build_submanifold_rulebook(tensor, compiler.config.kernel_size)
    with_rb = compiler.plan_tile_chunks(tensor, 2, rulebook=rulebook)
    without = compiler.plan_tile_chunks(tensor, 2)
    assert [c.tile_indices for c in with_rb] == [c.tile_indices for c in without]
    assert [c.matches for c in with_rb] == [c.matches for c in without]
