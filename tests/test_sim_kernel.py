"""Unit tests for the two-phase clocked simulation kernel."""

import pytest

from repro.sim import Component, SimulationError, SimulationKernel


class CountDown(Component):
    """Counts down to zero, one decrement per cycle."""

    def __init__(self, start: int, name: str = "countdown") -> None:
        self.name = name
        self.start = start
        self.remaining = start
        self._staged = start

    def compute(self, cycle: int) -> None:
        if self.remaining > 0:
            self._staged = self.remaining - 1

    def commit(self, cycle: int) -> None:
        self.remaining = self._staged

    def is_idle(self) -> bool:
        return self.remaining == 0

    def reset(self) -> None:
        self.remaining = self.start
        self._staged = self.start


class Echo(Component):
    """Copies its neighbor's committed value with a one-cycle delay."""

    def __init__(self, source: CountDown) -> None:
        self.name = "echo"
        self.source = source
        self.value = None
        self._staged = None

    def compute(self, cycle: int) -> None:
        self._staged = self.source.remaining

    def commit(self, cycle: int) -> None:
        self.value = self._staged


def test_step_advances_cycle_counter():
    kernel = SimulationKernel([CountDown(3)])
    assert kernel.step() == 1
    assert kernel.step() == 2


def test_run_until_idle_counts_down():
    unit = CountDown(5)
    kernel = SimulationKernel([unit])
    kernel.run_until_idle()
    assert unit.remaining == 0
    # Five decrements plus settle cycles.
    assert kernel.cycle >= 5


def test_two_phase_semantics_are_order_independent():
    """Echo must observe the value committed *before* this cycle."""
    for order in ("source_first", "echo_first"):
        source = CountDown(2)
        echo = Echo(source)
        components = [source, echo] if order == "source_first" else [echo, source]
        kernel = SimulationKernel(components)
        kernel.step()
        # During cycle 0 Echo saw the pre-decrement value.
        assert echo.value == 2
        kernel.step()
        assert echo.value == 1


def test_deadlock_raises_simulation_error():
    class NeverIdle(Component):
        name = "stuck"

        def is_idle(self) -> bool:
            return False

    kernel = SimulationKernel([NeverIdle()], max_cycles=100)
    with pytest.raises(SimulationError, match="stuck"):
        kernel.run_until_idle()


def test_reset_restores_components_and_cycle():
    unit = CountDown(4)
    kernel = SimulationKernel([unit])
    kernel.run_until_idle()
    kernel.reset()
    assert kernel.cycle == 0
    assert unit.remaining == 4


def test_watcher_called_every_cycle():
    seen = []
    kernel = SimulationKernel([CountDown(3)])
    kernel.add_watcher(seen.append)
    kernel.step()
    kernel.step()
    assert seen == [1, 2]


def test_add_component_returns_component():
    kernel = SimulationKernel()
    unit = CountDown(1)
    assert kernel.add_component(unit) is unit
    assert unit in kernel.components
