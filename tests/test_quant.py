"""Tests for fixed-point quantization and the integer Sub-Conv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import submanifold_conv3d
from repro.quant import (
    ACT_INT16,
    WEIGHT_INT8,
    FixedPointFormat,
    QuantizedSubConv,
    calibrate_scale,
    calibrate_scale_batch,
    dequantize,
    quantize,
    quantize_tensor,
    saturate,
)
from repro.quant.fixed_point import ACC_INT32, quantization_error
from tests.conftest import random_sparse_tensor


def test_format_ranges():
    assert WEIGHT_INT8.min_value == -128
    assert WEIGHT_INT8.max_value == 127
    assert ACT_INT16.max_value == 32767
    assert ACC_INT32.levels == 2 ** 32


def test_format_validation():
    with pytest.raises(ValueError):
        FixedPointFormat(bits=1, name="bad")


def test_saturate_clamps():
    values = np.array([-1000, 0, 1000])
    clamped = saturate(values, WEIGHT_INT8)
    assert clamped.tolist() == [-128, 0, 127]


def test_quantize_dequantize_round_trip():
    values = np.linspace(-1.0, 1.0, 11)
    scale = calibrate_scale(values, WEIGHT_INT8)
    q = quantize(values, scale, WEIGHT_INT8)
    assert q.dtype == np.int64
    error = np.abs(dequantize(q, scale) - values).max()
    assert error <= scale / 2 + 1e-12


def test_quantize_rejects_bad_scale():
    with pytest.raises(ValueError):
        quantize(np.ones(3), 0.0, WEIGHT_INT8)
    with pytest.raises(ValueError):
        quantize(np.ones(3), np.inf, WEIGHT_INT8)


def test_calibrate_scale_uses_peak():
    values = np.array([0.5, -2.0, 1.0])
    scale = calibrate_scale(values, WEIGHT_INT8)
    assert scale == pytest.approx(2.0 / 127)
    # All values representable after calibration.
    assert quantization_error(values, scale, WEIGHT_INT8) <= scale / 2 + 1e-12


def test_calibrate_scale_zero_tensor():
    scale = calibrate_scale(np.zeros(5), WEIGHT_INT8)
    assert scale > 0


def test_calibrate_scale_batch_matches_per_frame():
    rng = np.random.default_rng(7)
    stack = rng.standard_normal((4, 6, 3))
    stack[2] = 0.0  # all-zero frame falls back to the zero-tensor scale
    batch = calibrate_scale_batch(stack, ACT_INT16)
    expected = np.array(
        [calibrate_scale(frame, ACT_INT16) for frame in stack]
    )
    assert batch.shape == (4,)
    assert np.array_equal(batch, expected)
    # per-frame scales broadcast through quantize identically
    q_batch = quantize(stack, batch[:, None, None], ACT_INT16)
    for i, frame in enumerate(stack):
        assert np.array_equal(
            q_batch[i], quantize(frame, batch[i], ACT_INT16)
        )


def test_calibrate_scale_batch_empty_batch():
    scales = calibrate_scale_batch(np.empty((0, 5, 3)), ACT_INT16)
    assert scales.shape == (0,)


def test_calibrate_scale_batch_rejects_bad_headroom():
    with pytest.raises(ValueError):
        calibrate_scale_batch(np.ones((2, 3)), ACT_INT16, headroom=0.0)


def test_quantize_tensor_wrapper():
    qt = quantize_tensor(np.array([1.0, -1.0]), WEIGHT_INT8)
    assert qt.data.tolist() == [127, -127]
    assert np.allclose(qt.dequantized(), [1.0, -1.0], atol=qt.scale)


def test_quantized_subconv_close_to_float():
    """INT8/INT16 Sub-Conv must track the float reference within LSBs."""
    rng = np.random.default_rng(70)
    tensor = random_sparse_tensor(seed=71, shape=(8, 8, 8), nnz=40, channels=4)
    weights = rng.standard_normal((27, 4, 6)) * 0.2
    qconv = QuantizedSubConv(weights, kernel_size=3)
    q_out = qconv.forward(tensor)
    f_out = submanifold_conv3d(tensor, weights)
    peak = np.abs(f_out.features).max()
    rel_err = np.abs(q_out.features - f_out.features).max() / peak
    # Error budget is dominated by the INT8 weights (~1/127 per weight).
    assert rel_err < 0.02


def test_integer_forward_is_exact_integer_math():
    rng = np.random.default_rng(72)
    tensor = random_sparse_tensor(seed=73, shape=(6, 6, 6), nnz=20, channels=2)
    weights = rng.standard_normal((27, 2, 3))
    qconv = QuantizedSubConv(weights)
    acts_q = quantize_tensor(tensor.features, ACT_INT16)
    acc = qconv.integer_forward(acts_q.data, tensor)
    assert acc.dtype == np.int64
    # Re-deriving via the float rulebook path on the integer data agrees.
    int_tensor = tensor.with_features(acts_q.data.astype(np.float64))
    ref = submanifold_conv3d(int_tensor, qconv.weights_q.data.astype(np.float64))
    assert np.array_equal(acc, ref.features.astype(np.int64))


def test_integer_forward_validates_shape():
    tensor = random_sparse_tensor(seed=74, nnz=10, channels=2)
    qconv = QuantizedSubConv(np.zeros((27, 2, 2)))
    with pytest.raises(ValueError):
        qconv.integer_forward(np.zeros((5, 2), dtype=np.int64), tensor)


@given(st.integers(0, 10_000), st.floats(0.05, 2.0))
@settings(max_examples=30, deadline=None)
def test_property_quantization_error_bounded(seed, amplitude):
    """Round-trip error never exceeds half an LSB inside the range."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(-amplitude, amplitude, size=50)
    scale = calibrate_scale(values, ACT_INT16)
    assert quantization_error(values, scale, ACT_INT16) <= scale / 2 + 1e-12


@given(st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_property_integer_conv_linear_in_weights(seed):
    """Integer conv with 2x the quantized weights gives 2x accumulators."""
    rng = np.random.default_rng(seed)
    tensor = random_sparse_tensor(seed=seed, shape=(5, 5, 5), nnz=12, channels=2)
    base = rng.standard_normal((27, 2, 2)) * 0.1
    qconv = QuantizedSubConv(base)
    acts = quantize_tensor(tensor.features, ACT_INT16)
    acc1 = qconv.integer_forward(acts.data, tensor)
    doubled = QuantizedSubConv(base, weight_scale=qconv.weights_q.scale / 2)
    acc2 = doubled.integer_forward(acts.data, tensor)
    # Halving the scale doubles the integer weights exactly when no
    # saturation occurs; accumulators scale accordingly.
    if np.abs(doubled.weights_q.data).max() < WEIGHT_INT8.max_value:
        assert np.array_equal(acc2, 2 * acc1)
