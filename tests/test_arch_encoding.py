"""Tests for the index-mask / valid-data encoding (Sec. III-B, Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.encoding import ColumnStore, EncodedFeatureMap, IndexMask
from repro.nn import build_submanifold_rulebook
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def test_index_mask_bits():
    coords = np.array([[1, 2, 3], [0, 0, 0]])
    tensor = SparseTensor3D(coords, np.ones((2, 1)), (4, 4, 4))
    mask = IndexMask(tensor)
    assert mask.is_active(1, 2, 3)
    assert mask.is_active(0, 0, 0)
    assert not mask.is_active(1, 1, 1)
    assert mask.popcount() == 2


def test_index_mask_out_of_bounds_reads_zero():
    tensor = SparseTensor3D.empty((4, 4, 4))
    mask = IndexMask(tensor)
    assert not mask.is_active(-1, 0, 0)
    assert not mask.is_active(0, 0, 4)


def test_column_bits_with_boundary():
    coords = np.array([[2, 2, 0], [2, 2, 3]])
    tensor = SparseTensor3D(coords, np.ones((2, 1)), (4, 4, 4))
    mask = IndexMask(tensor)
    bits = mask.column_bits(2, 2, -1, 1)  # window hangs off the low edge
    assert bits.tolist() == [False, True, False]
    bits = mask.column_bits(2, 2, 2, 4)  # window hangs off the high edge
    assert bits.tolist() == [False, True, False]
    assert mask.column_bits(9, 9, 0, 2).tolist() == [False] * 3


def test_column_store_prefix_semantics():
    # Column (1, 1) holds nonzeros at z = 0, 2, 5.
    coords = np.array([[1, 1, 0], [1, 1, 2], [1, 1, 5], [3, 3, 3]])
    tensor = SparseTensor3D(coords, np.ones((4, 1)), (6, 6, 6))
    store = ColumnStore(tensor)
    assert store.num_columns == 2
    assert store.prefix_count(1, 1, -1) == 0
    assert store.prefix_count(1, 1, 0) == 1
    assert store.prefix_count(1, 1, 4) == 2
    assert store.prefix_count(1, 1, 5) == 3
    assert store.prefix_count(0, 0, 99) == 0  # absent column


def test_column_store_window_count_and_rows():
    coords = np.array([[1, 1, 0], [1, 1, 2], [1, 1, 5]])
    tensor = SparseTensor3D(coords, np.ones((3, 1)), (6, 6, 6))
    store = ColumnStore(tensor)
    assert store.count_in(1, 1, 0, 2) == 2
    assert store.count_in(1, 1, 3, 4) == 0
    rows, zs = store.rows_in(1, 1, 1, 5)
    assert zs.tolist() == [2, 5]
    # Rows index into the tensor's sorted row order.
    assert all(tensor.coords[r][2] == z for r, z in zip(rows, zs))


def test_state_index_against_definition():
    """A = prefix count to window bottom; B = in-window count (Sec. III-C)."""
    coords = np.array([[2, 2, 1], [2, 2, 2], [2, 2, 4], [2, 3, 2]])
    tensor = SparseTensor3D(coords, np.ones((4, 1)), (6, 6, 6))
    enc = EncodedFeatureMap(tensor, (6, 6, 6), kernel_size=3)
    # SRF centered at (2, 3, 2); column offset (0, -1) looks at column (2, 2),
    # window z in [1, 3].
    a, b = enc.state_index((2, 3, 2), (0, -1), active=True)
    assert a == 2  # nonzeros at z <= 3 in column (2,2): z=1, z=2
    assert b == 2  # in-window: z=1, z=2
    # Address fragment (A, A-B) delimits those two activations.
    hi, lo = enc.address_fragment((2, 3, 2), (0, -1), active=True)
    assert (hi, lo) == (2, 0)
    # Non-active SRFs force B = 0 (the paper's convention).
    a0, b0 = enc.state_index((2, 3, 2), (0, -1), active=False)
    assert (a0, b0) == (2, 0)


def test_match_group_equals_rulebook():
    """The encoding's match groups must equal the reference rulebook."""
    tensor = random_sparse_tensor(seed=110, shape=(10, 10, 10), nnz=50)
    enc = EncodedFeatureMap(tensor, (8, 8, 8), kernel_size=3)
    rulebook = build_submanifold_rulebook(tensor, 3)
    for out_row, center in enumerate(map(tuple, tensor.coords.tolist())):
        got = {
            (row, widx)
            for lane in enc.match_group(center)
            for row, widx in lane
        }
        expected = set()
        for k, rule in enumerate(rulebook.rules):
            for in_row, rule_out in rule.tolist():
                if rule_out == out_row:
                    expected.add((in_row, k))
        assert got == expected, f"mismatch at center {center}"


def test_match_group_lane_order():
    """Lanes are (dx, dy) in decoder order; weight indices lie in the lane."""
    tensor = random_sparse_tensor(seed=111, shape=(8, 8, 8), nnz=30)
    enc = EncodedFeatureMap(tensor, (8, 8, 8), kernel_size=3)
    offsets = enc.column_offsets()
    assert len(offsets) == 9
    center = tuple(tensor.coords[0])
    for lane, matches in enumerate(enc.match_group(center)):
        dx, dy = offsets[lane]
        base = ((dx + 1) * 3 + (dy + 1)) * 3
        for _, widx in matches:
            assert base <= widx < base + 3


def test_storage_report():
    tensor = random_sparse_tensor(seed=112, shape=(16, 16, 16), nnz=20, channels=4)
    enc = EncodedFeatureMap(tensor, (8, 8, 8), kernel_size=3, activation_bits=16)
    report = enc.storage_report()
    assert report.mask_bits == enc.grid.num_active_tiles * 512
    assert report.activation_words == 20
    assert report.activation_bits_per_word == 64  # 4 channels x 16 bits
    assert report.mask_kib > 0
    assert report.activation_kib > 0


def test_even_kernel_rejected():
    tensor = SparseTensor3D.empty((8, 8, 8))
    with pytest.raises(ValueError):
        EncodedFeatureMap(tensor, (8, 8, 8), kernel_size=2)


@given(st.integers(0, 3000))
@settings(max_examples=25, deadline=None)
def test_property_state_index_counts_window(seed):
    """B equals the brute-force count of active sites in the window."""
    tensor = random_sparse_tensor(seed=seed, shape=(7, 7, 7), nnz=25)
    enc = EncodedFeatureMap(tensor, (7, 7, 7), kernel_size=3)
    mask = enc.mask
    center = tuple(tensor.coords[seed % tensor.nnz])
    for offset in enc.column_offsets():
        _, b = enc.state_index(center, offset, active=True)
        x, y, z = center
        expected = sum(
            mask.is_active(x + offset[0], y + offset[1], z + dz)
            for dz in (-1, 0, 1)
        )
        assert b == expected
