"""Tests for the open-loop load generator (repro.obs.loadgen)."""

import asyncio
import math

import numpy as np
import pytest

from repro.engine import InferenceSession
from repro.nn import UNetConfig
from repro.obs.loadgen import LoadResult, _percentile, run_load, run_open_loop
from repro.runtime.server import SessionServer
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)


def frames(count=2):
    return [
        random_sparse_tensor(
            seed=seed, shape=(16, 16, 16), nnz=40, channels=2
        )
        for seed in range(1, count + 1)
    ]


def test_percentile_matches_numpy():
    values = [0.010, 0.020, 0.030, 0.040, 0.050]
    for p in (0.0, 50.0, 90.0, 99.0, 100.0):
        assert _percentile(values, p) == pytest.approx(
            float(np.percentile(values, p))
        )
    assert math.isnan(_percentile([], 50.0))
    assert _percentile([0.25], 90.0) == 0.25
    with pytest.raises(ValueError, match="percentile"):
        _percentile(values, 101.0)


def test_load_result_accounting():
    result = LoadResult(
        offered_rate_hz=100.0,
        submitted=10,
        completed=6,
        shed_overload=3,
        shed_deadline=1,
        wall_seconds=2.0,
        latencies_s=[0.01] * 6,
    )
    assert result.shed_total == 4
    assert result.achieved_rate_hz == pytest.approx(3.0)
    lines = result.summary_lines()
    assert "offered" in lines[0] and "shed" in lines[0]
    assert "p99" in lines[1]


def test_run_load_completes_all_at_modest_rate():
    session = InferenceSession(unet_config=SMALL_CFG)
    result, stats = run_load(
        frames(), rate_hz=200.0, num_requests=8, session=session, seed=7
    )
    assert result.submitted == 8
    assert result.completed == 8
    assert result.shed_total == 0 and result.errors == 0
    assert len(result.latencies_s) == 8
    assert stats.requests == 8
    assert result.percentile(99.0) >= result.percentile(50.0)


def test_open_loop_sheds_under_overload():
    session = InferenceSession(unet_config=SMALL_CFG)

    async def _run():
        async with SessionServer(
            session=session, max_batch=1, max_pending=1
        ) as server:
            return await run_open_loop(
                server, frames(), rate_hz=2000.0, num_requests=30, seed=3
            )

    result = asyncio.run(_run())
    assert result.submitted == 30
    assert result.shed_overload > 0
    assert (
        result.completed + result.shed_total + result.errors
        == result.submitted
    )


def test_open_loop_validates_inputs():
    async def _run(**kwargs):
        async with SessionServer(
            session=InferenceSession(unet_config=SMALL_CFG)
        ) as server:
            await run_open_loop(server, **kwargs)

    with pytest.raises(ValueError, match="rate_hz"):
        asyncio.run(_run(frames=frames(), rate_hz=0.0, num_requests=1))
    with pytest.raises(ValueError, match="num_requests"):
        asyncio.run(_run(frames=frames(), rate_hz=1.0, num_requests=0))
    with pytest.raises(ValueError, match="at least one frame"):
        asyncio.run(_run(frames=[], rate_hz=1.0, num_requests=1))


def test_lazy_export_through_package():
    import repro.obs as obs

    assert obs.LoadResult is LoadResult
    with pytest.raises(AttributeError):
        obs.does_not_exist
