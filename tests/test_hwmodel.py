"""Tests for the FPGA device catalog, resource model, and power model."""

import pytest

from repro.arch import AcceleratorConfig
from repro.hwmodel import (
    PowerModel,
    ZC7045,
    ZCU102,
    device_by_name,
    estimate_resources,
)
from repro.hwmodel.resources import buffer_plan

PAPER = {"LUT": 17614, "FF": 12142, "BRAM": 365.5, "DSP": 256}


def test_device_catalog():
    assert ZCU102.dsps == 2520
    assert ZCU102.bram36 == 912
    assert device_by_name("zcu102") is ZCU102
    assert device_by_name("zc7045") is ZC7045
    assert device_by_name(ZCU102.name) is ZCU102
    with pytest.raises(KeyError):
        device_by_name("virtex")


def test_default_resources_match_table2():
    total = estimate_resources(AcceleratorConfig()).total
    assert total.dsp == PAPER["DSP"]
    assert total.bram36 == pytest.approx(PAPER["BRAM"])
    assert total.lut == pytest.approx(PAPER["LUT"], rel=0.02)
    assert total.ff == pytest.approx(PAPER["FF"], rel=0.02)


def test_utilization_matches_table2():
    breakdown = estimate_resources(AcceleratorConfig())
    util = breakdown.utilization()
    assert util["LUT"] == pytest.approx(0.0643, abs=0.002)
    assert util["FF"] == pytest.approx(0.0222, abs=0.002)
    assert util["BRAM"] == pytest.approx(0.4008, abs=0.002)
    assert util["DSP"] == pytest.approx(0.1016, abs=0.002)
    assert breakdown.fits()


def test_dsp_scales_with_array_parallelism():
    small = estimate_resources(AcceleratorConfig(ic_parallelism=8, oc_parallelism=8))
    assert small.total.dsp == 64
    large = estimate_resources(AcceleratorConfig(ic_parallelism=32, oc_parallelism=32))
    assert large.total.dsp == 1024
    assert large.total.lut > small.total.lut


def test_lanes_scale_with_kernel_size():
    k3 = estimate_resources(AcceleratorConfig(kernel_size=3))
    k5 = estimate_resources(AcceleratorConfig(kernel_size=5))
    # K^2 lanes: 9 -> 25; decoder and FIFO resources grow.
    assert k5.components["sdmu_decoder"].lut > k3.components["sdmu_decoder"].lut
    assert k5.components["buffers"].bram36 > k3.components["buffers"].bram36


def test_buffer_plan_names_unique():
    buffers = buffer_plan(AcceleratorConfig())
    names = [buffer.name for buffer in buffers]
    assert len(names) == len(set(names))
    assert "activation" in names and "weight" in names and "mask" in names


def test_power_matches_table3():
    watts = PowerModel().total_watts(AcceleratorConfig())
    assert watts == pytest.approx(3.45, rel=0.02)


def test_power_breakdown_sums():
    breakdown = PowerModel().estimate(AcceleratorConfig())
    parts = (
        breakdown.static + breakdown.dsp + breakdown.bram
        + breakdown.logic + breakdown.clock_network
    )
    assert breakdown.total == pytest.approx(parts)


def test_power_scales_with_frequency():
    low = PowerModel().total_watts(AcceleratorConfig(clock_hz=100e6))
    high = PowerModel().total_watts(AcceleratorConfig(clock_hz=300e6))
    assert high > low > 0.62  # above static floor


def test_power_activity_scaling():
    idle_ish = PowerModel(activity=0.1).total_watts()
    busy = PowerModel(activity=1.0).total_watts()
    assert idle_ish < busy


def test_power_activity_validation():
    with pytest.raises(ValueError):
        PowerModel(activity=0.0)
    with pytest.raises(ValueError):
        PowerModel(activity=1.5)


def test_gops_per_watt():
    model = PowerModel()
    eff = model.gops_per_watt(17.73, AcceleratorConfig())
    assert eff == pytest.approx(5.14, rel=0.03)
