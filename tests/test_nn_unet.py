"""Tests for layers, the module system, and the SS U-Net."""

import numpy as np
import pytest

from repro.nn import (
    BatchNormSparse,
    ReLUSparse,
    Sequential,
    SparseInverseConv3d,
    SSUNet,
    SubmanifoldConv3d,
    UNetConfig,
    collect_subconv_workloads,
)
from tests.conftest import random_sparse_tensor


def test_subconv_layer_forward():
    tensor = random_sparse_tensor(seed=60, nnz=25, channels=3)
    layer = SubmanifoldConv3d(3, 8, rng=np.random.default_rng(0))
    out = layer(tensor)
    assert out.num_channels == 8
    assert np.array_equal(out.coords, tensor.coords)


def test_subconv_rejects_even_kernel():
    with pytest.raises(ValueError):
        SubmanifoldConv3d(2, 4, kernel_size=2)


def test_layer_parameter_counts():
    layer = SubmanifoldConv3d(4, 8, kernel_size=3, bias=True)
    expected = 27 * 4 * 8 + 8
    assert layer.num_parameters() == expected


def test_sequential_composition():
    tensor = random_sparse_tensor(seed=61, nnz=20, channels=2)
    block = Sequential(
        SubmanifoldConv3d(2, 4, rng=np.random.default_rng(1)),
        BatchNormSparse(4, rng=np.random.default_rng(2)),
        ReLUSparse(),
    )
    out = block(tensor)
    assert out.num_channels == 4
    assert np.all(out.features >= 0)
    assert len(block) == 3


def test_inverse_conv_requires_reference():
    tensor = random_sparse_tensor(seed=62, nnz=10, channels=4)
    layer = SparseInverseConv3d(4, 2)
    with pytest.raises(ValueError, match="reference"):
        layer(tensor)


def test_unet_config_channel_plan():
    cfg = UNetConfig(base_channels=16, levels=4)
    assert cfg.channel_plan() == (16, 32, 48, 64)


def test_unet_rejects_single_level():
    with pytest.raises(ValueError):
        SSUNet(UNetConfig(levels=1))


def test_unet_forward_preserves_input_sites():
    """The submanifold U-Net maps the input site set to itself."""
    tensor = random_sparse_tensor(seed=63, shape=(16, 16, 16), nnz=60, channels=1)
    net = SSUNet(UNetConfig(in_channels=1, num_classes=5, base_channels=4,
                            levels=3, reps=1))
    out = net(tensor)
    assert np.array_equal(out.coords, tensor.coords)
    assert out.num_channels == 5


def test_unet_deterministic_given_seed():
    tensor = random_sparse_tensor(seed=64, shape=(12, 12, 12), nnz=40, channels=1)
    cfg = UNetConfig(in_channels=1, num_classes=3, base_channels=4, levels=2)
    out_a = SSUNet(cfg)(tensor)
    out_b = SSUNet(cfg)(tensor)
    assert np.allclose(out_a.features, out_b.features)


def test_unet_parameter_count_positive_and_stable():
    cfg = UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2)
    net = SSUNet(cfg)
    count = net.num_parameters()
    assert count > 0
    assert count == SSUNet(cfg).num_parameters()


def test_collect_subconv_workloads():
    tensor = random_sparse_tensor(seed=65, shape=(16, 16, 16), nnz=50, channels=1)
    cfg = UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=3, reps=1)
    net = SSUNet(cfg)
    workloads = collect_subconv_workloads(net, tensor)
    # levels=3: enc0, enc1, bottom, dec1, dec0, head -> 6 Sub-Conv calls.
    assert len(workloads) == 6
    names = [w.name for w in workloads]
    assert names[0].startswith("enc0")
    assert names[-1] == "head"
    # Encoder level 0 and the head run on the full-resolution site set.
    assert workloads[0].nnz == tensor.nnz
    assert workloads[-1].nnz == tensor.nnz
    # Deeper layers run on coarser site sets.
    assert workloads[1].nnz <= tensor.nnz


def test_unet_cached_forward_bit_identical_to_seed_reference():
    """The cached/fused engine must reproduce the seed reference exactly.

    The uncached forward is additionally cross-checked per layer against
    the seed's ``np.add.at`` rulebook evaluation, so this guards both the
    fused scatter and the cross-layer rulebook cache.
    """
    from repro.nn import (
        RulebookCache,
        apply_rulebook,
        apply_rulebook_reference,
        build_submanifold_rulebook,
    )
    from repro.sparse.ops import sparse_allclose

    tensor = random_sparse_tensor(seed=70, shape=(16, 16, 16), nnz=70, channels=1)
    cfg = UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=3)
    plain = SSUNet(cfg)(tensor)
    cache = RulebookCache()
    net = SSUNet(cfg, rulebook_cache=cache)
    cached = net(tensor)
    assert np.array_equal(cached.features, plain.features)
    assert sparse_allclose(cached, plain, rtol=1e-9)
    assert cache.hits > 0  # layers at the same scale shared a matching pass

    # A second forward over the same site set must hit for every rulebook.
    cache.reset_stats()
    again = net(tensor)
    assert cache.misses == 0 and cache.hits > 0
    assert np.array_equal(again.features, cached.features)

    # Per-layer: fused engine vs seed np.add.at evaluation, bit-identical.
    workloads = collect_subconv_workloads(net, tensor)
    rng = np.random.default_rng(71)
    for workload in workloads:
        if workload.kernel_size == 1:
            continue
        rulebook = build_submanifold_rulebook(
            workload.input_tensor, workload.kernel_size
        )
        weights = rng.standard_normal(
            (workload.kernel_size ** 3, workload.in_channels, workload.out_channels)
        )
        fused = apply_rulebook(
            rulebook, workload.input_tensor.features, weights, workload.nnz
        )
        reference = apply_rulebook_reference(
            rulebook, workload.input_tensor.features, weights, workload.nnz
        )
        assert np.array_equal(fused, reference)


def test_unet_reps_two():
    tensor = random_sparse_tensor(seed=66, shape=(12, 12, 12), nnz=30, channels=1)
    cfg = UNetConfig(in_channels=1, num_classes=2, base_channels=4, levels=2, reps=2)
    net = SSUNet(cfg)
    workloads = collect_subconv_workloads(net, tensor)
    # levels=2: enc0 (2 reps), bottom (2 reps), dec0 (2 reps), head -> 7.
    assert len(workloads) == 7
