"""Tests for the incremental rulebook delta engine (repro.engine.delta)."""

import numpy as np
import pytest

from repro.arch.config import AcceleratorConfig
from repro.engine import (
    DEFAULT_DELTA_THRESHOLD,
    CoordinateDelta,
    DeltaRulebookCache,
    DeltaUnsupportedError,
    InferenceSession,
    coordinate_delta,
    get_backend,
    patch_rulebook,
    patch_sparse_conv_rulebook,
    patch_submanifold_rulebook,
)
from repro.nn import (
    RulebookCache,
    UNetConfig,
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
)
from repro.runtime import DriftingSceneSource, StreamingRunner
from repro.sparse.coo import SparseTensor3D
from repro.sparse.hashmap import pack_coords
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)


def churned(
    tensor: SparseTensor3D, remove: int, add: int, seed: int
) -> SparseTensor3D:
    """A new tensor with ``remove`` voxels dropped and ``add`` fresh ones."""
    rng = np.random.default_rng(seed)
    keep = np.ones(tensor.nnz, dtype=bool)
    if remove:
        keep[rng.choice(tensor.nnz, size=remove, replace=False)] = False
    coords = tensor.coords[keep]
    existing = set(map(tuple, coords.tolist()))
    fresh = []
    while len(fresh) < add:
        candidate = tuple(
            int(v) for v in rng.integers(0, tensor.shape[0], size=3)
        )
        if candidate not in existing:
            existing.add(candidate)
            fresh.append(candidate)
    if fresh:
        coords = np.concatenate(
            [coords, np.array(fresh, dtype=np.int64).reshape(-1, 3)], axis=0
        )
    return SparseTensor3D(
        coords, np.ones((len(coords), 1), dtype=np.float64), tensor.shape
    )


def assert_rulebooks_identical(patched, scratch):
    assert patched.kernel_size == scratch.kernel_size
    assert patched.num_inputs == scratch.num_inputs
    assert patched.num_outputs == scratch.num_outputs
    assert np.array_equal(patched.offsets, scratch.offsets)
    assert len(patched.rules) == len(scratch.rules)
    for got, want in zip(patched.rules, scratch.rules):
        assert got.dtype == want.dtype == np.int64
        assert got.shape == want.shape
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# CoordinateDelta
# ----------------------------------------------------------------------
def test_coordinate_delta_identity():
    tensor = random_sparse_tensor(seed=1, nnz=60)
    delta = coordinate_delta(tensor.coords, tensor.coords)
    assert delta.is_identity
    assert delta.num_added == delta.num_removed == 0
    assert delta.num_stable == tensor.nnz
    assert delta.ratio == 0.0
    assert np.array_equal(delta.old_to_new, np.arange(tensor.nnz))


def test_coordinate_delta_accounting():
    old = random_sparse_tensor(seed=2, nnz=50)
    new = churned(old, remove=7, add=4, seed=3)
    delta = coordinate_delta(old.coords, new.coords)
    assert delta.old_size == 50
    assert delta.new_size == 47
    assert delta.num_removed == 7
    assert delta.num_added == 4
    assert delta.num_stable == 43
    assert delta.ratio == pytest.approx(11 / 50)
    # The mapping is monotone over stable rows (what splicing relies on).
    stable = delta.old_to_new[delta.old_to_new >= 0]
    assert np.all(np.diff(stable) > 0)
    # Accepts packed keys as well as coordinate arrays.
    again = coordinate_delta(pack_coords(old.coords), pack_coords(new.coords))
    assert np.array_equal(again.old_to_new, delta.old_to_new)
    assert np.array_equal(again.added_new_rows, delta.added_new_rows)


def test_coordinate_delta_empty_sets():
    tensor = random_sparse_tensor(seed=4, nnz=20)
    empty = np.zeros((0, 3), dtype=np.int64)
    grown = coordinate_delta(empty, tensor.coords)
    assert grown.num_added == tensor.nnz and grown.num_removed == 0
    assert grown.ratio == 1.0
    shrunk = coordinate_delta(tensor.coords, empty)
    assert shrunk.num_removed == tensor.nnz and shrunk.num_added == 0
    assert shrunk.ratio == 1.0
    nothing = coordinate_delta(empty, empty)
    assert nothing.is_identity and nothing.ratio == 0.0


def test_coordinate_delta_rejects_bad_shape():
    with pytest.raises(ValueError, match="packed keys"):
        coordinate_delta(np.zeros((2, 2, 2)), np.zeros((0, 3)))


# ----------------------------------------------------------------------
# Tentpole acceptance: patch_rulebook bit-identical to from-scratch
# matching for every conv kind under randomized add/remove deltas
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_size", [1, 3])
@pytest.mark.parametrize("seed", range(8))
def test_patch_submanifold_bit_identical_random_deltas(kernel_size, seed):
    rng = np.random.default_rng(seed)
    old = random_sparse_tensor(
        seed=seed, shape=(18, 18, 18), nnz=40 + 30 * (seed % 4)
    )
    new = churned(
        old,
        remove=int(rng.integers(0, min(12, old.nnz))),
        add=int(rng.integers(0, 15)),
        seed=seed + 100,
    )
    delta = coordinate_delta(old.coords, new.coords)
    old_rulebook = build_submanifold_rulebook(old, kernel_size)
    patched = patch_submanifold_rulebook(
        old_rulebook, delta, new.shape, new_coords=new.coords
    )
    assert_rulebooks_identical(
        patched, build_submanifold_rulebook(new, kernel_size)
    )


@pytest.mark.parametrize("stride", [2, 3])
@pytest.mark.parametrize("seed", range(8))
def test_patch_strided_and_transposed_bit_identical(stride, seed):
    rng = np.random.default_rng(seed)
    old = random_sparse_tensor(
        seed=seed + 50, shape=(18, 18, 18), nnz=60 + 20 * (seed % 3)
    )
    new = churned(
        old,
        remove=int(rng.integers(0, 20)),
        add=int(rng.integers(0, 20)),
        seed=seed + 200,
    )
    delta = coordinate_delta(old.coords, new.coords)
    old_rulebook, old_out = build_sparse_conv_rulebook(old, stride, stride)
    patched, out_coords = patch_sparse_conv_rulebook(
        old_rulebook, old_out, delta, stride, new_coords=new.coords
    )
    scratch, scratch_out = build_sparse_conv_rulebook(new, stride, stride)
    assert np.array_equal(out_coords, scratch_out)
    assert out_coords.dtype == scratch_out.dtype
    assert_rulebooks_identical(patched, scratch)
    # Transposed convolutions derive from the forward rules, so the
    # patched rulebook's transpose must match the from-scratch one too.
    assert_rulebooks_identical(patched.transposed(), scratch.transposed())


def test_patch_from_and_to_degenerate_sets():
    tensor = random_sparse_tensor(seed=9, nnz=30)
    empty = SparseTensor3D.empty(tensor.shape)
    # Everything added (old empty) and everything removed (new empty).
    for old, new in ((empty, tensor), (tensor, empty)):
        delta = coordinate_delta(old.coords, new.coords)
        patched = patch_submanifold_rulebook(
            build_submanifold_rulebook(old, 3), delta, new.shape
        )
        assert_rulebooks_identical(patched, build_submanifold_rulebook(new, 3))


def test_patch_rulebook_dispatcher():
    old = random_sparse_tensor(seed=10, nnz=40)
    new = churned(old, remove=3, add=5, seed=11)
    delta = coordinate_delta(old.coords, new.coords)
    sub = patch_rulebook(
        build_submanifold_rulebook(old, 3), delta, shape=old.shape
    )
    assert_rulebooks_identical(sub, build_submanifold_rulebook(new, 3))
    old_down, old_out = build_sparse_conv_rulebook(old, 2, 2)
    down, out = patch_rulebook(
        old_down, delta, stride=2, old_out_coords=old_out
    )
    scratch, scratch_out = build_sparse_conv_rulebook(new, 2, 2)
    assert np.array_equal(out, scratch_out)
    assert_rulebooks_identical(down, scratch)
    with pytest.raises(ValueError, match="shape"):
        patch_rulebook(old_down, delta)
    with pytest.raises(ValueError, match="old_out_coords"):
        patch_rulebook(old_down, delta, stride=2)


OVERLAP_GEOMETRIES = [(3, 2), (4, 2), (3, 1)]


@pytest.mark.parametrize("kernel_size,stride", OVERLAP_GEOMETRIES)
@pytest.mark.parametrize("seed", range(6))
def test_patch_overlapping_strided_geometries_bit_identical(
    kernel_size, stride, seed
):
    """Tentpole: kernel != stride rulebooks are patched, not rebuilt.

    A changed input voxel perturbs at most ``ceil(kernel/stride)^3``
    output cells, so the patcher re-derives existence only for the
    affected neighborhood — and the result (rules, output coordinates,
    transposed derivation) must match from-scratch matching array for
    array under randomized add/remove deltas.
    """
    rng = np.random.default_rng(seed)
    old = random_sparse_tensor(
        seed=seed + 300, shape=(18, 18, 18), nnz=60 + 25 * (seed % 3)
    )
    new = churned(
        old,
        remove=int(rng.integers(0, 18)),
        add=int(rng.integers(0, 18)),
        seed=seed + 400,
    )
    delta = coordinate_delta(old.coords, new.coords)
    old_rulebook, old_out = build_sparse_conv_rulebook(
        old, kernel_size, stride
    )
    patched, out_coords = patch_sparse_conv_rulebook(
        old_rulebook, old_out, delta, stride, new_coords=new.coords
    )
    scratch, scratch_out = build_sparse_conv_rulebook(new, kernel_size, stride)
    assert np.array_equal(out_coords, scratch_out)
    assert out_coords.dtype == scratch_out.dtype
    assert_rulebooks_identical(patched, scratch)
    assert_rulebooks_identical(patched.transposed(), scratch.transposed())


@pytest.mark.parametrize("kernel_size,stride", OVERLAP_GEOMETRIES)
def test_patch_overlapping_degenerate_sets(kernel_size, stride):
    tensor = random_sparse_tensor(seed=14, nnz=30)
    empty = SparseTensor3D.empty(tensor.shape)
    for old, new in ((empty, tensor), (tensor, empty)):
        delta = coordinate_delta(old.coords, new.coords)
        old_rulebook, old_out = build_sparse_conv_rulebook(
            old, kernel_size, stride
        )
        patched, out = patch_sparse_conv_rulebook(
            old_rulebook, old_out, delta, stride, new_coords=new.coords
        )
        scratch, scratch_out = build_sparse_conv_rulebook(
            new, kernel_size, stride
        )
        assert np.array_equal(out, scratch_out)
        assert_rulebooks_identical(patched, scratch)


def assert_plans_identical(got, want):
    assert got.total_matches == want.total_matches
    assert got.in_rows.dtype == want.in_rows.dtype == np.int64
    assert np.array_equal(got.in_rows, want.in_rows)
    assert np.array_equal(got.segment_starts, want.segment_starts)
    assert got.active_offsets == want.active_offsets
    assert len(got.out_rows) == len(want.out_rows)
    for mine, theirs in zip(got.out_rows, want.out_rows):
        assert mine.dtype == theirs.dtype == np.int64
        assert np.array_equal(mine, theirs)


def test_patchers_preseed_gather_scatter_plan():
    """Patched rulebooks hand over their plan arrays (splice byproduct),
    array-for-array identical to a lazily built plan."""
    old = random_sparse_tensor(seed=15, shape=(18, 18, 18), nnz=120)
    new = churned(old, remove=8, add=8, seed=16)
    delta = coordinate_delta(old.coords, new.coords)
    sub = patch_submanifold_rulebook(
        build_submanifold_rulebook(old, 3), delta, new.shape,
        new_coords=new.coords,
    )
    assert sub._plan is not None
    assert_plans_identical(sub._plan, build_submanifold_rulebook(new, 3).plan())
    for kernel_size, stride in [(2, 2), (3, 2)]:
        old_rulebook, old_out = build_sparse_conv_rulebook(
            old, kernel_size, stride
        )
        patched, _ = patch_sparse_conv_rulebook(
            old_rulebook, old_out, delta, stride, new_coords=new.coords
        )
        scratch, _ = build_sparse_conv_rulebook(new, kernel_size, stride)
        assert patched._plan is not None
        assert_plans_identical(patched._plan, scratch.plan())


def test_patched_rulebook_carries_splice_provenance():
    from repro.engine import RulebookDelta

    old = random_sparse_tensor(seed=17, nnz=80)
    new = churned(old, remove=4, add=6, seed=18)
    delta = coordinate_delta(old.coords, new.coords)
    patched = patch_submanifold_rulebook(
        build_submanifold_rulebook(old, 3), delta, new.shape,
        new_coords=new.coords,
    )
    splice = patched._splice
    assert isinstance(splice, RulebookDelta)
    assert isinstance(splice, CoordinateDelta)  # drop-in for listeners
    assert splice.in_map is delta.old_to_new
    assert splice.out_map is delta.old_to_new  # submanifold: same sites
    assert len(splice.fresh_slots) == len(patched.rules)
    # Fresh slots + surviving pairs account for every merged pair.
    old_rulebook = build_submanifold_rulebook(old, 3)
    for k, slots in enumerate(splice.fresh_slots):
        rule = old_rulebook.rules[k]
        if len(rule):
            mapped_in = delta.old_to_new[rule[:, 0]]
            mapped_out = delta.old_to_new[rule[:, 1]]
            survivors = int(((mapped_in >= 0) & (mapped_out >= 0)).sum())
        else:
            survivors = 0
        assert survivors + len(slots) == len(patched.rules[k])


# ----------------------------------------------------------------------
# DeltaRulebookCache
# ----------------------------------------------------------------------
def test_delta_cache_patches_near_match_and_rebuilds_far_match():
    cache = DeltaRulebookCache(threshold=0.25)
    base = random_sparse_tensor(seed=20, shape=(20, 20, 20), nnz=200)
    near = churned(base, remove=5, add=5, seed=21)
    far = random_sparse_tensor(seed=22, shape=(20, 20, 20), nnz=200)
    cache.submanifold(base, 3)
    assert (cache.patches, cache.rebuilds) == (0, 1)
    patched = cache.submanifold(near, 3)
    assert (cache.patches, cache.rebuilds) == (1, 1)
    assert cache.delta_stats.patched_added == 5
    assert cache.delta_stats.patched_removed == 5
    assert_rulebooks_identical(patched, build_submanifold_rulebook(near, 3))
    cache.submanifold(far, 3)  # disjoint random set: over threshold
    assert (cache.patches, cache.rebuilds) == (1, 2)
    # Digest hits stay free and are counted separately.
    cache.submanifold(near, 3)
    assert cache.hits == 1
    stats = cache.delta_stats
    assert stats.misses == 3
    assert stats.patch_rate == pytest.approx(1 / 3)


def test_delta_cache_patches_sparse_conv_including_overlapping():
    cache = DeltaRulebookCache(threshold=0.25)
    base = random_sparse_tensor(seed=23, shape=(20, 20, 20), nnz=200)
    near = churned(base, remove=6, add=4, seed=24)
    cache.sparse_conv(base, 2, 2)
    rulebook, out_coords = cache.sparse_conv(near, 2, 2)
    assert cache.patches == 1
    scratch, scratch_out = build_sparse_conv_rulebook(near, 2, 2)
    assert np.array_equal(out_coords, scratch_out)
    assert_rulebooks_identical(rulebook, scratch)
    # Overlapping geometry (kernel != stride) patches too — the former
    # ``patchable = kernel_size == stride`` gate is gone.
    cache.sparse_conv(base, 3, 2)
    patched, patched_out = cache.sparse_conv(near, 3, 2)
    assert cache.patches == 2
    assert cache.rebuilds == 2
    scratch3, scratch3_out = build_sparse_conv_rulebook(near, 3, 2)
    assert np.array_equal(patched_out, scratch3_out)
    assert_rulebooks_identical(patched, scratch3)


def test_delta_unsupported_error_still_importable():
    """Backward-compat: the exception class remains exported even though
    no shipped patcher raises it anymore."""
    assert issubclass(DeltaUnsupportedError, ValueError)


def test_delta_cache_chains_patches_along_a_drift():
    cache = DeltaRulebookCache(threshold=0.25)
    tensor = random_sparse_tensor(seed=25, shape=(20, 20, 20), nnz=300)
    for step in range(5):
        cache.submanifold(tensor, 3)
        tensor = churned(tensor, remove=6, add=6, seed=30 + step)
    assert cache.rebuilds == 1  # only the first frame
    assert cache.patches == 4
    final = cache.submanifold(tensor, 3)
    assert_rulebooks_identical(final, build_submanifold_rulebook(tensor, 3))


def test_delta_cache_respects_threshold_parameterization():
    base = random_sparse_tensor(seed=26, shape=(20, 20, 20), nnz=100)
    near = churned(base, remove=10, add=10, seed=27)  # 20% churn
    tight = DeltaRulebookCache(threshold=0.1)
    tight.submanifold(base, 3)
    tight.submanifold(near, 3)
    assert tight.patches == 0 and tight.rebuilds == 2
    loose = DeltaRulebookCache(threshold=0.3)
    loose.submanifold(base, 3)
    loose.submanifold(near, 3)
    assert loose.patches == 1 and loose.rebuilds == 1


def test_delta_cache_geometry_isolation():
    """Entries only patch candidates of the same (kind, kernel, shape)."""
    cache = DeltaRulebookCache(threshold=0.5)
    base = random_sparse_tensor(seed=28, nnz=80)
    near = churned(base, remove=2, add=2, seed=29)
    cache.submanifold(base, 3)
    cache.submanifold(near, 1)  # different kernel: must rebuild
    assert cache.patches == 0 and cache.rebuilds == 2
    other_shape = SparseTensor3D(near.coords, near.features, (32, 32, 32))
    cache.submanifold(other_shape, 3)  # different grid shape: rebuild
    assert cache.patches == 0 and cache.rebuilds == 3


def test_delta_cache_eviction_prunes_patch_sources():
    cache = DeltaRulebookCache(capacity=2, threshold=0.5)
    a = random_sparse_tensor(seed=30, nnz=60)
    cache.submanifold(a, 3)
    cache.submanifold(churned(a, 4, 4, seed=31), 3)
    cache.submanifold(churned(a, 0, 20, seed=32), 3)
    assert len(cache) == 2
    assert len(cache._coord_sets) == 2  # pruned in lockstep


def test_delta_cache_validates_parameters():
    with pytest.raises(ValueError, match="threshold"):
        DeltaRulebookCache(threshold=0.0)
    with pytest.raises(ValueError, match="threshold"):
        DeltaRulebookCache(threshold=1.5)
    with pytest.raises(ValueError, match="max_candidates"):
        DeltaRulebookCache(max_candidates=0)
    with pytest.raises(TypeError, match="refresh"):
        DeltaRulebookCache().register_listener(object())


def test_delta_cache_notifies_backend_listener():
    """Satellite hook: patched rulebooks refresh prepared backend state."""
    cache = DeltaRulebookCache(threshold=0.25)
    backend = get_backend("numpy")
    cache.register_listener(backend)
    cache.register_listener(backend)  # idempotent
    base = random_sparse_tensor(seed=33, nnz=150)
    cache.submanifold(base, 3)
    assert backend.plans_refreshed == 0
    patched = cache.submanifold(churned(base, 4, 4, seed=34), 3)
    assert backend.plans_refreshed == 1
    # The patched rulebook's plan is already prepared (warm, not cold).
    assert id(patched) in backend._plans


def test_listener_registered_twice_notifies_once():
    """Satellite regression: duplicate registration must not double-fire
    ``refresh`` (which would double-count ``plans_refreshed``)."""
    from repro.engine import RulebookDelta

    class SpyListener:
        def __init__(self):
            self.calls = 0
            self.last = None

        def refresh(self, old, new, delta):
            self.calls += 1
            self.last = (old, new, delta)

    cache = DeltaRulebookCache(threshold=0.25)
    spy = SpyListener()
    cache.register_listener(spy)
    cache.register_listener(spy)  # re-registration: deduped by identity
    cache.register_listener(spy)
    assert len(cache._listeners) == 1
    base = random_sparse_tensor(seed=70, nnz=150)
    cache.submanifold(base, 3)
    cache.submanifold(churned(base, 4, 4, seed=71), 3)
    assert cache.patches == 1
    assert spy.calls == 1  # exactly one notification per patch
    # Listeners receive the enriched splice provenance, which is still a
    # CoordinateDelta for consumers that only diff coordinates.
    old, new, delta = spy.last
    assert isinstance(delta, RulebookDelta)
    assert delta.out_map is not None and delta.fresh_slots is not None
    # A session re-registering its backend on the shared cache is the
    # production shape of the same hazard.
    backend = get_backend("numpy")
    cache.register_listener(backend)
    cache.register_listener(backend)
    cache.submanifold(churned(base, 3, 3, seed=72), 3)
    assert backend.plans_refreshed == 1
    assert spy.calls == 2


def test_delta_cache_listeners_are_weak():
    """A shared cache must not keep discarded sessions' backends alive
    (or keep fanning refresh work out to them)."""
    import gc

    cache = DeltaRulebookCache(threshold=0.25)
    backend = get_backend("numpy")
    cache.register_listener(backend)
    assert len(cache._listeners) == 1
    del backend
    gc.collect()
    base = random_sparse_tensor(seed=35, nnz=120)
    cache.submanifold(base, 3)
    cache.submanifold(churned(base, 3, 3, seed=36), 3)  # notify prunes
    assert cache.patches == 1
    assert cache._listeners == []


# ----------------------------------------------------------------------
# Session integration: delta=, config threshold, stats
# ----------------------------------------------------------------------
def drift_frames(num=4, seed=40, nnz=120):
    frames = [
        random_sparse_tensor(seed=seed, shape=(16, 16, 16), nnz=nnz, channels=2)
    ]
    for step in range(1, num):
        frames.append(churned(frames[-1], remove=3, add=3, seed=seed + step))
    return [
        f.with_features(
            np.random.default_rng(seed + 50 + i).standard_normal((f.nnz, 2))
        )
        for i, f in enumerate(frames)
    ]


def test_session_delta_knob_forms():
    assert InferenceSession(unet_config=SMALL_CFG).delta_threshold == 0.0
    assert (
        InferenceSession(unet_config=SMALL_CFG, delta=True).delta_threshold
        == DEFAULT_DELTA_THRESHOLD
    )
    assert (
        InferenceSession(unet_config=SMALL_CFG, delta=0.1).delta_threshold
        == 0.1
    )
    config = AcceleratorConfig(delta_threshold=0.4)
    session = InferenceSession(unet_config=SMALL_CFG, accelerator_config=config)
    assert session.delta_threshold == 0.4
    assert isinstance(session.rulebook_cache, DeltaRulebookCache)
    off = InferenceSession(
        unet_config=SMALL_CFG, accelerator_config=config, delta=False
    )
    assert off.delta_threshold == 0.0
    assert not isinstance(off.rulebook_cache, DeltaRulebookCache)


def test_session_delta_knob_validation():
    with pytest.raises(ValueError, match="threshold"):
        InferenceSession(unet_config=SMALL_CFG, delta=1.5)
    with pytest.raises(ValueError, match="DeltaRulebookCache"):
        InferenceSession(
            unet_config=SMALL_CFG, delta=0.2, rulebook_cache=RulebookCache()
        )
    with pytest.raises(ValueError, match="delta=False"):
        InferenceSession(
            unet_config=SMALL_CFG,
            delta=False,
            rulebook_cache=DeltaRulebookCache(),
        )
    shared = DeltaRulebookCache(threshold=0.3)
    session = InferenceSession(
        unet_config=SMALL_CFG, delta=0.2, rulebook_cache=shared
    )
    assert session.rulebook_cache is shared


def test_config_delta_threshold_validation_and_serialization():
    with pytest.raises(ValueError, match="delta_threshold"):
        AcceleratorConfig(delta_threshold=-0.1)
    with pytest.raises(ValueError, match="delta_threshold"):
        AcceleratorConfig(delta_threshold=1.1)
    config = AcceleratorConfig(delta_threshold=0.35)
    assert config.to_dict()["delta_threshold"] == 0.35
    assert AcceleratorConfig.from_dict(config.to_dict()) == config


@pytest.mark.parametrize("precision", ["float64", "float32", "int"])
def test_session_delta_outputs_bit_identical_cold_and_warm(precision):
    """Acceptance: enabling delta never changes results, for every
    precision, cache-cold and cache-warm."""
    frames = drift_frames()
    reference = InferenceSession(unet_config=SMALL_CFG, precision=precision)
    expected = [reference.run(f) for f in frames]
    session = InferenceSession(
        unet_config=SMALL_CFG, precision=precision, delta=0.5
    )
    for sweep in range(2):  # cold, then fully warm (digest hits)
        for frame, want in zip(frames, expected):
            got = session.run(frame)
            assert got.features.dtype == want.features.dtype
            assert np.array_equal(got.features, want.features)
            assert np.array_equal(got.coords, want.coords)
    assert session.stats.delta_patches > 0


def test_session_delta_stats_and_streaming_runner():
    frames = drift_frames()
    session = InferenceSession(unet_config=SMALL_CFG, delta=0.5)
    for frame in frames:
        session.run(frame)
    stats = session.stats
    assert stats.delta_patches > 0
    assert stats.delta_rebuilds > 0
    assert stats.matching_passes == stats.delta_patches + stats.delta_rebuilds
    assert stats.plans_refreshed == stats.delta_patches  # eager numpy refresh
    assert stats.plans_spliced == 0
    session.reset_stats()
    assert session.stats.delta_patches == 0
    # Backend refresh counters are reported per stats era, like the rest.
    assert session.stats.plans_refreshed == 0
    assert session.stats.plans_spliced == 0

    runner = StreamingRunner(resolution=24, delta=0.5)
    assert isinstance(runner.session.rulebook_cache, DeltaRulebookCache)
    with pytest.raises(ValueError, match="session owns"):
        StreamingRunner(session=InferenceSession(), delta=0.5)


def test_streaming_runner_reports_patches_on_drifting_scene():
    source = DriftingSceneSource(num_frames=4, churn=0.01, seed=0)
    runner = StreamingRunner(resolution=48, delta=0.5)
    stats = runner.run(source)
    assert stats.rulebook_patches > 0
    assert stats.rulebook_patches <= stats.rulebook_misses
    per_frame = [f.rulebook_patches for f in stats.frames]
    assert per_frame[0] == 0  # nothing to patch from on the first frame
    assert sum(per_frame[1:]) == stats.rulebook_patches
    # The numpy backend refreshes eagerly (no splice path).
    assert stats.plan_refreshes == stats.rulebook_patches
    assert stats.plan_splices == 0


def test_streaming_runner_reports_spliced_plans_on_scipy_backend():
    pytest.importorskip("scipy")
    source = DriftingSceneSource(num_frames=4, churn=0.01, seed=0)
    runner = StreamingRunner(
        resolution=48, delta=0.5, backend="scipy", execute_reference=True
    )
    stats = runner.run(source)
    assert stats.rulebook_patches > 0
    # Every patched rulebook's plan was spliced: execute_reference keeps
    # the previous frame's plan warm in the backend memo.
    assert stats.plan_splices == stats.rulebook_patches
    assert stats.plan_refreshes == stats.plan_splices
    per_frame = [f.plan_splices for f in stats.frames]
    assert per_frame[0] == 0
    assert sum(per_frame) == stats.plan_splices


# ----------------------------------------------------------------------
# DriftingSceneSource
# ----------------------------------------------------------------------
def test_drifting_scene_source_is_deterministic_and_churns():
    source = DriftingSceneSource(num_frames=3, churn=0.05, seed=7)
    first = [cloud.points.copy() for cloud in source]
    second = [cloud.points.copy() for cloud in source]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    assert not np.array_equal(first[0], first[1])  # the scene drifts
    moved = (first[0] != first[1]).any(axis=1).mean()
    assert 0.0 < moved <= 0.06  # about the requested churn fraction


def test_drifting_scene_source_zero_churn_is_static():
    source = DriftingSceneSource(num_frames=3, churn=0.0, seed=1)
    frames = [cloud.points.copy() for cloud in source]
    assert np.array_equal(frames[0], frames[1])
    assert np.array_equal(frames[1], frames[2])


def test_drifting_scene_source_validates_parameters():
    with pytest.raises(ValueError, match="num_frames"):
        DriftingSceneSource(num_frames=0)
    with pytest.raises(ValueError, match="churn"):
        DriftingSceneSource(churn=1.5)
    with pytest.raises(ValueError, match="jitter_sigma"):
        DriftingSceneSource(jitter_sigma=-0.1)
