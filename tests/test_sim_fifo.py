"""Unit tests for the bounded hardware FIFO."""

import pytest

from repro.sim import HardwareFifo


def test_push_pop_fifo_order():
    fifo = HardwareFifo(capacity=4)
    for i in range(4):
        fifo.push(i)
    assert [fifo.pop() for _ in range(4)] == [0, 1, 2, 3]


def test_capacity_enforced():
    fifo = HardwareFifo(capacity=2)
    fifo.push("a")
    fifo.push("b")
    assert fifo.is_full
    assert not fifo.try_push("c")
    with pytest.raises(OverflowError):
        fifo.push("c")
    assert fifo.stats.push_stalls == 2


def test_pop_empty_raises():
    fifo = HardwareFifo(capacity=1)
    with pytest.raises(IndexError):
        fifo.pop()
    assert fifo.try_pop() is None


def test_peek_does_not_remove():
    fifo = HardwareFifo(capacity=2)
    fifo.push(42)
    assert fifo.peek() == 42
    assert len(fifo) == 1


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        HardwareFifo(capacity=0)


def test_stats_track_occupancy():
    fifo = HardwareFifo(capacity=8)
    fifo.push(1)
    fifo.push(2)
    fifo.observe()
    fifo.pop()
    fifo.observe()
    assert fifo.stats.max_occupancy == 2
    assert fifo.stats.pushes == 2
    assert fifo.stats.pops == 1
    assert fifo.stats.mean_occupancy() == pytest.approx(1.5)


def test_clear_preserves_stats_reset_drops_them():
    fifo = HardwareFifo(capacity=2)
    fifo.push(1)
    fifo.clear()
    assert fifo.is_empty
    assert fifo.stats.pushes == 1
    fifo.reset()
    assert fifo.stats.pushes == 0


def test_free_slots():
    fifo = HardwareFifo(capacity=3)
    assert fifo.free_slots == 3
    fifo.push(0)
    assert fifo.free_slots == 2
