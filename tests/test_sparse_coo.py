"""Unit tests for the COO sparse tensor."""

import numpy as np
import pytest

from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def test_basic_properties():
    coords = np.array([[0, 0, 0], [1, 2, 3], [4, 4, 4]])
    features = np.array([[1.0], [2.0], [3.0]])
    tensor = SparseTensor3D(coords, features, (5, 5, 5))
    assert tensor.nnz == 3
    assert tensor.num_channels == 1
    assert tensor.volume == 125
    assert tensor.sparsity == pytest.approx(1 - 3 / 125)


def test_coords_are_sorted_lexicographically():
    coords = np.array([[4, 0, 0], [0, 0, 1], [0, 0, 0]])
    tensor = SparseTensor3D(coords, np.ones((3, 1)), (5, 5, 5))
    assert np.array_equal(
        tensor.coords, np.array([[0, 0, 0], [0, 0, 1], [4, 0, 0]])
    )


def test_features_follow_coordinate_sort():
    coords = np.array([[2, 0, 0], [1, 0, 0]])
    features = np.array([[20.0], [10.0]])
    tensor = SparseTensor3D(coords, features, (3, 3, 3))
    assert tensor.feature_at((1, 0, 0))[0] == 10.0
    assert tensor.feature_at((2, 0, 0))[0] == 20.0


def test_duplicate_coordinates_rejected():
    coords = np.array([[1, 1, 1], [1, 1, 1]])
    with pytest.raises(ValueError, match="duplicate"):
        SparseTensor3D(coords, np.ones((2, 1)), (3, 3, 3))


def test_out_of_bounds_rejected():
    with pytest.raises(ValueError, match="bounds"):
        SparseTensor3D(np.array([[5, 0, 0]]), np.ones((1, 1)), (5, 5, 5))
    with pytest.raises(ValueError, match="non-negative"):
        SparseTensor3D(np.array([[-1, 0, 0]]), np.ones((1, 1)), (5, 5, 5))


def test_mismatched_rows_rejected():
    with pytest.raises(ValueError, match="disagree"):
        SparseTensor3D(np.array([[0, 0, 0]]), np.ones((2, 1)), (2, 2, 2))


def test_row_lookup_and_contains():
    tensor = random_sparse_tensor(seed=3, nnz=10)
    coord = tuple(tensor.coords[4])
    assert coord in tensor
    assert tensor.row_of(coord) == 4
    assert tensor.feature_at((0, 0, 0)) is None or (0, 0, 0) in tensor


def test_from_points_mean_aggregation():
    coords = np.array([[1, 1, 1], [1, 1, 1], [2, 2, 2]])
    features = np.array([[2.0], [4.0], [6.0]])
    tensor = SparseTensor3D.from_points(coords, features, (4, 4, 4), reduce="mean")
    assert tensor.nnz == 2
    assert tensor.feature_at((1, 1, 1))[0] == pytest.approx(3.0)


def test_from_points_sum_and_max():
    coords = np.array([[0, 0, 0], [0, 0, 0]])
    features = np.array([[1.0], [5.0]])
    summed = SparseTensor3D.from_points(coords, features, (2, 2, 2), reduce="sum")
    assert summed.feature_at((0, 0, 0))[0] == pytest.approx(6.0)
    maxed = SparseTensor3D.from_points(coords, features, (2, 2, 2), reduce="max")
    assert maxed.feature_at((0, 0, 0))[0] == pytest.approx(5.0)


def test_from_points_default_occupancy():
    coords = np.array([[0, 1, 0], [1, 0, 1]])
    tensor = SparseTensor3D.from_points(coords, None, (2, 2, 2))
    assert np.all(tensor.features == 1.0)


def test_dense_round_trip():
    tensor = random_sparse_tensor(seed=4, shape=(6, 6, 6), nnz=12, channels=2)
    dense = tensor.dense()
    assert dense.shape == (6, 6, 6, 2)
    rebuilt_nnz = int((np.abs(dense).max(axis=-1) > 0).sum())
    # Random normal features are never exactly zero in practice.
    assert rebuilt_nnz == tensor.nnz


def test_empty_tensor():
    tensor = SparseTensor3D.empty((8, 8, 8), channels=3)
    assert tensor.nnz == 0
    assert tensor.num_channels == 3
    assert tensor.sparsity == 1.0
    assert tensor.dense().shape == (8, 8, 8, 3)


def test_crop_rebases_coordinates():
    coords = np.array([[2, 2, 2], [5, 5, 5]])
    tensor = SparseTensor3D(coords, np.ones((2, 1)), (8, 8, 8))
    cropped = tensor.crop((2, 2, 2), (4, 4, 4))
    assert cropped.nnz == 1
    assert np.array_equal(cropped.coords, np.array([[0, 0, 0]]))
    assert cropped.shape == (2, 2, 2)


def test_crop_invalid_bounds():
    tensor = SparseTensor3D.empty((4, 4, 4))
    with pytest.raises(ValueError):
        tensor.crop((2, 2, 2), (2, 3, 3))


def test_translate():
    tensor = SparseTensor3D(np.array([[0, 0, 0]]), np.ones((1, 1)), (4, 4, 4))
    moved = tensor.translate((1, 2, 3))
    assert np.array_equal(moved.coords, np.array([[1, 2, 3]]))


def test_with_features_validates_length():
    tensor = random_sparse_tensor(seed=5, nnz=8)
    with pytest.raises(ValueError):
        tensor.with_features(np.ones((3, 1)))


def test_occupancy_has_single_ones_channel():
    tensor = random_sparse_tensor(seed=6, nnz=9, channels=5)
    occ = tensor.occupancy()
    assert occ.num_channels == 1
    assert np.all(occ.features == 1.0)
    assert np.array_equal(occ.coords, tensor.coords)


def test_1d_features_promoted_to_single_channel():
    tensor = SparseTensor3D(np.array([[0, 0, 0]]), np.array([7.0]), (2, 2, 2))
    assert tensor.features.shape == (1, 1)


def test_with_features_does_not_alias_caller_buffer():
    """with_features must copy: later mutation of the input buffer (or a
    batch-output stack it was sliced from) cannot corrupt the tensor."""
    coords = np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2]])
    tensor = SparseTensor3D(coords, np.zeros((3, 1)), (4, 4, 4))
    buffer = np.ones((3, 2))
    out = tensor.with_features(buffer)
    buffer[:] = 99.0
    assert (out.features == 1.0).all()
    assert not np.shares_memory(out.features, buffer)


def test_with_features_validates_row_count():
    coords = np.array([[0, 0, 0], [1, 1, 1]])
    tensor = SparseTensor3D(coords, np.zeros((2, 1)), (4, 4, 4))
    with pytest.raises(ValueError, match="features"):
        tensor.with_features(np.zeros((3, 1)))
