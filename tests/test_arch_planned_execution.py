"""Tests for planned (chunked / multi-pass) execution on the simulator.

The critical property: chunked scanning with global halo visibility plus
channel-pass re-accumulation must be *bit-identical* to the monolithic
run — tile chunking and weight slicing are pure schedule transformations.
"""

import numpy as np
import pytest

from repro.arch import (
    BufferBudget,
    EscaAccelerator,
    NetworkCompiler,
)
from repro.arch.sdmu import SrfScanner
from repro.arch.encoding import EncodedFeatureMap
from tests.conftest import random_sparse_tensor


def tiny_budget(**overrides):
    defaults = dict(
        weight_words=1 << 20,
        activation_words_per_bank=1 << 20,
        output_words=1 << 20,
        mask_bits=1 << 30,
    )
    defaults.update(overrides)
    return BufferBudget(**defaults)


def test_scanner_tile_subset():
    tensor = random_sparse_tensor(seed=220, shape=(24, 24, 24), nnz=60)
    encoded = EncodedFeatureMap(tensor, (8, 8, 8))
    full = SrfScanner(encoded)
    n_tiles = len(encoded.grid.active_tiles)
    assert n_tiles >= 2
    subset = SrfScanner(encoded, tile_subset=[0, n_tiles - 1])
    positions = [center for _, center in subset]
    assert len(positions) == 2 * encoded.grid.tile_volume()
    assert subset.total_positions == len(positions)
    with pytest.raises(ValueError):
        SrfScanner(encoded, tile_subset=[n_tiles])


def test_planned_equals_monolithic_single_chunk():
    """Trivial plan (everything fits): identical accumulators and cycles
    within the per-invocation pipeline fill."""
    tensor = random_sparse_tensor(seed=221, shape=(16, 16, 16), nnz=50, channels=8)
    accel = EscaAccelerator()
    mono = accel.run_layer(tensor, out_channels=8, seed=5)
    planned = accel.run_planned_layer(tensor, out_channels=8, seed=5, verify=True)
    assert planned.plan.num_chunks == 1
    assert planned.plan.num_passes == 1
    assert np.array_equal(planned.accumulators, mono.accumulators)
    assert planned.total_cycles == mono.total_cycles


def test_chunked_execution_bit_exact_with_halo():
    """Forcing many chunks must not change the integer results — this is
    the halo-correctness property of chunked scanning."""
    tensor = random_sparse_tensor(seed=222, shape=(24, 24, 24), nnz=120, channels=4)
    accel = EscaAccelerator()
    compiler = NetworkCompiler(
        accel.config,
        budget=tiny_budget(activation_words_per_bank=30, output_words=30),
    )
    mono = accel.run_layer(tensor, out_channels=4, seed=9)
    planned = accel.run_planned_layer(
        tensor, out_channels=4, seed=9, compiler=compiler, verify=True
    )
    assert planned.plan.num_chunks > 1
    assert np.array_equal(planned.accumulators, mono.accumulators)
    assert planned.matches == mono.matches


def test_multi_pass_execution_bit_exact():
    """Forcing OC/IC channel passes must not change the integer results."""
    tensor = random_sparse_tensor(seed=223, shape=(12, 12, 12), nnz=40, channels=32)
    accel = EscaAccelerator()
    compiler = NetworkCompiler(
        accel.config, budget=tiny_budget(weight_words=1000)
    )
    mono = accel.run_layer(tensor, out_channels=32, seed=3)
    planned = accel.run_planned_layer(
        tensor, out_channels=32, seed=3, compiler=compiler, verify=True
    )
    assert planned.plan.num_passes > 1
    assert np.array_equal(planned.accumulators, mono.accumulators)


def test_chunks_and_passes_combined():
    tensor = random_sparse_tensor(seed=224, shape=(24, 24, 24), nnz=90, channels=32)
    accel = EscaAccelerator()
    compiler = NetworkCompiler(
        accel.config,
        budget=tiny_budget(
            weight_words=1000, activation_words_per_bank=60, output_words=60
        ),
    )
    mono = accel.run_layer(tensor, out_channels=32, seed=1)
    planned = accel.run_planned_layer(
        tensor, out_channels=32, seed=1, compiler=compiler, verify=True
    )
    assert planned.plan.num_chunks > 1
    assert planned.plan.num_passes > 1
    assert np.array_equal(planned.accumulators, mono.accumulators)
    # More invocations -> more pipeline fill cycles, never fewer.
    assert planned.total_cycles >= mono.total_cycles


def test_planned_result_metrics():
    tensor = random_sparse_tensor(seed=225, shape=(16, 16, 16), nnz=30, channels=4)
    planned = EscaAccelerator().run_planned_layer(tensor, out_channels=4)
    assert planned.effective_ops == 2 * planned.matches * 4 * 4
    assert planned.total_seconds >= planned.time_seconds
    assert planned.effective_gops() > 0
    assert planned.output.nnz == tensor.nnz


def test_planned_requires_weights_or_out_channels():
    tensor = random_sparse_tensor(seed=226, nnz=10)
    with pytest.raises(ValueError):
        EscaAccelerator().run_planned_layer(tensor)
