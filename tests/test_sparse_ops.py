"""Unit tests for sparse elementwise/structural operations."""

import numpy as np
import pytest

from repro.sparse import (
    add_sparse,
    concat_features,
    dense_to_sparse,
    relu,
    scale_features,
    sparse_allclose,
    sparse_to_dense,
)
from tests.conftest import random_sparse_tensor


def test_relu_clamps_but_keeps_sites():
    tensor = random_sparse_tensor(seed=7, nnz=20, channels=3)
    out = relu(tensor)
    assert np.array_equal(out.coords, tensor.coords)
    assert np.all(out.features >= 0)
    # Sites whose features became zero are still present (submanifold).
    assert out.nnz == tensor.nnz


def test_scale_features_affine():
    tensor = random_sparse_tensor(seed=8, nnz=10, channels=2)
    out = scale_features(tensor, np.array([2.0, 0.5]), np.array([1.0, -1.0]))
    expected = tensor.features * np.array([[2.0, 0.5]]) + np.array([[1.0, -1.0]])
    assert np.allclose(out.features, expected)


def test_scale_features_channel_mismatch():
    tensor = random_sparse_tensor(seed=9, nnz=5, channels=2)
    with pytest.raises(ValueError):
        scale_features(tensor, np.ones(3))
    with pytest.raises(ValueError):
        scale_features(tensor, np.ones(2), np.ones(3))


def test_add_sparse_same_sites():
    tensor = random_sparse_tensor(seed=10, nnz=12, channels=2)
    doubled = add_sparse(tensor, tensor)
    assert np.allclose(doubled.features, 2 * tensor.features)


def test_add_sparse_rejects_different_sites():
    a = random_sparse_tensor(seed=11, nnz=12)
    b = random_sparse_tensor(seed=12, nnz=12)
    with pytest.raises(ValueError):
        add_sparse(a, b)


def test_concat_features():
    tensor = random_sparse_tensor(seed=13, nnz=8, channels=2)
    out = concat_features(tensor, tensor)
    assert out.num_channels == 4
    assert np.allclose(out.features[:, :2], tensor.features)
    assert np.allclose(out.features[:, 2:], tensor.features)


def test_sparse_allclose_detects_differences():
    tensor = random_sparse_tensor(seed=14, nnz=9, channels=2)
    assert sparse_allclose(tensor, tensor)
    perturbed = tensor.with_features(tensor.features + 1e-3)
    assert not sparse_allclose(tensor, perturbed)


def test_dense_round_trip_through_helpers():
    tensor = random_sparse_tensor(seed=15, shape=(5, 5, 5), nnz=10, channels=2)
    dense = sparse_to_dense(tensor)
    rebuilt = dense_to_sparse(dense)
    assert sparse_allclose(tensor, rebuilt)


def test_dense_to_sparse_tolerance():
    dense = np.zeros((3, 3, 3, 1))
    dense[0, 0, 0, 0] = 1e-6
    dense[1, 1, 1, 0] = 1.0
    assert dense_to_sparse(dense, tol=1e-3).nnz == 1
    assert dense_to_sparse(dense).nnz == 2


def test_dense_to_sparse_accepts_3d():
    dense = np.zeros((2, 2, 2))
    dense[1, 0, 1] = 3.0
    tensor = dense_to_sparse(dense)
    assert tensor.nnz == 1
    assert tensor.num_channels == 1
    assert tensor.feature_at((1, 0, 1))[0] == 3.0
