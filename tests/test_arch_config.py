"""Unit tests for the accelerator configuration."""

import pytest

from repro.arch import AcceleratorConfig, SdmuTiming


def test_default_matches_paper_implementation_point():
    cfg = AcceleratorConfig()
    assert cfg.kernel_size == 3
    assert cfg.decoder_lanes == 9  # K^2 FIFOs / decoder parallelism
    assert cfg.tile_shape == (8, 8, 8)
    assert cfg.macs_per_cycle == 256  # 16 x 16 computing array
    assert cfg.clock_hz == pytest.approx(270e6)
    assert cfg.weight_bits == 8 and cfg.activation_bits == 16


def test_peak_gops():
    cfg = AcceleratorConfig()
    # 256 MACs x 2 ops x 270 MHz = 138.24 GOPS.
    assert cfg.peak_gops == pytest.approx(138.24)


def test_srf_cadence_defaults_to_kernel_size():
    assert AcceleratorConfig().srf_cadence == 3
    cfg = AcceleratorConfig(timing=SdmuTiming(srf_cadence_cycles=1))
    assert cfg.srf_cadence == 1


def test_cc_cycles_per_match():
    cfg = AcceleratorConfig()
    assert cfg.cc_cycles_per_match(16, 16) == 1
    assert cfg.cc_cycles_per_match(1, 16) == 1
    assert cfg.cc_cycles_per_match(17, 16) == 2
    assert cfg.cc_cycles_per_match(64, 64) == 16
    assert cfg.cc_cycles_per_match(96, 48) == 18


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        AcceleratorConfig(kernel_size=2)
    with pytest.raises(ValueError):
        AcceleratorConfig(kernel_size=0)
    with pytest.raises(ValueError):
        AcceleratorConfig(tile_shape=(0, 8, 8))
    with pytest.raises(ValueError):
        AcceleratorConfig(ic_parallelism=0)
    with pytest.raises(ValueError):
        AcceleratorConfig(fifo_depth=0)
    with pytest.raises(ValueError):
        AcceleratorConfig(clock_hz=0)
    with pytest.raises(ValueError):
        AcceleratorConfig(weight_bits=1)


def test_timing_negative_cadence_rejected():
    with pytest.raises(ValueError):
        SdmuTiming(srf_cadence_cycles=-1).resolve_cadence(3)


def test_config_is_frozen():
    cfg = AcceleratorConfig()
    with pytest.raises(Exception):
        cfg.kernel_size = 5
