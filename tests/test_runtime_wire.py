"""Tests for the cluster wire protocol (repro.runtime.wire)."""

import asyncio
import pickle
import struct
import zlib

import numpy as np
import pytest

from repro.runtime.wire import (
    HEADER_BYTES,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    ChecksumError,
    ConnectionClosed,
    Frame,
    MessageType,
    ProtocolError,
    RemoteWorkerError,
    decode_frame,
    decode_header,
    encode_frame,
    error_payload,
    raise_if_error,
    read_frame,
)

_HEADER = struct.Struct("!4sBBQII")


def _reader_with(data: bytes) -> asyncio.StreamReader:
    # StreamReader needs a running loop: call only inside a coroutine.
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def read_one(data: bytes) -> Frame:
    async def scenario():
        return await read_frame(_reader_with(data))

    return asyncio.run(scenario())


def test_frame_round_trip_preserves_payload_object():
    obj = {"coords": np.arange(12).reshape(4, 3), "shape": (16, 16, 16)}
    raw = encode_frame(MessageType.EXECUTE_BATCH, 7, obj)
    frame = decode_frame(raw)
    assert frame.type == MessageType.EXECUTE_BATCH
    assert frame.request_id == 7
    loaded = frame.load()
    assert loaded["shape"] == (16, 16, 16)
    assert np.array_equal(loaded["coords"], obj["coords"])


def test_empty_payload_loads_as_none():
    raw = encode_frame(MessageType.HEALTH, 1)
    frame = decode_frame(raw)
    assert frame.payload == b""
    assert frame.load() is None


def test_async_read_frame_round_trip():
    raw = encode_frame(MessageType.OK, 99, {"ok": True})
    frame = read_one(raw)
    assert frame.type == MessageType.OK
    assert frame.request_id == 99
    assert frame.load() == {"ok": True}


def test_read_frame_pipelined_frames_in_one_stream():
    raw = encode_frame(MessageType.HEALTH, 1) + encode_frame(
        MessageType.OK, 2, "second"
    )

    async def scenario():
        reader = _reader_with(raw)
        first = await read_frame(reader)
        second = await read_frame(reader)
        return first, second

    first, second = asyncio.run(scenario())
    assert first.request_id == 1
    assert second.load() == "second"


def test_clean_eof_between_frames_is_connection_closed():
    with pytest.raises(ConnectionClosed):
        read_one(b"")


def test_eof_mid_header_is_protocol_error():
    raw = encode_frame(MessageType.HEALTH, 1)
    with pytest.raises(ProtocolError, match="header"):
        read_one(raw[: HEADER_BYTES - 3])


def test_eof_mid_payload_is_protocol_error():
    raw = encode_frame(MessageType.OK, 5, {"k": "v"})
    with pytest.raises(ProtocolError, match="payload"):
        read_one(raw[:-2])


def test_bad_magic_rejected():
    raw = bytearray(encode_frame(MessageType.HEALTH, 1))
    raw[:4] = b"NOPE"
    with pytest.raises(ProtocolError, match="magic"):
        decode_header(bytes(raw[:HEADER_BYTES]))


def test_unsupported_version_rejected():
    payload = b""
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION + 1, int(MessageType.HEALTH), 1, 0,
        zlib.crc32(payload),
    )
    with pytest.raises(ProtocolError, match="version"):
        decode_header(header)


def test_unknown_message_type_rejected():
    header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, 200, 1, 0, 0)
    with pytest.raises(ProtocolError, match="message type"):
        decode_header(header)


def test_header_length_guard():
    with pytest.raises(ProtocolError, match="bytes"):
        decode_header(b"short")


def test_corrupted_payload_is_checksum_error():
    raw = bytearray(encode_frame(MessageType.OK, 3, {"value": 42}))
    raw[-1] ^= 0xFF
    with pytest.raises(ChecksumError):
        read_one(bytes(raw))
    with pytest.raises(ChecksumError):
        decode_frame(bytes(raw))


def test_declared_length_beyond_cap_rejected_before_allocation():
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(MessageType.OK), 1,
        MAX_PAYLOAD_BYTES + 1, 0,
    )
    with pytest.raises(ProtocolError, match="MAX_PAYLOAD_BYTES"):
        decode_header(header)


def test_encode_rejects_oversized_request_id():
    with pytest.raises(ValueError, match="64 bits"):
        encode_frame(MessageType.HEALTH, 1 << 64)
    with pytest.raises(ValueError, match="64 bits"):
        encode_frame(MessageType.HEALTH, -1)


def test_decode_frame_requires_exact_length():
    raw = encode_frame(MessageType.OK, 1, "x")
    with pytest.raises(ProtocolError, match="carries"):
        decode_frame(raw + b"extra")


def test_error_frame_round_trip_raises_remote_worker_error():
    payload = error_payload(KeyError("missing spec"))
    raw = encode_frame(MessageType.ERROR, 4, payload)
    frame = decode_frame(raw)
    with pytest.raises(RemoteWorkerError, match="missing spec") as excinfo:
        raise_if_error(frame)
    assert excinfo.value.kind == "KeyError"


def test_error_payload_is_names_not_pickled_exceptions():
    body = error_payload(ValueError("boom"))
    assert body == {"kind": "ValueError", "message": "boom"}
    # The wire carries plain strings — unpickling must not produce an
    # exception instance.
    loaded = pickle.loads(
        pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    )
    assert isinstance(loaded["kind"], str)


def test_raise_if_error_passes_ok_and_rejects_request_frames():
    ok = decode_frame(encode_frame(MessageType.OK, 1, "fine"))
    assert raise_if_error(ok) is ok
    request = decode_frame(encode_frame(MessageType.HEALTH, 2))
    with pytest.raises(ProtocolError, match="reply"):
        raise_if_error(request)
