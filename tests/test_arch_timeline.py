"""Tests for the matching-pipeline timeline (Fig. 7(b) reproduction)."""

import numpy as np
import pytest

from repro.arch import AcceleratorConfig, MatchingTimeline, Sdmu
from repro.arch.encoding import EncodedFeatureMap
from repro.sparse import SparseTensor3D


def run_with_timeline(tensor, max_srfs=32, **cfg_kwargs):
    config = AcceleratorConfig(**cfg_kwargs)
    encoded = EncodedFeatureMap(tensor, config.tile_shape, kernel_size=3)
    timeline = MatchingTimeline(max_srfs=max_srfs)
    sdmu = Sdmu(encoded, config, timeline=timeline)
    for cycle in range(100_000):
        sdmu.pop_match()
        sdmu.advance(cycle)
        if sdmu.is_idle():
            break
    return timeline


def dense_block(n=4, shape=(8, 8, 8)):
    coords = np.array(
        [[x, y, z] for x in range(n) for y in range(n) for z in range(n)]
    )
    return SparseTensor3D(coords, np.ones((n ** 3, 1)), shape)


def test_fig7b_three_cycle_stagger():
    """With K = 3 the read stage issues one SRF every 3 cycles, exactly the
    cadence Fig. 7(b) illustrates."""
    timeline = run_with_timeline(dense_block())
    starts = [timeline.stage_start(seq, "read") for seq in range(4)]
    assert None not in starts
    deltas = np.diff(starts)
    assert all(delta == 3 for delta in deltas)


def test_read_occupies_cadence_cycles():
    timeline = run_with_timeline(dense_block())
    spans = [s for s in timeline.spans() if s.stage == "read" and s.srf_seq == 0]
    assert sum(span.duration for span in spans) == 3


def test_judge_follows_read():
    timeline = run_with_timeline(dense_block())
    for seq in range(4):
        read_spans = [
            s for s in timeline.spans()
            if s.srf_seq == seq and s.stage == "read"
        ]
        judge_start = timeline.stage_start(seq, "judge")
        assert judge_start is not None
        assert judge_start == max(s.end_cycle for s in read_spans) + 1


def test_fetch_only_for_active_srfs():
    """Non-active SRFs skip the fetch stage (the 'Skip' of Fig. 7(a))."""
    coords = np.array([[0, 0, 0]])  # single active site in an 8^3 tile
    tensor = SparseTensor3D(coords, np.ones((1, 1)), (8, 8, 8))
    timeline = run_with_timeline(tensor, max_srfs=16)
    fetched = {s.srf_seq for s in timeline.spans() if s.stage == "fetch"}
    assert fetched == {0}  # scan order visits (0,0,0) first


def test_render_contains_stage_symbols():
    timeline = run_with_timeline(dense_block())
    art = timeline.render(max_rows=3)
    assert "SRF 0" in art
    assert "R" in art and "J" in art and "F" in art
    assert "cycle" in art


def test_render_empty():
    assert MatchingTimeline().render() == "(empty timeline)"


def test_max_srfs_bound():
    timeline = run_with_timeline(dense_block(), max_srfs=2)
    assert max(timeline.srf_sequences()) <= 1


def test_record_validation():
    timeline = MatchingTimeline()
    with pytest.raises(ValueError):
        timeline.record(0, "bogus", 0)
    with pytest.raises(ValueError):
        MatchingTimeline(max_srfs=0)


def test_spans_merge_contiguous_cycles():
    timeline = MatchingTimeline()
    for cycle in (5, 6, 7, 10):
        timeline.record(0, "read", cycle)
    spans = timeline.spans()
    assert len(spans) == 2
    assert spans[0].start_cycle == 5 and spans[0].end_cycle == 7
    assert spans[0].duration == 3
    assert spans[1].start_cycle == 10
