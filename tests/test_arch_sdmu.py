"""Tests for the cycle-accurate SDMU (Sec. III-C, Figs. 6-7)."""

import pytest

from repro.arch import AcceleratorConfig, Sdmu
from repro.arch.config import SdmuTiming
from repro.arch.encoding import EncodedFeatureMap
from repro.arch.sdmu import SrfScanner
from repro.nn import build_submanifold_rulebook
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def make_sdmu(tensor, **config_kwargs):
    config = AcceleratorConfig(**config_kwargs)
    encoded = EncodedFeatureMap(
        tensor, config.tile_shape, kernel_size=config.kernel_size
    )
    return Sdmu(encoded, config), encoded, config


def drain_all(sdmu, max_cycles=1_000_000):
    """Advance the SDMU alone, popping eagerly; return popped matches."""
    popped = []
    for cycle in range(max_cycles):
        result = sdmu.pop_match()
        if result is not None:
            popped.append(result)
        sdmu.advance(cycle)
        if sdmu.is_idle():
            break
    else:
        raise AssertionError("SDMU did not drain")
    return popped


def test_scanner_covers_active_tiles_exactly():
    tensor = random_sparse_tensor(seed=120, shape=(16, 16, 16), nnz=30)
    config = AcceleratorConfig(tile_shape=(8, 8, 8))
    encoded = EncodedFeatureMap(tensor, config.tile_shape, kernel_size=3)
    scanner = SrfScanner(encoded)
    positions = [center for _, center in scanner]
    assert len(positions) == encoded.grid.scanned_positions()
    assert len(set(positions)) == len(positions)
    # Every active site is visited.
    for coord in map(tuple, tensor.coords.tolist()):
        assert coord in set(positions)


def test_all_matches_emitted_once():
    """The SDMU must emit exactly the rulebook's matches, no more, no less."""
    tensor = random_sparse_tensor(seed=121, shape=(16, 16, 16), nnz=60)
    sdmu, encoded, _ = make_sdmu(tensor, tile_shape=(8, 8, 8))
    popped = drain_all(sdmu)
    rulebook = build_submanifold_rulebook(tensor, 3)
    got = sorted(
        (match.activation_row, group.output_row, match.weight_index)
        for match, group in popped
    )
    expected = sorted(
        (in_row, out_row, k)
        for k, rule in enumerate(rulebook.rules)
        for in_row, out_row in rule.tolist()
    )
    assert got == expected


def test_match_groups_emitted_in_scan_order():
    tensor = random_sparse_tensor(seed=122, shape=(16, 16, 16), nnz=40)
    sdmu, _, _ = make_sdmu(tensor)
    popped = drain_all(sdmu)
    seqs = [group.srf_seq for _, group in popped]
    # Group sequence numbers are non-decreasing (calculation order).
    assert seqs == sorted(seqs)


def test_skipped_vs_active_counts():
    tensor = random_sparse_tensor(seed=123, shape=(16, 16, 16), nnz=25)
    sdmu, encoded, _ = make_sdmu(tensor)
    drain_all(sdmu)
    stats = sdmu.stats
    assert stats.get("srf_active") == tensor.nnz
    assert (
        stats.get("srf_active") + stats.get("srf_skipped")
        == encoded.grid.scanned_positions()
    )


def test_cadence_controls_scan_rate():
    """Reading at cadence K makes the scan take ~K cycles per SRF."""
    tensor = random_sparse_tensor(seed=124, shape=(8, 8, 8), nnz=4)
    results = {}
    for cadence in (1, 3):
        sdmu, encoded, _ = make_sdmu(
            tensor, timing=SdmuTiming(srf_cadence_cycles=cadence)
        )
        cycles = 0
        for cycle in range(1_000_000):
            sdmu.pop_match()
            sdmu.advance(cycle)
            cycles = cycle + 1
            if sdmu.is_idle():
                break
        results[cadence] = cycles
    assert results[3] > 2.5 * results[1] * 0.8  # roughly 3x slower scan
    assert results[3] >= results[1]


def test_fifo_backpressure_without_consumer():
    """If nothing pops, FIFOs fill and the pipeline stalls, not crashes."""
    tensor = random_sparse_tensor(seed=125, shape=(8, 8, 8), nnz=40)
    sdmu, _, config = make_sdmu(tensor, fifo_depth=2)
    for cycle in range(2000):
        sdmu.advance(cycle)  # never pop
    assert not sdmu.is_idle()
    assert sdmu.stats.get("fetch_fifo_stalls") > 0
    # No FIFO ever exceeded its capacity.
    assert sdmu.fifo_max_occupancy() <= 2


def test_center_match_present_for_every_active_site():
    """Every active SRF contains its own center match (A_x, W_center)."""
    tensor = random_sparse_tensor(seed=126, shape=(12, 12, 12), nnz=30)
    sdmu, _, _ = make_sdmu(tensor)
    popped = drain_all(sdmu)
    center_weight = 13  # (0,0,0) of a 3x3x3 kernel
    centers = {
        group.output_row
        for match, group in popped
        if match.weight_index == center_weight
        and match.activation_row == group.output_row
    }
    assert centers == set(range(tensor.nnz))


def test_empty_tensor_is_immediately_idle():
    tensor = SparseTensor3D.empty((8, 8, 8))
    sdmu, _, _ = make_sdmu(tensor)
    sdmu.advance(0)
    sdmu.advance(1)
    assert sdmu.is_idle()
    assert drain_all(sdmu, max_cycles=4) == []


def test_kernel_mismatch_rejected():
    tensor = SparseTensor3D.empty((8, 8, 8))
    config = AcceleratorConfig(kernel_size=3)
    encoded = EncodedFeatureMap(tensor, config.tile_shape, kernel_size=5)
    with pytest.raises(ValueError):
        Sdmu(encoded, config)


def test_build_match_group_rejects_inactive_center():
    tensor = random_sparse_tensor(seed=127, shape=(8, 8, 8), nnz=5)
    sdmu, _, _ = make_sdmu(tensor)
    inactive = None
    for coord in ((0, 0, 0), (7, 7, 7), (3, 3, 3)):
        if coord not in tensor:
            inactive = coord
            break
    assert inactive is not None
    with pytest.raises(ValueError):
        sdmu.build_match_group(0, inactive)


def test_matches_generated_equals_pushed_and_popped():
    tensor = random_sparse_tensor(seed=128, shape=(16, 16, 16), nnz=45)
    sdmu, _, _ = make_sdmu(tensor)
    drain_all(sdmu)
    generated = sdmu.stats.get("matches_generated")
    assert generated == sdmu.stats.get("matches_pushed")
    assert generated == sdmu.stats.get("matches_popped")
