"""Tests for the pluggable ExecutionBackend API, registry, and parity.

The contract under test is the tentpole invariant: every registered
backend produces **bit-identical** outputs to the fused numpy engine
(the pre-refactor path) for all three session precisions, cache-cold
and cache-warm, at both the convolution level and the whole-network
level.
"""

import os

import numpy as np
import pytest

import repro.engine.backend as backend_mod
from repro.engine import (
    BackendCapabilities,
    ExecutionBackend,
    InferenceSession,
    NumpyFusedBackend,
    ScipySparseBackend,
    ShardedProcessBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.backend import CsrExecPlan, FusedExecPlan, GroupTask
from repro.nn import (
    UNetConfig,
    apply_rulebook,
    apply_rulebook_batch,
    build_submanifold_rulebook,
)
from repro.nn.rulebook import build_sparse_conv_rulebook
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)
BACKENDS = ("numpy", "scipy", "sharded")
PRECISIONS = ("float64", "float32", "int")


def frame(seed, nnz=45, channels=2, shape=(16, 16, 16)):
    return random_sparse_tensor(seed=seed, shape=shape, nnz=nnz, channels=channels)


def batch_frames():
    """Three distinct site sets plus one repeat (a true digest group)."""
    frames = [frame(seed, nnz=38 + seed) for seed in (1, 2, 3)]
    frames.append(
        frames[0].with_features(
            np.random.default_rng(7).standard_normal((frames[0].nnz, 2))
        )
    )
    return frames


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert set(BACKENDS) <= set(available_backends())


def test_get_backend_unknown_name_lists_registered():
    with pytest.raises(ValueError, match="numpy"):
        get_backend("cuda")


def test_get_backend_forwards_kwargs():
    backend = get_backend("sharded", num_workers=3)
    assert backend.num_workers == 3
    backend.close()


def test_register_backend_rejects_duplicates_and_bad_names():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("numpy", NumpyFusedBackend)
    with pytest.raises(ValueError, match="non-empty"):
        register_backend("", NumpyFusedBackend)
    with pytest.raises(TypeError, match="callable"):
        register_backend("broken", object())


def test_register_backend_overwrite_and_custom_backend():
    class TracingBackend(NumpyFusedBackend):
        name = "tracing"

        def __init__(self):
            super().__init__()
            self.calls = 0

        def execute(self, *args, **kwargs):
            self.calls += 1
            return super().execute(*args, **kwargs)

    register_backend("tracing", TracingBackend, overwrite=True)
    try:
        session = InferenceSession(
            unet_config=SMALL_CFG, precision="float32", backend="tracing"
        )
        session.run(frame(10))
        assert session.backend.calls == 0  # float path uses execute_batch
        assert session.stats.backend == "tracing"
    finally:
        backend_mod._REGISTRY.pop("tracing", None)


def test_session_rejects_non_backend():
    with pytest.raises(TypeError, match="ExecutionBackend"):
        InferenceSession(backend=42)


def test_capabilities_shape():
    for name in BACKENDS:
        backend = get_backend(name)
        caps = backend.capabilities()
        assert isinstance(caps, BackendCapabilities)
        assert caps.name == name == backend.name
        assert caps.native_batch
        backend.close()
    assert get_backend("sharded").capabilities().sharded
    assert not get_backend("numpy").capabilities().sharded


# ----------------------------------------------------------------------
# Convolution-level parity (submanifold + strided/transposed rulebooks)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
def test_execute_parity_submanifold(name):
    tensor = frame(20, nnz=70, channels=3)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = np.random.default_rng(0).standard_normal((27, 3, 6))
    expected = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    backend = get_backend(name)
    for _ in range(2):  # cold then warm (plan memoized on second call)
        out = backend.execute(rulebook, tensor.features, weights, tensor.nnz)
        assert out.dtype == expected.dtype
        assert np.array_equal(out, expected)
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_execute_parity_strided_and_transposed(name):
    tensor = frame(21, nnz=60, channels=2)
    rulebook, out_coords = build_sparse_conv_rulebook(tensor, 2, 2)
    weights = np.random.default_rng(1).standard_normal((8, 2, 4))
    backend = get_backend(name)
    expected = apply_rulebook(
        rulebook, tensor.features, weights, len(out_coords)
    )
    assert np.array_equal(
        backend.execute(rulebook, tensor.features, weights, len(out_coords)),
        expected,
    )
    # Transposed direction: coarse -> fine restoration.
    coarse = np.random.default_rng(2).standard_normal((len(out_coords), 2))
    expected_t = apply_rulebook(
        rulebook.transposed(), coarse, weights, tensor.nnz
    )
    assert np.array_equal(
        backend.execute(rulebook.transposed(), coarse, weights, tensor.nnz),
        expected_t,
    )
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_execute_batch_parity_and_integer_dtype(name):
    tensor = frame(22, nnz=50, channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    backend = get_backend(name)
    # Float batch.
    stack = np.random.default_rng(3).standard_normal((4, tensor.nnz, 2))
    weights = np.random.default_rng(4).standard_normal((27, 2, 5))
    expected = apply_rulebook_batch(rulebook, stack, weights, tensor.nnz)
    out = backend.execute_batch(rulebook, stack, weights, tensor.nnz)
    assert out.dtype == expected.dtype
    assert np.array_equal(out, expected)
    # Integer batch: the fixed-point pipeline's accumulator contract.
    stack_q = np.rint(stack * 50).astype(np.int16)
    weights_q = np.rint(weights * 3).astype(np.int8)
    expected_q = apply_rulebook_batch(rulebook, stack_q, weights_q, tensor.nnz)
    out_q = backend.execute_batch(rulebook, stack_q, weights_q, tensor.nnz)
    assert out_q.dtype == np.int64
    assert np.array_equal(out_q, expected_q)
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_execute_empty_rulebook(name):
    from repro.sparse.coo import SparseTensor3D

    tensor = SparseTensor3D.empty((6, 6, 6), channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    backend = get_backend(name)
    out = backend.execute(rulebook, tensor.features, np.zeros((27, 2, 3)), 0)
    assert out.shape == (0, 3)
    batched = backend.execute_batch(
        rulebook, np.zeros((2, 0, 2)), np.zeros((27, 2, 3)), 0
    )
    assert batched.shape == (2, 0, 3)
    backend.close()


def test_execute_batch_rejects_2d():
    tensor = frame(23, nnz=15)
    rulebook = build_submanifold_rulebook(tensor, 3)
    for name in ("numpy", "scipy"):
        with pytest.raises(ValueError, match=r"\(B, N, Cin\)"):
            get_backend(name).execute_batch(
                rulebook, tensor.features, np.zeros((27, 2, 3)), tensor.nnz
            )


# ----------------------------------------------------------------------
# Satellite: session-level parity matrix — every backend x every
# precision, cache-cold and cache-warm, bit-identical to numpy.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", BACKENDS)
def test_session_parity_matrix(name, precision):
    frames = batch_frames()
    reference = InferenceSession(unet_config=SMALL_CFG, precision=precision)
    expected = [reference.run(f) for f in frames]

    session = InferenceSession(
        unet_config=SMALL_CFG, precision=precision, backend=name
    )
    try:
        cold = session.run_batch(frames)
        warm = session.run_batch(frames)
        singles = [session.run(f) for f in frames]
        for i, ref in enumerate(expected):
            for out in (cold[i], warm[i], singles[i]):
                assert out.features.dtype == ref.features.dtype
                assert np.array_equal(out.features, ref.features)
                assert np.array_equal(out.coords, ref.coords)
    finally:
        session.backend.close()


# ----------------------------------------------------------------------
# scipy specifics
# ----------------------------------------------------------------------
def test_scipy_plan_is_csr_and_memoized():
    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    tensor = frame(30, nnz=40)
    rulebook = build_submanifold_rulebook(tensor, 3)
    plan = backend.plan_for(rulebook)
    assert isinstance(plan, CsrExecPlan)
    assert plan.gather.shape == (plan.total_matches, tensor.nnz)
    assert plan.scatter.shape == (tensor.nnz, plan.total_matches)
    assert plan.gather.nnz == plan.total_matches == rulebook.total_matches
    assert backend.plan_for(rulebook) is plan  # memoized per rulebook
    # Per-dtype operator casts are memoized too.
    g32, s32 = plan.operators(np.float32)
    g32_again, s32_again = plan.operators(np.float32)
    assert g32_again is g32 and s32_again is s32
    assert g32.dtype == np.float32 and s32.dtype == np.float32


def test_scipy_degraded_fallback(monkeypatch):
    monkeypatch.setattr(backend_mod, "_scipy_sparse", None)
    backend = ScipySparseBackend()
    assert backend.degraded
    assert backend.capabilities().degraded
    tensor = frame(31, nnz=35)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = np.random.default_rng(5).standard_normal((27, 2, 4))
    expected = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    assert np.array_equal(
        backend.execute(rulebook, tensor.features, weights, tensor.nnz),
        expected,
    )
    assert isinstance(backend.plan_for(rulebook), FusedExecPlan)


def test_scipy_degraded_batch_and_session_parity(monkeypatch):
    """Satellite: degraded-mode coverage beyond the CI no-scipy leg.

    With the scipy import seam forced closed, every surface of the
    backend — single-frame, batched (float and integer), and a full
    session run — must transparently produce the numpy engine's bits.
    """
    monkeypatch.setattr(backend_mod, "_scipy_sparse", None)
    backend = ScipySparseBackend()
    caps = backend.capabilities()
    assert caps.degraded and caps.requires == "scipy"
    assert caps.name == "scipy" and caps.native_batch

    tensor = frame(33, nnz=40)
    rulebook = build_submanifold_rulebook(tensor, 3)
    rng = np.random.default_rng(7)
    weights = rng.standard_normal((27, 2, 4))
    stack = rng.standard_normal((3, tensor.nnz, 2))
    expected = apply_rulebook_batch(rulebook, stack, weights, tensor.nnz)
    assert np.array_equal(
        backend.execute_batch(rulebook, stack, weights, tensor.nnz), expected
    )
    int_stack = np.rint(stack * 50).astype(np.int16)
    int_weights = np.ones((27, 2, 4), dtype=np.int8)
    int_out = backend.execute_batch(
        rulebook, int_stack, int_weights, tensor.nnz
    )
    assert int_out.dtype == np.int64
    assert np.array_equal(
        int_out,
        apply_rulebook_batch(rulebook, int_stack, int_weights, tensor.nnz),
    )

    for precision in ("float64", "float32", "int"):
        reference = InferenceSession(unet_config=SMALL_CFG, precision=precision)
        degraded = InferenceSession(
            unet_config=SMALL_CFG, precision=precision,
            backend=ScipySparseBackend(),
        )
        want = reference.run(tensor)
        got = degraded.run(tensor)
        assert got.features.dtype == want.features.dtype
        assert np.array_equal(got.features, want.features)


def test_scipy_degraded_on_forced_import_failure_subprocess():
    """The import guard itself, not just the seam: a interpreter whose
    scipy import genuinely fails must come up degraded and bit-identical
    to the fused engine."""
    import subprocess
    import sys
    from pathlib import Path

    script = r"""
import sys
sys.modules["scipy"] = None  # any 'import scipy' now raises ImportError
import importlib
import numpy as np
backend_mod = importlib.import_module("repro.engine.backend")
assert backend_mod._scipy_sparse is None, "import guard did not trip"
backend = backend_mod.ScipySparseBackend()
caps = backend.capabilities()
assert backend.degraded and caps.degraded and caps.requires == "scipy"
from repro.nn.rulebook import build_submanifold_rulebook
from repro.nn.functional import apply_rulebook
from tests.conftest import random_sparse_tensor
tensor = random_sparse_tensor(seed=3, nnz=30, channels=2)
rulebook = build_submanifold_rulebook(tensor, 3)
weights = np.random.default_rng(0).standard_normal((27, 2, 4))
expected = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
out = backend.execute(rulebook, tensor.features, weights, tensor.nnz)
assert np.array_equal(out, expected)
print("DEGRADED-OK")
"""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), str(repo_root)]
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "DEGRADED-OK" in result.stdout


def test_scipy_records_apply_stats():
    from repro.nn.functional import ApplyStats

    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    tensor = frame(32, nnz=40)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = np.random.default_rng(6).standard_normal((27, 2, 4))
    stats = ApplyStats()
    backend.execute(rulebook, tensor.features, weights, tensor.nnz, stats=stats)
    assert stats.matches == rulebook.total_matches
    assert stats.total_seconds > 0


# ----------------------------------------------------------------------
# sharded specifics
# ----------------------------------------------------------------------
def test_sharded_fans_out_digest_groups():
    frames = batch_frames()  # 3 distinct site sets -> 3 groups
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        reference = InferenceSession(unet_config=SMALL_CFG)
        expected = reference.run_batch(frames)
        outs = session.run_batch(frames)
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)
        assert backend.groups_dispatched == 3
        assert backend.frames_dispatched == 4
        # The parent session did not build any plan: work lived in workers.
        assert session.plan_cache.misses == 0
        # Warm re-dispatch reuses the live worker pools, and the
        # digest-affine routing is deterministic.
        pools = backend._pools
        routes = [backend._worker_index(t) for t in _tasks_of(frames)]
        session.run_batch(frames)
        assert backend._pools is pools
        assert [backend._worker_index(t) for t in _tasks_of(frames)] == routes
        assert backend.groups_dispatched == 6
    finally:
        backend.close()
    assert backend._pools is None  # close() is effective and idempotent
    backend.close()


def _tasks_of(frames):
    """Distinct-digest GroupTasks mirroring run_batch's grouping."""
    seen = {}
    for tensor in frames:
        seen.setdefault(
            tensor.coords_digest(),
            GroupTask(
                coords=tensor.coords,
                shape=tensor.shape,
                features=tensor.features[None],
                digest=tensor.coords_digest(),
            ),
        )
    return list(seen.values())


def test_sharded_single_group_runs_locally():
    frames = [frame(40, nnz=30)]
    frames.append(frames[0].with_features(frames[0].features * 2.0))
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        session.run_batch(frames)
        assert backend.groups_dispatched == 0  # one group: no fan-out
        assert session.plan_cache.misses == 1
    finally:
        backend.close()


def test_sharded_validates_workers_and_refuses_run_groups_on_numpy():
    with pytest.raises(ValueError, match="num_workers"):
        ShardedProcessBackend(num_workers=0)
    with pytest.raises(NotImplementedError, match="does not shard"):
        NumpyFusedBackend().run_groups(None, "float64", None, [
            GroupTask(np.zeros((0, 3), np.int64), (4, 4, 4), np.zeros((1, 0, 1)))
        ])


# ----------------------------------------------------------------------
# Backend seam elsewhere: host model, streaming runner, config
# ----------------------------------------------------------------------
def test_execution_backend_base_is_abstract():
    base = ExecutionBackend()
    tensor = frame(41, nnz=10)
    rulebook = build_submanifold_rulebook(tensor, 3)
    with pytest.raises(NotImplementedError):
        base.prepare(rulebook)
    with pytest.raises(NotImplementedError):
        base.capabilities()


def test_accelerator_config_carries_backend():
    from repro.arch.config import AcceleratorConfig

    config = AcceleratorConfig(execution_backend="scipy")
    data = config.to_dict()
    assert data["execution_backend"] == "scipy"
    assert AcceleratorConfig.from_dict(data) == config
    session = InferenceSession(unet_config=SMALL_CFG, accelerator_config=config)
    assert session.backend.name == "scipy"
    with pytest.raises(ValueError, match="execution_backend"):
        AcceleratorConfig(execution_backend="")


def test_streaming_runner_backend_knob():
    from repro.runtime import RotatingSceneSource, StreamingRunner

    runner = StreamingRunner(
        backend="scipy", resolution=32, execute_reference=True
    )
    assert runner.session.backend.name == "scipy"
    stats = runner.run(RotatingSceneSource(num_frames=2, step_rad=0.0, noise_sigma=0.0))
    assert stats.num_frames == 2
    with pytest.raises(ValueError, match="session owns"):
        StreamingRunner(session=runner.session, backend="numpy")


def test_host_model_execute_layer_through_backends():
    from repro.arch.host import HostExecutionModel
    from repro.nn.functional import sparse_conv3d, submanifold_conv3d
    from repro.nn.unet import LayerExecution

    tensor = frame(42, nnz=55, channels=3)
    model = HostExecutionModel()
    weights = np.random.default_rng(8).standard_normal((27, 3, 4))
    execution = LayerExecution(
        name="head", input_tensor=tensor, in_channels=3, out_channels=4,
        kernel_size=3, kind="subconv",
    )
    expected = submanifold_conv3d(tensor, weights, kernel_size=3)
    for name in ("numpy", "scipy"):
        out, run = model.execute_layer(
            execution, tensor.features, weights, backend=name
        )
        assert np.array_equal(out, expected.features)
        assert run.matches > 0 and run.seconds > 0
    # Strided host layer agrees with the functional reference too.
    weights_down = np.random.default_rng(9).standard_normal((8, 3, 4))
    down_exec = LayerExecution(
        name="down0", input_tensor=tensor, in_channels=3, out_channels=4,
        kernel_size=2, kind="sparseconv", stride=2,
    )
    down_ref = sparse_conv3d(tensor, weights_down, stride=2, kernel_size=2)
    out, _ = model.execute_layer(down_exec, tensor.features, weights_down)
    assert np.array_equal(out, down_ref.features)
    with pytest.raises(TypeError, match="ExecutionBackend"):
        model.execute_layer(execution, tensor.features, weights, backend=3.5)


def test_plan_memo_is_lru_bounded():
    """Streaming workloads mint a new rulebook per site set; the plan
    memo must evict rather than pin every rulebook ever executed."""
    backend = ScipySparseBackend()
    backend.plan_capacity = 2
    rulebooks = [
        build_submanifold_rulebook(frame(70 + i, nnz=20 + i), 3)
        for i in range(4)
    ]
    plans = [backend.plan_for(rb) for rb in rulebooks]
    assert len(backend._plans) == 2
    # The most recent entries survive; the oldest were evicted.
    assert backend.plan_for(rulebooks[3]) is plans[3]
    assert backend.plan_for(rulebooks[0]) is not plans[0]
    backend.close()
    assert len(backend._plans) == 0


def test_sharded_spec_blob_memoized_across_dispatches():
    frames = batch_frames()
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        session.run_batch(frames)
        blob = backend._spec_blob
        key = backend._spec_key
        session.run_batch(frames)  # warm: same net -> no re-pickle
        assert backend._spec_blob is blob
        assert backend._spec_key == key
    finally:
        backend.close()
