"""Tests for the pluggable ExecutionBackend API, registry, and parity.

The contract under test is the tentpole invariant: every registered
backend produces **bit-identical** outputs to the fused numpy engine
(the pre-refactor path) for all three session precisions, cache-cold
and cache-warm, at both the convolution level and the whole-network
level.
"""

import os

import numpy as np
import pytest

import repro.engine.backend as backend_mod
from repro.engine import (
    BackendCapabilities,
    ExecutionBackend,
    InferenceSession,
    NumpyFusedBackend,
    ScipySparseBackend,
    ShardedProcessBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.backend import CsrExecPlan, FusedExecPlan, GroupTask
from repro.nn import (
    UNetConfig,
    apply_rulebook,
    apply_rulebook_batch,
    build_submanifold_rulebook,
)
from repro.nn.rulebook import build_sparse_conv_rulebook
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)
BACKENDS = ("numpy", "scipy", "sharded")
PRECISIONS = ("float64", "float32", "int")


def frame(seed, nnz=45, channels=2, shape=(16, 16, 16)):
    return random_sparse_tensor(seed=seed, shape=shape, nnz=nnz, channels=channels)


def batch_frames():
    """Three distinct site sets plus one repeat (a true digest group)."""
    frames = [frame(seed, nnz=38 + seed) for seed in (1, 2, 3)]
    frames.append(
        frames[0].with_features(
            np.random.default_rng(7).standard_normal((frames[0].nnz, 2))
        )
    )
    return frames


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert set(BACKENDS) <= set(available_backends())


def test_get_backend_unknown_name_lists_registered():
    with pytest.raises(ValueError, match="numpy"):
        get_backend("cuda")


def test_get_backend_forwards_kwargs():
    backend = get_backend("sharded", num_workers=3)
    assert backend.num_workers == 3
    backend.close()


def test_register_backend_rejects_duplicates_and_bad_names():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("numpy", NumpyFusedBackend)
    with pytest.raises(ValueError, match="non-empty"):
        register_backend("", NumpyFusedBackend)
    with pytest.raises(TypeError, match="callable"):
        register_backend("broken", object())


def test_register_backend_duplicate_error_names_both_factories():
    with pytest.raises(ValueError) as excinfo:
        register_backend("numpy", ScipySparseBackend)
    message = str(excinfo.value)
    assert "NumpyFusedBackend" in message
    assert "ScipySparseBackend" in message
    assert "overwrite=True" in message


def test_available_backends_is_sorted():
    names = available_backends()
    assert list(names) == sorted(names)


def test_register_backend_overwrite_and_custom_backend():
    class TracingBackend(NumpyFusedBackend):
        name = "tracing"

        def __init__(self):
            super().__init__()
            self.calls = 0

        def execute(self, *args, **kwargs):
            self.calls += 1
            return super().execute(*args, **kwargs)

    register_backend("tracing", TracingBackend, overwrite=True)
    try:
        session = InferenceSession(
            unet_config=SMALL_CFG, precision="float32", backend="tracing"
        )
        session.run(frame(10))
        assert session.backend.calls == 0  # float path uses execute_batch
        assert session.stats.backend == "tracing"
    finally:
        backend_mod._REGISTRY.pop("tracing", None)


def test_session_rejects_non_backend():
    with pytest.raises(TypeError, match="ExecutionBackend"):
        InferenceSession(backend=42)


def test_capabilities_shape():
    for name in BACKENDS:
        backend = get_backend(name)
        caps = backend.capabilities()
        assert isinstance(caps, BackendCapabilities)
        assert caps.name == name == backend.name
        assert caps.native_batch
        backend.close()
    assert get_backend("sharded").capabilities().sharded
    assert not get_backend("numpy").capabilities().sharded


# ----------------------------------------------------------------------
# Convolution-level parity (submanifold + strided/transposed rulebooks)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
def test_execute_parity_submanifold(name):
    tensor = frame(20, nnz=70, channels=3)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = np.random.default_rng(0).standard_normal((27, 3, 6))
    expected = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    backend = get_backend(name)
    for _ in range(2):  # cold then warm (plan memoized on second call)
        out = backend.execute(rulebook, tensor.features, weights, tensor.nnz)
        assert out.dtype == expected.dtype
        assert np.array_equal(out, expected)
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_execute_parity_strided_and_transposed(name):
    tensor = frame(21, nnz=60, channels=2)
    rulebook, out_coords = build_sparse_conv_rulebook(tensor, 2, 2)
    weights = np.random.default_rng(1).standard_normal((8, 2, 4))
    backend = get_backend(name)
    expected = apply_rulebook(
        rulebook, tensor.features, weights, len(out_coords)
    )
    assert np.array_equal(
        backend.execute(rulebook, tensor.features, weights, len(out_coords)),
        expected,
    )
    # Transposed direction: coarse -> fine restoration.
    coarse = np.random.default_rng(2).standard_normal((len(out_coords), 2))
    expected_t = apply_rulebook(
        rulebook.transposed(), coarse, weights, tensor.nnz
    )
    assert np.array_equal(
        backend.execute(rulebook.transposed(), coarse, weights, tensor.nnz),
        expected_t,
    )
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_execute_batch_parity_and_integer_dtype(name):
    tensor = frame(22, nnz=50, channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    backend = get_backend(name)
    # Float batch.
    stack = np.random.default_rng(3).standard_normal((4, tensor.nnz, 2))
    weights = np.random.default_rng(4).standard_normal((27, 2, 5))
    expected = apply_rulebook_batch(rulebook, stack, weights, tensor.nnz)
    out = backend.execute_batch(rulebook, stack, weights, tensor.nnz)
    assert out.dtype == expected.dtype
    assert np.array_equal(out, expected)
    # Integer batch: the fixed-point pipeline's accumulator contract.
    stack_q = np.rint(stack * 50).astype(np.int16)
    weights_q = np.rint(weights * 3).astype(np.int8)
    expected_q = apply_rulebook_batch(rulebook, stack_q, weights_q, tensor.nnz)
    out_q = backend.execute_batch(rulebook, stack_q, weights_q, tensor.nnz)
    assert out_q.dtype == np.int64
    assert np.array_equal(out_q, expected_q)
    backend.close()


@pytest.mark.parametrize("name", BACKENDS)
def test_execute_empty_rulebook(name):
    from repro.sparse.coo import SparseTensor3D

    tensor = SparseTensor3D.empty((6, 6, 6), channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    backend = get_backend(name)
    out = backend.execute(rulebook, tensor.features, np.zeros((27, 2, 3)), 0)
    assert out.shape == (0, 3)
    batched = backend.execute_batch(
        rulebook, np.zeros((2, 0, 2)), np.zeros((27, 2, 3)), 0
    )
    assert batched.shape == (2, 0, 3)
    backend.close()


def test_execute_batch_rejects_2d():
    tensor = frame(23, nnz=15)
    rulebook = build_submanifold_rulebook(tensor, 3)
    for name in ("numpy", "scipy"):
        with pytest.raises(ValueError, match=r"\(B, N, Cin\)"):
            get_backend(name).execute_batch(
                rulebook, tensor.features, np.zeros((27, 2, 3)), tensor.nnz
            )


# ----------------------------------------------------------------------
# Satellite: session-level parity matrix — every backend x every
# precision, cache-cold and cache-warm, bit-identical to numpy.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", BACKENDS)
def test_session_parity_matrix(name, precision):
    frames = batch_frames()
    reference = InferenceSession(unet_config=SMALL_CFG, precision=precision)
    expected = [reference.run(f) for f in frames]

    session = InferenceSession(
        unet_config=SMALL_CFG, precision=precision, backend=name
    )
    try:
        cold = session.run_batch(frames)
        warm = session.run_batch(frames)
        singles = [session.run(f) for f in frames]
        for i, ref in enumerate(expected):
            for out in (cold[i], warm[i], singles[i]):
                assert out.features.dtype == ref.features.dtype
                assert np.array_equal(out.features, ref.features)
                assert np.array_equal(out.coords, ref.coords)
    finally:
        session.backend.close()


# ----------------------------------------------------------------------
# scipy specifics
# ----------------------------------------------------------------------
def test_scipy_plan_is_csr_and_memoized():
    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    tensor = frame(30, nnz=40)
    rulebook = build_submanifold_rulebook(tensor, 3)
    plan = backend.plan_for(rulebook)
    assert isinstance(plan, CsrExecPlan)
    assert plan.gather.shape == (plan.total_matches, tensor.nnz)
    assert plan.scatter.shape == (tensor.nnz, plan.total_matches)
    assert plan.gather.nnz == plan.total_matches == rulebook.total_matches
    assert backend.plan_for(rulebook) is plan  # memoized per rulebook
    # Per-dtype operator casts are memoized too.
    g32, s32 = plan.operators(np.float32)
    g32_again, s32_again = plan.operators(np.float32)
    assert g32_again is g32 and s32_again is s32
    assert g32.dtype == np.float32 and s32.dtype == np.float32


def test_scipy_degraded_fallback(monkeypatch):
    monkeypatch.setattr(backend_mod, "_scipy_sparse", None)
    backend = ScipySparseBackend()
    assert backend.degraded
    assert backend.capabilities().degraded
    tensor = frame(31, nnz=35)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = np.random.default_rng(5).standard_normal((27, 2, 4))
    expected = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    assert np.array_equal(
        backend.execute(rulebook, tensor.features, weights, tensor.nnz),
        expected,
    )
    assert isinstance(backend.plan_for(rulebook), FusedExecPlan)


def test_scipy_degraded_batch_and_session_parity(monkeypatch):
    """Satellite: degraded-mode coverage beyond the CI no-scipy leg.

    With the scipy import seam forced closed, every surface of the
    backend — single-frame, batched (float and integer), and a full
    session run — must transparently produce the numpy engine's bits.
    """
    monkeypatch.setattr(backend_mod, "_scipy_sparse", None)
    backend = ScipySparseBackend()
    caps = backend.capabilities()
    assert caps.degraded and caps.requires == "scipy"
    assert caps.name == "scipy" and caps.native_batch

    tensor = frame(33, nnz=40)
    rulebook = build_submanifold_rulebook(tensor, 3)
    rng = np.random.default_rng(7)
    weights = rng.standard_normal((27, 2, 4))
    stack = rng.standard_normal((3, tensor.nnz, 2))
    expected = apply_rulebook_batch(rulebook, stack, weights, tensor.nnz)
    assert np.array_equal(
        backend.execute_batch(rulebook, stack, weights, tensor.nnz), expected
    )
    int_stack = np.rint(stack * 50).astype(np.int16)
    int_weights = np.ones((27, 2, 4), dtype=np.int8)
    int_out = backend.execute_batch(
        rulebook, int_stack, int_weights, tensor.nnz
    )
    assert int_out.dtype == np.int64
    assert np.array_equal(
        int_out,
        apply_rulebook_batch(rulebook, int_stack, int_weights, tensor.nnz),
    )

    for precision in ("float64", "float32", "int"):
        reference = InferenceSession(unet_config=SMALL_CFG, precision=precision)
        degraded = InferenceSession(
            unet_config=SMALL_CFG, precision=precision,
            backend=ScipySparseBackend(),
        )
        want = reference.run(tensor)
        got = degraded.run(tensor)
        assert got.features.dtype == want.features.dtype
        assert np.array_equal(got.features, want.features)


def test_scipy_degraded_on_forced_import_failure_subprocess():
    """The import guard itself, not just the seam: a interpreter whose
    scipy import genuinely fails must come up degraded and bit-identical
    to the fused engine."""
    import subprocess
    import sys
    from pathlib import Path

    script = r"""
import sys
sys.modules["scipy"] = None  # any 'import scipy' now raises ImportError
import importlib
import numpy as np
backend_mod = importlib.import_module("repro.engine.backend")
assert backend_mod._scipy_sparse is None, "import guard did not trip"
backend = backend_mod.ScipySparseBackend()
caps = backend.capabilities()
assert backend.degraded and caps.degraded and caps.requires == "scipy"
from repro.nn.rulebook import build_submanifold_rulebook
from repro.nn.functional import apply_rulebook
from tests.conftest import random_sparse_tensor
tensor = random_sparse_tensor(seed=3, nnz=30, channels=2)
rulebook = build_submanifold_rulebook(tensor, 3)
weights = np.random.default_rng(0).standard_normal((27, 2, 4))
expected = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
out = backend.execute(rulebook, tensor.features, weights, tensor.nnz)
assert np.array_equal(out, expected)
print("DEGRADED-OK")
"""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src"), str(repo_root)]
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "DEGRADED-OK" in result.stdout


def test_scipy_records_apply_stats():
    from repro.nn.functional import ApplyStats

    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    tensor = frame(32, nnz=40)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = np.random.default_rng(6).standard_normal((27, 2, 4))
    stats = ApplyStats()
    backend.execute(rulebook, tensor.features, weights, tensor.nnz, stats=stats)
    assert stats.matches == rulebook.total_matches
    assert stats.total_seconds > 0


# ----------------------------------------------------------------------
# sharded specifics
# ----------------------------------------------------------------------
def test_sharded_fans_out_digest_groups():
    frames = batch_frames()  # 3 distinct site sets -> 3 groups
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        reference = InferenceSession(unet_config=SMALL_CFG)
        expected = reference.run_batch(frames)
        outs = session.run_batch(frames)
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)
        assert backend.groups_dispatched == 3
        assert backend.frames_dispatched == 4
        # The parent session did not build any plan: work lived in workers.
        assert session.plan_cache.misses == 0
        # Warm re-dispatch reuses the live worker pools, and the
        # digest-affine routing is deterministic.
        pools = backend._pools
        routes = [backend._worker_index(t) for t in _tasks_of(frames)]
        session.run_batch(frames)
        assert backend._pools is pools
        assert [backend._worker_index(t) for t in _tasks_of(frames)] == routes
        assert backend.groups_dispatched == 6
    finally:
        backend.close()
    assert backend._pools is None  # close() is effective and idempotent
    backend.close()


def _tasks_of(frames):
    """Distinct-digest GroupTasks mirroring run_batch's grouping."""
    seen = {}
    for tensor in frames:
        seen.setdefault(
            tensor.coords_digest(),
            GroupTask(
                coords=tensor.coords,
                shape=tensor.shape,
                features=tensor.features[None],
                digest=tensor.coords_digest(),
            ),
        )
    return list(seen.values())


def test_sharded_single_group_runs_locally():
    frames = [frame(40, nnz=30)]
    frames.append(frames[0].with_features(frames[0].features * 2.0))
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        session.run_batch(frames)
        assert backend.groups_dispatched == 0  # one group: no fan-out
        assert session.plan_cache.misses == 1
    finally:
        backend.close()


def test_sharded_pool_worker_death_rebuilds_and_retries():
    """SIGKILLing a pool worker mid-stream loses no group.

    The next dispatch sees ``BrokenProcessPool``, rebuilds the affected
    pool from the stored spec blob, retries the lost groups once, and
    stays bit-identical to the reference.
    """
    import signal

    frames = batch_frames()
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        reference = InferenceSession(unet_config=SMALL_CFG)
        expected = reference.run_batch(frames)
        outs = session.run_batch(frames)
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)
        assert backend.pool_restarts == 0

        for executor in backend._pools:
            for pid in list(executor._processes):
                os.kill(pid, signal.SIGKILL)

        outs = session.run_batch(frames)
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)
        assert backend.pool_restarts >= 1
        # The rebuilt pools keep serving warm on the next dispatch.
        outs = session.run_batch(frames)
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)
    finally:
        backend.close()


def test_sharded_validates_workers_and_refuses_run_groups_on_numpy():
    with pytest.raises(ValueError, match="num_workers"):
        ShardedProcessBackend(num_workers=0)
    with pytest.raises(NotImplementedError, match="does not shard"):
        NumpyFusedBackend().run_groups(None, "float64", None, [
            GroupTask(np.zeros((0, 3), np.int64), (4, 4, 4), np.zeros((1, 0, 1)))
        ])


# ----------------------------------------------------------------------
# Backend seam elsewhere: host model, streaming runner, config
# ----------------------------------------------------------------------
def test_execution_backend_base_is_abstract():
    base = ExecutionBackend()
    tensor = frame(41, nnz=10)
    rulebook = build_submanifold_rulebook(tensor, 3)
    with pytest.raises(NotImplementedError):
        base.prepare(rulebook)
    with pytest.raises(NotImplementedError):
        base.capabilities()


def test_accelerator_config_carries_backend():
    from repro.arch.config import AcceleratorConfig

    config = AcceleratorConfig(execution_backend="scipy")
    data = config.to_dict()
    assert data["execution_backend"] == "scipy"
    assert AcceleratorConfig.from_dict(data) == config
    session = InferenceSession(unet_config=SMALL_CFG, accelerator_config=config)
    assert session.backend.name == "scipy"
    with pytest.raises(ValueError, match="execution_backend"):
        AcceleratorConfig(execution_backend="")


def test_streaming_runner_backend_knob():
    from repro.runtime import RotatingSceneSource, StreamingRunner

    runner = StreamingRunner(
        backend="scipy", resolution=32, execute_reference=True
    )
    assert runner.session.backend.name == "scipy"
    stats = runner.run(RotatingSceneSource(num_frames=2, step_rad=0.0, noise_sigma=0.0))
    assert stats.num_frames == 2
    with pytest.raises(ValueError, match="session owns"):
        StreamingRunner(session=runner.session, backend="numpy")


def test_host_model_execute_layer_through_backends():
    from repro.arch.host import HostExecutionModel
    from repro.nn.functional import sparse_conv3d, submanifold_conv3d
    from repro.nn.unet import LayerExecution

    tensor = frame(42, nnz=55, channels=3)
    model = HostExecutionModel()
    weights = np.random.default_rng(8).standard_normal((27, 3, 4))
    execution = LayerExecution(
        name="head", input_tensor=tensor, in_channels=3, out_channels=4,
        kernel_size=3, kind="subconv",
    )
    expected = submanifold_conv3d(tensor, weights, kernel_size=3)
    for name in ("numpy", "scipy"):
        out, run = model.execute_layer(
            execution, tensor.features, weights, backend=name
        )
        assert np.array_equal(out, expected.features)
        assert run.matches > 0 and run.seconds > 0
    # Strided host layer agrees with the functional reference too.
    weights_down = np.random.default_rng(9).standard_normal((8, 3, 4))
    down_exec = LayerExecution(
        name="down0", input_tensor=tensor, in_channels=3, out_channels=4,
        kernel_size=2, kind="sparseconv", stride=2,
    )
    down_ref = sparse_conv3d(tensor, weights_down, stride=2, kernel_size=2)
    out, _ = model.execute_layer(down_exec, tensor.features, weights_down)
    assert np.array_equal(out, down_ref.features)
    with pytest.raises(TypeError, match="ExecutionBackend"):
        model.execute_layer(execution, tensor.features, weights, backend=3.5)


def test_plan_memo_is_lru_bounded():
    """Streaming workloads mint a new rulebook per site set; the plan
    memo must evict rather than pin every rulebook ever executed."""
    backend = ScipySparseBackend()
    backend.plan_capacity = 2
    rulebooks = [
        build_submanifold_rulebook(frame(70 + i, nnz=20 + i), 3)
        for i in range(4)
    ]
    plans = [backend.plan_for(rb) for rb in rulebooks]
    assert len(backend._plans) == 2
    # The most recent entries survive; the oldest were evicted.
    assert backend.plan_for(rulebooks[3]) is plans[3]
    assert backend.plan_for(rulebooks[0]) is not plans[0]
    backend.close()
    assert len(backend._plans) == 0


# ----------------------------------------------------------------------
# Tentpole: ScipySparseBackend.refresh splices instead of re-lowering
# ----------------------------------------------------------------------
def _patched_pair(seed=80, nnz=150, remove=6, add=6, kernel=3):
    from repro.engine import coordinate_delta, patch_submanifold_rulebook
    from tests.test_engine_delta import churned

    old = random_sparse_tensor(seed=seed, shape=(18, 18, 18), nnz=nnz)
    new = churned(old, remove=remove, add=add, seed=seed + 1)
    delta = coordinate_delta(old.coords, new.coords)
    old_rulebook = build_submanifold_rulebook(old, kernel)
    patched = patch_submanifold_rulebook(
        old_rulebook, delta, new.shape, new_coords=new.coords
    )
    return old, new, old_rulebook, patched


def _assert_csr_plans_identical(got, want):
    assert got.total_matches == want.total_matches
    assert np.array_equal(got.segment_starts, want.segment_starts)
    assert got.active_offsets == want.active_offsets
    for name in ("gather", "scatter"):
        mine, theirs = getattr(got, name), getattr(want, name)
        assert mine.shape == theirs.shape
        assert mine.indices.dtype == theirs.indices.dtype
        assert np.array_equal(
            np.asarray(mine.indices), np.asarray(theirs.indices)
        )
        assert np.array_equal(
            np.asarray(mine.indptr), np.asarray(theirs.indptr)
        )
        assert mine.data.dtype == theirs.data.dtype
        assert np.array_equal(mine.data, theirs.data)


def test_scipy_refresh_splices_bit_identical_to_cold_prepare():
    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    _, _, old_rulebook, patched = _patched_pair()
    old_plan = backend.plan_for(old_rulebook)
    old_plan.operators(np.float32)
    old_plan.operators(np.int64)
    backend.refresh(old_rulebook, patched, patched._splice)
    assert backend.plans_refreshed == 1
    assert backend.plans_spliced == 1
    spliced = backend.plan_for(patched)  # memo hit: the spliced plan
    assert isinstance(spliced, CsrExecPlan)
    cold = ScipySparseBackend().prepare(patched)
    _assert_csr_plans_identical(spliced, cold)
    # Warmed per-dtype casts were carried over and match cold casts.
    assert set(spliced.casts) >= {"<f4", "<i8"}
    for dtype in (np.float64, np.float32, np.int64):
        got_g, got_s = spliced.operators(dtype)
        want_g, want_s = cold.operators(dtype)
        assert got_g.dtype == want_g.dtype and got_s.dtype == want_s.dtype
        assert np.array_equal(got_g.data, want_g.data)
        assert np.array_equal(got_s.data, want_s.data)


@pytest.mark.parametrize("kernel_size,stride", [(2, 2), (3, 2), (4, 2), (3, 1)])
@pytest.mark.parametrize("seed", range(3))
def test_scipy_refresh_splices_strided_geometries(kernel_size, stride, seed):
    """Spliced CSR plans for every strided geometry — including the
    overlapping kernel != stride class — equal cold lowering bit for bit,
    and execute identically for float64/float32/int, cold and warm."""
    from repro.engine import coordinate_delta, patch_sparse_conv_rulebook
    from tests.test_engine_delta import churned

    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    rng = np.random.default_rng(seed)
    old = random_sparse_tensor(seed=seed + 90, shape=(18, 18, 18), nnz=130)
    new = churned(
        old,
        remove=int(rng.integers(0, 14)),
        add=int(rng.integers(0, 14)),
        seed=seed + 95,
    )
    delta = coordinate_delta(old.coords, new.coords)
    old_rulebook, old_out = build_sparse_conv_rulebook(
        old, kernel_size, stride
    )
    patched, out_coords = patch_sparse_conv_rulebook(
        old_rulebook, old_out, delta, stride, new_coords=new.coords
    )
    backend.plan_for(old_rulebook)
    backend.refresh(old_rulebook, patched, patched._splice)
    assert backend.plans_spliced == 1
    spliced = backend.plan_for(patched)
    cold_backend = ScipySparseBackend()
    _assert_csr_plans_identical(spliced, cold_backend.prepare(patched))
    volume = kernel_size ** 3
    rng = np.random.default_rng(seed + 7)
    for dtype in ("float64", "float32", "int"):
        if dtype == "int":
            feats = rng.integers(-40, 40, (new.nnz, 3)).astype(np.int16)
            weights = rng.integers(-3, 3, (volume, 3, 4)).astype(np.int8)
        else:
            feats = rng.standard_normal((new.nnz, 3)).astype(dtype)
            weights = rng.standard_normal((volume, 3, 4)).astype(dtype)
        for _ in range(2):  # cold then warm
            got = backend.execute(patched, feats, weights, len(out_coords))
            want = cold_backend.execute(
                patched, feats, weights, len(out_coords)
            )
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)


def test_scipy_refresh_falls_back_to_eager_relowering():
    from repro.engine import coordinate_delta

    backend = ScipySparseBackend()
    if backend.degraded:
        pytest.skip("scipy not installed")
    old, new, old_rulebook, patched = _patched_pair(seed=85)
    # (1) No warm plan for the old rulebook: nothing to splice from.
    backend.refresh(old_rulebook, patched, patched._splice)
    assert backend.plans_refreshed == 1
    assert backend.plans_spliced == 0
    assert isinstance(backend.plan_for(patched), CsrExecPlan)
    # (2) A plain CoordinateDelta without splice provenance.
    backend2 = ScipySparseBackend()
    backend2.plan_for(old_rulebook)
    plain = coordinate_delta(old.coords, new.coords)
    backend2.refresh(old_rulebook, patched, plain)
    assert backend2.plans_refreshed == 1
    assert backend2.plans_spliced == 0


def test_scipy_refresh_degraded_falls_back(monkeypatch):
    monkeypatch.setattr(backend_mod, "_scipy_sparse", None)
    backend = ScipySparseBackend()
    _, _, old_rulebook, patched = _patched_pair(seed=86)
    backend.plan_for(old_rulebook)
    backend.refresh(old_rulebook, patched, patched._splice)
    assert backend.plans_refreshed == 1
    assert backend.plans_spliced == 0
    assert isinstance(backend.plan_for(patched), FusedExecPlan)


def test_session_delta_on_scipy_backend_splices_plans():
    """Session-level wiring: a delta session on the scipy backend serves
    drifting frames bit-identically to the numpy reference while its
    backend splices (rather than re-lowers) the patched plans."""
    from tests.test_engine_delta import churned

    if ScipySparseBackend().degraded:
        pytest.skip("scipy not installed")
    frames = [frame(50, nnz=90)]
    for step in range(3):
        frames.append(churned(frames[-1], remove=4, add=4, seed=51 + step))
    rng = np.random.default_rng(5)
    frames = [
        t.with_features(rng.standard_normal((t.nnz, 2))) for t in frames
    ]
    for precision in PRECISIONS:
        reference = InferenceSession(unet_config=SMALL_CFG, precision=precision)
        session = InferenceSession(
            unet_config=SMALL_CFG, precision=precision,
            backend="scipy", delta=0.25,
        )
        for tensor in frames:
            want = reference.run(tensor)
            got = session.run(tensor)
            assert got.features.dtype == want.features.dtype
            assert np.array_equal(got.features, want.features)
        stats = session.stats
        assert stats.delta_patches > 0
        assert stats.plans_spliced > 0
        assert stats.plans_refreshed >= stats.plans_spliced


def test_sharded_spec_blob_memoized_across_dispatches():
    frames = batch_frames()
    backend = ShardedProcessBackend(num_workers=2)
    session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
    try:
        session.run_batch(frames)
        store = backend.spec_store
        blob = store.blob
        key = store._key
        session.run_batch(frames)  # warm: same net -> no re-pickle
        assert store.blob is blob
        assert store._key == key
    finally:
        backend.close()


def test_sharded_spec_payload_pins_served_objects():
    """Satellite regression: the served spec must be pinned while its
    blob is memoized.  Pre-fix, nothing held the net — after GC a fresh
    net could recycle its id and the id-keyed memo silently kept serving
    the old weights.  Pinning makes identity checks sound (a live pin's
    id cannot be recycled) and keeps the warm path O(1)."""
    import gc
    import pickle
    import weakref
    from dataclasses import replace

    from repro.engine.session import QuantizationSpec
    from repro.nn.unet import SSUNet

    backend = ShardedProcessBackend(num_workers=1)
    quantization = QuantizationSpec()
    net_first = SSUNet(replace(SMALL_CFG, seed=101))
    blob_first = backend._spec_payload(net_first, "float64", quantization)
    # Identity-warm repeat: same blob object, no re-fingerprint needed.
    assert backend._spec_payload(net_first, "float64", quantization) is blob_first
    watcher = weakref.ref(net_first)
    del net_first
    gc.collect()
    assert watcher() is not None  # pinned: its id cannot be recycled
    # A different net (identity miss) is detected and re-pickled.
    net_second = SSUNet(replace(SMALL_CFG, seed=202))
    blob_second = backend._spec_payload(net_second, "float64", quantization)
    assert blob_second is not blob_first
    shipped_net, precision, _ = pickle.loads(blob_second)
    assert precision == "float64"
    want = {p.name: p.value for p in net_second.parameters()}
    got = {p.name: p.value for p in shipped_net.parameters()}
    assert set(got) == set(want)
    for name in want:
        assert np.array_equal(got[name], want[name])
    gc.collect()
    assert watcher() is None  # the pin moved on with the served spec


def test_sharded_spec_payload_survives_id_recycling():
    """Even without the pin (modeling the pre-fix world where nothing
    kept the served net alive), the content fingerprint must detect a
    different net that recycled the stale net's id — the id-keyed memo
    shipped the *old* weights in exactly this scenario."""
    import gc
    import pickle
    from dataclasses import replace

    from repro.engine.session import QuantizationSpec
    from repro.nn.unet import SSUNet

    backend = ShardedProcessBackend(num_workers=1)
    quantization = QuantizationSpec()
    cfg_first = replace(SMALL_CFG, seed=101)
    cfg_second = replace(SMALL_CFG, seed=202)
    for _ in range(3):  # allocator warmup makes id recycling reproducible
        SSUNet(cfg_second)
        gc.collect()

    def memoize_first():
        net = SSUNet(cfg_first)
        backend._spec_payload(net, "float64", quantization)
        return id(net)

    recycled = None
    for _ in range(3):  # allocator state varies; retry the scenario
        stale_id = memoize_first()
        backend.spec_store._pin = None  # release the pin: the net dies for real
        gc.collect()
        for _ in range(64):
            candidate = SSUNet(cfg_second)
            if id(candidate) == stale_id:
                recycled = candidate
                break
            del candidate
            gc.collect()
        if recycled is not None:
            break
    if recycled is None:
        pytest.skip("allocator did not recycle the network id")
    blob = backend._spec_payload(recycled, "float64", quantization)
    shipped_net, _, _ = pickle.loads(blob)
    want = {p.name: p.value for p in recycled.parameters()}
    got = {p.name: p.value for p in shipped_net.parameters()}
    for name in want:  # id-keyed memo shipped the *old* net's weights
        assert np.array_equal(got[name], want[name])


def test_sharded_spec_fingerprint_distinguishes_content():
    from dataclasses import replace

    from repro.engine.session import QuantizationSpec
    from repro.nn.unet import SSUNet

    quantization = QuantizationSpec()
    fp = ShardedProcessBackend._spec_fingerprint
    net_a = SSUNet(replace(SMALL_CFG, seed=7))
    net_b = SSUNet(replace(SMALL_CFG, seed=8))  # same geometry, new weights
    net_a2 = SSUNet(replace(SMALL_CFG, seed=7))  # identical content
    assert fp(net_a, "float64", quantization) == fp(net_a2, "float64", quantization)
    assert fp(net_a, "float64", quantization) != fp(net_b, "float64", quantization)
    assert fp(net_a, "float64", quantization) != fp(net_a, "float32", quantization)


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sharded_stale_spec_net_swap_reaches_workers(start_method):
    """Serving a different net through a live sharded backend must reach
    the workers (fresh pools, fresh weights) — under both start methods."""
    import gc
    import multiprocessing
    from dataclasses import replace

    from repro.nn.unet import SSUNet

    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {start_method!r} unavailable")
    frames = batch_frames()
    backend = ShardedProcessBackend(num_workers=2, start_method=start_method)

    def serve_round(seed):
        net = SSUNet(replace(SMALL_CFG, seed=seed))
        session = InferenceSession(net=net, backend=backend)
        return [out.features for out in session.run_batch(frames)]

    try:
        first = serve_round(7)
        gc.collect()  # round 1's net dies; its id may be recycled
        second = serve_round(8)
        reference = InferenceSession(net=SSUNet(replace(SMALL_CFG, seed=8)))
        expected = reference.run_batch(frames)
        for got, want in zip(second, expected):
            assert np.array_equal(got, want.features)
        assert any(
            not np.array_equal(a, b) for a, b in zip(first, second)
        )  # the swap actually changed the served weights
    finally:
        backend.close()
