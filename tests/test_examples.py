"""Smoke tests: every example script must run end-to-end.

The examples are part of the public deliverable; running their ``main()``
functions (imported, not subprocessed, so failures surface as ordinary
tracebacks) keeps them from rotting.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "visualize_scene",
        "compare_platforms",
        "design_space_exploration",
        "semantic_segmentation",
        "lidar_stream",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_directory_complete():
    scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart" in scripts
    assert len(scripts) >= 3
