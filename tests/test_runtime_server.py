"""Tests for the asyncio serving front door (SessionServer / serve)."""

import asyncio

import numpy as np
import pytest

from repro.engine import InferenceSession
from repro.nn import UNetConfig
from repro.runtime import (
    DeadlineExceeded,
    ServeStats,
    ServerOverloaded,
    SessionServer,
    serve,
    serve_frames,
)
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)


def small_session(**kwargs):
    return InferenceSession(unet_config=SMALL_CFG, **kwargs)


def frame(seed, nnz=40):
    return random_sparse_tensor(seed=seed, shape=(16, 16, 16), nnz=nnz, channels=2)


def request_mix():
    """Two site sets, several feature variants each — batchable load."""
    base_a, base_b = frame(1), frame(2, nnz=45)
    rng = np.random.default_rng(3)
    requests = []
    for _ in range(3):
        requests.append(
            base_a.with_features(rng.standard_normal((base_a.nnz, 2)))
        )
        requests.append(
            base_b.with_features(rng.standard_normal((base_b.nnz, 2)))
        )
    return requests


def test_serve_outputs_bit_identical_to_run():
    requests = request_mix()
    reference = small_session()
    expected = [reference.run(t) for t in requests]
    outputs, stats = serve_frames(
        requests, session=small_session(), concurrency=4
    )
    assert stats.requests == len(requests)
    for out, ref in zip(outputs, expected):
        assert np.array_equal(out.features, ref.features)
        assert np.array_equal(out.coords, ref.coords)


def test_serve_micro_batches_by_digest():
    requests = request_mix()
    session = small_session()
    _, stats = serve_frames(
        requests, session=session, concurrency=len(requests), max_delay_s=0.05
    )
    # Concurrent submissions coalesce: strictly fewer dispatches than
    # requests, and the session saw only the two distinct site sets.
    assert stats.micro_batches < stats.requests
    assert stats.max_batch_size > 1
    assert session.plan_cache.misses == 2
    assert session.stats.frames_run == len(requests)


def test_serve_respects_max_batch():
    requests = request_mix()
    _, stats = serve_frames(
        requests,
        session=small_session(),
        concurrency=len(requests),
        max_batch=2,
        max_delay_s=0.05,
    )
    assert stats.max_batch_size <= 2


def test_server_lifecycle_and_submit_guard():
    async def scenario():
        server = SessionServer(session=small_session())
        with pytest.raises(RuntimeError, match="not running"):
            await server.submit(frame(5))
        async with server:
            out = await server.submit(frame(5))
            assert out.nnz == frame(5).nnz
        # Stopped: further submissions are refused again.
        with pytest.raises(RuntimeError, match="not running"):
            await server.submit(frame(5))
        # stop() is idempotent.
        await server.stop()

    asyncio.run(scenario())


def test_server_drains_queue_on_stop():
    async def scenario():
        server = SessionServer(session=small_session(), max_delay_s=0.0)
        await server.start()
        pending = [
            asyncio.get_running_loop().create_task(server.submit(frame(6)))
            for _ in range(4)
        ]
        await asyncio.sleep(0)  # let submissions enqueue
        await server.stop()
        outs = await asyncio.gather(*pending)
        assert len(outs) == 4
        assert server.stats.requests == 4

    asyncio.run(scenario())


def test_stop_drains_inflight_batches_on_slow_backend():
    """stop() must wait out a batch already inside run_batch.

    With a backend slow enough that stop() lands while a batch is
    mid-compute on the executor, every submitted future still resolves
    (none hang, none are dropped) and the pending count returns to
    zero.
    """
    import time as time_mod

    async def scenario():
        session = small_session()
        real_run_batch = session.run_batch

        def slow_run_batch(tensors):
            time_mod.sleep(0.1)  # outlive the stop() call below
            return real_run_batch(tensors)

        session.run_batch = slow_run_batch
        server = SessionServer(session=session, max_delay_s=0.0, max_batch=2)
        await server.start()
        pending = [
            asyncio.get_running_loop().create_task(server.submit(frame(6)))
            for _ in range(6)
        ]
        await asyncio.sleep(0.03)  # first batch is now inside run_batch
        assert server._pending > 0
        await server.stop()
        outs = await asyncio.gather(*pending)
        assert len(outs) == 6
        assert all(out.nnz == frame(6).nnz for out in outs)
        assert server._pending == 0
        assert server.stats.requests == 6
        assert server.stats.micro_batches >= 3  # max_batch=2 held

    asyncio.run(scenario())


def test_server_propagates_errors_to_clients():
    async def scenario():
        server = SessionServer(session=small_session())
        async with server:
            bad = random_sparse_tensor(
                seed=9, shape=(16, 16, 16), nnz=20, channels=3
            )
            with pytest.raises(ValueError, match="channels"):
                await server.submit(bad)
            # The server survives a failing batch and keeps serving.
            out = await server.submit(frame(7))
            assert out.nnz == frame(7).nnz

    asyncio.run(scenario())


def test_server_validates_parameters():
    with pytest.raises(ValueError, match="max_batch"):
        SessionServer(session=small_session(), max_batch=0)
    with pytest.raises(ValueError, match="max_delay_s"):
        SessionServer(session=small_session(), max_delay_s=-1.0)
    with pytest.raises(ValueError, match="concurrency"):
        asyncio.run(serve([frame(8)], session=small_session(), concurrency=0))


# ----------------------------------------------------------------------
# Satellite: backpressure — queue bound and per-request deadlines
# ----------------------------------------------------------------------
def test_submit_rejects_overload_at_max_pending():
    async def scenario():
        # A long linger keeps requests pending while we overfill.
        server = SessionServer(
            session=small_session(),
            max_pending=2,
            max_delay_s=0.5,
            max_batch=16,
        )
        async with server:
            loop = asyncio.get_running_loop()
            accepted = [
                loop.create_task(server.submit(frame(10))) for _ in range(2)
            ]
            await asyncio.sleep(0.02)  # both enqueued, dispatcher lingering
            with pytest.raises(ServerOverloaded, match="max_pending=2"):
                await server.submit(frame(10))
            assert server.stats.rejected_overload == 1
            outs = await asyncio.gather(*accepted)
            assert all(out.nnz == frame(10).nnz for out in outs)
            # Backlog drained: submissions are accepted again.
            out = await server.submit(frame(10))
            assert out.nnz == frame(10).nnz

    asyncio.run(scenario())


def test_requests_past_deadline_are_rejected_not_executed():
    async def scenario():
        # The linger exceeds the deadline, so every dequeued request is
        # already overdue and must be dropped without compute.
        session = small_session()
        server = SessionServer(
            session=session, deadline_s=0.01, max_delay_s=0.1
        )
        async with server:
            loop = asyncio.get_running_loop()
            pending = [
                loop.create_task(server.submit(frame(11))) for _ in range(3)
            ]
            results = await asyncio.gather(*pending, return_exceptions=True)
            assert all(isinstance(r, DeadlineExceeded) for r in results)
            assert server.stats.rejected_deadline == 3
            assert server.stats.requests == 0
            assert session.stats.frames_run == 0  # no compute burned

        # A generous deadline serves normally.
        server = SessionServer(
            session=small_session(), deadline_s=30.0, max_delay_s=0.0
        )
        async with server:
            out = await server.submit(frame(11))
            assert out.nnz == frame(11).nnz
            assert server.stats.rejected_deadline == 0

    asyncio.run(scenario())


def test_cancelled_requests_are_dropped_without_compute():
    """Satellite regression: a request whose client cancelled while it
    sat in the queue must not be batched into ``run_batch``."""

    async def scenario():
        session = small_session()
        server = SessionServer(session=session, max_delay_s=0.25, max_batch=16)
        async with server:
            loop = asyncio.get_running_loop()
            doomed = loop.create_task(server.submit(frame(12)))
            survivor = loop.create_task(server.submit(frame(13, nnz=35)))
            await asyncio.sleep(0.02)  # both queued, dispatcher lingering
            doomed.cancel()
            out = await survivor
            assert out.nnz == frame(13, nnz=35).nnz
            with pytest.raises(asyncio.CancelledError):
                await doomed
            assert server.stats.rejected_cancelled == 1
            assert server.stats.requests == 1  # only the survivor served
            assert session.stats.frames_run == 1  # no compute for the dead one
            assert server._pending == 0  # accounting stays exact

        # An all-cancelled batch dispatches nothing at all.
        session2 = small_session()
        server2 = SessionServer(session=session2, max_delay_s=0.25)
        async with server2:
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(server2.submit(frame(14))) for _ in range(3)
            ]
            await asyncio.sleep(0.02)
            for task in tasks:
                task.cancel()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, asyncio.CancelledError) for r in results)
            await asyncio.sleep(0.3)  # let the linger window elapse
            assert server2.stats.rejected_cancelled == 3
            assert server2.stats.requests == 0
            assert session2.stats.frames_run == 0
            assert server2._pending == 0

    asyncio.run(scenario())


def test_serve_helper_sheds_rejected_requests():
    requests = request_mix()
    outputs, stats = serve_frames(
        requests,
        session=small_session(),
        concurrency=len(requests),
        max_delay_s=0.2,
        deadline_s=0.001,
    )
    rejected = stats.rejected_deadline + stats.rejected_overload
    assert rejected > 0
    assert sum(out is None for out in outputs) == rejected
    assert stats.requests == len(requests) - rejected


def test_backpressure_parameter_validation():
    with pytest.raises(ValueError, match="max_pending"):
        SessionServer(session=small_session(), max_pending=0)
    with pytest.raises(ValueError, match="deadline_s"):
        SessionServer(session=small_session(), deadline_s=0.0)


def test_serve_stats_fps():
    stats = ServeStats()
    with pytest.raises(ValueError, match="fps is undefined"):
        stats.fps
    stats.requests = 10
    stats.wall_seconds = 2.0
    assert stats.fps == 5.0
    assert stats.mean_batch_size == 0.0
    assert stats.max_batch_size == 0


def test_serve_empty_request_list():
    outputs, stats = serve_frames([], session=small_session())
    assert outputs == []
    assert stats.requests == 0


@pytest.mark.parametrize("backend", ["numpy", "scipy"])
def test_serve_across_backends(backend):
    requests = request_mix()[:4]
    reference = small_session()
    expected = [reference.run(t) for t in requests]
    session = small_session(backend=backend)
    outputs, _ = serve_frames(requests, session=session, concurrency=4)
    for out, ref in zip(outputs, expected):
        assert np.array_equal(out.features, ref.features)


def test_serve_wall_clock_includes_linger():
    """fps must be computed over the real serving span (including the
    coalescing linger), not just time inside run_batch."""
    requests = request_mix()[:4]
    _, stats = serve_frames(
        requests, session=small_session(), concurrency=4, max_delay_s=0.02
    )
    assert stats.wall_seconds >= stats.busy_seconds > 0.0
    assert stats.fps > 0.0


# ----------------------------------------------------------------------
# Telemetry (registry-backed stats)
# ----------------------------------------------------------------------
def test_concurrent_submit_stress_accounting():
    """Counters stay consistent with submits racing the dispatch loop.

    The old ServeStats ints were mutated from both the submit path and
    the dispatcher without a lock; the registry-backed counters must
    tally exactly under cross-thread contention.
    """
    from concurrent.futures import ThreadPoolExecutor

    session = small_session()
    num_clients, per_client = 8, 6

    async def _run():
        async with SessionServer(
            session=session, max_batch=4, max_pending=6
        ) as server:
            loop = asyncio.get_running_loop()

            def client(seed):
                ok = shed = 0
                for i in range(per_client):
                    future = asyncio.run_coroutine_threadsafe(
                        server.submit(frame(1 + (seed + i) % 2)), loop
                    )
                    try:
                        future.result(timeout=60.0)
                        ok += 1
                    except ServerOverloaded:
                        shed += 1
                return ok, shed

            # A dedicated pool: the loop's default executor stays free
            # for the dispatcher's run_batch calls.
            with ThreadPoolExecutor(max_workers=num_clients) as pool:
                tallies = await asyncio.gather(
                    *(
                        loop.run_in_executor(pool, client, seed)
                        for seed in range(num_clients)
                    )
                )
            stats = server.stats
        return tallies, stats

    tallies, stats = asyncio.run(_run())
    ok = sum(t[0] for t in tallies)
    shed = sum(t[1] for t in tallies)
    assert ok + shed == num_clients * per_client
    assert stats.requests == ok
    assert stats.rejected_overload == shed
    assert sum(stats.batch_sizes) == ok


def test_serve_metrics_render_and_trace():
    """A shared registry exposes per-stage serve histograms; the tracer
    records one queue-wait/linger/execute/respond timeline per batch."""
    from repro.obs.metrics import MetricRegistry
    from repro.obs.trace import Tracer

    registry = MetricRegistry()
    tracer = Tracer()
    requests = request_mix()
    _, stats = serve_frames(
        requests,
        session=small_session(),
        concurrency=4,
        registry=registry,
        tracer=tracer,
    )
    assert registry.get("repro_serve_requests_total").value() == len(requests)
    assert registry.get("repro_serve_queue_depth").value() == 0
    e2e = registry.get("repro_serve_e2e_seconds")
    assert e2e.count() == len(requests)
    assert registry.get("repro_serve_batch_size").count() == (
        stats.micro_batches
    )
    text = registry.render()
    for name in (
        "repro_serve_e2e_seconds_bucket",
        "repro_serve_queue_wait_seconds_bucket",
        "repro_serve_linger_seconds_bucket",
        "repro_serve_execute_seconds_bucket",
    ):
        assert name in text

    assert len(tracer) == stats.micro_batches
    spans = [span["name"] for span in tracer.dump()[0]["spans"]]
    assert spans == ["queue-wait", "batch-linger", "execute", "respond"]


def test_serve_disabled_registry_skips_histograms():
    from repro.obs.metrics import MetricRegistry

    registry = MetricRegistry(enabled=False)
    requests = request_mix()[:4]
    _, stats = serve_frames(
        requests, session=small_session(), registry=registry
    )
    assert stats.requests == 4  # counters still track accounting
    assert registry.get("repro_serve_e2e_seconds").count() == 0


def test_shed_reasons_reach_registry():
    from repro.obs.metrics import MetricRegistry

    registry = MetricRegistry()
    requests = request_mix()
    _, stats = serve_frames(
        requests,
        session=small_session(),
        concurrency=len(requests),
        max_pending=1,
        registry=registry,
    )
    shed = registry.get("repro_serve_shed_total")
    assert shed.value(reason="overload") == stats.rejected_overload
    assert stats.rejected_overload > 0
