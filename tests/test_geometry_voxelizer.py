"""Unit tests for the voxelizer."""

import numpy as np
import pytest

from repro.geometry import PointCloud, Voxelizer


def test_basic_voxelization():
    points = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]])
    grid = Voxelizer(resolution=10, normalize=False).voxelize(PointCloud(points))
    assert grid.shape == (10, 10, 10)
    assert grid.nnz == 2
    assert (1, 1, 1) in grid
    assert (9, 9, 9) in grid


def test_duplicate_points_merge_to_one_voxel():
    points = np.array([[0.11, 0.11, 0.11], [0.12, 0.12, 0.12]])
    grid = Voxelizer(resolution=10, normalize=False).voxelize(PointCloud(points))
    assert grid.nnz == 1


def test_feature_mean_aggregation():
    points = np.array([[0.15, 0.15, 0.15], [0.18, 0.18, 0.18]])
    features = np.array([[2.0], [4.0]])
    grid = Voxelizer(resolution=10, normalize=False).voxelize(
        PointCloud(points, features)
    )
    assert grid.feature_at((1, 1, 1))[0] == pytest.approx(3.0)


def test_occupancy_only_ignores_features():
    points = np.array([[0.5, 0.5, 0.5]])
    grid = Voxelizer(resolution=8, normalize=False, occupancy_only=True).voxelize(
        PointCloud(points, np.array([[42.0]]))
    )
    assert grid.feature_at((4, 4, 4))[0] == 1.0


def test_normalization_fills_grid():
    rng = np.random.default_rng(0)
    points = rng.uniform(-100, 100, size=(500, 3))
    grid = Voxelizer(resolution=16, normalize=True).voxelize(PointCloud(points))
    # Normalized cloud must span most of the grid on the longest axis.
    assert grid.coords[:, 0].max() >= 14 or grid.coords[:, 1].max() >= 14 or \
        grid.coords[:, 2].max() >= 14


def test_boundary_points_clamped():
    points = np.array([[1.0, 1.0, 1.0]])
    grid = Voxelizer(resolution=4, normalize=False).voxelize(PointCloud(points))
    assert grid.nnz == 1
    assert (3, 3, 3) in grid


def test_empty_cloud_produces_empty_grid():
    grid = Voxelizer(resolution=8).voxelize(PointCloud(np.zeros((0, 3))))
    assert grid.nnz == 0
    assert grid.shape == (8, 8, 8)


def test_invalid_resolution():
    with pytest.raises(ValueError):
        Voxelizer(resolution=0)


def test_voxel_size():
    points = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
    vox = Voxelizer(resolution=10, normalize=True)
    assert vox.voxel_size(PointCloud(points)) == pytest.approx(1.0)
    assert Voxelizer(resolution=10, normalize=False).voxel_size(
        PointCloud(points)
    ) == pytest.approx(0.1)


def test_paper_resolution_sparsity():
    """At 192^3 the synthetic samples must be ~99.9% sparse (Sec. III-A)."""
    from repro.geometry import make_shapenet_like_cloud

    grid = Voxelizer(resolution=192, normalize=False).voxelize(
        make_shapenet_like_cloud(seed=0)
    )
    assert grid.sparsity > 0.999
