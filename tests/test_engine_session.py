"""Tests for the unified InferenceSession, PlanCache, and batched execution."""

import numpy as np
import pytest

from repro.engine import InferenceSession, PlanCache, QuantizationSpec
from repro.nn import (
    RulebookCache,
    SSUNet,
    UNetConfig,
    apply_rulebook,
    apply_rulebook_batch,
    build_submanifold_rulebook,
)
from repro.sparse.coo import SparseTensor3D
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)


def small_session(**kwargs):
    return InferenceSession(unet_config=SMALL_CFG, **kwargs)


def frame(seed, nnz=50, channels=2, shape=(16, 16, 16)):
    return random_sparse_tensor(seed=seed, shape=shape, nnz=nnz, channels=channels)


def expected_matching_passes(cfg: UNetConfig) -> int:
    """One submanifold pass per scale, one strided pass per downsample,
    plus the 1^3 head at full resolution."""
    return cfg.levels + (cfg.levels - 1) + 1


# ----------------------------------------------------------------------
# apply_rulebook_batch
# ----------------------------------------------------------------------
def test_apply_rulebook_batch_matches_per_frame():
    rng = np.random.default_rng(0)
    tensor = frame(1, nnz=70, channels=3)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = rng.standard_normal((27, 3, 5))
    stack = rng.standard_normal((4, tensor.nnz, 3))
    batched = apply_rulebook_batch(rulebook, stack, weights, tensor.nnz)
    for b in range(4):
        single = apply_rulebook(rulebook, stack[b], weights, tensor.nnz)
        assert np.array_equal(batched[b], single)


def test_apply_rulebook_batch_integer_dtype():
    tensor = frame(2, nnz=30, channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    stack = np.rint(
        np.random.default_rng(3).standard_normal((2, tensor.nnz, 2)) * 50
    ).astype(np.int16)
    weights = np.ones((27, 2, 3), dtype=np.int8)
    out = apply_rulebook_batch(rulebook, stack, weights, tensor.nnz)
    assert out.dtype == np.int64
    for b in range(2):
        assert np.array_equal(
            out[b], apply_rulebook(rulebook, stack[b], weights, tensor.nnz)
        )


def test_apply_rulebook_batch_rejects_2d():
    tensor = frame(4, nnz=10)
    rulebook = build_submanifold_rulebook(tensor, 3)
    with pytest.raises(ValueError, match=r"\(B, N, Cin\)"):
        apply_rulebook_batch(
            rulebook, tensor.features, np.zeros((27, 4, 2)), tensor.nnz
        )


def test_apply_rulebook_batch_empty():
    tensor = SparseTensor3D.empty((6, 6, 6), channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    out = apply_rulebook_batch(
        rulebook, np.zeros((3, 0, 2)), np.zeros((27, 2, 4)), 0
    )
    assert out.shape == (3, 0, 4)


# ----------------------------------------------------------------------
# session.run — the module-tree forward through session caches
# ----------------------------------------------------------------------
def test_run_matches_plain_network_bit_identically():
    tensor = frame(5, nnz=60)
    session = small_session()
    out = session.run(tensor)
    plain = SSUNet(SMALL_CFG)(tensor)
    assert np.array_equal(out.features, plain.features)
    assert np.array_equal(out.coords, plain.coords)


def test_run_uses_shared_weights_across_frames():
    session = small_session()
    a = session.run(frame(6))
    b = session.run(frame(6))
    assert np.array_equal(a.features, b.features)


# ----------------------------------------------------------------------
# Satellite: batched execution bit-identical to per-frame runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precision", ["float64", "float32", "int"])
def test_run_batch_bit_identical_cold_and_warm(precision):
    frames = [frame(seed, nnz=40 + seed) for seed in (10, 11, 12)]
    # A repeated site set with fresh features exercises true stacking.
    frames.append(
        frames[0].with_features(
            np.random.default_rng(13).standard_normal((frames[0].nnz, 2))
        )
    )
    reference = small_session(precision=precision)
    singles = [reference.run(f) for f in frames]

    cold = small_session(precision=precision)
    for batch_out in (cold.run_batch(frames), cold.run_batch(frames)):
        for out, single in zip(batch_out, singles):
            assert out.features.dtype == single.features.dtype
            assert np.array_equal(out.features, single.features)
            assert np.array_equal(out.coords, single.coords)


def test_run_batch_groups_by_site_set():
    frames = [frame(20, nnz=35), frame(21, nnz=36)]
    frames.append(frames[0].with_features(frames[0].features * 2.0))
    session = small_session()
    session.run_batch(frames)
    # Two distinct site sets -> two plans, the third frame reuses the first.
    assert session.plan_cache.misses == 2
    stats = session.stats
    assert stats.frames_run == 3
    assert stats.batches_run == 1


def test_run_batch_empty_and_mixed_channels():
    session = small_session()
    assert session.run_batch([]) == []
    bad = [frame(22, channels=2), frame(23, channels=3)]
    with pytest.raises(ValueError, match="channel"):
        session.run_batch(bad)


def test_run_batch_mixed_channels_error_names_frame_and_counts():
    """Satellite: mismatched inputs raise a clear ValueError (naming the
    offending frame and the channel counts present), never a cryptic
    numpy broadcast/stack error."""
    session = small_session()
    bad = [frame(22, channels=2), frame(23, channels=3), frame(24, channels=2)]
    with pytest.raises(ValueError, match=r"frame 1 has 3.*\[2, 3\]"):
        session.run_batch(bad)
    # All frames wrong (consistent with each other) still names the width.
    with pytest.raises(ValueError, match="expects 2 input channels"):
        session.run_batch([frame(25, channels=4)])
    # The same validation guards the float32/int single-frame path.
    with pytest.raises(ValueError, match="frame 0 has 4"):
        small_session(precision="float32").run(frame(26, channels=4))


# ----------------------------------------------------------------------
# Satellite: batched estimate — one NetworkPlan per digest group
# ----------------------------------------------------------------------
def test_estimate_batch_parity_with_per_frame_estimate():
    frames = [frame(60, nnz=50), frame(61, nnz=55)]
    frames.append(frames[0].with_features(frames[0].features * 2.0))
    reference = small_session()
    expected = [reference.estimate(f) for f in frames]
    session = small_session()
    estimates = session.estimate_batch(frames)
    assert len(estimates) == len(frames)
    for est, ref in zip(estimates, expected):
        assert est.total_cycles == ref.total_cycles
        assert est.accel_seconds == ref.accel_seconds
        assert est.host_seconds == ref.host_seconds
        assert est.effective_ops == ref.effective_ops
        assert [layer.name for layer in est.layers] == [
            layer.name for layer in ref.layers
        ]


def test_simulate_batch_parity_with_per_frame_simulate():
    """Satellite: one plan/cycle-accurate pass per digest group, with
    per-frame timing parity against simulate()."""
    cfg = UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2)
    frames = [
        random_sparse_tensor(seed=70, shape=(12, 12, 12), nnz=30, channels=1),
        random_sparse_tensor(seed=71, shape=(12, 12, 12), nnz=35, channels=1),
    ]
    frames.append(frames[0].with_features(frames[0].features * 2.0))
    reference = InferenceSession(unet_config=cfg)
    expected = [reference.simulate(f) for f in frames]
    session = InferenceSession(unet_config=cfg)
    results = session.simulate_batch(frames)
    assert len(results) == len(frames)
    for got, want in zip(results, expected):
        assert got.total_cycles == want.total_cycles
        assert got.time_seconds == want.time_seconds
        assert got.end_to_end_seconds == want.end_to_end_seconds
        assert [layer.layer_name for layer in got.layers] == [
            layer.layer_name for layer in want.layers
        ]
        assert len(got.host_layers) == len(want.host_layers)
    # Two distinct site sets -> two plans and two simulator passes; the
    # repeated frame shares its group's result object outright.
    assert session.plan_cache.misses == 2
    assert results[2] is results[0]
    assert results[1] is not results[0]
    assert session.stats.simulations == 3
    assert session.simulate_batch([]) == []


def test_simulate_counts_in_stats():
    cfg = UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2)
    session = InferenceSession(unet_config=cfg)
    tensor = random_sparse_tensor(seed=72, shape=(12, 12, 12), nnz=25, channels=1)
    session.simulate(tensor)
    assert session.stats.simulations == 1
    session.reset_stats()
    assert session.stats.simulations == 0


def test_estimate_batch_shares_plan_per_digest_group():
    frames = [frame(62, nnz=40), frame(63, nnz=42)]
    frames.append(frames[0].with_features(frames[0].features + 1.0))
    session = small_session()
    estimates = session.estimate_batch(frames)
    # Two distinct site sets -> two plans; the repeat shares the group's
    # estimate object outright.
    assert session.plan_cache.misses == 2
    assert estimates[2] is estimates[0]
    assert estimates[1] is not estimates[0]
    assert session.stats.estimates == 3
    assert session.estimate_batch([]) == []


def test_float32_output_dtype():
    session = small_session(precision="float32")
    out = session.run(frame(24))
    assert out.features.dtype == np.float32


def test_int_precision_runs_fixed_point_pipeline():
    session = small_session(precision="int")
    out = session.run(frame(25))
    # Dequantized outputs are float but must be representable on the
    # session's activation grid: out = q * scale for integer q.
    assert out.features.dtype == np.float64
    assert np.isfinite(out.features).all()
    spec = session.quantization
    assert isinstance(spec, QuantizationSpec)


# ----------------------------------------------------------------------
# Tentpole invariant: one matching pass per (scale, kind)
# ----------------------------------------------------------------------
def test_warm_session_one_matching_pass_per_scale_and_kind():
    tensor = frame(30, nnz=80)
    session = small_session()
    plan = session.warm(tensor)
    expected = expected_matching_passes(SMALL_CFG)
    assert plan.matching_passes == expected
    assert session.stats.matching_passes == expected

    # Network forward, analytical estimate (incl. host model), and a
    # repeated warm() must not add a single matching pass.
    session.run(tensor)
    estimate = session.estimate(tensor)
    session.warm(tensor)
    stats = session.stats
    assert stats.matching_passes == expected
    assert stats.rulebook_hits > 0
    assert estimate.total_cycles > 0
    assert estimate.host_seconds > 0
    assert estimate.end_to_end_seconds > estimate.accel_seconds


def test_default_unet_warm_session_matching_passes():
    """Acceptance criterion: the default SS U-Net on a warm session does
    exactly one matching pass per (scale, kind) — 4 submanifold scales,
    3 strided downsamples, and the 1^3 head — across network forward,
    analytical estimate, and host model."""
    cfg = UNetConfig()  # the paper's default: levels=4, kernel 3, head 1^3
    tensor = random_sparse_tensor(seed=34, shape=(16, 16, 16), nnz=80, channels=1)
    session = InferenceSession(unet_config=cfg)
    session.run(tensor)
    expected = expected_matching_passes(cfg)
    assert expected == 8
    assert session.stats.matching_passes == expected
    session.estimate(tensor)  # host model included
    session.run(tensor)
    stats = session.stats
    assert stats.matching_passes == expected
    assert stats.rulebook_misses == expected


def test_cycle_accurate_simulation_reuses_session_rulebooks():
    cfg = UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2)
    tensor = random_sparse_tensor(seed=31, shape=(16, 16, 16), nnz=50, channels=1)
    session = InferenceSession(unet_config=cfg)
    session.warm(tensor)
    passes = session.stats.matching_passes
    assert passes == expected_matching_passes(cfg)
    result = session.simulate(tensor)
    assert session.stats.matching_passes == passes
    assert len(result.layers) > 0
    assert len(result.host_layers) == 3  # down0, up0, 1^3 head
    assert result.end_to_end_seconds > 0


def test_estimate_layer_accounting():
    tensor = frame(32, nnz=70)
    session = small_session()
    estimate = session.estimate(tensor)
    # levels=3, reps=1: subconvs enc0, enc1, bottom, dec1, dec0 accelerated;
    # host side: down0, down1, up1, up0, head.
    assert [layer.name for layer in estimate.layers] == [
        "enc0.conv0", "enc1.conv0", "bottom.conv0", "dec1.conv0", "dec0.conv0"
    ]
    assert [run.name for run in estimate.host_layers] == [
        "down0", "down1", "up1", "up0", "head"
    ]
    assert {run.kind for run in estimate.host_layers} == {
        "sparseconv", "invconv", "subconv"
    }
    for layer in estimate.layers:
        assert layer.cycles > 0
        assert layer.total_seconds >= layer.core_seconds
        assert layer.effective_ops > 0
    assert estimate.effective_gops() > 0


def test_estimate_matches_streamed_per_layer_model():
    """The network estimate's full-resolution encoder layer must agree
    with the single-layer analytical path on matches and cycles."""
    tensor = frame(33, nnz=90)
    session = small_session()
    estimate = session.estimate(tensor)
    enc0 = estimate.layers[0]
    single = session.estimate_subconv(
        tensor, enc0.in_channels, enc0.out_channels
    )
    assert enc0.matches == single.matches
    assert enc0.cycles == single.cycles


# ----------------------------------------------------------------------
# PlanCache
# ----------------------------------------------------------------------
def test_plan_cache_hits_on_same_site_set():
    session = small_session()
    tensor = frame(40)
    session.warm(tensor)
    session.warm(tensor.with_features(tensor.features * 3.0))
    assert session.plan_cache.hits == 1
    assert session.plan_cache.misses == 1


def test_plan_cache_lru_eviction():
    session = small_session(plan_cache=PlanCache(capacity=2))
    tensors = [frame(seed, nnz=20 + seed) for seed in (41, 42, 43)]
    for tensor in tensors:
        session.warm(tensor)
    assert len(session.plan_cache) == 2
    session.warm(tensors[0])  # evicted -> rebuilt
    assert session.plan_cache.misses == 4


def test_plan_cache_lru_eviction_order_follows_recency():
    """Satellite: eviction follows *use* recency, not insertion order —
    a hit refreshes the entry, pushing the stale one out first."""
    session = small_session(plan_cache=PlanCache(capacity=2))
    a, b, c = (frame(seed, nnz=25 + seed) for seed in (50, 51, 52))
    session.warm(a)
    session.warm(b)
    session.warm(a)  # refresh a: b is now least-recently-used
    session.warm(c)  # evicts b, keeps a
    cache = session.plan_cache
    hits, misses = cache.hits, cache.misses
    session.warm(a)
    assert (cache.hits, cache.misses) == (hits + 1, misses)  # a survived
    session.warm(c)
    assert (cache.hits, cache.misses) == (hits + 2, misses)  # c present
    session.warm(b)
    assert (cache.hits, cache.misses) == (hits + 2, misses + 1)  # b evicted


def test_plan_cache_reseeds_rulebook_cache():
    """A cached plan restores its rulebooks after rulebook-cache eviction,
    keeping warm forwards all-hits without new matching passes."""
    tensor = frame(44, nnz=60)
    session = small_session()
    session.warm(tensor)
    session.rulebook_cache.clear()
    session.rulebook_cache.reset_stats()
    session.run(tensor)  # plan hit re-seeds every entry
    assert session.stats.matching_passes == 0
    assert session.stats.rulebook_hits > 0


def test_plan_cache_validates_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_plan_distinguishes_network_geometry():
    tensor = frame(45)
    cache = PlanCache()
    shared_rulebooks = RulebookCache()
    net_a = SSUNet(SMALL_CFG)
    net_b = SSUNet(UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=2))
    cache.network_plan(tensor, net_a, shared_rulebooks)
    cache.network_plan(tensor, net_b, shared_rulebooks)
    assert cache.misses == 2


# ----------------------------------------------------------------------
# Session configuration and statistics
# ----------------------------------------------------------------------
def test_session_validates_precision():
    with pytest.raises(ValueError, match="precision"):
        InferenceSession(precision="float16")


def test_session_rejects_conflicting_net_and_config():
    net = SSUNet(SMALL_CFG)
    with pytest.raises(ValueError, match="disagree"):
        InferenceSession(net=net, unet_config=UNetConfig(levels=2))


def test_session_lazy_default_network():
    session = InferenceSession()
    assert session.unet_config == UNetConfig()


def test_reset_stats():
    session = small_session()
    session.run(frame(46))
    session.reset_stats()
    stats = session.stats
    assert stats.frames_run == 0
    assert stats.matching_passes == 0
    assert stats.apply_matches == 0
    assert stats.plan_misses == 0


def test_subconv_helper_uses_session_cache():
    session = InferenceSession()
    tensor = frame(47, channels=1)
    weights = np.random.default_rng(0).standard_normal((27, 1, 8))
    first = session.subconv(tensor, weights)
    second = session.subconv(tensor, weights)
    assert session.stats.matching_passes == 1
    assert session.stats.rulebook_hits == 1
    assert np.array_equal(first.features, second.features)


def test_use_rulebook_cache_is_deprecated():
    """Satellite: the deprecation is a real DeprecationWarning whose
    message points at session ownership and the backend= knob."""
    layer_net = SSUNet(SMALL_CFG)
    with pytest.warns(DeprecationWarning, match="InferenceSession") as record:
        layer_net.use_rulebook_cache(RulebookCache())
    message = str(record[0].message)
    assert "backend=" in message
    assert "rulebook cache" in message
    # The attachment itself still works for standalone module use.
    assert layer_net.rulebook_cache is not None


# ----------------------------------------------------------------------
# Telemetry (repro.obs registry instrumentation)
# ----------------------------------------------------------------------
def test_session_metrics_mirror_stats():
    session = small_session()
    frames = [
        random_sparse_tensor(seed=s, shape=(16, 16, 16), nnz=40, channels=2)
        for s in (1, 1, 2)
    ]
    for frame in frames:
        session.run(frame)
    stats = session.stats
    reg = session.registry
    lookups = reg.get("repro_session_cache_lookups_total")
    assert lookups.value(cache="plan", result="hit") == stats.plan_hits
    assert lookups.value(cache="plan", result="miss") == stats.plan_misses
    assert lookups.value(cache="rulebook", result="hit") == (
        stats.rulebook_hits
    )
    assert reg.get("repro_session_frames_total").value() == 3
    dispatch = reg.get("repro_session_dispatch_seconds")
    assert dispatch.count(path="run") == 3
    stage = reg.get("repro_session_stage_seconds")
    assert stage.count(stage="gemm") > 0
    text = reg.render()
    assert 'repro_session_info{' in text
    assert "repro_session_dispatch_seconds_bucket" in text


def test_session_metrics_follow_reset_stats():
    session = small_session()
    session.run(
        random_sparse_tensor(seed=3, shape=(16, 16, 16), nnz=40, channels=2)
    )
    session.reset_stats()
    assert session.registry.get("repro_session_frames_total").value() == 0


def test_session_disabled_registry_skips_timing():
    from repro.obs.metrics import MetricRegistry

    registry = MetricRegistry(enabled=False)
    session = small_session(registry=registry)
    frame = random_sparse_tensor(
        seed=4, shape=(16, 16, 16), nnz=40, channels=2
    )
    out_disabled = session.run(frame)
    assert registry.get("repro_session_dispatch_seconds").count(
        path="run"
    ) == 0
    # Bit-identical output with telemetry on.
    reference = small_session().run(frame)
    assert np.array_equal(out_disabled.features, reference.features)
