"""Tests for extensions: config serialization, transfer overlap, K=5,
anisotropic tiles, failure injection, and property-based end-to-end
bit-exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    AcceleratorConfig,
    EscaAccelerator,
    SystemOverheadModel,
    layer_transfer_volume,
)
from repro.arch.config import SdmuTiming
from repro.sim import SimulationError
from tests.conftest import random_sparse_tensor


# ----------------------------------------------------------------------
# Config serialization
# ----------------------------------------------------------------------
def test_config_round_trip():
    config = AcceleratorConfig(
        kernel_size=5,
        tile_shape=(4, 8, 16),
        fifo_depth=4,
        timing=SdmuTiming(srf_cadence_cycles=2),
    )
    rebuilt = AcceleratorConfig.from_dict(config.to_dict())
    assert rebuilt == config


def test_config_to_dict_is_json_serializable():
    import json

    text = json.dumps(AcceleratorConfig().to_dict())
    rebuilt = AcceleratorConfig.from_dict(json.loads(text))
    assert rebuilt == AcceleratorConfig()


def test_config_from_dict_rejects_unknown_keys():
    data = AcceleratorConfig().to_dict()
    data["warp_drive"] = True
    with pytest.raises(TypeError):
        AcceleratorConfig.from_dict(data)


# ----------------------------------------------------------------------
# Transfer overlap extension
# ----------------------------------------------------------------------
def test_overlap_hides_transfers_behind_compute():
    volume = layer_transfer_volume(
        nnz_in=1000, nnz_out=1000, in_channels=16, out_channels=16,
        kernel_volume=27, mask_bits=8192,
    )
    base = SystemOverheadModel()
    overlapped = SystemOverheadModel(overlap_transfers=True)
    long_compute = 1.0  # far longer than any transfer here
    assert overlapped.layer_overhead_seconds(volume, long_compute) == \
        pytest.approx(overlapped.host_sync_seconds)
    # Without compute to hide behind, overlap degenerates to the base model.
    assert overlapped.layer_overhead_seconds(volume, 0.0) == pytest.approx(
        base.layer_overhead_seconds(volume, 0.0)
    )


def test_overlap_partial():
    volume = layer_transfer_volume(
        nnz_in=10_000, nnz_out=10_000, in_channels=64, out_channels=64,
        kernel_volume=27, mask_bits=0,
    )
    model = SystemOverheadModel(overlap_transfers=True)
    transfer = model.transfer_seconds(volume)
    half = transfer / 2
    expected = model.host_sync_seconds + transfer - half
    assert model.layer_overhead_seconds(volume, half) == pytest.approx(expected)


def test_accelerator_with_overlap_is_at_least_as_fast():
    tensor = random_sparse_tensor(seed=170, shape=(16, 16, 16), nnz=40, channels=8)
    base = EscaAccelerator().run_layer(tensor, out_channels=8)
    fast = EscaAccelerator(
        overheads=SystemOverheadModel(overlap_transfers=True)
    ).run_layer(tensor, out_channels=8)
    assert fast.total_seconds <= base.total_seconds
    assert fast.total_cycles == base.total_cycles


# ----------------------------------------------------------------------
# Generality: K = 5 kernels, anisotropic tiles
# ----------------------------------------------------------------------
def test_kernel5_end_to_end_bit_exact():
    config = AcceleratorConfig(kernel_size=5)
    assert config.decoder_lanes == 25
    tensor = random_sparse_tensor(seed=171, shape=(12, 12, 12), nnz=40, channels=2)
    result = EscaAccelerator(config).run_layer(tensor, out_channels=4, verify=True)
    from repro.nn import build_submanifold_rulebook

    rulebook = build_submanifold_rulebook(tensor, 5)
    assert result.matches == rulebook.total_matches


def test_anisotropic_tiles_bit_exact():
    config = AcceleratorConfig(tile_shape=(4, 8, 16))
    tensor = random_sparse_tensor(seed=172, shape=(16, 16, 16), nnz=50, channels=2)
    result = EscaAccelerator(config).run_layer(tensor, out_channels=4, verify=True)
    assert result.matches > 0


# ----------------------------------------------------------------------
# Failure injection
# ----------------------------------------------------------------------
def test_max_cycles_guard_raises():
    tensor = random_sparse_tensor(seed=173, shape=(16, 16, 16), nnz=60, channels=4)
    with pytest.raises(SimulationError):
        EscaAccelerator().run_layer(tensor, out_channels=8, max_cycles=10)


def test_verify_catches_corruption():
    """The verifier must actually detect wrong accumulators."""
    tensor = random_sparse_tensor(seed=174, shape=(8, 8, 8), nnz=20, channels=2)
    accel = EscaAccelerator()
    result = accel.run_layer(tensor, out_channels=3)
    corrupted = result.accumulators.copy()
    corrupted[0, 0] += 1
    with pytest.raises(AssertionError, match="mismatch"):
        accel._verify_against_reference(
            tensor,
            np.rint(tensor.features / result.act_scale).astype(np.int64),
            # Reconstruct quantized weights from the run is not possible
            # here; instead verify that corruption of a correct pair is
            # caught by comparing corrupted vs correct directly.
            _weights_for(tensor, result),
            corrupted,
        )


def _weights_for(tensor, result):
    """Recover the integer weights that produced ``result``."""
    # run_layer generated weights deterministically from seed 0.
    from repro.nn.init import conv_weight
    from repro.quant import WEIGHT_INT8, quantize_tensor

    rng = np.random.default_rng(0)
    weights = conv_weight(rng, 27, tensor.num_channels, result.out_channels)
    return quantize_tensor(weights, WEIGHT_INT8, scale=result.weight_scale).data


# ----------------------------------------------------------------------
# Property-based end-to-end bit-exactness
# ----------------------------------------------------------------------
@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_property_pipeline_bit_exact(seed):
    """For random small tensors, the pipeline is always bit-exact."""
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(1, 15))
    tensor = random_sparse_tensor(
        seed=seed, shape=(6, 6, 6), nnz=nnz, channels=int(rng.integers(1, 4))
    )
    EscaAccelerator().run_layer(
        tensor, out_channels=int(rng.integers(1, 5)), seed=seed, verify=True
    )
