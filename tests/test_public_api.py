"""Public-API integrity: every advertised name must resolve and work."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.sparse",
    "repro.geometry",
    "repro.nn",
    "repro.quant",
    "repro.arch",
    "repro.hwmodel",
    "repro.baselines",
    "repro.analysis",
    "repro.runtime",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__) > 40, (
        f"{package} needs a real docstring"
    )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_headline_workflow_from_top_level():
    """The README quickstart must work with top-level imports only."""
    from repro import (
        AcceleratorConfig,
        EscaAccelerator,
        Voxelizer,
        ZeroRemover,
        make_shapenet_like_cloud,
    )

    cloud = make_shapenet_like_cloud(seed=0, n_points=300)
    grid = Voxelizer(resolution=48, normalize=False).voxelize(cloud)
    removal = ZeroRemover((8, 8, 8)).remove(grid)
    assert removal.removing_ratio > 0
    result = EscaAccelerator(AcceleratorConfig()).run_layer(
        grid, out_channels=4, verify=True
    )
    assert result.total_cycles > 0
