"""Tests for the metric registry core (repro.obs.metrics)."""

import json
import math
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricRegistry,
)


# ----------------------------------------------------------------------
# Registry declaration semantics
# ----------------------------------------------------------------------
def test_declarations_are_idempotent():
    reg = MetricRegistry()
    a = reg.counter("repro_x_total", "help", labels=("stage",))
    b = reg.counter("repro_x_total", "other help", labels=("stage",))
    assert a is b
    assert reg.names() == ["repro_x_total"]


def test_conflicting_redeclaration_raises():
    reg = MetricRegistry()
    reg.counter("repro_x_total", labels=("stage",))
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("repro_x_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.counter("repro_x_total", labels=("other",))


def test_invalid_names_and_labels_raise():
    reg = MetricRegistry()
    with pytest.raises(ValueError, match="invalid metric name"):
        reg.counter("bad name")
    with pytest.raises(ValueError, match="invalid label name"):
        reg.counter("repro_ok_total", labels=("bad-label",))


def test_get_and_names():
    reg = MetricRegistry()
    c = reg.counter("repro_b_total")
    reg.gauge("repro_a")
    assert reg.get("repro_b_total") is c
    assert reg.get("missing") is None
    assert reg.names() == ["repro_a", "repro_b_total"]


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
def test_counter_inc_value_total_with_labels():
    reg = MetricRegistry()
    c = reg.counter("repro_hits_total", labels=("cache", "result"))
    c.inc(cache="plan", result="hit")
    c.inc(3, cache="plan", result="miss")
    assert c.value(cache="plan", result="hit") == 1
    assert c.value(cache="plan", result="miss") == 3
    assert c.value(cache="rulebook", result="hit") == 0
    assert c.total() == 4
    assert c.series() == {("plan", "hit"): 1.0, ("plan", "miss"): 3.0}


def test_counter_sync_to_pins_absolute_value():
    reg = MetricRegistry()
    c = reg.counter("repro_frames_total")
    c.sync_to(7)
    c.sync_to(9)
    assert c.value() == 9  # pinned, not accumulated


def test_counter_label_mismatch_raises():
    reg = MetricRegistry()
    c = reg.counter("repro_hits_total", labels=("cache",))
    with pytest.raises(ValueError, match="expects labels"):
        c.inc()
    with pytest.raises(ValueError, match="expects labels"):
        c.inc(wrong="x")


def test_counters_count_even_when_registry_disabled():
    # Counters back ServeStats/ClusterStats accounting: they must stay
    # correct with telemetry off.
    reg = MetricRegistry(enabled=False)
    c = reg.counter("repro_requests_total")
    c.inc()
    assert c.value() == 1


def test_gauge_set_inc_dec():
    reg = MetricRegistry()
    g = reg.gauge("repro_depth", labels=("worker",))
    g.set(4, worker="a:1")
    g.inc(worker="a:1")
    g.dec(2, worker="a:1")
    assert g.value(worker="a:1") == 3
    assert g.value(worker="b:2") == 0


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_bucketing_and_count_sum():
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 0.5):
        h.observe(v)
    assert h.count() == 4
    assert h.sum() == pytest.approx(0.5555)


def test_histogram_quantile_interpolates_within_bucket():
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        h.observe(1.5)  # all land in the (1, 2] bucket
    # rank 5 of 10 -> half-way through the (1.0, 2.0] bucket
    assert h.quantile(0.5) == pytest.approx(1.5)
    assert h.quantile(1.0) == pytest.approx(2.0)


def test_histogram_overflow_clamps_to_last_bound():
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds", buckets=(0.001, 0.01))
    h.observe(5.0)  # beyond every finite bucket
    assert h.quantile(0.99) == pytest.approx(0.01)


def test_histogram_empty_series_is_nan():
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds")
    assert math.isnan(h.quantile(0.5))
    with pytest.raises(ValueError, match="quantile"):
        h.quantile(1.5)


def test_histogram_disabled_observe_is_noop():
    reg = MetricRegistry(enabled=False)
    h = reg.histogram("repro_lat_seconds")
    h.observe(0.01)
    assert h.count() == 0
    reg.enable()
    h.observe(0.01)
    assert h.count() == 1


def test_histogram_rejects_bad_buckets():
    reg = MetricRegistry()
    with pytest.raises(ValueError, match="ascending"):
        reg.histogram("repro_bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError, match="ascending"):
        reg.histogram("repro_bad2", buckets=())


def test_default_bucket_layouts():
    assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)
    assert LATENCY_BUCKETS_S[0] == pytest.approx(50e-6)
    assert LATENCY_BUCKETS_S[-1] == pytest.approx(10.0)
    assert list(BATCH_SIZE_BUCKETS) == [1, 2, 4, 8, 16, 32, 64, 128]


def test_histogram_summaries():
    reg = MetricRegistry()
    h = reg.histogram(
        "repro_lat_seconds", labels=("stage",), buckets=(1.0, 2.0)
    )
    h.observe(0.5, stage="gemm")
    h.observe(1.5, stage="gemm")
    summary = h.summaries()[("gemm",)]
    assert summary["count"] == 2
    assert summary["sum"] == pytest.approx(2.0)
    assert 0.0 < summary["p50"] <= 2.0


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_prometheus_render_counter_gauge():
    reg = MetricRegistry()
    c = reg.counter("repro_hits_total", "Cache hits.", labels=("cache",))
    c.inc(2, cache="plan")
    g = reg.gauge("repro_depth", "Queue depth.")
    g.set(3)
    text = reg.render()
    assert "# HELP repro_hits_total Cache hits." in text
    assert "# TYPE repro_hits_total counter" in text
    assert 'repro_hits_total{cache="plan"} 2' in text
    assert "# TYPE repro_depth gauge" in text
    assert "repro_depth 3" in text
    assert text.endswith("\n")


def test_prometheus_render_histogram_cumulative_buckets():
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds", buckets=(0.001, 0.01))
    h.observe(0.0005)
    h.observe(0.005)
    h.observe(5.0)
    text = reg.render()
    assert 'repro_lat_seconds_bucket{le="0.001"} 1' in text
    assert 'repro_lat_seconds_bucket{le="0.01"} 2' in text
    assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_lat_seconds_count 3" in text
    assert "repro_lat_seconds_sum" in text


def test_prometheus_label_values_are_escaped():
    reg = MetricRegistry()
    c = reg.counter("repro_odd_total", labels=("tag",))
    c.inc(tag='he said "hi"\\n')
    text = reg.render()
    assert '\\"hi\\"' in text


def test_json_render_round_trips():
    reg = MetricRegistry()
    reg.counter("repro_hits_total", labels=("cache",)).inc(cache="plan")
    h = reg.histogram("repro_lat_seconds", buckets=(1.0,))
    h.observe(0.5)
    doc = json.loads(reg.render("json"))
    assert doc["repro_hits_total"]["kind"] == "counter"
    assert doc["repro_hits_total"]["series"] == {"plan": 1.0}
    assert doc["repro_lat_seconds"]["buckets"] == [1.0]
    assert doc["repro_lat_seconds"]["summaries"][""]["count"] == 1
    with pytest.raises(ValueError, match="unknown render format"):
        reg.render("xml")


def test_snapshot_contains_every_metric():
    reg = MetricRegistry()
    reg.counter("repro_a_total")
    reg.gauge("repro_b")
    snap = reg.snapshot()
    assert set(snap) == {"repro_a_total", "repro_b"}


# ----------------------------------------------------------------------
# Thread safety
# ----------------------------------------------------------------------
def test_counter_is_thread_safe_under_contention():
    reg = MetricRegistry()
    c = reg.counter("repro_contended_total")
    h = reg.histogram("repro_contended_seconds", buckets=(1.0,))
    per_thread, threads = 2000, 8

    def worker():
        for _ in range(per_thread):
            c.inc()
            h.observe(0.5)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    assert c.value() == per_thread * threads
    assert h.count() == per_thread * threads


def test_quantile_tracks_numpy_for_dense_buckets():
    """Bucketed p50/p90 stay within one bucket of exact percentiles."""
    rng = np.random.default_rng(0)
    values = rng.exponential(scale=0.01, size=2000)
    reg = MetricRegistry()
    h = reg.histogram("repro_lat_seconds")
    for v in values:
        h.observe(float(v))
    for q in (0.5, 0.9):
        exact = float(np.percentile(values, q * 100))
        estimate = h.quantile(q)
        # Same log-spaced bucket or the adjacent one.
        bounds = [b for b in LATENCY_BUCKETS_S if b >= exact]
        upper = bounds[0] if bounds else LATENCY_BUCKETS_S[-1]
        assert estimate <= upper * 2.5
        assert estimate >= exact / 2.5
