"""Tests for rulebook construction — the reference matching operation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
    kernel_offsets,
)
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def brute_force_submanifold_pairs(tensor, kernel_size):
    """O(N * K^3) reference: for each output site, scan every offset."""
    offsets = kernel_offsets(kernel_size, center=True)
    pairs = {k: [] for k in range(len(offsets))}
    for out_row, coord in enumerate(tensor.coords):
        for k, offset in enumerate(offsets):
            neighbor = tuple(coord + offset)
            if min(neighbor) < 0 or any(
                neighbor[a] >= tensor.shape[a] for a in range(3)
            ):
                continue
            in_row = tensor.row_of(neighbor)
            if in_row is not None:
                pairs[k].append((in_row, out_row))
    return pairs


def test_kernel_offsets_centered():
    offsets = kernel_offsets(3, center=True)
    assert offsets.shape == (27, 3)
    assert offsets.min() == -1 and offsets.max() == 1
    assert [0, 0, 0] in offsets.tolist()


def test_kernel_offsets_corner():
    offsets = kernel_offsets(2, center=False)
    assert offsets.shape == (8, 3)
    assert offsets.min() == 0 and offsets.max() == 1


def test_kernel_offsets_validation():
    with pytest.raises(ValueError):
        kernel_offsets(0)
    with pytest.raises(ValueError):
        kernel_offsets(2, center=True)


def test_submanifold_rulebook_matches_brute_force():
    tensor = random_sparse_tensor(seed=21, shape=(8, 8, 8), nnz=40, channels=1)
    rulebook = build_submanifold_rulebook(tensor, kernel_size=3)
    expected = brute_force_submanifold_pairs(tensor, 3)
    for k in range(27):
        got = {tuple(pair) for pair in rulebook.rules[k].tolist()}
        assert got == set(expected[k])


def test_center_offset_is_identity():
    tensor = random_sparse_tensor(seed=22, nnz=15)
    rulebook = build_submanifold_rulebook(tensor, kernel_size=3)
    center_index = 13  # offset (0,0,0) of a 3x3x3 kernel
    assert np.array_equal(rulebook.offsets[center_index], [0, 0, 0])
    rule = rulebook.rules[center_index]
    assert len(rule) == tensor.nnz
    assert np.array_equal(rule[:, 0], rule[:, 1])


def test_isolated_point_has_single_match():
    tensor = SparseTensor3D(np.array([[5, 5, 5]]), np.ones((1, 1)), (12, 12, 12))
    rulebook = build_submanifold_rulebook(tensor, kernel_size=3)
    assert rulebook.total_matches == 1


def test_dense_block_match_count():
    """A fully dense interior block: every offset matches everywhere inside."""
    coords = np.array(
        [[x, y, z] for x in range(3) for y in range(3) for z in range(3)]
    ) + 2
    tensor = SparseTensor3D(coords, np.ones((27, 1)), (8, 8, 8))
    rulebook = build_submanifold_rulebook(tensor, kernel_size=3)
    # Equivalent to correlating two 3^3 boxes: sum over displacement d of
    # count(pairs at displacement d) = 4^3 interior overlaps... simplest
    # check: center of the block has all 27 neighbors.
    per_output = rulebook.matches_per_output()
    center_row = tensor.row_of((3, 3, 3))
    assert per_output[center_row] == 27
    # Corner of the block has exactly 8 neighbors (2x2x2 sub-block).
    corner_row = tensor.row_of((2, 2, 2))
    assert per_output[corner_row] == 8


def test_boundary_sites_no_out_of_bounds_matches():
    tensor = SparseTensor3D(
        np.array([[0, 0, 0], [1, 0, 0]]), np.ones((2, 1)), (4, 4, 4)
    )
    rulebook = build_submanifold_rulebook(tensor, kernel_size=3)
    assert rulebook.total_matches == 4  # 2 self + 2 cross


def test_effective_ops_accounting():
    tensor = random_sparse_tensor(seed=23, nnz=20)
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert rulebook.effective_macs(4, 8) == rulebook.total_matches * 32
    assert rulebook.effective_ops(4, 8) == 2 * rulebook.effective_macs(4, 8)


def test_empty_tensor_rulebook():
    tensor = SparseTensor3D.empty((6, 6, 6))
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert rulebook.total_matches == 0
    assert rulebook.num_outputs == 0


def test_sparse_conv_rulebook_stride2():
    coords = np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2], [5, 5, 5]])
    tensor = SparseTensor3D(coords, np.ones((4, 1)), (8, 8, 8))
    rulebook, out_coords = build_sparse_conv_rulebook(tensor, kernel_size=2, stride=2)
    # Downsampled sites: (0,0,0) from the first two, (1,1,1), (2,2,2).
    assert np.array_equal(
        out_coords, np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2]])
    )
    # Every input contributes exactly once when K == stride.
    assert rulebook.total_matches == 4


def test_sparse_conv_rulebook_general_kernel():
    coords = np.array([[2, 2, 2]])
    tensor = SparseTensor3D(coords, np.ones((1, 1)), (8, 8, 8))
    rulebook, out_coords = build_sparse_conv_rulebook(tensor, kernel_size=3, stride=1)
    # A single input at (2,2,2) feeds all 27 outputs around it.
    assert rulebook.total_matches == 27
    assert len(out_coords) == 27


def test_matches_per_output_sums_to_total():
    tensor = random_sparse_tensor(seed=24, nnz=35)
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert rulebook.matches_per_output().sum() == rulebook.total_matches


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_property_rulebook_symmetry(seed):
    """Sub-Conv matching is symmetric: (i -> o) under offset d implies
    (o -> i) under offset -d."""
    tensor = random_sparse_tensor(seed=seed, shape=(6, 6, 6), nnz=20)
    rulebook = build_submanifold_rulebook(tensor, kernel_size=3)
    pair_sets = [
        {tuple(p) for p in rule.tolist()} for rule in rulebook.rules
    ]
    for k, offset in enumerate(rulebook.offsets):
        mirror_k = int(np.where(
            (rulebook.offsets == -offset).all(axis=1)
        )[0][0])
        mirrored = {(o, i) for (i, o) in pair_sets[k]}
        assert mirrored == pair_sets[mirror_k]
