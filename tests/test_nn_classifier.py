"""Tests for global pooling and the SSCN classifier."""

import numpy as np
import pytest

from repro.nn import (
    ClassifierConfig,
    SSCNClassifier,
    global_avg_pool,
    global_max_pool,
)
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def test_global_pools():
    tensor = random_sparse_tensor(seed=190, nnz=20, channels=4)
    mx = global_max_pool(tensor)
    avg = global_avg_pool(tensor)
    assert mx.shape == (4,)
    assert np.allclose(mx, tensor.features.max(axis=0))
    assert np.allclose(avg, tensor.features.mean(axis=0))
    assert np.all(mx >= avg)


def test_global_pool_empty_raises():
    empty = SparseTensor3D.empty((4, 4, 4), channels=2)
    with pytest.raises(ValueError):
        global_max_pool(empty)
    with pytest.raises(ValueError):
        global_avg_pool(empty)


def test_classifier_forward_shape():
    cfg = ClassifierConfig(in_channels=1, num_classes=7, base_channels=4, stages=2)
    net = SSCNClassifier(cfg)
    tensor = random_sparse_tensor(seed=191, shape=(16, 16, 16), nnz=40, channels=1)
    logits = net(tensor)
    assert logits.shape == (7,)
    assert 0 <= net.predict(tensor) < 7


def test_classifier_deterministic():
    cfg = ClassifierConfig(num_classes=5, base_channels=4, stages=2)
    tensor = random_sparse_tensor(seed=192, shape=(12, 12, 12), nnz=30, channels=1)
    a = SSCNClassifier(cfg)(tensor)
    b = SSCNClassifier(cfg)(tensor)
    assert np.allclose(a, b)


def test_classifier_validation():
    with pytest.raises(ValueError):
        SSCNClassifier(ClassifierConfig(stages=0))
    with pytest.raises(ValueError):
        SSCNClassifier(ClassifierConfig(pooling="sum"))


def test_classifier_avg_pooling_variant():
    cfg = ClassifierConfig(num_classes=3, base_channels=4, stages=2, pooling="avg")
    tensor = random_sparse_tensor(seed=193, shape=(12, 12, 12), nnz=25, channels=1)
    logits = SSCNClassifier(cfg)(tensor)
    assert logits.shape == (3,)


def test_classifier_records_executions():
    cfg = ClassifierConfig(num_classes=4, base_channels=4, stages=3)
    net = SSCNClassifier(cfg)
    tensor = random_sparse_tensor(seed=194, shape=(16, 16, 16), nnz=40, channels=1)
    raw = []
    net(tensor, record=raw)
    kinds = [kind for kind, _, _ in raw]
    # 3 Sub-Conv stages + 2 strided downsamples.
    assert kinds.count("subconv") == 3
    assert kinds.count("sparseconv") == 2


def test_classifier_subconv_layers_run_on_esca():
    """The classifier's Sub-Conv workloads execute bit-exactly on ESCA."""
    from repro.arch import EscaAccelerator

    cfg = ClassifierConfig(num_classes=4, base_channels=4, stages=2)
    net = SSCNClassifier(cfg)
    tensor = random_sparse_tensor(seed=195, shape=(16, 16, 16), nnz=35, channels=1)
    raw = []
    net(tensor, record=raw)
    accel = EscaAccelerator()
    for kind, layer, input_tensor in raw:
        if kind != "subconv":
            continue
        result = accel.run_layer(
            input_tensor, weights=layer.weight.value, verify=True
        )
        assert result.matches > 0


def test_classifier_parameter_count():
    cfg = ClassifierConfig(num_classes=4, base_channels=4, stages=2)
    net = SSCNClassifier(cfg)
    assert net.num_parameters() > 0
