"""Tests for span/trace/tracer timelines (repro.obs.trace)."""

import json

import pytest

from repro.obs.trace import Span, Trace, Tracer


def test_span_seconds_and_dict():
    span = Span(name="execute", start_s=1.0, end_s=1.5, meta={"n": 4})
    assert span.seconds == pytest.approx(0.5)
    data = span.to_dict()
    assert data["name"] == "execute"
    assert data["seconds"] == pytest.approx(0.5)
    assert data["meta"] == {"n": 4}
    assert Span(name="open", start_s=0.0).seconds == 0.0


def test_trace_span_context_manager_records_duration():
    trace = Trace("request")
    with trace.span("execute", batch=3) as span:
        pass
    assert len(trace.spans) == 1
    assert span.end_s is not None
    assert span.end_s >= span.start_s
    assert span.meta == {"batch": 3}


def test_trace_add_span_uses_explicit_offsets():
    trace = Trace("micro-batch", meta={"size": 2})
    trace.add_span("queue-wait", 0.0, 0.25, max_wait_s=0.25)
    trace.add_span("execute", 0.25, 1.0)
    data = trace.to_dict()
    assert data["name"] == "micro-batch"
    assert data["meta"] == {"size": 2}
    names = [s["name"] for s in data["spans"]]
    assert names == ["queue-wait", "execute"]
    assert data["spans"][0]["seconds"] == pytest.approx(0.25)


def test_tracer_ring_buffer_evicts_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.start(f"t{i}")
    assert len(tracer) == 3
    assert [t.name for t in tracer.recent()] == ["t2", "t3", "t4"]
    assert [t.name for t in tracer.recent(2)] == ["t3", "t4"]


def test_tracer_disabled_keeps_one_code_path():
    tracer = Tracer(enabled=False)
    trace = tracer.start("dropped")
    with trace.span("execute"):
        pass  # callers never branch on enabled
    assert len(tracer) == 0
    assert tracer.dump() == []


def test_tracer_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        Tracer(capacity=0)


def test_tracer_dump_json_and_file(tmp_path):
    tracer = Tracer()
    trace = tracer.start("request", digest="abc")
    trace.add_span("queue-wait", 0.0, 0.1)
    parsed = json.loads(tracer.dump_json())
    assert len(parsed) == 1
    assert parsed[0]["meta"] == {"digest": "abc"}

    path = tmp_path / "traces.json"
    tracer.dump_to(path)
    on_disk = json.loads(path.read_text())
    assert on_disk == parsed

    tracer.clear()
    assert tracer.dump() == []
