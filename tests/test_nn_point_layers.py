"""Point-based layers and their session integration.

Covers the PR acceptance criteria: a PointNet++-style network runs end
to end through ``InferenceSession.run`` with every mapping op routed
through the session cache, and ``session.estimate`` reports nonzero
modeled mapping-op cycles for it.
"""

import numpy as np
import pytest

from repro.arch.mapping_model import (
    MAPPING_PIPELINE_FILL_CYCLES,
    MappingCostModel,
    MappingSimulation,
)
from repro.engine import (
    DeltaMappingCache,
    InferenceSession,
    MappingCache,
    PointNetworkEstimate,
)
from repro.nn import PointNetClassifier, PointNetConfig, SetAbstraction
from repro.sparse.coo import SparseTensor3D

CONFIG = PointNetConfig(
    centroids=(64, 16), widths=(16, 32), neighbors=8, seed=0
)


def voxel_tensor(seed=0, n=1200, resolution=64):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        rng.integers(0, resolution, size=(n, 3)).astype(np.int64), axis=0
    )
    features = np.ones((len(coords), 1), dtype=np.float64)
    return SparseTensor3D(coords, features, (resolution,) * 3)


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------
def test_classifier_is_deterministic_per_seed():
    tensor = voxel_tensor()
    a = PointNetClassifier(CONFIG)(tensor)
    b = PointNetClassifier(CONFIG)(tensor)
    assert np.array_equal(a, b)
    other = PointNetClassifier(
        PointNetConfig(
            centroids=(64, 16), widths=(16, 32), neighbors=8, seed=1
        )
    )(tensor)
    assert not np.array_equal(a, other)
    assert a.shape == (CONFIG.num_classes,)


def test_set_abstraction_reduces_rows():
    rng = np.random.default_rng(0)
    block = SetAbstraction(
        in_channels=2, out_channels=4, num_centroids=10, neighbors=4, rng=rng
    )
    coords = np.random.default_rng(1).normal(size=(50, 3))
    features = np.random.default_rng(2).normal(size=(50, 2))
    out_coords, out_features = block((coords, features))
    assert out_coords.shape == (10, 3)
    assert out_features.shape == (10, 4)
    assert np.all(np.isfinite(out_features))


def test_set_abstraction_ball_variant_and_validation():
    block = SetAbstraction(
        in_channels=1,
        out_channels=2,
        num_centroids=5,
        neighbors=4,
        radius=3.0,
    )
    coords = np.random.default_rng(3).normal(size=(30, 3)) * 2.0
    features = np.ones((30, 1))
    _, pooled = block((coords, features))
    assert pooled.shape == (5, 2)
    with pytest.raises(ValueError, match="radius"):
        SetAbstraction(1, 2, 5, 4, radius=-1.0)
    with pytest.raises(ValueError, match="num_centroids"):
        SetAbstraction(1, 2, 0, 4)
    with pytest.raises(ValueError, match="matching rows"):
        block((coords, np.ones((29, 1))))
    with pytest.raises(ValueError, match="feature channels"):
        block((coords, np.ones((30, 3))))


def test_classifier_config_validation():
    with pytest.raises(ValueError, match="equal-length"):
        PointNetClassifier(PointNetConfig(centroids=(8,), widths=(8, 16)))
    with pytest.raises(ValueError, match="radii"):
        PointNetClassifier(
            PointNetConfig(centroids=(8, 4), widths=(8, 16), radii=(1.0,))
        )


def test_classifier_empty_cloud_returns_bias():
    net = PointNetClassifier(CONFIG)
    empty = SparseTensor3D(
        np.empty((0, 3), dtype=np.int64), np.empty((0, 1)), (8, 8, 8)
    )
    logits = net(empty)
    assert np.array_equal(logits, net.head_bias.value)


def test_classifier_traces_mapping_ops():
    net = PointNetClassifier(CONFIG)
    trace = []
    net(voxel_tensor(), trace=trace)
    # Each set-abstraction block records FPS, the search, and the gather.
    assert len(trace) == 3 * len(net.blocks)
    ops = [r.stats.op for r in trace[:3]]
    assert ops == ["farthest_point_sample", "knn", "group_points"]


# ---------------------------------------------------------------------------
# Session integration
# ---------------------------------------------------------------------------
def test_session_run_matches_direct_forward():
    tensor = voxel_tensor()
    net = PointNetClassifier(CONFIG)
    direct = net(tensor)
    session = InferenceSession(net=PointNetClassifier(CONFIG))
    served = session.run(tensor)
    assert np.array_equal(served, direct)
    assert session.stats.frames_run == 1
    # The forward routed its sampling/search ops through the cache.
    assert session.stats.mapping_misses > 0
    again = session.run(tensor)
    assert np.array_equal(again, direct)
    assert session.stats.mapping_hits > 0


def test_session_estimate_reports_nonzero_mapping_cycles():
    """PR acceptance: modeled mapping-op cycles for a point-based net."""
    session = InferenceSession(net=PointNetClassifier(CONFIG))
    estimate = session.estimate(voxel_tensor())
    assert isinstance(estimate, PointNetworkEstimate)
    assert estimate.total_mapping_cycles > 0
    assert estimate.mapping_seconds > 0.0
    assert len(estimate.mapping_ops) == 6  # 2 stages x (fps, knn, group)
    for op in estimate.mapping_ops:
        assert op.total_cycles >= MAPPING_PIPELINE_FILL_CYCLES
    assert session.stats.estimates == 1


def test_session_simulate_lays_out_phases():
    session = InferenceSession(net=PointNetClassifier(CONFIG))
    sim = session.simulate(voxel_tensor())
    assert isinstance(sim, MappingSimulation)
    assert sim.total_cycles > 0
    assert sim.total_seconds == sim.total_cycles / sim.clock_hz
    # Spans are disjoint and ordered on the single shared pipeline.
    cursor = 0
    for span in sim.spans:
        assert span.start >= cursor
        assert span.end > span.start
        assert span.phase in ("sort", "merge", "gather")
        cursor = span.end
    assert session.stats.simulations == 1


def test_session_batch_surfaces_for_point_networks():
    tensors = [voxel_tensor(seed) for seed in range(3)]
    session = InferenceSession(net=PointNetClassifier(CONFIG))
    outs = session.run_batch(tensors)
    assert len(outs) == 3
    singles = [
        InferenceSession(net=PointNetClassifier(CONFIG)).run(t)
        for t in tensors
    ]
    for got, want in zip(outs, singles):
        assert np.array_equal(got, want)
    estimates = session.estimate_batch(tensors)
    assert all(e.total_mapping_cycles > 0 for e in estimates)
    sims = session.simulate_batch(tensors)
    assert all(isinstance(s, MappingSimulation) for s in sims)
    assert session.stats.batches_run == 1
    assert session.stats.frames_run == 3


def test_session_warm_rejects_point_networks():
    session = InferenceSession(net=PointNetClassifier(CONFIG))
    with pytest.raises(TypeError, match="mapping cache"):
        session.warm(voxel_tensor())


def test_session_map_dispatch_and_validation():
    session = InferenceSession()
    tensor = voxel_tensor()
    knn = session.map("knn", tensor, k=4)
    assert knn.indices.shape == (tensor.nnz, 4)
    ball = session.map("ball_query", tensor, radius=2.0, max_samples=4)
    assert ball.indices.shape == (tensor.nnz, 4)
    fps = session.map("fps", tensor, num_samples=16)
    assert fps.indices.shape == (16,)
    grouped = session.map(
        "group_points", tensor.features, indices=knn.indices
    )
    assert grouped.grouped.shape == (tensor.nnz, 4, 1)
    assert session.stats.mapping_misses == 3  # group bypasses the cache
    with pytest.raises(TypeError, match="requires k="):
        session.map("knn", tensor)
    with pytest.raises(TypeError, match="unexpected parameters"):
        session.map("knn", tensor, k=4, radius=1.0)
    with pytest.raises(ValueError, match="op must be"):
        session.map("nearest", tensor, k=4)
    with pytest.raises(ValueError, match="no queries"):
        session.map("fps", tensor, queries=tensor.coords, num_samples=4)


def test_session_mapping_cache_follows_delta_posture():
    assert isinstance(InferenceSession().mapping_cache, MappingCache)
    assert not isinstance(
        InferenceSession().mapping_cache, DeltaMappingCache
    )
    delta_session = InferenceSession(delta=0.25)
    assert isinstance(delta_session.mapping_cache, DeltaMappingCache)
    assert delta_session.mapping_cache.threshold == 0.25
    injected = MappingCache(capacity=4)
    session = InferenceSession(mapping_cache=injected)
    assert session.mapping_cache is injected
    with pytest.raises(TypeError, match="MappingCache"):
        InferenceSession(mapping_cache=object())


def test_session_mapping_stats_and_reset():
    session = InferenceSession(delta=0.25)
    rng = np.random.default_rng(0)
    coords = np.unique(
        rng.integers(0, 64, size=(800, 3)).astype(np.int64), axis=0
    )
    session.map("knn", coords, k=4)
    churned = np.unique(
        np.concatenate(
            [coords[10:], rng.integers(0, 64, size=(10, 3)).astype(np.int64)]
        ),
        axis=0,
    )
    session.map("knn", churned, k=4)
    stats = session.stats
    assert stats.mapping_misses == 2
    assert stats.mapping_patches == 1
    assert stats.mapping_rebuilds == 1
    session.reset_stats()
    stats = session.stats
    assert stats.mapping_misses == 0 and stats.mapping_patches == 0


def test_mapping_cost_model_scales_with_workload():
    model = MappingCostModel()
    small = model.estimate(
        InferenceSession().map("knn", voxel_tensor(0, n=400).coords, k=4).stats
    )
    large = model.estimate(
        InferenceSession().map("knn", voxel_tensor(0, n=3000).coords, k=4).stats
    )
    assert large.sort_cycles > small.sort_cycles
    assert large.total_cycles > small.total_cycles
    assert small.phase_cycles()[0][0] == "sort"
    assert small.seconds(1e9) == small.total_cycles / 1e9
