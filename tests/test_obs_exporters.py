"""Tests for the HTTP exporter and snapshot logger (repro.obs.exporters)."""

import json
import threading
import urllib.request

from repro.obs.exporters import MetricsHTTPServer, PeriodicSnapshotLogger
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Tracer

import pytest


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture()
def populated():
    registry = MetricRegistry()
    registry.counter("repro_hits_total", "Hits.", labels=("cache",)).inc(
        2, cache="plan"
    )
    tracer = Tracer()
    tracer.start("request").add_span("execute", 0.0, 0.5)
    return registry, tracer


def test_http_server_serves_all_endpoints(populated):
    registry, tracer = populated
    with MetricsHTTPServer(registry, port=0, tracer=tracer) as server:
        base = f"http://127.0.0.1:{server.port}"
        assert server.url == base + "/metrics"

        status, headers, body = _get(base + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert 'repro_hits_total{cache="plan"} 2' in body

        status, headers, body = _get(base + "/metrics.json")
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body)["repro_hits_total"]["series"] == {
            "plan": 2.0
        }

        status, _headers, body = _get(base + "/traces")
        traces = json.loads(body)
        assert traces[0]["spans"][0]["name"] == "execute"

        status, _headers, body = _get(base + "/healthz")
        assert (status, body) == (200, "ok\n")

        try:
            _get(base + "/nope")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        else:  # pragma: no cover
            raise AssertionError("expected a 404")


def test_http_server_without_tracer_serves_empty_traces(populated):
    registry, _ = populated
    with MetricsHTTPServer(registry, port=0) as server:
        _status, _headers, body = _get(
            f"http://127.0.0.1:{server.port}/traces"
        )
        assert json.loads(body) == []


def test_http_server_start_stop_idempotent(populated):
    registry, _ = populated
    server = MetricsHTTPServer(registry, port=0)
    assert server.start() is server.start()
    server.stop()
    server.stop()


def test_snapshot_logger_emits_counter_lines():
    registry = MetricRegistry()
    registry.counter("repro_hits_total", labels=("cache",)).inc(cache="a")
    registry.gauge("repro_depth").set(1.5)
    registry.histogram("repro_lat_seconds").observe(0.1)  # skipped in line
    lines = []
    seen = threading.Event()

    def emit(line):
        lines.append(line)
        seen.set()

    with PeriodicSnapshotLogger(registry, period_s=0.05, emit=emit):
        assert seen.wait(timeout=5.0)
    line = lines[0]
    assert line.startswith("[metrics] ")
    assert "repro_hits_total{a}=1" in line
    assert "repro_depth=1.5" in line
    assert "repro_lat_seconds" not in line


def test_snapshot_logger_validates_period():
    with pytest.raises(ValueError, match="period_s"):
        PeriodicSnapshotLogger(MetricRegistry(), period_s=0.0)


def test_shared_registry_unifies_session_and_server_tiers():
    """One registry through session + server (the --metrics-port
    wiring) exposes both tiers' histograms on one scrape surface."""
    from repro.engine import InferenceSession
    from repro.nn import UNetConfig
    from repro.runtime import serve_frames
    from tests.conftest import random_sparse_tensor

    registry = MetricRegistry()
    session = InferenceSession(
        unet_config=UNetConfig(
            in_channels=2, num_classes=5, base_channels=4, levels=3
        ),
        registry=registry,
    )
    frames = [
        random_sparse_tensor(
            seed=s, shape=(16, 16, 16), nnz=40, channels=2
        )
        for s in (1, 2)
    ]
    serve_frames(frames, session=session, registry=registry)
    with MetricsHTTPServer(registry, port=0) as server:
        _status, _headers, body = _get(server.url)
    assert "repro_session_dispatch_seconds_bucket" in body
    assert "repro_session_stage_seconds_bucket" in body
    assert "repro_serve_e2e_seconds_bucket" in body
    assert "repro_serve_batch_size_bucket" in body
