"""Unit and property-based tests for the coordinate hash map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CoordinateHashMap, pack_coords, unpack_coords


def test_pack_unpack_round_trip():
    coords = np.array([[0, 0, 0], [191, 191, 191], [1, 2, 3]])
    assert np.array_equal(unpack_coords(pack_coords(coords)), coords)


def test_pack_rejects_negative_and_oversized():
    with pytest.raises(ValueError):
        pack_coords(np.array([[-1, 0, 0]]))
    with pytest.raises(ValueError):
        pack_coords(np.array([[1 << 21, 0, 0]]))


def test_pack_preserves_lexicographic_order():
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 500, size=(200, 3))
    order = np.lexsort((coords[:, 2], coords[:, 1], coords[:, 0]))
    keys = pack_coords(coords[order])
    assert np.all(np.diff(keys) >= 0)


def test_insert_lookup():
    table = CoordinateHashMap()
    table.insert(42, 7)
    assert table.lookup(42) == 7
    assert table.lookup(43) is None
    assert 42 in table
    assert 43 not in table


def test_overwrite_keeps_size():
    table = CoordinateHashMap()
    table.insert(5, 1)
    table.insert(5, 2)
    assert len(table) == 1
    assert table.lookup(5) == 2


def test_growth_preserves_entries():
    table = CoordinateHashMap(expected_size=4)
    for i in range(200):
        table.insert(i * 97, i)
    assert len(table) == 200
    for i in range(200):
        assert table.lookup(i * 97) == i


def test_negative_key_rejected():
    table = CoordinateHashMap()
    with pytest.raises(ValueError):
        table.insert(-1, 0)


def test_from_coords_maps_rows():
    coords = np.array([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
    table = CoordinateHashMap.from_coords(coords)
    keys = pack_coords(coords)
    for row, key in enumerate(keys.tolist()):
        assert table.lookup(key) == row


def test_lookup_many_mixed_hits():
    coords = np.array([[0, 0, 0], [1, 1, 1]])
    table = CoordinateHashMap.from_coords(coords)
    keys = pack_coords(np.array([[1, 1, 1], [9, 9, 9]]))
    result = table.lookup_many(keys.tolist())
    assert result[0] == 1
    assert result[1] == -1


@given(
    st.lists(
        st.tuples(
            st.integers(0, 300), st.integers(0, 300), st.integers(0, 300)
        ),
        min_size=0,
        max_size=80,
        unique=True,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_map_agrees_with_dict(coord_list):
    """The hash map must behave exactly like a Python dict."""
    coords = np.array(coord_list, dtype=np.int64).reshape(-1, 3)
    table = CoordinateHashMap.from_coords(coords) if len(coords) else CoordinateHashMap()
    if len(coords):
        keys = pack_coords(coords).tolist()
    else:
        keys = []
    reference = {key: row for row, key in enumerate(keys)}
    for key, row in reference.items():
        assert table.lookup(key) == row
    # Probe some keys that are absent.
    for missing in (0, 1, 999_999_999):
        if missing not in reference:
            assert table.lookup(missing) is None


@given(
    st.lists(
        st.tuples(st.integers(0, 2**21 - 1), st.integers(0, 2**21 - 1),
                  st.integers(0, 2**21 - 1)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_pack_is_injective(coord_list):
    coords = np.array(coord_list, dtype=np.int64)
    keys = pack_coords(coords)
    unique_coords = np.unique(coords, axis=0)
    assert len(np.unique(keys)) == len(unique_coords)
