"""Tests for the statistics containers of the simulation substrate."""

import pytest

from repro.sim import CycleTrace, StatsCounter, Utilization


def test_stats_counter_accumulates():
    counter = StatsCounter()
    counter.add("matches")
    counter.add("matches", 4)
    counter.add("stalls", 2)
    assert counter.get("matches") == 5
    assert counter.get("missing") == 0
    assert counter.as_dict() == {"matches": 5, "stalls": 2}


def test_stats_counter_reset_and_repr():
    counter = StatsCounter()
    counter.add("x")
    assert "x=1" in repr(counter)
    counter.reset()
    assert counter.as_dict() == {}


def test_utilization_fraction():
    util = Utilization()
    assert util.fraction == 0.0
    util.record(True)
    util.record(False)
    util.record(True)
    util.record(True)
    assert util.busy_cycles == 3
    assert util.total_cycles == 4
    assert util.fraction == pytest.approx(0.75)


def test_cycle_trace_disabled_by_default():
    trace = CycleTrace()
    assert not trace.enabled
    trace.record(0, "sdmu", "read")
    assert len(trace) == 0


def test_cycle_trace_records_and_filters():
    trace = CycleTrace(capacity=10)
    trace.record(0, "sdmu", "read")
    trace.record(1, "cc", "mac")
    trace.record(2, "sdmu", "judge")
    assert len(trace) == 3
    assert [e[2] for e in trace.events("sdmu")] == ["read", "judge"]
    assert len(trace.events()) == 3


def test_cycle_trace_capacity_and_drops():
    trace = CycleTrace(capacity=2)
    for cycle in range(5):
        trace.record(cycle, "u", "e")
    assert len(trace) == 2
    assert trace.dropped == 3
    trace.clear()
    assert len(trace) == 0
    assert trace.dropped == 0
