"""Tests for the frame-stream runtime."""

import numpy as np
import pytest

from repro.geometry import PointCloud, make_shapenet_like_cloud
from repro.runtime import RotatingSceneSource, StreamingRunner, StreamStats
from repro.runtime.stream import FrameResult


def small_source(num_frames=3, seed=0):
    return RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=seed, n_points=400),
        num_frames=num_frames,
        seed=seed,
    )


def test_source_yields_requested_frames():
    source = small_source(num_frames=4)
    frames = list(source)
    assert len(frames) == 4
    assert all(isinstance(frame, PointCloud) for frame in frames)


def test_source_is_deterministic():
    a = [frame.points for frame in small_source(seed=7)]
    b = [frame.points for frame in small_source(seed=7)]
    for pa, pb in zip(a, b):
        assert np.allclose(pa, pb)


def test_frames_rotate():
    source = small_source(num_frames=3)
    frames = list(source)
    assert not np.allclose(frames[0].points, frames[2].points)


def test_source_validation():
    with pytest.raises(ValueError):
        RotatingSceneSource(num_frames=0)


def test_points_stay_in_unit_cube():
    for frame in small_source(num_frames=5):
        assert frame.points.min() >= 0.0
        assert frame.points.max() < 1.0


def test_streaming_runner_analytical():
    runner = StreamingRunner(resolution=96)
    stats = runner.run(small_source(num_frames=3))
    assert stats.num_frames == 3
    assert stats.fps > 0
    assert stats.total_seconds > 0
    for frame in stats.frames:
        assert frame.nnz > 0
        assert frame.active_tiles > 0
        assert frame.total_seconds >= frame.core_seconds


def test_streaming_runner_detailed_agrees_with_analytical():
    """Cycle-accurate and analytical frame latencies track each other."""
    source = small_source(num_frames=1)
    analytical = StreamingRunner(resolution=64).run(small_source(num_frames=1))
    detailed = StreamingRunner(resolution=64, detailed=True).run(source)
    a = analytical.frames[0]
    d = detailed.frames[0]
    assert a.matches == d.matches
    assert a.core_seconds == pytest.approx(d.core_seconds, rel=0.05)


def test_latency_percentiles():
    stats = StreamStats(
        frames=[
            FrameResult(i, 1, 1, 1, 0.001 * (i + 1), 0.001 * (i + 1), 100)
            for i in range(10)
        ]
    )
    assert stats.latency_percentile(50) == pytest.approx(0.0055)
    assert stats.latency_percentile(100) == pytest.approx(0.010)
    assert stats.fps == pytest.approx(10 / stats.total_seconds)


def test_percentile_empty_raises():
    with pytest.raises(ValueError, match="no frames"):
        StreamStats().latency_percentile(50)


def test_fps_empty_raises():
    """Empty streams must raise a clear error, not divide by zero."""
    with pytest.raises(ValueError, match="no frames"):
        StreamStats().fps


@pytest.mark.parametrize("bad", [-0.1, 100.5, float("nan"), float("inf")])
def test_percentile_validates_range(bad):
    stats = StreamStats(frames=[FrameResult(0, 1, 1, 1, 0.001, 0.001, 100)])
    with pytest.raises(ValueError, match=r"\[0, 100\]"):
        stats.latency_percentile(bad)


def test_percentile_bounds_accepted():
    stats = StreamStats(
        frames=[
            FrameResult(i, 1, 1, 1, 0.001 * (i + 1), 0.001 * (i + 1), 100)
            for i in range(3)
        ]
    )
    assert stats.latency_percentile(0) == pytest.approx(0.001)
    assert stats.latency_percentile(100) == pytest.approx(0.003)


def test_percentile_pins_numpy_interpolation_values():
    """Regression: linear-interpolated percentiles of a known sequence."""
    latencies_ms = [10.0, 20.0, 30.0, 40.0, 50.0]
    stats = StreamStats(
        frames=[
            FrameResult(i, 1, 1, 1, ms / 1e3, ms / 1e3, 100)
            for i, ms in enumerate(latencies_ms)
        ]
    )
    assert stats.latency_percentile(50) == pytest.approx(0.030)
    assert stats.latency_percentile(90) == pytest.approx(0.046)
    assert stats.latency_percentile(99) == pytest.approx(0.0496)
    for p in (25, 75, 95):
        assert stats.latency_percentile(p) == pytest.approx(
            float(np.percentile([ms / 1e3 for ms in latencies_ms], p))
        )


def test_percentile_cache_refreshes_as_stream_grows():
    stats = StreamStats(
        frames=[FrameResult(0, 1, 1, 1, 0.010, 0.010, 100)]
    )
    assert stats.latency_percentile(50) == pytest.approx(0.010)
    # Streams append frames; the preallocated vector must follow.
    stats.frames.append(FrameResult(1, 1, 1, 1, 0.030, 0.030, 100))
    assert stats.latency_percentile(50) == pytest.approx(0.020)
    # Repeated queries at a fixed length reuse the same array.
    first = stats._latencies
    stats.latency_percentile(90)
    assert stats._latencies is first


def test_multichannel_frames():
    runner = StreamingRunner(resolution=64, in_channels=8, out_channels=8)
    stats = runner.run(small_source(num_frames=2))
    assert stats.mean_gops() > 0


def test_static_scene_hits_rulebook_cache():
    """Unchanged voxel sets across frames must skip the matching pass."""
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=3, n_points=400),
        num_frames=4,
        step_rad=0.0,
        noise_sigma=0.0,
        seed=3,
    )
    runner = StreamingRunner(resolution=64)
    stats = runner.run(source)
    assert stats.frames[0].rulebook_misses == 1
    assert stats.frames[0].rulebook_hits == 0
    for frame in stats.frames[1:]:
        assert frame.rulebook_hits == 1
        assert frame.rulebook_misses == 0
    assert stats.rulebook_hit_rate == pytest.approx(3 / 4)
    assert stats.matching_seconds > 0.0


def test_rotating_scene_counts_misses():
    runner = StreamingRunner(resolution=64)
    stats = runner.run(small_source(num_frames=3))
    assert stats.rulebook_misses == 3
    assert stats.rulebook_hits == 0


def test_execute_reference_reports_scatter_time():
    runner = StreamingRunner(resolution=64, execute_reference=True)
    stats = runner.run(small_source(num_frames=2))
    assert stats.scatter_seconds > 0.0
    for frame in stats.frames:
        assert frame.scatter_seconds > 0.0


def test_runner_wraps_session():
    """The runner is a thin loop over an InferenceSession: a shared
    session carries its rulebook cache across runners."""
    from repro.engine import InferenceSession

    session = InferenceSession()
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=5, n_points=300),
        num_frames=2,
        step_rad=0.0,
        noise_sigma=0.0,
        seed=5,
    )
    runner = StreamingRunner(resolution=64, session=session)
    assert runner.rulebook_cache is session.rulebook_cache
    assert runner.config is session.accelerator_config
    runner.run(source)
    warm = StreamingRunner(resolution=64, session=session).run(source)
    assert warm.rulebook_misses == 0
    assert warm.rulebook_hits == 2
    assert session.rulebook_cache.hits >= 3


def test_runner_rejects_session_plus_components():
    from repro.engine import InferenceSession
    from repro.nn import RulebookCache

    with pytest.raises(ValueError, match="session"):
        StreamingRunner(
            session=InferenceSession(), rulebook_cache=RulebookCache()
        )


def test_runner_accepts_shared_cache():
    from repro.nn import RulebookCache

    cache = RulebookCache()
    source = RotatingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=4, n_points=300),
        num_frames=2,
        step_rad=0.0,
        noise_sigma=0.0,
        seed=4,
    )
    StreamingRunner(resolution=64, rulebook_cache=cache).run(source)
    # A second runner sharing the cache starts warm.
    stats = StreamingRunner(resolution=64, rulebook_cache=cache).run(source)
    assert stats.rulebook_misses == 0
    assert stats.rulebook_hits == 2
