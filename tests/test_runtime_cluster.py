"""Tests for the cluster serving tier (repro.runtime.cluster).

The fleet-backed tests spawn real ``python -m repro worker`` processes
on loopback sockets — a module-scoped fleet serves the non-destructive
tests, and the failover test spawns its own fleet to kill.
"""

import numpy as np
import pytest

from repro.engine import InferenceSession, available_backends, get_backend
from repro.nn import SSUNet, UNetConfig
from repro.runtime import serve_frames
from repro.runtime.cluster import (
    ClusterError,
    HashRing,
    LocalWorkerFleet,
    RemoteShardBackend,
    format_address,
    parse_address,
)
from tests.conftest import random_sparse_tensor

SMALL_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)
PRECISIONS = ("float64", "float32", "int")


def frame(seed, nnz=40):
    return random_sparse_tensor(seed=seed, shape=(16, 16, 16), nnz=nnz, channels=2)


def request_mix(count=6):
    """Frames across two site sets — multi-group run_batch load."""
    return [frame(1 + (i % 2), nnz=40 + 5 * (i % 2)) for i in range(count)]


@pytest.fixture(scope="module")
def fleet():
    with LocalWorkerFleet.spawn(2) as fleet:
        yield fleet


@pytest.fixture()
def remote_backend(fleet):
    backend = RemoteShardBackend(workers=fleet.addresses)
    yield backend
    backend.close()


# ----------------------------------------------------------------------
# Addresses and the hash ring (no fleet needed)
# ----------------------------------------------------------------------
def test_parse_address_accepts_strings_and_pairs():
    assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_address(("localhost", 1234)) == ("localhost", 1234)
    assert format_address(("h", 80)) == "h:80"
    with pytest.raises(ValueError, match="host:port"):
        parse_address("no-port-here")
    with pytest.raises(ValueError, match="host:port"):
        parse_address(":8080")


def test_hash_ring_routes_deterministically():
    nodes = [("10.0.0.1", 1), ("10.0.0.2", 2), ("10.0.0.3", 3)]
    ring_a = HashRing(nodes)
    ring_b = HashRing(reversed(nodes))
    digests = [bytes([i]) * 8 for i in range(32)]
    # Same node set -> same routing, regardless of insertion order.
    assert [ring_a.route(d) for d in digests] == [
        ring_b.route(d) for d in digests
    ]
    # Every node owns some arc at 64 virtual points.
    assert set(ring_a.route(d) for d in digests) == set(nodes)


def test_hash_ring_node_loss_moves_only_lost_arcs():
    nodes = [("10.0.0.1", 1), ("10.0.0.2", 2), ("10.0.0.3", 3)]
    ring = HashRing(nodes)
    digests = [bytes([i, 7]) * 4 for i in range(64)]
    before = {d: ring.route(d) for d in digests}
    lost = nodes[0]
    live = set(nodes) - {lost}
    for digest, owner in before.items():
        rerouted = ring.route(digest, live)
        if owner == lost:
            assert rerouted in live
        else:
            # Surviving nodes keep exactly their old arcs.
            assert rerouted == owner


def test_hash_ring_preference_ranks_every_node_once():
    nodes = [("a", 1), ("b", 2), ("c", 3)]
    ring = HashRing(nodes)
    order = ring.preference(b"some-digest")
    assert sorted(order) == sorted(nodes)
    # route() is the first live entry of the preference order.
    assert ring.route(b"some-digest") == order[0]
    assert ring.route(b"some-digest", {order[1], order[2]}) == order[1]


def test_hash_ring_empty_and_validation():
    ring = HashRing()
    assert ring.route(b"x") is None
    assert ring.preference(b"x") == ()
    with pytest.raises(ValueError, match="replicas"):
        HashRing(replicas=0)


def test_remote_backend_is_registered():
    import repro.runtime  # noqa: F401 — registration side effect

    assert "remote" in available_backends()
    assert get_backend is not None


# ----------------------------------------------------------------------
# Fleet-backed parity and serving
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precision", PRECISIONS)
def test_cluster_parity_cold_and_warm(fleet, precision):
    requests = request_mix()
    reference = InferenceSession(
        unet_config=SMALL_CFG, precision=precision, backend="numpy"
    )
    expected = [out.features for out in reference.run_batch(requests)]
    backend = RemoteShardBackend(workers=fleet.addresses)
    try:
        session = InferenceSession(
            unet_config=SMALL_CFG, precision=precision, backend=backend
        )
        for _pass in ("cold", "warm"):
            outs = session.run_batch(requests)
            for out, exp in zip(outs, expected):
                assert np.array_equal(out.features, exp)
        assert backend.stats.groups_dispatched >= 4
        assert backend.stats.frames_dispatched == 2 * len(requests)
        assert backend.stats.workers_lost == 0
    finally:
        backend.close()


def test_cluster_serves_single_group_batches(remote_backend):
    # offload_single_group: even a one-digest batch goes off-box.
    requests = [frame(5), frame(5)]
    reference = InferenceSession(unet_config=SMALL_CFG)
    expected = [out.features for out in reference.run_batch(requests)]
    session = InferenceSession(unet_config=SMALL_CFG, backend=remote_backend)
    outs = session.run_batch(requests)
    for out, exp in zip(outs, expected):
        assert np.array_equal(out.features, exp)
    assert remote_backend.stats.groups_dispatched == 1
    assert remote_backend.stats.frames_dispatched == 2


def test_session_server_over_remote_backend(fleet):
    requests = request_mix(8)
    reference = InferenceSession(unet_config=SMALL_CFG)
    expected = [reference.run(t) for t in requests]
    backend = RemoteShardBackend(workers=fleet.addresses)
    try:
        session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
        outputs, stats = serve_frames(requests, session=session, concurrency=4)
        assert stats.requests == len(requests)
        for out, exp in zip(outputs, expected):
            assert np.array_equal(out.features, exp.features)
        assert backend.stats.frames_dispatched == len(requests)
    finally:
        backend.close()


def test_worker_health_reports_warmth(remote_backend):
    session = InferenceSession(unet_config=SMALL_CFG, backend=remote_backend)
    session.run_batch(request_mix(4))
    reports = remote_backend.worker_health()
    assert len(reports) == 2
    served = 0
    synced = 0
    for report in reports.values():
        # Spec sync is lazy (on first dispatch), so only workers owning
        # a ring arc of this run's digests are guaranteed warm.
        synced += 1 if report["specs"] else 0
        served += report["groups_served"]
    assert synced >= 1
    assert served >= 2


def test_weight_swap_spec_sync(fleet):
    """Two nets serve concurrently: distinct digests, warm sessions."""
    backend = RemoteShardBackend(workers=fleet.addresses)
    try:
        net_a = SSUNet(SMALL_CFG)
        # Same deterministic init recipe -> a different config is what
        # makes a different spec digest (weights are seeded by config).
        net_b = SSUNet(
            UNetConfig(
                in_channels=2, num_classes=5, base_channels=4, levels=2
            )
        )
        requests = request_mix(4)

        session_a = InferenceSession(net=net_a, backend=backend)
        outs_a = session_a.run_batch(requests)
        digest_a = backend.spec_store.digest

        # Push the new weights ahead of traffic (zero-downtime half).
        digest_b = backend.sync_spec(net_b)
        assert digest_b != digest_a

        session_b = InferenceSession(net=net_b, backend=backend)
        outs_b = session_b.run_batch(requests)

        expected_a = InferenceSession(net=net_a).run_batch(requests)
        expected_b = InferenceSession(net=net_b).run_batch(requests)
        for out, exp in zip(outs_a, expected_a):
            assert np.array_equal(out.features, exp.features)
        for out, exp in zip(outs_b, expected_b):
            assert np.array_equal(out.features, exp.features)
        # Both digests are warm on the workers until retired.
        for report in backend.worker_health().values():
            assert digest_b.hex() in report["specs"]
        backend.retire_spec(keep=digest_b)
        for report in backend.worker_health().values():
            assert report["specs"] == [digest_b.hex()]
    finally:
        backend.close()


def test_remote_backend_validation_and_close_idempotent(fleet):
    with pytest.raises(ValueError, match="retries"):
        RemoteShardBackend(workers=fleet.addresses, retries=-1)
    with pytest.raises(ValueError, match="timeouts"):
        RemoteShardBackend(workers=fleet.addresses, request_timeout_s=0)
    with pytest.raises(ValueError, match="heartbeat"):
        RemoteShardBackend(workers=fleet.addresses, heartbeat_s=0)
    backend = RemoteShardBackend(workers=fleet.addresses)
    assert backend.run_groups(SSUNet(SMALL_CFG), "float64", None, []) == []
    backend.close()
    backend.close()  # second close is a no-op
    with pytest.raises(RuntimeError, match="closed"):
        backend.worker_health()


# ----------------------------------------------------------------------
# Failover: worker loss mid-stream, then warm rejoin
# ----------------------------------------------------------------------
def test_worker_loss_reroutes_and_rejoin_is_warm():
    requests = request_mix()
    reference = InferenceSession(unet_config=SMALL_CFG)
    expected = [out.features for out in reference.run_batch(requests)]
    with LocalWorkerFleet.spawn(2) as fleet:
        backend = RemoteShardBackend(workers=fleet.addresses)
        try:
            session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
            outs = session.run_batch(requests)
            for out, exp in zip(outs, expected):
                assert np.array_equal(out.features, exp)

            # SIGKILL a worker that owns at least one digest group (the
            # ring may have put both groups on one node), so the kill is
            # guaranteed to be on the serving path: the stream must
            # complete bit-identically with its groups rerouted to the
            # ring successor.
            owners = {
                backend.ring.route(t.coords_digest()) for t in requests
            }
            victim = fleet.addresses.index(next(iter(owners)))
            fleet.kill(victim)
            outs = session.run_batch(requests)
            for out, exp in zip(outs, expected):
                assert np.array_equal(out.features, exp)
            assert backend.stats.workers_lost == 1
            assert backend.stats.groups_rerouted >= 1
            assert len(backend.live_workers) == 1

            # Revive it: rejoin replays the spec blob and plan seeds, so
            # the health report already shows warm state.
            fleet.restart(victim)
            report = backend.rejoin(fleet.addresses[victim])
            assert report["specs"]
            assert report["prepared"]
            assert backend.stats.rejoins == 1
            assert len(backend.live_workers) == 2
            outs = session.run_batch(requests)
            for out, exp in zip(outs, expected):
                assert np.array_equal(out.features, exp)
        finally:
            backend.close()


def test_all_workers_lost_raises_cluster_error():
    with LocalWorkerFleet.spawn(1) as fleet:
        backend = RemoteShardBackend(workers=fleet.addresses, retries=1)
        try:
            session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
            session.run_batch([frame(1), frame(2)])
            fleet.kill(0)
            with pytest.raises(ClusterError, match="no live worker"):
                session.run_batch([frame(1), frame(2)])
            assert backend.stats.workers_lost == 1
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Telemetry (HEALTH payload + coordinator registry)
# ----------------------------------------------------------------------
def test_health_round_trip_carries_worker_telemetry(remote_backend):
    """HEALTH replies carry queue depth + warm-session telemetry, and
    the coordinator mirrors them into its per-worker gauges."""
    session = InferenceSession(
        unet_config=SMALL_CFG, backend=remote_backend
    )
    session.run_batch(request_mix(4))
    reports = remote_backend.worker_health()
    assert len(reports) == 2
    for worker, report in reports.items():
        assert report["queue_depth"] >= 0  # idle workers report zero
        assert report["warm_sessions"] == len(report["specs"])
        depth = remote_backend.registry.get(
            "repro_cluster_worker_queue_depth"
        )
        warm = remote_backend.registry.get(
            "repro_cluster_worker_warm_sessions"
        )
        assert depth.value(worker=worker) == report["queue_depth"]
        assert warm.value(worker=worker) == report["warm_sessions"]


def test_health_from_old_worker_without_telemetry_fields():
    """Wire compat: a report lacking the new fields must still land
    (defaults: depth 0, warmth inferred from the spec list)."""
    backend = RemoteShardBackend(workers=["127.0.0.1:1"])
    try:
        legacy = {
            "pid": 1,
            "port": 1,
            "uptime_s": 0.0,
            "specs": ["ab", "cd"],
            "prepared": [],
            "groups_served": 0,
            "frames_served": 0,
            "max_sessions": 4,
        }
        backend._note_health(("127.0.0.1", 1), legacy)
        reg = backend.registry
        depth = reg.get("repro_cluster_worker_queue_depth")
        warm = reg.get("repro_cluster_worker_warm_sessions")
        assert depth.value(worker="127.0.0.1:1") == 0
        assert warm.value(worker="127.0.0.1:1") == 2
    finally:
        backend.close()


def test_cluster_counters_mirror_stats(fleet):
    backend = RemoteShardBackend(workers=fleet.addresses)
    try:
        session = InferenceSession(unet_config=SMALL_CFG, backend=backend)
        session.run_batch(request_mix(4))
        reg = backend.registry
        stats = backend.stats
        assert reg.get("repro_cluster_groups_total").value() == (
            stats.groups_dispatched
        )
        assert reg.get("repro_cluster_frames_total").value() == (
            stats.frames_dispatched
        )
        assert reg.get("repro_cluster_spec_syncs_total").value() == (
            stats.spec_syncs
        )
        rtt = reg.get("repro_cluster_rtt_seconds")
        total = sum(
            rtt.count(worker=format_address(addr))
            for addr in backend.ring.nodes
        )
        assert total == stats.groups_dispatched
        assert "repro_cluster_rtt_seconds_bucket" in reg.render()
    finally:
        backend.close()
