"""Property tests for the sorting-based mapping operators.

Acceptance (tentpole): every mapping op — kNN, ball query, FPS,
grouping — must be bit-identical to its brute-force reference across
randomized clouds, duplicate points, ``k > N``, empty-radius queries,
and both float dtypes.  The bucket kernels share their distance
expression and ``(d^2, index)`` ordering with the references, so the
comparisons below are exact equality, never approximate.
"""

import numpy as np
import pytest

from repro.engine import mapping as M

SEEDS = (0, 1, 2, 3)


def random_cloud(seed, n=None, dtype=np.float64):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 700)) if n is None else n
    pts = rng.normal(size=(n, 3)) * rng.uniform(0.5, 20.0)
    return pts.astype(dtype)


def voxel_cloud(seed, n=2000, resolution=96):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, resolution, size=(n, 3)).astype(np.int64)
    return np.unique(coords, axis=0)


def assert_knn_identical(got, want):
    assert np.array_equal(got.indices, want.indices)
    assert np.array_equal(got.distances, want.distances)
    assert np.array_equal(got.counts, want.counts)


def assert_ball_identical(got, want):
    assert np.array_equal(got.indices, want.indices)
    assert np.array_equal(got.distances, want.distances)
    assert np.array_equal(got.counts, want.counts)


# ---------------------------------------------------------------------------
# kNN
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_knn_bit_identical_random_clouds(seed, dtype):
    pts = random_cloud(seed, dtype=dtype)
    qs = random_cloud(seed + 100, n=41, dtype=dtype)
    for k in (1, 5, 17):
        got = M.knn(pts, qs, k=k)
        want = M.knn_bruteforce(pts, qs, k=k)
        assert_knn_identical(got, want)
        assert got.stats.method == "bucket"
        assert want.stats.method == "bruteforce"


@pytest.mark.parametrize("seed", SEEDS)
def test_knn_self_query_voxel_coords(seed):
    coords = voxel_cloud(seed)
    got = M.knn(coords, k=8)
    want = M.knn_bruteforce(coords, k=8)
    assert_knn_identical(got, want)
    # Self-query: every point is its own nearest neighbor at distance 0.
    assert np.array_equal(got.indices[:, 0], np.arange(len(coords)))
    assert np.all(got.distances[:, 0] == 0.0)


def test_knn_duplicate_points_tie_break_by_index():
    pts = np.array(
        [[0.0, 0.0, 0.0]] * 4 + [[1.0, 0.0, 0.0]] * 3 + [[5.0, 5.0, 5.0]]
    )
    got = M.knn(pts, k=6)
    want = M.knn_bruteforce(pts, k=6)
    assert_knn_identical(got, want)
    # Ties at d^2 == 0 resolve to ascending point index.
    assert np.array_equal(got.indices[0, :4], [0, 1, 2, 3])


def test_knn_k_exceeds_points_pads():
    pts = random_cloud(7, n=5)
    got = M.knn(pts, k=9)
    want = M.knn_bruteforce(pts, k=9)
    assert_knn_identical(got, want)
    assert np.all(got.indices[:, 5:] == -1)
    assert np.all(np.isinf(got.distances[:, 5:]))
    assert np.all(got.counts == 5)


def test_knn_empty_and_zero_k():
    empty = np.empty((0, 3))
    pts = random_cloud(3, n=10)
    for result in (M.knn(empty, k=3), M.knn_bruteforce(empty, k=3)):
        assert result.indices.shape == (0, 3)
    got = M.knn(pts, k=0)
    want = M.knn_bruteforce(pts, k=0)
    assert_knn_identical(got, want)
    assert got.indices.shape == (len(pts), 0)
    got = M.knn(pts, empty, k=3)
    assert got.indices.shape == (0, 3)


def test_knn_rejects_negative_k_and_bad_shapes():
    pts = random_cloud(0, n=8)
    with pytest.raises(ValueError, match="non-negative"):
        M.knn(pts, k=-1)
    with pytest.raises(ValueError, match="expected \\(N, 3\\)"):
        M.knn(np.zeros((4, 2)), k=1)


def test_knn_far_outside_queries():
    """Queries far off the grid exercise the clamped-cell distance bound."""
    pts = random_cloud(11, n=300)
    qs = np.array([[1e4, -1e4, 1e4], [50.0, 50.0, 50.0], [0.0, 0.0, 0.0]])
    assert_knn_identical(M.knn(pts, qs, k=4), M.knn_bruteforce(pts, qs, k=4))


def test_knn_degenerate_geometry():
    """Planes and lines (lower-dimensional clouds) stress the adaptive
    cell-size refinement; identical points stress the zero-span path."""
    rng = np.random.default_rng(5)
    plane = np.concatenate(
        [rng.normal(size=(400, 2)), np.zeros((400, 1))], axis=1
    )
    assert_knn_identical(M.knn(plane, k=6), M.knn_bruteforce(plane, k=6))
    line = np.concatenate(
        [rng.normal(size=(200, 1)), np.zeros((200, 2))], axis=1
    )
    assert_knn_identical(M.knn(line, k=3), M.knn_bruteforce(line, k=3))
    same = np.ones((7, 3))
    assert_knn_identical(M.knn(same, k=4), M.knn_bruteforce(same, k=4))


# ---------------------------------------------------------------------------
# Ball query
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_ball_query_bit_identical_random_clouds(seed, dtype):
    pts = random_cloud(seed, dtype=dtype)
    qs = random_cloud(seed + 200, n=29, dtype=dtype)
    span = float(np.abs(pts).max())
    for radius in (span * 0.05, span * 0.5):
        got = M.ball_query(pts, qs, radius=radius, max_samples=8)
        want = M.ball_query_bruteforce(pts, qs, radius=radius, max_samples=8)
        assert_ball_identical(got, want)


@pytest.mark.parametrize("seed", SEEDS)
def test_ball_query_self_query_voxel_coords(seed):
    coords = voxel_cloud(seed)
    got = M.ball_query(coords, radius=2.0, max_samples=16)
    want = M.ball_query_bruteforce(coords, radius=2.0, max_samples=16)
    assert_ball_identical(got, want)
    # Radius boundary is inclusive, so each point sees itself.
    assert np.all(got.counts >= 1)


def test_ball_query_zero_radius_matches_duplicates_only():
    pts = np.array(
        [[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]]
    )
    got = M.ball_query(pts, radius=0.0, max_samples=4)
    want = M.ball_query_bruteforce(pts, radius=0.0, max_samples=4)
    assert_ball_identical(got, want)
    assert np.array_equal(got.counts, [2, 2, 1, 1])
    # A radius matching nothing at all: rows pad entirely.
    far = np.array([[100.0, 100.0, 100.0]])
    res = M.ball_query(pts, far, radius=0.5, max_samples=4)
    ref = M.ball_query_bruteforce(pts, far, radius=0.5, max_samples=4)
    assert_ball_identical(res, ref)
    assert res.counts[0] == 0 and np.all(res.indices[0] == -1)


def test_ball_query_cap_keeps_lowest_indices():
    pts = np.zeros((10, 3))
    got = M.ball_query(pts, radius=1.0, max_samples=3)
    want = M.ball_query_bruteforce(pts, radius=1.0, max_samples=3)
    assert_ball_identical(got, want)
    assert np.array_equal(got.indices[0], [0, 1, 2])
    assert np.all(got.counts == 3)


def test_ball_query_validation():
    pts = random_cloud(1, n=6)
    with pytest.raises(ValueError, match="radius"):
        M.ball_query(pts, radius=-1.0, max_samples=4)
    with pytest.raises(ValueError, match="max_samples"):
        M.ball_query(pts, radius=1.0, max_samples=0)


# ---------------------------------------------------------------------------
# Farthest-point sampling
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_fps_bit_identical(seed, dtype):
    pts = random_cloud(seed, n=257, dtype=dtype)
    got = M.farthest_point_sample(pts, 32)
    want = M.farthest_point_sample_bruteforce(pts, 32)
    assert np.array_equal(got.indices, want.indices)
    assert np.array_equal(got.counts, want.counts)


def test_fps_oversample_pads_and_duplicates():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
    got = M.farthest_point_sample(pts, 5)
    want = M.farthest_point_sample_bruteforce(pts, 5)
    assert np.array_equal(got.indices, want.indices)
    assert np.all(got.indices[3:] == -1)
    assert got.counts[0] == 3
    # First pick is canonical: index 0; second is the farthest point.
    assert got.indices[0] == 0 and got.indices[1] == 1


def test_fps_spreads_over_clusters():
    rng = np.random.default_rng(9)
    clusters = np.concatenate(
        [rng.normal(loc=center, scale=0.05, size=(50, 3))
         for center in ([0, 0, 0], [10, 0, 0], [0, 10, 0], [0, 0, 10])]
    )
    picks = M.farthest_point_sample(clusters, 4).indices
    assert len({int(p) // 50 for p in picks}) == 4  # one pick per cluster


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------
def test_group_points_gathers_and_zeroes_padding():
    values = np.arange(12, dtype=np.float64).reshape(6, 2)
    idx = np.array([[0, 5, -1], [2, -1, -1]])
    result = M.group_points(values, idx)
    assert result.grouped.shape == (2, 3, 2)
    assert np.array_equal(result.grouped[0, 0], values[0])
    assert np.array_equal(result.grouped[0, 1], values[5])
    assert np.all(result.grouped[0, 2] == 0)
    assert np.all(result.grouped[1, 1:] == 0)
    assert result.stats.matches == 3
    assert result.stats.op == "group_points"


def test_group_points_validation():
    values = np.zeros((4, 2))
    with pytest.raises(ValueError, match="out of range"):
        M.group_points(values, np.array([[0, 4]]))
    with pytest.raises(ValueError, match="\\(N, C\\)"):
        M.group_points(np.zeros(4), np.array([[0]]))
    with pytest.raises(ValueError, match="\\(Q, k\\)"):
        M.group_points(values, np.array([0, 1]))


# ---------------------------------------------------------------------------
# Result/stats surface
# ---------------------------------------------------------------------------
def test_mapping_result_and_stats_shape():
    pts = voxel_cloud(0, n=500)
    result = M.knn(pts, k=4)
    assert result.op == "knn"
    stats = result.stats
    assert stats.num_points == stats.num_queries == len(pts)
    assert stats.matches == int((result.indices >= 0).sum())
    assert stats.cells > 0 and stats.shells >= 1
    # The bucket search must examine far fewer pairs than brute force on
    # a cloud this size — that is the point of the sorting dataflow.
    brute = M.knn_bruteforce(pts, k=4)
    assert stats.candidates < brute.stats.candidates


def test_as_point_array_accepts_tensors_and_widens_ints():
    from repro.sparse.coo import SparseTensor3D

    coords = voxel_cloud(2, n=50)
    tensor = SparseTensor3D(
        coords, np.ones((len(coords), 1)), (96, 96, 96)
    )
    via_tensor = M.as_point_array(tensor)
    via_array = M.as_point_array(coords)
    assert via_tensor.dtype == np.float64
    assert np.array_equal(via_tensor, via_array)
    # Mapping ops accept the tensor directly.
    assert_knn_identical(M.knn(tensor, k=3), M.knn(coords, k=3))
