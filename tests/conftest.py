"""Shared fixtures: small deterministic sparse tensors and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import SparseTensor3D


def random_sparse_tensor(
    seed: int = 0,
    shape: tuple = (16, 16, 16),
    nnz: int = 40,
    channels: int = 4,
) -> SparseTensor3D:
    """A reproducible random sparse tensor with unique coordinates."""
    rng = np.random.default_rng(seed)
    volume = shape[0] * shape[1] * shape[2]
    nnz = min(nnz, volume)
    flat = rng.choice(volume, size=nnz, replace=False)
    coords = np.stack(np.unravel_index(flat, shape), axis=1)
    features = rng.standard_normal((nnz, channels))
    return SparseTensor3D(coords, features, shape)


@pytest.fixture
def small_tensor() -> SparseTensor3D:
    return random_sparse_tensor(seed=1, shape=(12, 12, 12), nnz=30, channels=3)


@pytest.fixture
def single_channel_tensor() -> SparseTensor3D:
    return random_sparse_tensor(seed=2, shape=(10, 10, 10), nnz=25, channels=1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
