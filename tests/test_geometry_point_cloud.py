"""Unit tests for the PointCloud container and transforms."""

import numpy as np
import pytest

from repro.geometry import PointCloud


def test_validation():
    with pytest.raises(ValueError):
        PointCloud(np.zeros((3, 2)))
    with pytest.raises(ValueError):
        PointCloud(np.zeros((3, 3)), features=np.zeros((2, 1)))


def test_empty_cloud():
    cloud = PointCloud(np.zeros((0, 3)))
    assert len(cloud) == 0
    lo, hi = cloud.bounds()
    assert np.all(lo == 0) and np.all(hi == 0)


def test_normalized_to_unit_cube_preserves_aspect():
    points = np.array([[0.0, 0.0, 0.0], [10.0, 5.0, 1.0]])
    cloud = PointCloud(points).normalized_to_unit_cube()
    lo, hi = cloud.bounds()
    assert np.all(lo >= -1e-12) and np.all(hi <= 1 + 1e-12)
    # The longest axis spans the full cube; the others stay proportional.
    span = hi - lo
    assert span[0] == pytest.approx(1.0)
    assert span[1] == pytest.approx(0.5)
    assert span[2] == pytest.approx(0.1)


def test_normalized_with_margin():
    points = np.array([[0.0, 0.0, 0.0], [2.0, 2.0, 2.0]])
    cloud = PointCloud(points).normalized_to_unit_cube(margin=0.1)
    lo, hi = cloud.bounds()
    assert lo.min() >= 0.1 - 1e-12
    assert hi.max() <= 0.9 + 1e-12


def test_normalize_degenerate_cloud():
    cloud = PointCloud(np.ones((4, 3))).normalized_to_unit_cube()
    assert np.allclose(cloud.points, 0.5)


def test_invalid_margin():
    with pytest.raises(ValueError):
        PointCloud(np.zeros((1, 3))).normalized_to_unit_cube(margin=0.5)


def test_rotation_preserves_distances():
    rng = np.random.default_rng(0)
    cloud = PointCloud(rng.standard_normal((50, 3)))
    rotated = cloud.rotated_z(0.7)
    d_before = np.linalg.norm(cloud.points[0] - cloud.points[1])
    d_after = np.linalg.norm(rotated.points[0] - rotated.points[1])
    assert d_after == pytest.approx(d_before)


def test_transform_validates_rotation_shape():
    cloud = PointCloud(np.zeros((1, 3)))
    with pytest.raises(ValueError):
        cloud.transformed(np.eye(2), np.zeros(3))


def test_jitter_changes_points_deterministically():
    cloud = PointCloud(np.zeros((10, 3)))
    a = cloud.jittered(0.1, np.random.default_rng(5))
    b = cloud.jittered(0.1, np.random.default_rng(5))
    assert np.allclose(a.points, b.points)
    assert not np.allclose(a.points, 0.0)


def test_subsample():
    rng = np.random.default_rng(0)
    cloud = PointCloud(rng.standard_normal((100, 3)), features=rng.standard_normal((100, 2)))
    sub = cloud.subsampled(10, np.random.default_rng(1))
    assert len(sub) == 10
    assert sub.features.shape == (10, 2)
    same = cloud.subsampled(200, np.random.default_rng(1))
    assert len(same) == 100


def test_merge():
    a = PointCloud(np.zeros((3, 3)))
    b = PointCloud(np.ones((2, 3)))
    merged = a.merged_with(b)
    assert len(merged) == 5
    with_features = PointCloud(np.zeros((1, 3)), features=np.ones((1, 1)))
    with pytest.raises(ValueError):
        a.merged_with(with_features)
