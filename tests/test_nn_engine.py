"""Tests for the fused sparse-conv engine and the rulebook cache."""

import numpy as np
import pytest

from repro.nn import (
    ApplyStats,
    RulebookCache,
    apply_rulebook,
    apply_rulebook_reference,
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
    sparse_conv3d,
    sparse_inverse_conv3d,
    submanifold_conv3d,
)
from repro.sparse import SparseTensor3D
from repro.sparse.ops import relu, scale_features
from tests.conftest import random_sparse_tensor


def make_weights(rng, kernel_size, cin, cout):
    return rng.standard_normal((kernel_size ** 3, cin, cout))


# ----------------------------------------------------------------------
# Fused apply_rulebook
# ----------------------------------------------------------------------
def test_fused_apply_bit_identical_to_reference():
    rng = np.random.default_rng(0)
    tensor = random_sparse_tensor(seed=1, shape=(14, 14, 14), nnz=90, channels=5)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = make_weights(rng, 3, 5, 7)
    fused = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    reference = apply_rulebook_reference(
        rulebook, tensor.features, weights, tensor.nnz
    )
    assert np.array_equal(fused, reference)


def test_fused_apply_bit_identical_on_strided_rulebook():
    rng = np.random.default_rng(2)
    tensor = random_sparse_tensor(seed=3, shape=(8, 8, 8), nnz=50, channels=3)
    rulebook, out_coords = build_sparse_conv_rulebook(tensor, 2, 2)
    weights = make_weights(rng, 2, 3, 4)
    fused = apply_rulebook(rulebook, tensor.features, weights, len(out_coords))
    reference = apply_rulebook_reference(
        rulebook, tensor.features, weights, len(out_coords)
    )
    assert np.array_equal(fused, reference)


def test_fused_apply_empty_rulebook():
    tensor = SparseTensor3D.empty((6, 6, 6), channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    out = apply_rulebook(rulebook, tensor.features, np.zeros((27, 2, 3)), 0)
    assert out.shape == (0, 3)


def test_apply_stats_accumulate():
    rng = np.random.default_rng(4)
    tensor = random_sparse_tensor(seed=5, nnz=40, channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    weights = make_weights(rng, 3, 2, 2)
    stats = ApplyStats()
    apply_rulebook(rulebook, tensor.features, weights, tensor.nnz, stats=stats)
    apply_rulebook(rulebook, tensor.features, weights, tensor.nnz, stats=stats)
    assert stats.matches == 2 * rulebook.total_matches
    assert stats.scatter_seconds > 0.0
    assert stats.total_seconds >= stats.scatter_seconds


# ----------------------------------------------------------------------
# Satellite: accumulator dtype follows the promoted input dtype
# ----------------------------------------------------------------------
def test_apply_rulebook_preserves_float32():
    rng = np.random.default_rng(6)
    tensor = random_sparse_tensor(seed=7, nnz=30, channels=3)
    f32 = tensor.with_features(tensor.features.astype(np.float32))
    weights = make_weights(rng, 3, 3, 4).astype(np.float32)
    out = submanifold_conv3d(f32, weights)
    assert out.features.dtype == np.float32


def test_apply_rulebook_preserves_integer_accumulation():
    """Quantized fixed-point features must accumulate in integer, not float64."""
    rng = np.random.default_rng(8)
    tensor = random_sparse_tensor(seed=9, nnz=25, channels=2)
    acts = np.rint(tensor.features * 100).astype(np.int64)
    weights = np.rint(make_weights(rng, 3, 2, 3) * 10).astype(np.int64)
    rulebook = build_submanifold_rulebook(tensor, 3)
    out = apply_rulebook(rulebook, acts, weights, tensor.nnz)
    assert out.dtype == np.int64
    # Values agree with the float reference exactly (small integers).
    reference = apply_rulebook_reference(rulebook, acts, weights, tensor.nnz)
    assert np.array_equal(out.astype(np.float64), reference)


def test_narrow_integer_inputs_widen_to_int64():
    """INT16 x INT8 per-match products fit, but cross-offset sums must not wrap."""
    coords = np.argwhere(np.ones((3, 3, 3), dtype=bool))
    features = np.full((27, 1), 2000, dtype=np.int16)
    tensor = SparseTensor3D(coords, features, (3, 3, 3))
    weights = np.ones((27, 1, 1), dtype=np.int8)
    rulebook = build_submanifold_rulebook(tensor, 3)
    out = apply_rulebook(rulebook, tensor.features, weights, tensor.nnz)
    assert out.dtype == np.int64
    # The center voxel sees all 27 neighbors: 27 * 2000 = 54000 > int16 max.
    center = 13
    assert out[center, 0] == 54000
    reference = apply_rulebook_reference(
        rulebook, tensor.features, weights, tensor.nnz
    )
    assert np.array_equal(out.astype(np.float64), reference)


def test_dtype_promotion_mixed():
    rng = np.random.default_rng(10)
    tensor = random_sparse_tensor(seed=11, nnz=20, channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    out = apply_rulebook(
        rulebook,
        tensor.features.astype(np.float32),
        make_weights(rng, 3, 2, 2),  # float64
        tensor.nnz,
    )
    assert out.dtype == np.float64


def test_with_features_preserves_dtype():
    tensor = random_sparse_tensor(seed=12, nnz=10, channels=2)
    f32 = tensor.with_features(tensor.features.astype(np.float32))
    assert f32.features.dtype == np.float32
    i16 = tensor.with_features(np.ones((tensor.nnz, 4), dtype=np.int16))
    assert i16.features.dtype == np.int16


# ----------------------------------------------------------------------
# Satellite: stride validation regression
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stride", [0, -1, -2])
def test_sparse_conv_rejects_nonpositive_stride(stride):
    rng = np.random.default_rng(13)
    tensor = random_sparse_tensor(seed=14, shape=(8, 8, 8), nnz=20, channels=2)
    with pytest.raises(ValueError, match="stride"):
        sparse_conv3d(tensor, make_weights(rng, 2, 2, 4), stride=stride)


@pytest.mark.parametrize("stride", [0, -1])
def test_sparse_inverse_conv_rejects_nonpositive_stride(stride):
    rng = np.random.default_rng(15)
    fine = random_sparse_tensor(seed=16, shape=(8, 8, 8), nnz=20, channels=2)
    down = sparse_conv3d(fine, make_weights(rng, 2, 2, 4), stride=2)
    with pytest.raises(ValueError, match="stride"):
        sparse_inverse_conv3d(
            down, make_weights(rng, 2, 4, 2), reference=fine, stride=stride
        )


def test_sparse_conv_rejects_fractional_stride():
    rng = np.random.default_rng(17)
    tensor = random_sparse_tensor(seed=18, shape=(8, 8, 8), nnz=20, channels=2)
    with pytest.raises(ValueError, match="integer"):
        sparse_conv3d(tensor, make_weights(rng, 2, 2, 4), stride=1.5)


# ----------------------------------------------------------------------
# Satellite: vectorized matches_per_output
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed,nnz", [(20, 1), (21, 40), (22, 120)])
def test_matches_per_output_matches_loop(seed, nnz):
    tensor = random_sparse_tensor(seed=seed, shape=(10, 10, 10), nnz=nnz, channels=1)
    rulebook = build_submanifold_rulebook(tensor, 3)
    vectorized = rulebook.matches_per_output()
    # The seed implementation: per-offset np.add.at histogram.
    loop = np.zeros(rulebook.num_outputs, dtype=np.int64)
    for rule in rulebook.rules:
        if len(rule):
            np.add.at(loop, rule[:, 1], 1)
    assert np.array_equal(vectorized, loop)
    assert vectorized.dtype == np.int64
    assert vectorized.sum() == rulebook.total_matches


def test_matches_per_output_empty():
    tensor = SparseTensor3D.empty((5, 5, 5))
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert rulebook.matches_per_output().shape == (0,)


# ----------------------------------------------------------------------
# RulebookCache behavior
# ----------------------------------------------------------------------
def test_cache_hit_on_same_site_set():
    cache = RulebookCache()
    tensor = random_sparse_tensor(seed=23, nnz=30, channels=2)
    rb1 = cache.submanifold(tensor, 3)
    rb2 = cache.submanifold(tensor.with_features(tensor.features * 2.0), 3)
    assert rb1 is rb2
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_cache_distinguishes_kernel_and_shape():
    cache = RulebookCache()
    tensor = random_sparse_tensor(seed=24, shape=(12, 12, 12), nnz=30, channels=1)
    cache.submanifold(tensor, 3)
    cache.submanifold(tensor, 5)
    assert cache.misses == 2 and cache.hits == 0
    bigger = SparseTensor3D(tensor.coords, tensor.features, (13, 13, 13))
    cache.submanifold(bigger, 3)
    assert cache.misses == 3


def test_cache_miss_on_changed_sites():
    cache = RulebookCache()
    tensor = random_sparse_tensor(seed=25, shape=(9, 9, 9), nnz=30, channels=1)
    cache.submanifold(tensor, 3)
    cropped = SparseTensor3D(
        tensor.coords[:-1], tensor.features[:-1], tensor.shape
    )
    cache.submanifold(cropped, 3)
    assert cache.misses == 2 and cache.hits == 0


def test_cache_lru_eviction():
    cache = RulebookCache(capacity=2)
    tensors = [
        random_sparse_tensor(seed=s, nnz=10 + s, channels=1) for s in (1, 2, 3)
    ]
    for tensor in tensors:
        cache.submanifold(tensor, 3)
    assert len(cache) == 2
    # tensor[0] was evicted; tensor[2] is still resident.
    cache.submanifold(tensors[2], 3)
    assert cache.hits == 1
    cache.submanifold(tensors[0], 3)
    assert cache.misses == 4


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_explicit_cache_none_disables_attached_cache():
    from repro.nn import SubmanifoldConv3d

    tensor = random_sparse_tensor(seed=28, nnz=20, channels=2)
    cache = RulebookCache()
    layer = SubmanifoldConv3d(2, 3, rng=np.random.default_rng(29))
    layer.use_rulebook_cache(cache)
    layer(tensor)
    assert cache.lookups == 1
    # cache=None must bypass the attached cache for this call only.
    layer(tensor, cache=None)
    assert cache.lookups == 1
    layer(tensor)
    assert cache.lookups == 2 and cache.hits == 1


def test_cache_validates_capacity():
    with pytest.raises(ValueError):
        RulebookCache(capacity=0)


def test_cache_shared_between_down_and_inverse_conv():
    """The transposed conv reuses the forward matching pass of its encoder."""
    rng = np.random.default_rng(26)
    cache = RulebookCache()
    fine = random_sparse_tensor(seed=27, shape=(8, 8, 8), nnz=40, channels=3)
    down = sparse_conv3d(fine, make_weights(rng, 2, 3, 6), stride=2, cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    w_up = make_weights(rng, 2, 6, 3)
    up = sparse_inverse_conv3d(down, w_up, reference=fine, cache=cache)
    assert cache.misses == 1 and cache.hits == 1
    # And the cached path equals the uncached one bit-for-bit.
    up_plain = sparse_inverse_conv3d(down, w_up, reference=fine)
    assert np.array_equal(up.features, up_plain.features)


# ----------------------------------------------------------------------
# Satellite: property-style cache-validity test
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel_size", [3, 5])
@pytest.mark.parametrize("seed", [30, 31, 32])
def test_cached_rulebook_valid_across_site_preserving_ops(seed, kernel_size):
    """Sites unchanged => the cached rulebook must stay valid.

    Random site sets are pushed through site-preserving ops (ReLU, folded
    batch norm) and re-convolved via the cache; the result must equal a
    convolution with a freshly built rulebook, bit for bit.
    """
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(5, 80))
    channels = int(rng.integers(1, 5))
    tensor = random_sparse_tensor(
        seed=seed, shape=(11, 11, 11), nnz=nnz, channels=channels
    )
    weights = make_weights(rng, kernel_size, channels, 4)
    cache = RulebookCache()

    # Populate the cache with the original tensor's rulebook.
    first_cached = submanifold_conv3d(
        tensor, weights, kernel_size=kernel_size, cache=cache
    )
    first_fresh = submanifold_conv3d(tensor, weights, kernel_size=kernel_size)
    assert np.array_equal(first_cached.features, first_fresh.features)

    # Site-preserving transformations: the cache must hit and stay valid.
    transformed = relu(
        scale_features(
            tensor,
            1.0 + 0.1 * rng.standard_normal(channels),
            0.05 * rng.standard_normal(channels),
        )
    )
    assert np.array_equal(transformed.coords, tensor.coords)
    misses_before = cache.misses
    cached_out = submanifold_conv3d(
        transformed, weights, kernel_size=kernel_size, cache=cache
    )
    assert cache.misses == misses_before, "site-preserving op must not miss"
    fresh_out = submanifold_conv3d(
        transformed, weights, kernel_size=kernel_size
    )
    assert np.array_equal(cached_out.features, fresh_out.features)
    assert np.array_equal(cached_out.coords, fresh_out.coords)
