"""Tests for the GPU/CPU/dense-accelerator baseline models."""

import pytest

from repro.baselines import (
    CpuExecutionModel,
    DenseAcceleratorModel,
    GpuExecutionModel,
    PUBLISHED_ESCA,
    PUBLISHED_FPGA_POINTNET,
    PUBLISHED_GPU_P100,
    SubConvWorkload,
    workload_from_tensor,
)
from repro.baselines.platform import workloads_from_executions
from repro.nn import SSUNet, UNetConfig, build_submanifold_rulebook
from repro.nn.unet import collect_subconv_workloads
from tests.conftest import random_sparse_tensor


def make_workload(nnz=1000, matches=8000, cin=16, cout=16):
    return SubConvWorkload(
        name="test",
        nnz=nnz,
        matches=matches,
        in_channels=cin,
        out_channels=cout,
        kernel_size=3,
        volume=192 ** 3,
    )


def test_workload_from_tensor_matches_rulebook():
    tensor = random_sparse_tensor(seed=150, shape=(12, 12, 12), nnz=40, channels=4)
    workload = workload_from_tensor(tensor, 4, 8)
    rulebook = build_submanifold_rulebook(tensor, 3)
    assert workload.matches == rulebook.total_matches
    assert workload.nnz == 40
    assert workload.effective_ops == rulebook.effective_ops(4, 8)
    assert workload.matching_probes == 40 * 27


def test_workloads_from_executions_filters_kernel():
    tensor = random_sparse_tensor(seed=151, shape=(12, 12, 12), nnz=30, channels=1)
    net = SSUNet(UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2))
    executions = collect_subconv_workloads(net, tensor)
    workloads = workloads_from_executions(executions, kernel_size=3)
    # The 1^3 classifier head must be filtered out.
    assert all(w.kernel_size == 3 for w in workloads)
    assert len(workloads) == len(executions) - 1


def test_gpu_layer_time_decomposition():
    gpu = GpuExecutionModel()
    workload = make_workload()
    total = gpu.layer_seconds(workload)
    assert total == pytest.approx(
        gpu.launch_seconds
        + gpu.matching_seconds(workload)
        + gpu.compute_seconds(workload)
    )
    assert gpu.matching_seconds(workload) > 0
    assert gpu.power_watts == pytest.approx(90.56)


def test_gpu_time_grows_with_work():
    gpu = GpuExecutionModel()
    small = make_workload(nnz=100, matches=500)
    large = make_workload(nnz=10_000, matches=80_000)
    assert gpu.layer_seconds(large) > gpu.layer_seconds(small)


def test_cpu_slower_than_gpu_on_large_layers():
    cpu = CpuExecutionModel()
    gpu = GpuExecutionModel()
    workload = make_workload(nnz=2000, matches=20_000)
    assert cpu.layer_seconds(workload) > gpu.layer_seconds(workload)


def test_model_validation():
    with pytest.raises(ValueError):
        GpuExecutionModel(launch_seconds=-1)
    with pytest.raises(ValueError):
        GpuExecutionModel(probe_rate_per_s=0)
    with pytest.raises(ValueError):
        CpuExecutionModel(effective_gemm_ops_per_s=0)
    with pytest.raises(ValueError):
        DenseAcceleratorModel(dram_bandwidth_bytes_per_s=0)


def test_network_gops_accounting():
    gpu = GpuExecutionModel()
    workloads = [make_workload(), make_workload(nnz=500, matches=3000)]
    seconds = gpu.network_seconds(workloads)
    assert seconds == pytest.approx(
        sum(gpu.layer_seconds(w) for w in workloads)
    )
    gops = gpu.network_gops(workloads)
    ops = sum(w.effective_ops for w in workloads)
    assert gops == pytest.approx(ops / seconds / 1e9)


def test_dense_accelerator_streams_dense_volume():
    dense = DenseAcceleratorModel()
    workload = make_workload(nnz=2000, matches=16_000, cin=16, cout=16)
    stream = dense.stream_seconds(workload)
    # 192^3 voxels x 16 ch x 2 B at 19.2 GB/s.
    assert stream == pytest.approx(192 ** 3 * 16 * 2 / 19.2e9)
    assert dense.layer_seconds(workload) >= stream


def test_dense_accelerator_much_slower_than_esca_workload():
    """The degradation claim: dense streaming dwarfs ESCA's layer time."""
    dense = DenseAcceleratorModel()
    workload = make_workload(nnz=2065, matches=19_969, cin=16, cout=16)
    # ESCA's total for this layer is ~0.84 ms (Fig. 10); the dense
    # accelerator pays >10x that just streaming the dense feature map.
    assert dense.layer_seconds(workload) > 10 * 0.84e-3


def test_dense_wasted_work_fraction():
    dense = DenseAcceleratorModel()
    workload = make_workload(nnz=1000, matches=8000)
    wasted = dense.wasted_work_fraction(workload)
    assert wasted == pytest.approx(1 - 8000 / 27_000)
    empty = make_workload(nnz=0, matches=0)
    assert dense.wasted_work_fraction(empty) == 0.0


def test_published_rows():
    assert PUBLISHED_GPU_P100.performance_gops == pytest.approx(9.40)
    assert PUBLISHED_GPU_P100.power_efficiency == pytest.approx(9.40 / 90.56)
    assert PUBLISHED_FPGA_POINTNET.power_efficiency == pytest.approx(
        1.21 / 2.15
    )
    assert PUBLISHED_ESCA.power_efficiency == pytest.approx(17.73 / 3.45)
