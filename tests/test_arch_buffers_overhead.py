"""Tests for buffer models and the system overhead model."""

import pytest

from repro.arch import BufferModel, SystemOverheadModel, layer_transfer_volume
from repro.arch.buffers import BRAM36_BITS


def test_buffer_capacity_and_counters():
    buf = BufferModel("act", depth=1024, width_bits=256, banks=2)
    assert buf.capacity_bits == 1024 * 256 * 2
    buf.record_read(3)
    buf.record_write()
    assert buf.reads == 3
    assert buf.writes == 1


def test_buffer_bram_half_block_granularity():
    # 16 Kb fits one 18 Kb half block -> 0.5 BRAM36.
    tiny = BufferModel("fifo", depth=256, width_bits=64)
    assert tiny.bram36() == 0.5
    # Exactly one BRAM36 worth of bits -> 2 half blocks -> 1.0.
    exact = BufferModel("x", depth=BRAM36_BITS // 32, width_bits=32)
    assert exact.bram36() == 1.0
    # Banks multiply.
    banked = BufferModel("fifo_group", depth=256, width_bits=64, banks=9)
    assert banked.bram36() == pytest.approx(4.5)


def test_buffer_validation():
    with pytest.raises(ValueError):
        BufferModel("bad", depth=0, width_bits=8)
    with pytest.raises(ValueError):
        BufferModel("bad", depth=8, width_bits=0)


def test_buffer_utilization_of():
    buf = BufferModel("w", depth=100, width_bits=8)
    assert buf.utilization_of(50) == pytest.approx(0.5)
    assert buf.utilization_of(1000) == 1.0


def test_transfer_volume_accounting():
    volume = layer_transfer_volume(
        nnz_in=100,
        nnz_out=100,
        in_channels=16,
        out_channels=32,
        kernel_volume=27,
        mask_bits=4096,
    )
    assert volume.weight_bytes == 27 * 16 * 32
    assert volume.input_activation_bytes == 100 * 16 * 2
    assert volume.output_activation_bytes == 100 * 32 * 2
    assert volume.mask_bytes == 512
    assert volume.total_bytes == sum(
        (volume.weight_bytes, volume.input_activation_bytes,
         volume.output_activation_bytes, volume.mask_bytes)
    )


def test_overhead_model_components():
    model = SystemOverheadModel(
        host_sync_seconds=1e-3, effective_bandwidth_bytes_per_s=1e9
    )
    volume = layer_transfer_volume(
        nnz_in=0, nnz_out=0, in_channels=1, out_channels=1,
        kernel_volume=27, mask_bits=0,
    )
    assert model.transfer_seconds(volume) == pytest.approx(27 / 1e9)
    assert model.layer_overhead_seconds(volume) == pytest.approx(1e-3 + 27 / 1e9)


def test_overhead_model_disabled():
    model = SystemOverheadModel(enabled=False)
    volume = layer_transfer_volume(
        nnz_in=10, nnz_out=10, in_channels=4, out_channels=4,
        kernel_volume=27, mask_bits=512,
    )
    assert model.layer_overhead_seconds(volume) == 0.0


def test_overhead_model_validation():
    with pytest.raises(ValueError):
        SystemOverheadModel(host_sync_seconds=-1)
    with pytest.raises(ValueError):
        SystemOverheadModel(effective_bandwidth_bytes_per_s=0)
