"""Tests for the functional sparse convolutions against dense references."""

import numpy as np
import pytest

from repro.nn import (
    dense_conv3d_reference,
    sparse_conv3d,
    sparse_inverse_conv3d,
    submanifold_conv3d,
)
from repro.nn.functional import normalize_weights
from repro.sparse import SparseTensor3D, dense_to_sparse
from tests.conftest import random_sparse_tensor


def make_weights(rng, kernel_size, cin, cout):
    return rng.standard_normal((kernel_size ** 3, cin, cout))


def test_normalize_weights_accepts_5d():
    w5 = np.zeros((3, 3, 3, 2, 4))
    w3 = normalize_weights(w5, 3)
    assert w3.shape == (27, 2, 4)
    with pytest.raises(ValueError):
        normalize_weights(np.zeros((8, 2, 4)), 3)
    with pytest.raises(ValueError):
        normalize_weights(np.zeros((2, 2, 2, 2, 4)), 3)


def test_submanifold_matches_dense_conv_at_active_sites():
    """The defining property: Sub-Conv equals traditional convolution
    evaluated at the active sites only (Fig. 2)."""
    rng = np.random.default_rng(31)
    tensor = random_sparse_tensor(seed=32, shape=(9, 9, 9), nnz=50, channels=3)
    weights = make_weights(rng, 3, 3, 5)
    sparse_out = submanifold_conv3d(tensor, weights)
    dense_out = dense_conv3d_reference(tensor.dense(), weights)
    for row, coord in enumerate(tensor.coords):
        assert np.allclose(
            sparse_out.features[row], dense_out[tuple(coord)], atol=1e-9
        )


def test_submanifold_preserves_sites():
    rng = np.random.default_rng(33)
    tensor = random_sparse_tensor(seed=34, nnz=30, channels=2)
    out = submanifold_conv3d(tensor, make_weights(rng, 3, 2, 7))
    assert np.array_equal(out.coords, tensor.coords)
    assert out.num_channels == 7


def test_traditional_convolution_dilates_sparsity():
    """Fig. 2(a): dense conv grows the active set; Sub-Conv does not."""
    tensor = SparseTensor3D(np.array([[4, 4, 4]]), np.ones((1, 1)), (9, 9, 9))
    weights = np.ones((27, 1, 1))
    dense_out = dense_conv3d_reference(tensor.dense(), weights)
    dilated = dense_to_sparse(dense_out)
    assert dilated.nnz == 27  # the single point spread to its neighborhood
    sub_out = submanifold_conv3d(tensor, weights)
    assert sub_out.nnz == 1


def test_submanifold_kernel1_is_per_site_linear():
    rng = np.random.default_rng(35)
    tensor = random_sparse_tensor(seed=36, nnz=20, channels=4)
    weights = rng.standard_normal((1, 4, 6))
    out = submanifold_conv3d(tensor, weights, kernel_size=1)
    assert np.allclose(out.features, tensor.features @ weights[0])


def test_submanifold_bias():
    rng = np.random.default_rng(37)
    tensor = random_sparse_tensor(seed=38, nnz=10, channels=2)
    weights = np.zeros((27, 2, 3))
    bias = np.array([1.0, -2.0, 0.5])
    out = submanifold_conv3d(tensor, weights, bias=bias)
    assert np.allclose(out.features, np.tile(bias, (tensor.nnz, 1)))


def test_submanifold_channel_mismatch():
    tensor = random_sparse_tensor(seed=39, nnz=5, channels=2)
    with pytest.raises(ValueError):
        submanifold_conv3d(tensor, np.zeros((27, 3, 4)))


def test_sparse_conv_downsamples_sites():
    rng = np.random.default_rng(40)
    tensor = random_sparse_tensor(seed=41, shape=(8, 8, 8), nnz=40, channels=2)
    out = sparse_conv3d(tensor, make_weights(rng, 2, 2, 4), stride=2)
    assert out.shape == (4, 4, 4)
    expected_sites = np.unique(tensor.coords // 2, axis=0)
    assert np.array_equal(out.coords, expected_sites)


def test_sparse_conv_values_against_manual():
    """Two inputs in one stride-2 cell accumulate W[d]-weighted features."""
    coords = np.array([[0, 0, 0], [1, 1, 1]])
    features = np.array([[1.0], [10.0]])
    tensor = SparseTensor3D(coords, features, (4, 4, 4))
    weights = np.zeros((8, 1, 1))
    # Offsets are ordered lexicographically over (dx, dy, dz) in {0,1}^3.
    weights[0, 0, 0] = 2.0  # offset (0,0,0) matches input (0,0,0)
    weights[7, 0, 0] = 3.0  # offset (1,1,1) matches input (1,1,1)
    out = sparse_conv3d(tensor, weights, stride=2)
    assert out.nnz == 1
    assert out.feature_at((0, 0, 0))[0] == pytest.approx(1.0 * 2.0 + 10.0 * 3.0)


def test_inverse_conv_restores_reference_sites():
    rng = np.random.default_rng(42)
    fine = random_sparse_tensor(seed=43, shape=(8, 8, 8), nnz=30, channels=3)
    down = sparse_conv3d(fine, make_weights(rng, 2, 3, 6), stride=2)
    up = sparse_inverse_conv3d(down, make_weights(rng, 2, 6, 3), reference=fine)
    assert np.array_equal(up.coords, fine.coords)
    assert up.num_channels == 3
    assert up.shape == fine.shape


def test_inverse_conv_rejects_wrong_reference():
    rng = np.random.default_rng(44)
    fine = random_sparse_tensor(seed=45, shape=(8, 8, 8), nnz=30, channels=2)
    other = random_sparse_tensor(seed=46, shape=(8, 8, 8), nnz=31, channels=2)
    down = sparse_conv3d(fine, make_weights(rng, 2, 2, 4), stride=2)
    with pytest.raises(ValueError):
        sparse_inverse_conv3d(down, make_weights(rng, 2, 4, 2), reference=other)


def test_inverse_conv_adjoint_property():
    """<conv(x), y> == <x, conv^T(y)> for matching weight layouts."""
    rng = np.random.default_rng(47)
    fine = random_sparse_tensor(seed=48, shape=(6, 6, 6), nnz=25, channels=2)
    weights = make_weights(rng, 2, 2, 3)
    down = sparse_conv3d(fine, weights, stride=2)
    # y random on the coarse sites, pushed back up with the SAME weights
    # transposed channel-wise.
    y = rng.standard_normal(down.features.shape)
    coarse_y = down.with_features(y)
    w_t = np.transpose(weights, (0, 2, 1))
    up = sparse_inverse_conv3d(coarse_y, w_t, reference=fine, stride=2)
    lhs = float((down.features * y).sum())
    rhs = float((fine.features * up.features).sum())
    assert lhs == pytest.approx(rhs, rel=1e-9)


def test_dense_reference_validation():
    with pytest.raises(ValueError):
        dense_conv3d_reference(np.zeros((3, 3, 3)), np.zeros((27, 1, 1)))
    with pytest.raises(ValueError):
        dense_conv3d_reference(np.zeros((3, 3, 3, 2)), np.zeros((27, 1, 1)))


def test_precomputed_rulebook_reuse():
    from repro.nn import build_submanifold_rulebook

    rng = np.random.default_rng(49)
    tensor = random_sparse_tensor(seed=50, nnz=20, channels=2)
    rulebook = build_submanifold_rulebook(tensor, 3)
    w = make_weights(rng, 3, 2, 2)
    out_a = submanifold_conv3d(tensor, w)
    out_b = submanifold_conv3d(tensor, w, rulebook=rulebook)
    assert np.allclose(out_a.features, out_b.features)
