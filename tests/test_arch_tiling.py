"""Tests for the tile-based zero removing strategy (Sec. III-A / Table I)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import TileGrid, ZeroRemover
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def test_tile_grid_dimensions():
    tensor = random_sparse_tensor(seed=100, shape=(16, 16, 16), nnz=10)
    grid = TileGrid(tensor, (8, 8, 8))
    assert grid.grid_dims == (2, 2, 2)
    assert grid.total_tiles == 8
    assert grid.tile_volume() == 512


def test_uneven_tile_shapes_round_up():
    tensor = random_sparse_tensor(seed=101, shape=(10, 10, 10), nnz=5)
    grid = TileGrid(tensor, (4, 4, 4))
    assert grid.grid_dims == (3, 3, 3)


def test_every_site_lands_in_exactly_one_active_tile():
    tensor = random_sparse_tensor(seed=102, shape=(24, 24, 24), nnz=60)
    grid = TileGrid(tensor, (8, 8, 8))
    all_rows = np.sort(
        np.concatenate([tile.rows for tile in grid.active_tiles])
    )
    assert np.array_equal(all_rows, np.arange(tensor.nnz))


def test_tile_rows_are_inside_the_tile():
    tensor = random_sparse_tensor(seed=103, shape=(24, 24, 24), nnz=60)
    grid = TileGrid(tensor, (8, 8, 8))
    for tile in grid.active_tiles:
        coords = tensor.coords[tile.rows]
        origin = np.asarray(tile.origin)
        assert np.all(coords >= origin)
        assert np.all(coords < origin + np.asarray(grid.tile_shape))


def test_active_tiles_in_scan_order():
    tensor = random_sparse_tensor(seed=104, shape=(32, 32, 32), nnz=80)
    grid = TileGrid(tensor, (8, 8, 8))
    indices = [tile.index for tile in grid.active_tiles]
    assert indices == sorted(indices)


def test_zero_removal_is_lossless():
    tensor = random_sparse_tensor(seed=105, shape=(32, 32, 32), nnz=50)
    result = ZeroRemover((8, 8, 8)).remove(tensor)
    covered = sum(tile.nnz for tile in result.grid.active_tiles)
    assert covered == tensor.nnz


def test_removing_ratio_formula():
    """Removing ratio is the fraction of *tiles* removed (Table I)."""
    coords = np.array([[0, 0, 0]])  # a single site -> one active tile
    tensor = SparseTensor3D(coords, np.ones((1, 1)), (16, 16, 16))
    result = ZeroRemover((8, 8, 8)).remove(tensor)
    assert result.active_tiles == 1
    assert result.total_tiles == 8
    assert result.removing_ratio == pytest.approx(1 - 1 / 8)


def test_empty_tensor_removes_everything():
    tensor = SparseTensor3D.empty((16, 16, 16))
    result = ZeroRemover((8, 8, 8)).remove(tensor)
    assert result.active_tiles == 0
    assert result.removing_ratio == 1.0
    assert result.scanned_positions == 0
    assert result.scan_reduction == float("inf")


def test_scan_reduction():
    coords = np.array([[0, 0, 0]])
    tensor = SparseTensor3D(coords, np.ones((1, 1)), (16, 16, 16))
    result = ZeroRemover((8, 8, 8)).remove(tensor)
    assert result.scanned_positions == 512
    assert result.scan_reduction == pytest.approx(16 ** 3 / 512)


def test_finer_tiles_remove_at_least_as_many_voxels():
    """Finer tiling scans fewer (or equal) positions — the Table I trend."""
    tensor = random_sparse_tensor(seed=106, shape=(48, 48, 48), nnz=100)
    remover = ZeroRemover()
    results = remover.sweep(tensor, tile_sizes=(4, 8, 12, 16))
    scanned = [r.scanned_positions for r in results]
    assert scanned == sorted(scanned)


def test_is_active_and_tile_at():
    coords = np.array([[9, 9, 9]])
    tensor = SparseTensor3D(coords, np.ones((1, 1)), (16, 16, 16))
    grid = TileGrid(tensor, (8, 8, 8))
    assert grid.is_active((1, 1, 1))
    assert not grid.is_active((0, 0, 0))
    assert grid.tile_at((1, 1, 1)).nnz == 1
    assert grid.tile_at((0, 0, 0)) is None


def test_invalid_tile_shape():
    tensor = SparseTensor3D.empty((8, 8, 8))
    with pytest.raises(ValueError):
        TileGrid(tensor, (0, 8, 8))
    with pytest.raises(ValueError):
        TileGrid(tensor, (8, 8))


@given(st.integers(0, 5000), st.sampled_from([2, 3, 4, 8]))
@settings(max_examples=30, deadline=None)
def test_property_removal_counts_consistent(seed, tile):
    """active <= total; every nonzero covered; ratio in [0, 1]."""
    tensor = random_sparse_tensor(
        seed=seed, shape=(16, 16, 16), nnz=seed % 50 + 1
    )
    result = ZeroRemover((tile, tile, tile)).remove(tensor)
    assert 0 <= result.active_tiles <= result.total_tiles
    assert 0.0 <= result.removing_ratio <= 1.0
    covered = sum(t.nnz for t in result.grid.active_tiles)
    assert covered == tensor.nnz
