"""Tests for the roofline analysis."""

import numpy as np
import pytest

from repro.analysis.roofline import (
    ridge_intensity,
    roofline_point,
    roofline_report,
)
from repro.arch import AcceleratorConfig, EscaAccelerator, SystemOverheadModel
from repro.nn import SSUNet, UNetConfig
from tests.conftest import random_sparse_tensor


def test_ridge_intensity():
    config = AcceleratorConfig()
    overheads = SystemOverheadModel()
    ridge = ridge_intensity(config, overheads)
    # 138.24 GOPS peak / 1.2 GB/s = 115.2 ops per byte.
    assert ridge == pytest.approx(138.24e9 / 1.2e9)


def test_roofline_point_fields():
    tensor = random_sparse_tensor(seed=250, shape=(16, 16, 16), nnz=40, channels=16)
    run = EscaAccelerator().run_layer(tensor, out_channels=16)
    point = roofline_point(run)
    assert point.operational_intensity == pytest.approx(
        run.effective_ops / run.transfer.total_bytes
    )
    assert point.achieved_gops == pytest.approx(run.effective_gops())
    assert point.bound in ("compute", "memory")
    assert 0 < point.roof_fraction <= 1.001


def test_achieved_never_exceeds_roof():
    """The simulator can never beat the roofline (sanity of both models)."""
    for channels in (1, 16, 64):
        tensor = random_sparse_tensor(
            seed=251 + channels, shape=(16, 16, 16), nnz=60, channels=channels
        )
        run = EscaAccelerator().run_layer(tensor, out_channels=channels)
        point = roofline_point(run)
        # Compute roof is hard; memory roof applies to *sustained* system
        # throughput, so compare core GOPS against the compute roof only.
        assert point.achieved_gops <= run.config.peak_gops * 1.001


def test_network_roofline_shows_both_regimes():
    """Shallow layers are matching-bound (far below roof); deep layers
    approach the compute roof."""
    tensor = random_sparse_tensor(seed=252, shape=(24, 24, 24), nnz=400, channels=1)
    net = SSUNet(UNetConfig(in_channels=1, num_classes=8, base_channels=16, levels=3))
    network = EscaAccelerator().run_network(net, tensor)
    points = roofline_report(network)
    assert len(points) == len(network.layers)
    fractions = {point.name: point.roof_fraction for point in points}
    # The 1-channel input layer is nowhere near its roof...
    assert fractions["enc0.conv0"] < 0.3
    # ...while some deeper layer achieves most of its attainable roof.
    assert max(fractions.values()) > 0.5


def test_roofline_rejects_zero_bytes():
    tensor = random_sparse_tensor(seed=253, nnz=5, channels=2)
    run = EscaAccelerator().run_layer(tensor, out_channels=2)
    object.__setattr__(run.transfer, "weight_bytes", 0)  # not frozen-safe; rebuild
    from repro.arch import TransferVolume

    run.transfer = TransferVolume(0, 0, 0, 0)
    with pytest.raises(ValueError):
        roofline_point(run)
