"""Tests for the synthetic dataset generators (Table I calibration)."""

import numpy as np
import pytest

from repro.geometry import (
    PointCloud,
    make_nyu_like_cloud,
    make_shapenet_like_cloud,
)
from repro.geometry.datasets import DatasetCatalog, load_sample
from repro.geometry.synthetic import (
    SHAPENET_CATEGORIES,
    sample_box_surface,
    sample_plane,
    sample_sphere,
    sample_strut,
)

PAPER_TABLE1 = {
    "shapenet": {4: 198, 8: 42, 12: 23, 16: 14},
    "nyu": {4: 161, 8: 33, 12: 19, 16: 9},
}


def active_tiles(grid, tile_size):
    return len(np.unique(grid.coords // tile_size, axis=0))


def test_generators_are_deterministic():
    a = make_shapenet_like_cloud(seed=3)
    b = make_shapenet_like_cloud(seed=3)
    assert np.allclose(a.points, b.points)
    c = make_nyu_like_cloud(seed=3)
    d = make_nyu_like_cloud(seed=3)
    assert np.allclose(c.points, d.points)


def test_different_seeds_differ():
    a = make_shapenet_like_cloud(seed=0)
    b = make_shapenet_like_cloud(seed=1)
    assert a.points.shape != b.points.shape or not np.allclose(a.points, b.points)


def test_points_lie_in_unit_cube():
    for maker in (make_shapenet_like_cloud, make_nyu_like_cloud):
        cloud = maker(seed=0)
        assert cloud.points.min() >= 0.0
        assert cloud.points.max() < 1.0


def test_all_categories_buildable():
    for category in SHAPENET_CATEGORIES:
        cloud = make_shapenet_like_cloud(seed=1, category=category)
        assert len(cloud) > 100


def test_unknown_category_rejected():
    with pytest.raises(ValueError):
        make_shapenet_like_cloud(category="boat")


def test_invalid_grid_fraction_rejected():
    with pytest.raises(ValueError):
        make_shapenet_like_cloud(grid_fraction=0.0)
    with pytest.raises(ValueError):
        make_nyu_like_cloud(grid_fraction=1.5)


@pytest.mark.parametrize("dataset", ["shapenet", "nyu"])
def test_tile_counts_match_paper_band(dataset):
    """Active-tile counts must land in a band around Table I."""
    sample = load_sample(dataset, seed=0)
    for tile_size, paper_count in PAPER_TABLE1[dataset].items():
        measured = active_tiles(sample.grid, tile_size)
        assert 0.5 * paper_count <= measured <= 1.6 * paper_count, (
            f"{dataset} tile {tile_size}: measured {measured}, "
            f"paper {paper_count}"
        )


@pytest.mark.parametrize("dataset", ["shapenet", "nyu"])
def test_sparsity_matches_paper_claim(dataset):
    sample = load_sample(dataset, seed=0)
    assert sample.grid.sparsity > 0.999


def test_active_tiles_decrease_with_tile_size():
    sample = load_sample("shapenet", seed=0)
    counts = [active_tiles(sample.grid, t) for t in (4, 8, 12, 16)]
    assert counts == sorted(counts, reverse=True)


def test_primitive_samplers_shapes():
    rng = np.random.default_rng(0)
    plane = sample_plane(rng, [0, 0, 0], [1, 0, 0], [0, 1, 0], 50)
    assert plane.shape == (50, 3)
    assert np.all(plane[:, 2] == 0)
    strut = sample_strut(rng, [0, 0, 0], [0, 0, 1], 0.1, 30)
    radial = np.linalg.norm(strut[:, :2], axis=1)
    assert np.allclose(radial, 0.1, atol=1e-9)
    sphere = sample_sphere(rng, [0, 0, 0], 2.0, 40)
    assert np.allclose(np.linalg.norm(sphere, axis=1), 2.0)
    box = sample_box_surface(rng, [0, 0, 0], [1, 2, 3], 60)
    on_face = (
        np.isclose(box[:, 0], 0) | np.isclose(box[:, 0], 1)
        | np.isclose(box[:, 1], 0) | np.isclose(box[:, 1], 2)
        | np.isclose(box[:, 2], 0) | np.isclose(box[:, 2], 3)
    )
    assert np.all(on_face)


def test_degenerate_strut_and_box():
    rng = np.random.default_rng(0)
    point_strut = sample_strut(rng, [1, 1, 1], [1, 1, 1], 0.1, 5)
    assert np.allclose(point_strut, 1.0)
    point_box = sample_box_surface(rng, [2, 2, 2], [2, 2, 2], 5)
    assert np.allclose(point_box, 2.0)


def test_catalog_registration_and_listing():
    catalog = DatasetCatalog()
    assert set(catalog.names()) == {"nyu", "shapenet"}
    catalog.register("cube", lambda seed: PointCloud(
        np.random.default_rng(seed).random((10, 3)) * 0.5 + 0.25
    ))
    assert "cube" in catalog.names()
    sample = catalog.load("cube", seed=1, resolution=32)
    assert sample.grid.shape == (32, 32, 32)
    with pytest.raises(ValueError):
        catalog.register("cube", lambda seed: None)
    with pytest.raises(KeyError):
        catalog.load("missing")


def test_load_sample_resolution_override():
    sample = load_sample("nyu", seed=0, resolution=64)
    assert sample.grid.shape == (64, 64, 64)
    assert sample.dataset == "nyu"
