"""Tests for multi-seed experiment campaigns."""

import pytest

from repro.analysis import (
    MetricSummary,
    run_table1_statistics,
    run_throughput_statistics,
)


def test_metric_summary_from_values():
    summary = MetricSummary.from_values("x", [1.0, 2.0, 3.0])
    assert summary.mean == pytest.approx(2.0)
    assert summary.minimum == 1.0 and summary.maximum == 3.0
    assert summary.samples == 3
    assert summary.std > 0
    assert "+-" in summary.format()


def test_metric_summary_single_value():
    summary = MetricSummary.from_values("x", [5.0])
    assert summary.std == 0.0


def test_metric_summary_empty_raises():
    with pytest.raises(ValueError):
        MetricSummary.from_values("x", [])


@pytest.fixture(scope="module")
def table1_stats():
    return run_table1_statistics(seeds=(0, 1, 2))


def test_table1_statistics_structure(table1_stats):
    assert table1_stats.seeds == (0, 1, 2)
    summary = table1_stats.summary("shapenet", 4)
    assert summary.samples == 3
    assert summary.mean > 0


def test_table1_statistics_within_paper_band(table1_stats):
    """Across seeds the mean counts stay in the paper's neighborhood."""
    assert table1_stats.within_band(low=0.4, high=1.8)


def test_table1_statistics_stable_across_seeds(table1_stats):
    """The 48-voxel scene anchoring keeps seed-to-seed variance small."""
    for dataset in ("shapenet", "nyu"):
        for tile in (4, 8, 12, 16):
            summary = table1_stats.summary(dataset, tile)
            assert summary.std <= 0.25 * summary.mean + 2.0


def test_throughput_statistics():
    stats = run_throughput_statistics(seeds=(0, 1))
    assert stats.cycles.samples == 2
    assert stats.matches.mean > 0
    # Cycle estimates across seeds stay within a tight band (same
    # generator, different noise): max/min below 1.3x.
    assert stats.cycles.maximum / stats.cycles.minimum < 1.3
