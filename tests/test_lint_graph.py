"""Tests for ``repro.lint.graph`` — the project symbol table / call graph.

Fixture packages are written into ``tmp_path`` and loaded through
:class:`~repro.lint.base.Project`; nothing is imported or executed, so
cyclic imports and unresolvable dynamic calls are plain text, not
hazards.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint import Project
from repro.lint.graph import module_name_for


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def graph_of(tmp_path):
    return Project.load(tmp_path).graph


# ---------------------------------------------------------------------------
# module naming


def test_module_name_strips_src_and_init():
    assert module_name_for("src/repro/obs/metrics.py") == "repro.obs.metrics"
    assert module_name_for("engine/hot.py") == "engine.hot"
    assert module_name_for("pkg/__init__.py") == "pkg"
    assert module_name_for("src/repro/__init__.py") == "repro"


def test_module_name_rejects_non_python():
    assert module_name_for("docs/cluster.md") is None


# ---------------------------------------------------------------------------
# aliasing


def test_from_import_as_alias_resolves_call(tmp_path):
    write(tmp_path, "mod_a.py", "def target():\n    return 1\n")
    write(
        tmp_path,
        "mod_b.py",
        """\
        from mod_a import target as t


        def caller():
            return t()
        """,
    )
    graph = graph_of(tmp_path)
    assert graph.resolve_symbol("mod_b", "t") == "mod_a:target"
    assert graph.callees("mod_b:caller") == ["mod_a:target"]
    callers = graph.callers_of("mod_a:target")
    assert [info.qualname for info, _ in callers] == ["mod_b:caller"]


def test_alias_chain_across_modules(tmp_path):
    write(tmp_path, "origin.py", "def fn():\n    return 1\n")
    write(tmp_path, "hop.py", "from origin import fn as middle\n")
    write(
        tmp_path,
        "end.py",
        "from hop import middle as renamed\n\n\ndef use():\n"
        "    return renamed()\n",
    )
    graph = graph_of(tmp_path)
    assert graph.resolve_symbol("end", "renamed") == "origin:fn"
    assert graph.callees("end:use") == ["origin:fn"]


def test_relative_import_resolves_inside_package(tmp_path):
    write(tmp_path, "pkg/__init__.py", "")
    write(tmp_path, "pkg/b.py", "def f():\n    return 1\n")
    write(
        tmp_path,
        "pkg/a.py",
        "from .b import f\n\n\ndef g():\n    return f()\n",
    )
    graph = graph_of(tmp_path)
    assert graph.callees("pkg.a:g") == ["pkg.b:f"]


# ---------------------------------------------------------------------------
# import cycles


def test_import_cycle_terminates_and_resolves_both_ways(tmp_path):
    write(
        tmp_path,
        "cyc_a.py",
        """\
        from cyc_b import beta


        def alpha():
            return beta()
        """,
    )
    write(
        tmp_path,
        "cyc_b.py",
        """\
        from cyc_a import alpha


        def beta():
            return alpha()
        """,
    )
    graph = graph_of(tmp_path)
    assert graph.callees("cyc_a:alpha") == ["cyc_b:beta"]
    assert graph.callees("cyc_b:beta") == ["cyc_a:alpha"]


def test_pure_alias_cycle_resolves_to_none(tmp_path):
    # ``a.x`` re-exports ``b.x`` which re-exports ``a.x`` — no definition
    # anywhere; resolution must terminate with None, not recurse.
    write(tmp_path, "loop_a.py", "from loop_b import x\n")
    write(tmp_path, "loop_b.py", "from loop_a import x\n")
    graph = graph_of(tmp_path)
    assert graph.resolve_symbol("loop_a", "x") is None


# ---------------------------------------------------------------------------
# inheritance


def test_method_resolution_walks_project_bases(tmp_path):
    write(
        tmp_path,
        "shapes/base.py",
        """\
        class Shape:
            def area(self):
                return 0

            def describe(self):
                return self.area()
        """,
    )
    write(
        tmp_path,
        "shapes/square.py",
        """\
        from shapes.base import Shape


        class Square(Shape):
            def area(self):
                return 4


        def demo(sq):
            return Square().describe()
        """,
    )
    graph = graph_of(tmp_path)
    # inherited method found through the base
    assert (
        graph.resolve_method("shapes.square", "Square", "describe")
        == "shapes.base:Shape.describe"
    )
    # override shadows the base implementation
    assert (
        graph.resolve_method("shapes.square", "Square", "area")
        == "shapes.square:Square.area"
    )
    assert graph.base_chain("shapes.square", "Square") == [
        ("shapes.square", "Square"),
        ("shapes.base", "Shape"),
    ]


def test_external_base_is_unknown_not_an_error(tmp_path):
    write(
        tmp_path,
        "ext.py",
        """\
        import enum


        class Kind(enum.Enum):
            A = 1

            def label(self):
                return self.name
        """,
    )
    graph = graph_of(tmp_path)
    assert graph.resolve_method("ext", "Kind", "label") == "ext:Kind.label"
    assert graph.resolve_method("ext", "Kind", "missing") is None
    assert graph.base_chain("ext", "Kind") == [("ext", "Kind")]


# ---------------------------------------------------------------------------
# dynamic calls degrade to unknown


def test_dynamic_calls_are_unknown_without_crash(tmp_path):
    write(
        tmp_path,
        "dyn.py",
        """\
        import numpy as np


        def run(handlers, key, obj):
            handlers[key]()
            getattr(obj, key)()
            np.add.at(obj, key, 1)
            (lambda: 1)()
            return known()


        def known():
            return 1
        """,
    )
    graph = graph_of(tmp_path)
    info = graph.function("dyn:run")
    assert info is not None
    resolved = [c.target for c in info.calls if c.target is not None]
    assert resolved == ["dyn:known"]  # everything else is unknown, kept
    unresolved = [c for c in info.calls if c.target is None]
    assert unresolved  # the dynamic sites are recorded, target-less


def test_unknown_callees_never_extend_reachability(tmp_path):
    write(
        tmp_path,
        "reach.py",
        """\
        def entry(table):
            table["x"]()


        def _orphan():
            return 1
        """,
    )
    graph = graph_of(tmp_path)
    reachable = graph.reachable_from(["reach:entry"])
    assert "reach:entry" in reachable
    assert "reach:_orphan" not in reachable


# ---------------------------------------------------------------------------
# import graph / dependents


def test_dependents_closure_follows_importer_chain(tmp_path):
    write(tmp_path, "dep_base.py", "VALUE = 1\n")
    write(tmp_path, "dep_mid.py", "from dep_base import VALUE\n")
    write(tmp_path, "dep_top.py", "import dep_mid\n")
    write(tmp_path, "dep_aside.py", "OTHER = 2\n")
    graph = graph_of(tmp_path)
    closure = graph.dependents_closure(["dep_base.py"])
    assert {"dep_base.py", "dep_mid.py", "dep_top.py"} <= closure
    assert "dep_aside.py" not in closure
    # non-module paths pass through untouched so --changed can scope docs
    assert "docs/cluster.md" in graph.dependents_closure(["docs/cluster.md"])


def test_importers_of_sees_plain_and_from_imports(tmp_path):
    write(tmp_path, "lib.py", "def f():\n    return 1\n")
    write(tmp_path, "user_from.py", "from lib import f\n")
    write(tmp_path, "user_plain.py", "import lib\n")
    graph = graph_of(tmp_path)
    assert graph.importers_of("lib") == {"user_from", "user_plain"}
