"""Tests for ``repro.lint`` — the AST-based invariant analyzer.

Fixture projects are written into ``tmp_path`` at scope-matching
relative paths (``engine/*.py``, ``runtime/*.py``, ``cli.py``,
``docs/*.md``); nothing is imported or executed, so the deliberate
violations never have to be runnable code.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.baseline import compare, load_baseline, save_baseline
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def rules_of(report, rule):
    return [v for v in report.violations if v.rule == rule]


# ---------------------------------------------------------------------------
# backend-contract


FULL_BACKEND = """\
class {name}:
    def prepare(self, rulebook):
        return None

    def execute(self, rulebook, feats, weights, num_outputs, stats=None):
        return 0

    def execute_batch(self, rulebook, stack, weights, num_outputs, stats=None):
        return 0

    def refresh(self, old_rulebook, new_rulebook, delta):
        return None

    def capabilities(self):
        return {{}}

    def close(self):
        return None
"""

SURFACE = (
    "prepare",
    "execute",
    "execute_batch",
    "refresh",
    "capabilities",
    "close",
)


def test_backend_contract_passes_full_surface(tmp_path):
    write(
        tmp_path,
        "engine/good.py",
        FULL_BACKEND.format(name="GoodBackend")
        + '\n\nregister_backend("good", GoodBackend)\n',
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    assert rules_of(report, "backend-contract") == []


@pytest.mark.parametrize("method", SURFACE)
def test_backend_contract_fails_when_any_method_deleted(tmp_path, method):
    source = FULL_BACKEND.format(name="Partial")
    lines = source.splitlines(keepends=True)
    start = next(i for i, ln in enumerate(lines) if f"def {method}(" in ln)
    end = start + 1
    while end < len(lines) and (
        lines[end].startswith(" " * 8) or lines[end].strip() == ""
    ):
        end += 1
    gutted = "".join(lines[:start] + lines[end:])
    assert f"def {method}(" not in gutted
    write(
        tmp_path,
        "engine/partial.py",
        gutted + '\n\nregister_backend("partial", Partial)\n',
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    found = rules_of(report, "backend-contract")
    assert len(found) == 1
    assert f"{method}()" in found[0].message


def test_backend_contract_rejects_abstract_inherited_stub(tmp_path):
    base = (
        'class Base:\n'
        '    def prepare(self, rulebook):\n'
        '        """Docstring does not make it concrete."""\n'
        '        raise NotImplementedError\n'
        '\n\n'
    )
    derived = FULL_BACKEND.format(name="Derived").replace(
        "class Derived:", "class Derived(Base):"
    ).replace(
        "    def prepare(self, rulebook):\n        return None\n\n", ""
    )
    write(
        tmp_path,
        "engine/stubbed.py",
        base + derived + '\n\nregister_backend("stubbed", Derived)\n',
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    found = rules_of(report, "backend-contract")
    assert len(found) == 1
    assert "abstract" in found[0].message
    assert "prepare()" in found[0].message


def test_backend_contract_accepts_inherited_concrete_method(tmp_path):
    write(
        tmp_path,
        "engine/inherit.py",
        FULL_BACKEND.format(name="Base").replace("class Base:", "class Base:")
        + """\

        class Child(Base):
            def capabilities(self):
                return {"fused": True}


        register_backend("child", Child)
        """,
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    assert rules_of(report, "backend-contract") == []


def test_backend_contract_flags_signature_drift(tmp_path):
    bad = FULL_BACKEND.format(name="Misfit").replace(
        "def execute(self, rulebook, feats, weights, num_outputs, stats=None):",
        "def execute(self, rulebook, feats):",
    )
    write(
        tmp_path,
        "engine/misfit.py",
        bad + '\n\nregister_backend("misfit", Misfit)\n',
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    found = rules_of(report, "backend-contract")
    assert len(found) == 1
    assert "execute()" in found[0].message
    assert "not call-compatible" in found[0].message


def test_backend_contract_requires_stats_keyword(tmp_path):
    bad = FULL_BACKEND.format(name="NoStats").replace(
        "def execute(self, rulebook, feats, weights, num_outputs, stats=None):",
        "def execute(self, rulebook, feats, weights, num_outputs):",
    )
    write(
        tmp_path,
        "engine/nostats.py",
        bad + '\n\nregister_backend("nostats", NoStats)\n',
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    found = rules_of(report, "backend-contract")
    assert len(found) == 1
    assert "'stats'" in found[0].message


def test_backend_contract_duplicate_and_computed_keys(tmp_path):
    write(
        tmp_path,
        "engine/dupes.py",
        FULL_BACKEND.format(name="A")
        + FULL_BACKEND.format(name="B")
        + """\

        register_backend("same", A)
        register_backend("same", B)
        register_backend("same", B, overwrite=True)
        register_backend("ok_" + suffix, A)
        """,
    )
    report = run_lint(tmp_path, rules=["backend-contract"])
    messages = [v.message for v in rules_of(report, "backend-contract")]
    assert sum("registered more than once" in m for m in messages) == 1
    assert sum("string literal" in m for m in messages) == 1


# ---------------------------------------------------------------------------
# hot-path


def test_hot_path_flags_the_banned_patterns(tmp_path):
    write(
        tmp_path,
        "engine/hot.py",
        """\
        import numpy as np


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)
            return out


        def per_row(features):
            total = 0.0
            for i in range(features.shape[0]):
                total += features[i].sum()
            n = len(features)
            for i in range(n):
                total -= features[i].sum()
            return total


        def accumulate(chunks):
            parts = []
            uniq = set()
            for chunk in chunks:
                parts.append(chunk * 2)
                uniq.add(chunk.tobytes())
            return parts, uniq


        def narrow(features):
            return features.astype(np.float32)
        """,
    )
    report = run_lint(tmp_path, rules=["hot-path"])
    messages = [v.message for v in rules_of(report, "hot-path")]
    assert sum("np.add.at" in m for m in messages) == 1
    assert sum("per-element loop" in m for m in messages) == 2
    assert sum("accumulates into" in m for m in messages) == 1
    assert any("'parts', 'uniq'" in m for m in messages)
    assert sum("float32 narrowing" in m for m in messages) == 1


def test_hot_path_passes_vectorized_and_routed_code(tmp_path):
    write(
        tmp_path,
        "engine/cool.py",
        """\
        import numpy as np


        def fused_scatter(out, rows, contribution):
            out[rows] += contribution
            return out


        def routed_cast(self, stack):
            if self.precision == "float32":
                return stack.astype(np.float32)
            return stack


        def batched(stack, weights):
            return np.einsum("bnc,cd->bnd", stack, weights)
        """,
    )
    report = run_lint(tmp_path, rules=["hot-path"])
    assert rules_of(report, "hot-path") == []


def test_hot_path_scope_excludes_non_hot_modules(tmp_path):
    body = """\
        import numpy as np


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)
        """
    write(tmp_path, "nn/functional.py", body)
    write(tmp_path, "nn/rulebook.py", body)
    report = run_lint(tmp_path, rules=["hot-path"])
    found = rules_of(report, "hot-path")
    assert len(found) == 1
    assert found[0].file == "nn/rulebook.py"


# ---------------------------------------------------------------------------
# async-blocking


def test_async_blocking_flags_sleep_io_and_direct_compute(tmp_path):
    write(
        tmp_path,
        "runtime/loopy.py",
        """\
        import asyncio
        import time


        class Server:
            async def dispatch(self, tensors):
                time.sleep(0.1)
                with open("dump.bin") as fh:
                    fh.read()
                cfg = self.path.read_text()
                return self.session.run_batch(tensors)
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    messages = [v.message for v in rules_of(report, "async-blocking")]
    assert sum("time.sleep" in m for m in messages) == 1
    assert sum("open" in m and "file IO" in m for m in messages) == 1
    assert sum("read_text" in m for m in messages) == 1
    assert sum("session.run_batch" in m for m in messages) == 1
    assert all("'async def dispatch'" in m for m in messages)


def test_async_blocking_passes_executor_dispatch_and_sync_code(tmp_path):
    write(
        tmp_path,
        "runtime/clean.py",
        """\
        import asyncio
        import time


        class Server:
            async def dispatch(self, tensors):
                await asyncio.sleep(0.01)
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, self.session.run_batch, tensors
                )

            def warmup(self, tensors):
                time.sleep(0.1)
                return self.session.run_batch(tensors)
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    assert rules_of(report, "async-blocking") == []


def test_async_blocking_ignores_nested_sync_defs(tmp_path):
    write(
        tmp_path,
        "runtime/nested.py",
        """\
        import time


        async def outer():
            def helper():
                time.sleep(0.1)
            return helper
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    assert rules_of(report, "async-blocking") == []


# ---------------------------------------------------------------------------
# spawn-safety


def test_spawn_safety_flags_lambdas_and_mutable_class_state(tmp_path):
    write(
        tmp_path,
        "engine/spawny.py",
        """\
        import pickle


        class SpecHolder:
            transform = lambda self, x: x + 1
            registry = {}

            def __init__(self):
                self.hook = lambda x: x * 2

            def bind(self):
                def local_step(x):
                    return x - 1
                self.step = local_step

            def ship(self, payload):
                return pickle.dumps((payload, lambda x: x))
        """,
    )
    report = run_lint(tmp_path, rules=["spawn-safety"])
    messages = [v.message for v in rules_of(report, "spawn-safety")]
    assert sum("lambda as a class attribute" in m for m in messages) == 1
    assert sum("mutable class attribute" in m for m in messages) == 1
    assert sum("stores a lambda on self" in m for m in messages) == 1
    assert sum("local function 'local_step'" in m for m in messages) == 1
    assert sum("pickle.dumps" in m for m in messages) == 1


def test_spawn_safety_passes_picklable_patterns(tmp_path):
    write(
        tmp_path,
        "engine/safe.py",
        """\
        import pickle
        from dataclasses import dataclass, field


        def module_level_step(x):
            return x - 1


        @dataclass
        class Spec:
            name: str = "numpy"
            shards: tuple = ()
            extras: list = field(default_factory=list)

            def bind(self):
                self.step = module_level_step

            def ship(self, payload):
                return pickle.dumps(payload)
        """,
    )
    report = run_lint(tmp_path, rules=["spawn-safety"])
    assert rules_of(report, "spawn-safety") == []


# ---------------------------------------------------------------------------
# stats-drift


STATS_MODULE = """\
    from dataclasses import dataclass, field


    @dataclass
    class SessionStats:
        frames_run: int = 0
        backend: str = ""

        @property
        def rulebook_hit_rate(self):
            return 0.0


    @dataclass
    class FrameResult:
        frame_id: int = 0
        nnz: int = 0


    @dataclass
    class StreamStats:
        frames: list = field(default_factory=list)

        @property
        def fps(self):
            return 0.0
"""


def test_stats_drift_flags_unknown_fields_in_cli(tmp_path):
    write(tmp_path, "stats.py", STATS_MODULE)
    write(
        tmp_path,
        "cli.py",
        """\
        def report():
            session = InferenceSession()
            s = session.stats
            print(s.frames_run, s.rulebook_hit_rate)
            print(s.bogus_counter)
            runner = StreamingRunner()
            stream = runner.run(None)
            for frame in stream.frames:
                print(frame.nnz, frame.imaginary_field)
        """,
    )
    report = run_lint(tmp_path, rules=["stats-drift"])
    messages = [v.message for v in rules_of(report, "stats-drift")]
    assert len(messages) == 2
    assert any("SessionStats.bogus_counter" in m for m in messages)
    assert any("FrameResult.imaginary_field" in m for m in messages)


def test_stats_drift_checks_docs_including_slash_shorthand(tmp_path):
    write(tmp_path, "stats.py", STATS_MODULE)
    write(tmp_path, "cli.py", "")
    write(
        tmp_path,
        "docs/observability.md",
        """\
        The runner reports `StreamStats.fps` per scene and
        `FrameResult.frame_id / nnz / phantom_field` per frame, while
        `SessionStats.made_up` never existed.
        """,
    )
    report = run_lint(tmp_path, rules=["stats-drift"])
    messages = [v.message for v in rules_of(report, "stats-drift")]
    assert len(messages) == 2
    assert any("FrameResult.phantom_field" in m for m in messages)
    assert any("SessionStats.made_up" in m for m in messages)


def test_stats_drift_skips_classes_outside_the_project(tmp_path):
    write(
        tmp_path,
        "cli.py",
        """\
        def report():
            session = InferenceSession()
            s = session.stats
            print(s.anything_goes)
        """,
    )
    report = run_lint(tmp_path, rules=["stats-drift"])
    assert rules_of(report, "stats-drift") == []


METRICS_MODULE = """\
    class Thing:
        def __init__(self, registry):
            self._m_requests = registry.counter(
                "repro_demo_requests_total", "Requests."
            )
            self._m_lat = registry.histogram(
                "repro_demo_seconds", "Latency.", labels=("stage",)
            )
"""


def test_stats_drift_flags_undocumented_and_unregistered_metrics(tmp_path):
    write(tmp_path, "server.py", METRICS_MODULE)
    write(
        tmp_path,
        "docs/observability.md",
        """\
        The catalog: `repro_demo_requests_total` plus the phantom
        `repro_demo_ghost_total` nobody registers.
        """,
    )
    report = run_lint(tmp_path, rules=["stats-drift"])
    messages = [v.message for v in rules_of(report, "stats-drift")]
    assert len(messages) == 2
    assert any(
        "repro_demo_seconds is registered here but missing" in m
        for m in messages
    )
    assert any(
        "repro_demo_ghost_total, which is never registered" in m
        for m in messages
    )


def test_stats_drift_metric_catalog_in_sync_passes(tmp_path):
    write(tmp_path, "server.py", METRICS_MODULE)
    write(
        tmp_path,
        "docs/observability.md",
        """\
        `repro_demo_requests_total` counts requests and
        `repro_demo_seconds` times them; Prometheus expands the
        histogram into `repro_demo_seconds_bucket`,
        `repro_demo_seconds_sum` and `repro_demo_seconds_count`.
        """,
    )
    report = run_lint(tmp_path, rules=["stats-drift"])
    assert rules_of(report, "stats-drift") == []


def test_stats_drift_missing_catalog_flags_every_metric(tmp_path):
    write(tmp_path, "server.py", METRICS_MODULE)
    report = run_lint(tmp_path, rules=["stats-drift"])
    messages = [v.message for v in rules_of(report, "stats-drift")]
    assert len(messages) == 2
    assert all("metric-name drift" in m for m in messages)


def test_stats_drift_skips_metric_check_without_registrations(tmp_path):
    write(tmp_path, "plain.py", "x = 1\n")
    write(
        tmp_path,
        "docs/observability.md",
        "`repro_whatever_total` is only prose here.\n",
    )
    report = run_lint(tmp_path, rules=["stats-drift"])
    assert rules_of(report, "stats-drift") == []


# ---------------------------------------------------------------------------
# suppressions


def test_suppression_same_line_and_comment_above(tmp_path):
    write(
        tmp_path,
        "engine/suppressed.py",
        """\
        import numpy as np


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)  # repro-lint: disable=hot-path
            # repro-lint: disable=hot-path
            np.add.at(out, rows, contribution)
            np.add.at(out, rows, contribution)
            return out
        """,
    )
    report = run_lint(tmp_path, rules=["hot-path"])
    found = rules_of(report, "hot-path")
    assert len(found) == 1
    assert found[0].line == 8
    assert report.suppressed == 2


def test_suppression_wildcard_and_wrong_rule(tmp_path):
    write(
        tmp_path,
        "engine/mixed.py",
        """\
        import numpy as np


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)  # repro-lint: disable=*
            np.add.at(out, rows, contribution)  # repro-lint: disable=spawn-safety
            return out
        """,
    )
    report = run_lint(tmp_path, rules=["hot-path"])
    found = rules_of(report, "hot-path")
    assert len(found) == 1
    assert found[0].line == 6


def test_suppression_marker_inside_string_is_inert(tmp_path):
    write(
        tmp_path,
        "engine/stringy.py",
        """\
        import numpy as np

        MARKER = "# repro-lint: disable=hot-path"


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)
            return out
        """,
    )
    report = run_lint(tmp_path, rules=["hot-path"])
    assert len(rules_of(report, "hot-path")) == 1


def test_parse_errors_reported_not_fatal(tmp_path):
    write(tmp_path, "engine/broken.py", "def broken(:\n")
    write(
        tmp_path,
        "engine/fine.py",
        "import numpy as np\n\n\ndef f(out, rows, c):\n    np.add.at(out, rows, c)\n",
    )
    report = run_lint(tmp_path)
    parse = [v for v in report.violations if v.rule == "parse-error"]
    assert len(parse) == 1
    assert parse[0].file == "engine/broken.py"
    assert len(rules_of(report, "hot-path")) == 1


# ---------------------------------------------------------------------------
# baseline


def violation_file(tmp_path):
    return write(
        tmp_path,
        "engine/hot.py",
        """\
        import numpy as np


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)
            return out
        """,
    )


def test_baseline_roundtrip_and_new_violation_detection(tmp_path):
    violation_file(tmp_path)
    baseline = tmp_path / "results" / "lint_baseline.json"

    assert lint_main(["--root", str(tmp_path)]) == 1
    assert (
        lint_main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    assert (
        lint_main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0
    )

    # A second instance of the same pattern exceeds the count budget.
    write(
        tmp_path,
        "engine/hot2.py",
        """\
        import numpy as np


        def scatter2(out, rows, contribution):
            np.add.at(out, rows, contribution)
            return out
        """,
    )
    assert (
        lint_main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 1
    )


def test_baseline_count_budget_within_one_file(tmp_path):
    violation_file(tmp_path)
    report = run_lint(tmp_path, rules=["hot-path"])
    baseline = tmp_path / "baseline.json"
    save_baseline(baseline, report.violations)
    budget = load_baseline(baseline)

    comparison = compare(report.violations, budget)
    assert comparison.clean
    assert comparison.stale == {}

    # Duplicate the violation inside the same file: same fingerprint,
    # count 2 > budget 1 -> exactly one NEW finding.
    write(
        tmp_path,
        "engine/hot.py",
        """\
        import numpy as np


        def scatter(out, rows, contribution):
            np.add.at(out, rows, contribution)
            np.add.at(out, rows, contribution)
            return out
        """,
    )
    report2 = run_lint(tmp_path, rules=["hot-path"])
    comparison2 = compare(report2.violations, budget)
    assert len(comparison2.new) == 1


def test_baseline_reports_stale_entries(tmp_path):
    violation_file(tmp_path)
    report = run_lint(tmp_path, rules=["hot-path"])
    baseline = tmp_path / "baseline.json"
    save_baseline(baseline, report.violations)

    (tmp_path / "engine" / "hot.py").write_text(
        "def fixed():\n    return 0\n", encoding="utf-8"
    )
    report2 = run_lint(tmp_path, rules=["hot-path"])
    comparison = compare(report2.violations, load_baseline(baseline))
    assert comparison.clean
    assert sum(comparison.stale.values()) == 1


# ---------------------------------------------------------------------------
# CLI


def test_cli_json_schema(tmp_path, capsys):
    violation_file(tmp_path)
    code = lint_main(["--root", str(tmp_path), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "root",
        "files_checked",
        "suppressed",
        "baseline",
        "baselined",
        "summary",
        "violations",
        "new_violations",
    }
    assert payload["summary"] == {"hot-path": 1}
    (violation,) = payload["violations"]
    assert set(violation) == {"file", "line", "col", "rule", "message"}
    assert violation["file"] == "engine/hot.py"
    assert payload["new_violations"] == payload["violations"]


def test_cli_output_file_and_rule_filter(tmp_path, capsys):
    violation_file(tmp_path)
    out = tmp_path / "report.json"
    code = lint_main(
        [
            "--root",
            str(tmp_path),
            "--rule",
            "spawn-safety",
            "--output",
            str(out),
        ]
    )
    capsys.readouterr()
    assert code == 0  # hot-path finding filtered out by --rule
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["violations"] == []


def test_cli_rejects_unknown_rule_and_missing_root(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path), "--rule", "nonsense"]) == 2
    assert lint_main(["--root", str(tmp_path / "absent")]) == 2
    capsys.readouterr()


def test_cli_list_rules(tmp_path, capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "backend-contract",
        "hot-path",
        "async-blocking",
        "spawn-safety",
        "stats-drift",
    ):
        assert rule in out


def test_repro_cli_dispatches_lint(tmp_path, capsys):
    from repro.cli import main as repro_main

    violation_file(tmp_path)
    assert repro_main(["lint", "--root", str(tmp_path)]) == 1
    assert "hot-path" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# lock-discipline


LOCKED_CLASS = """\
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._values = {{}}

    def set(self, key, value):
        with self._lock:
            self._values[key] = value

    def reset(self):
        {reset_body}
"""


def test_lock_discipline_flags_unlocked_mutation(tmp_path):
    write(
        tmp_path,
        "obs/state.py",
        LOCKED_CLASS.format(reset_body="self._values.clear()"),
    )
    report = run_lint(tmp_path, rules=["lock-discipline"])
    (found,) = rules_of(report, "lock-discipline")
    assert "self._values" in found.message
    assert "Registry.reset" in found.message


def test_lock_discipline_passes_locked_mutation_and_init(tmp_path):
    write(
        tmp_path,
        "obs/state.py",
        LOCKED_CLASS.format(
            reset_body="with self._lock:\n            self._values.clear()"
        ),
    )
    report = run_lint(tmp_path, rules=["lock-discipline"])
    assert rules_of(report, "lock-discipline") == []


def test_lock_discipline_skips_lock_free_classes(tmp_path):
    write(
        tmp_path,
        "obs/state.py",
        """\
        class Accumulator:
            def __init__(self):
                self._values = {}

            def bump(self, key):
                self._values[key] = self._values.get(key, 0) + 1
        """,
    )
    report = run_lint(tmp_path, rules=["lock-discipline"])
    assert rules_of(report, "lock-discipline") == []


HELPER_CLASS = """\
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._values = {{}}

    def set(self, key, value):
        with self._lock:
            self._values[key] = value

    def clear_all(self):
        with self._lock:
            self._wipe()

    def _wipe(self):
        self._values.clear()
{extra}"""


def test_lock_discipline_helper_reached_only_under_lock_passes(tmp_path):
    write(tmp_path, "obs/state.py", HELPER_CLASS.format(extra=""))
    report = run_lint(tmp_path, rules=["lock-discipline"])
    assert rules_of(report, "lock-discipline") == []


def test_lock_discipline_helper_with_unlocked_caller_fails(tmp_path):
    write(
        tmp_path,
        "obs/state.py",
        HELPER_CLASS.format(
            extra="\n    def sloppy(self):\n        self._wipe()\n"
        ),
    )
    report = run_lint(tmp_path, rules=["lock-discipline"])
    (found,) = rules_of(report, "lock-discipline")
    assert "Registry._wipe" in found.message


def test_lock_discipline_sees_inherited_lock(tmp_path):
    write(
        tmp_path,
        "obs/base.py",
        """\
        import threading


        class Locked:
            def __init__(self):
                self._lock = threading.Lock()
                self._series = {}

            def record(self, key, value):
                with self._lock:
                    self._series[key] = value
        """,
    )
    write(
        tmp_path,
        "obs/child.py",
        """\
        from obs.base import Locked


        class Child(Locked):
            def drop(self, key):
                self._series.pop(key, None)
        """,
    )
    report = run_lint(tmp_path, rules=["lock-discipline"])
    (found,) = rules_of(report, "lock-discipline")
    assert found.file == "obs/child.py"
    assert "Child.drop" in found.message


# ---------------------------------------------------------------------------
# wire-drift


WIRE_OK = """\
from enum import IntEnum


class MessageType(IntEnum):
    PREPARE = 1
    EXECUTE = 2
    OK = 3
    ERROR = 4


REQUEST_TYPES = (MessageType.PREPARE, MessageType.EXECUTE)
"""

WORKER_OK = """\
from runtime.wire import MessageType


def dispatch(frame):
    if frame.type == MessageType.PREPARE:
        return 1
    if frame.type == MessageType.EXECUTE:
        return 2
    return None
"""

CLUSTER_OK = """\
from runtime.wire import MessageType


def send_all(link, payload):
    link.request(MessageType.PREPARE, payload)
    link.request(MessageType.EXECUTE, payload)
"""

DOC_OK = """\
# cluster

| type | payload |
|------|---------|
| `PREPARE` | `{}` |
| `EXECUTE` | `{}` |
| `OK` | reply |
| `ERROR` | reply |
"""


def write_wire_project(tmp_path, wire=WIRE_OK, worker=WORKER_OK,
                       cluster=CLUSTER_OK, doc=DOC_OK):
    write(tmp_path, "runtime/wire.py", wire)
    write(tmp_path, "runtime/worker.py", worker)
    write(tmp_path, "runtime/cluster.py", cluster)
    write(tmp_path, "docs/cluster.md", doc)


def test_wire_drift_closed_protocol_passes(tmp_path):
    write_wire_project(tmp_path)
    report = run_lint(tmp_path, rules=["wire-drift"])
    assert rules_of(report, "wire-drift") == []


def test_wire_drift_missing_handler_branch_fails(tmp_path):
    write_wire_project(
        tmp_path,
        worker=WORKER_OK.replace(
            "    if frame.type == MessageType.EXECUTE:\n        return 2\n",
            "",
        ),
    )
    report = run_lint(tmp_path, rules=["wire-drift"])
    (found,) = rules_of(report, "wire-drift")
    assert found.file == "runtime/wire.py"
    assert "EXECUTE has no handler branch" in found.message


def test_wire_drift_missing_sender_fails(tmp_path):
    write_wire_project(
        tmp_path,
        cluster=CLUSTER_OK.replace(
            "    link.request(MessageType.PREPARE, payload)\n", ""
        ),
    )
    report = run_lint(tmp_path, rules=["wire-drift"])
    (found,) = rules_of(report, "wire-drift")
    assert "PREPARE is never sent" in found.message


def test_wire_drift_doc_table_both_directions(tmp_path):
    write_wire_project(
        tmp_path,
        doc=DOC_OK.replace("| `EXECUTE` | `{}` |\n", "")
        + "| `RETIRED` | gone |\n",
    )
    report = run_lint(tmp_path, rules=["wire-drift"])
    found = rules_of(report, "wire-drift")
    messages = sorted(v.message for v in found)
    assert len(found) == 2
    assert "EXECUTE is missing from the docs/cluster.md" in messages[0]
    assert "`RETIRED`" in messages[1]
    assert found[1].file == "docs/cluster.md" or found[0].file == "docs/cluster.md"


def test_wire_drift_unknown_member_reference_fails(tmp_path):
    write_wire_project(
        tmp_path,
        worker=WORKER_OK
        + "\n\ndef extra(frame):\n"
        "    return frame.type == MessageType.RETIRED\n",
    )
    report = run_lint(tmp_path, rules=["wire-drift"])
    found = rules_of(report, "wire-drift")
    assert any(
        "MessageType.RETIRED is referenced but not defined" in v.message
        for v in found
    )


def test_wire_drift_skips_projects_without_wire(tmp_path):
    write(tmp_path, "runtime/worker.py", "def dispatch(frame):\n    return 1\n")
    report = run_lint(tmp_path, rules=["wire-drift"])
    assert rules_of(report, "wire-drift") == []


def test_wire_drift_reply_only_types_need_no_handler(tmp_path):
    # without REQUEST_TYPES the rule falls back to members minus OK/ERROR
    write_wire_project(
        tmp_path,
        wire=WIRE_OK.replace(
            "REQUEST_TYPES = (MessageType.PREPARE, MessageType.EXECUTE)\n",
            "",
        ),
    )
    report = run_lint(tmp_path, rules=["wire-drift"])
    assert rules_of(report, "wire-drift") == []


# ---------------------------------------------------------------------------
# metric-discipline


METRIC_SERVER = """\
import asyncio


class Server:
    def __init__(self, registry):
        self._stop_event = asyncio.Event()
        self._m_requests = registry.counter(
            "repro_requests_total", "requests", labels=("route",)
        )
        self._m_depth = registry.gauge("repro_depth", "queue depth")
{extra_decl}
    def handle(self, route):
        self._m_requests.inc(route=route)
        depth = self._m_depth
        depth.set(3.0)

    def stop(self):
        self._stop_event.set()
{extra_body}"""


def metric_project(tmp_path, extra_decl="", extra_body=""):
    write(
        tmp_path,
        "runtime/server.py",
        METRIC_SERVER.format(extra_decl=extra_decl, extra_body=extra_body),
    )
    return run_lint(tmp_path, rules=["metric-discipline"])


def test_metric_discipline_live_metrics_pass(tmp_path):
    report = metric_project(tmp_path)
    assert rules_of(report, "metric-discipline") == []


def test_metric_discipline_flags_dead_metric(tmp_path):
    report = metric_project(
        tmp_path,
        extra_decl=(
            '        self._m_dead = registry.counter('
            '"repro_dead_total", "never touched")\n'
        ),
    )
    (found,) = rules_of(report, "metric-discipline")
    assert "repro_dead_total is declared but never" in found.message


def test_metric_discipline_flags_label_mismatch(tmp_path):
    report = metric_project(
        tmp_path,
        extra_body=(
            "\n    def mislabeled(self):\n"
            "        self._m_requests.inc(verb=1)\n"
        ),
    )
    (found,) = rules_of(report, "metric-discipline")
    assert "declared with labels (route)" in found.message
    assert "(verb)" in found.message


def test_metric_discipline_star_kwargs_skip_label_check(tmp_path):
    report = metric_project(
        tmp_path,
        extra_body=(
            "\n    def forward(self, **labels):\n"
            "        self._m_requests.inc(**labels)\n"
        ),
    )
    assert rules_of(report, "metric-discipline") == []


def test_metric_discipline_flags_unreachable_only_mutation(tmp_path):
    report = metric_project(
        tmp_path,
        extra_decl=(
            '        self._m_ghost = registry.counter('
            '"repro_ghost_total", "x")\n'
        ),
        extra_body=(
            "\n    def _never_called(self):\n"
            "        self._m_ghost.inc()\n"
        ),
    )
    (found,) = rules_of(report, "metric-discipline")
    assert "repro_ghost_total is only mutated in code unreachable" in (
        found.message
    )


def test_metric_discipline_callback_mention_keeps_target_reachable(tmp_path):
    report = metric_project(
        tmp_path,
        extra_decl=(
            '        self._m_tick = registry.counter("repro_tick_total", "x")\n'
        ),
        extra_body=(
            "\n    def _on_tick(self):\n"
            "        self._m_tick.inc()\n"
            "\n    def install(self, loop):\n"
            "        loop.call_soon(self._on_tick)\n"
        ),
    )
    assert rules_of(report, "metric-discipline") == []


def test_metric_discipline_chained_use_counts(tmp_path):
    write(
        tmp_path,
        "obs/boot.py",
        'def boot(registry):\n'
        '    registry.counter("repro_boot_total", "boots").inc()\n',
    )
    report = run_lint(tmp_path, rules=["metric-discipline"])
    assert rules_of(report, "metric-discipline") == []


def test_metric_discipline_skips_projects_without_metrics(tmp_path):
    write(
        tmp_path,
        "runtime/plain.py",
        "def noop(event):\n    event.set()\n",
    )
    report = run_lint(tmp_path, rules=["metric-discipline"])
    assert rules_of(report, "metric-discipline") == []


# ---------------------------------------------------------------------------
# async-blocking, transitive


def test_async_blocking_transitive_chain_flagged_with_path(tmp_path):
    write(
        tmp_path,
        "runtime/loop.py",
        """\
        import time


        def slow_helper():
            time.sleep(0.1)


        def middle():
            slow_helper()


        async def tick():
            middle()
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    (found,) = rules_of(report, "async-blocking")
    assert "'async def tick'" in found.message
    assert "time.sleep" in found.message
    assert "middle -> slow_helper" in found.message


def test_async_blocking_executor_seam_is_not_a_call_edge(tmp_path):
    write(
        tmp_path,
        "runtime/loop.py",
        """\
        import time


        def middle():
            time.sleep(0.1)


        async def ok(loop):
            await loop.run_in_executor(None, middle)


        async def also_ok():
            await asyncio.to_thread(middle)
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    assert rules_of(report, "async-blocking") == []


def test_async_blocking_transitive_crosses_modules(tmp_path):
    write(
        tmp_path,
        "runtime/io_helpers.py",
        "def write_report(path, text):\n    path.write_text(text)\n",
    )
    write(
        tmp_path,
        "runtime/front.py",
        """\
        from runtime.io_helpers import write_report


        async def save(path):
            write_report(path, "x")
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    (found,) = rules_of(report, "async-blocking")
    assert found.file == "runtime/front.py"
    assert "Path.write_text" in found.message


def test_async_blocking_dynamic_calls_degrade_to_unknown(tmp_path):
    write(
        tmp_path,
        "runtime/dyn.py",
        """\
        async def dispatch(handlers, key):
            handlers[key]()
            getattr(handlers, key)()
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    assert rules_of(report, "async-blocking") == []


def test_async_blocking_async_callees_carry_their_own_findings(tmp_path):
    write(
        tmp_path,
        "runtime/nested.py",
        """\
        import time


        async def inner():
            time.sleep(1)


        async def outer():
            await inner()
        """,
    )
    report = run_lint(tmp_path, rules=["async-blocking"])
    found = rules_of(report, "async-blocking")
    assert len(found) == 1  # inner's direct finding; outer not re-blamed
    assert "'async def inner'" in found[0].message


# ---------------------------------------------------------------------------
# suppression binding on decorated defs


from repro.lint.base import Checker, register_checker  # noqa: E402
import ast as _ast  # noqa: E402


@register_checker
class _ProbeDefChecker(Checker):
    """Test-only probe reporting one finding at every ``def`` line; its
    scope glob matches no real source tree."""

    rule = "probe-def"
    description = "test-only probe: one finding per def line"
    scope = ("*probe_pkg/*.py",)

    def check(self, project):
        out = []
        for source in self.scoped_files(project):
            for node in _ast.walk(source.tree):
                if isinstance(node, _ast.FunctionDef):
                    out.append(
                        self.violation(source, node, f"def {node.name}")
                    )
        return out


def test_suppression_on_decorator_line_covers_the_def_line(tmp_path):
    write(
        tmp_path,
        "probe_pkg/dec.py",
        """\
        import functools


        @functools.lru_cache(maxsize=None)  # repro-lint: disable=probe-def
        def cached():
            return 1


        # repro-lint: disable=probe-def
        @functools.lru_cache(maxsize=None)
        @functools.lru_cache(maxsize=None)
        def above():
            return 2


        @functools.lru_cache(maxsize=None)
        def flagged():
            return 3
        """,
    )
    report = run_lint(tmp_path, rules=["probe-def"])
    found = rules_of(report, "probe-def")
    assert [v.message for v in found] == ["def flagged"]
    assert report.suppressed == 2


def test_suppression_undecorated_def_unchanged(tmp_path):
    write(
        tmp_path,
        "probe_pkg/plain.py",
        """\
        # repro-lint: disable=probe-def
        def above():
            return 1


        def flagged():
            return 2
        """,
    )
    report = run_lint(tmp_path, rules=["probe-def"])
    found = rules_of(report, "probe-def")
    assert [v.message for v in found] == ["def flagged"]


# ---------------------------------------------------------------------------
# SARIF, --changed, cache


def test_cli_sarif_format_and_file(tmp_path, capsys):
    violation_file(tmp_path)
    sarif_path = tmp_path / "out" / "report.sarif"
    code = lint_main(
        [
            "--root",
            str(tmp_path),
            "--format",
            "sarif",
            "--sarif",
            str(sarif_path),
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"hot-path", "wire-drift", "lock-discipline",
            "metric-discipline", "async-blocking"} <= rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "hot-path"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "engine/hot.py"
    assert location["region"]["startLine"] >= 1
    assert json.loads(sarif_path.read_text(encoding="utf-8")) == payload


def test_cli_sarif_marks_baselined_findings_as_notes(tmp_path, capsys):
    violation_file(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    capsys.readouterr()
    code = lint_main(
        [
            "--root",
            str(tmp_path),
            "--baseline",
            str(baseline),
            "--format",
            "sarif",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    (result,) = payload["runs"][0]["results"]
    assert result["level"] == "note"


def _git(tmp_path, *args):
    import subprocess

    proc = subprocess.run(
        ("git", "-C", str(tmp_path)) + args,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_cli_changed_scopes_to_dependents(tmp_path, capsys):
    write(tmp_path, "engine/util.py", "def helper():\n    return 1\n")
    write(
        tmp_path,
        "engine/hot.py",
        """\
        import numpy as np

        from engine.util import helper


        def scatter(out, rows, contribution):
            helper()
            np.add.at(out, rows, contribution)
            return out
        """,
    )
    write(tmp_path, "engine/unrelated.py", "VALUE = 1\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(
        tmp_path,
        "-c", "user.email=t@t", "-c", "user.name=t",
        "commit", "-qm", "seed",
    )

    # touching an unrelated file hides hot.py's finding from the report
    write(tmp_path, "engine/unrelated.py", "VALUE = 2\n")
    assert lint_main(["--root", str(tmp_path), "--changed", "HEAD"]) == 0
    out = capsys.readouterr().out
    assert "scoped to" in out

    # touching a module hot.py imports pulls hot.py back into scope
    write(tmp_path, "engine/util.py", "def helper():\n    return 2\n")
    assert lint_main(["--root", str(tmp_path), "--changed", "HEAD"]) == 1
    assert "hot-path" in capsys.readouterr().out


def test_cli_changed_rejects_bad_ref(tmp_path, capsys):
    violation_file(tmp_path)
    _git(tmp_path, "init", "-q")
    code = lint_main(
        ["--root", str(tmp_path), "--changed", "no-such-ref"]
    )
    capsys.readouterr()
    assert code == 2


def test_cache_warm_run_reports_identically(tmp_path):
    from repro.lint.cache import LintCache

    violation_file(tmp_path)
    write(
        tmp_path,
        "probe_pkg/dec.py",
        "# repro-lint: disable=probe-def\ndef above():\n    return 1\n",
    )
    cache_path = tmp_path / "cache.json"
    cold = run_lint(tmp_path, cache=LintCache(cache_path))
    assert cache_path.is_file()
    warm = run_lint(tmp_path, cache=LintCache(cache_path))
    assert [v.format() for v in warm.violations] == [
        v.format() for v in cold.violations
    ]
    assert warm.suppressed == cold.suppressed

    # editing a file invalidates only its entry; results stay correct
    write(
        tmp_path,
        "probe_pkg/dec.py",
        "def above():\n    return 1\n",
    )
    edited = run_lint(
        tmp_path, rules=["probe-def"], cache=LintCache(cache_path)
    )
    assert [v.message for v in rules_of(edited, "probe-def")] == [
        "def above"
    ]


def test_cache_corruption_degrades_to_recompute(tmp_path):
    from repro.lint.cache import LintCache

    violation_file(tmp_path)
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json", encoding="utf-8")
    report = run_lint(tmp_path, cache=LintCache(cache_path))
    assert len(rules_of(report, "hot-path")) == 1


# ---------------------------------------------------------------------------
# the real repo


def test_repo_is_clean_against_committed_baseline():
    code = lint_main(
        [
            "--root",
            str(REPO_ROOT),
            "--baseline",
            str(REPO_ROOT / "results" / "lint_baseline.json"),
            "--no-cache",
        ]
    )
    assert code == 0
