"""Tests for the energy-per-inference analysis."""

import pytest

from repro.analysis.energy import (
    EnergyRow,
    energy_comparison,
    energy_ratio,
    esca_energy,
    platform_energy,
)
from repro.arch import EscaAccelerator
from repro.baselines import GpuExecutionModel, SubConvWorkload
from repro.nn import SSUNet, UNetConfig
from tests.conftest import random_sparse_tensor


def make_workload():
    return SubConvWorkload(
        name="w", nnz=500, matches=4000, in_channels=8, out_channels=8,
        kernel_size=3, volume=64 ** 3,
    )


def test_energy_row_math():
    row = EnergyRow(platform="X", seconds=0.01, power_watts=5.0)
    assert row.energy_joules == pytest.approx(0.05)
    assert row.energy_millijoules == pytest.approx(50.0)


def test_platform_energy():
    gpu = GpuExecutionModel()
    row = platform_energy(gpu, [make_workload()])
    assert row.power_watts == pytest.approx(90.56)
    assert row.energy_joules > 0


@pytest.fixture(scope="module")
def small_network_run():
    tensor = random_sparse_tensor(seed=230, shape=(16, 16, 16), nnz=40, channels=1)
    net = SSUNet(UNetConfig(in_channels=1, num_classes=4, base_channels=4, levels=2))
    accel = EscaAccelerator()
    return accel.run_network(net, tensor)


def test_esca_energy(small_network_run):
    row = esca_energy(small_network_run)
    assert row.platform == "ESCA"
    assert row.power_watts == pytest.approx(3.45, rel=0.02)
    assert row.seconds == pytest.approx(small_network_run.total_seconds)


def test_energy_comparison_and_ratio(small_network_run):
    rows = energy_comparison(small_network_run, [make_workload()])
    names = [row.platform for row in rows]
    assert "ESCA" in names
    ratio = energy_ratio(rows, "Tesla P100 (GPU)")
    assert ratio > 1  # the GPU always burns more energy on this workload
    with pytest.raises(KeyError):
        energy_ratio(rows, "TPU")
