"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.analysis import occupancy_summary, render_projection, render_tile_map
from repro.arch import TileGrid
from repro.sparse import SparseTensor3D
from tests.conftest import random_sparse_tensor


def test_projection_shape_and_symbols():
    coords = np.array([[0, 0, 0], [3, 3, 3]])
    tensor = SparseTensor3D(coords, np.ones((2, 1)), (4, 4, 4))
    art = render_projection(tensor, axis="z")
    lines = art.splitlines()
    assert len(lines) == 4
    assert all(len(line) == 4 for line in lines)
    # Both occupied cells render as the densest symbol.
    assert lines[0][0] == "@"
    assert lines[3][3] == "@"
    assert lines[0][3] == " "


def test_projection_axis_selection():
    coords = np.array([[1, 0, 0]])
    tensor = SparseTensor3D(coords, np.ones((1, 1)), (4, 8, 16))
    # Projecting along x removes the first axis: (y, z) = 8 x 16 canvas.
    art = render_projection(tensor, axis="x")
    lines = art.splitlines()
    assert len(lines) == 8
    assert all(len(line) == 16 for line in lines)


def test_projection_invalid_axis():
    tensor = SparseTensor3D.empty((4, 4, 4))
    with pytest.raises(ValueError):
        render_projection(tensor, axis="w")


def test_projection_empty_tensor_blank():
    tensor = SparseTensor3D.empty((4, 4, 4))
    art = render_projection(tensor)
    assert set(art) <= {" ", "\n"}


def test_projection_downsamples_large_grids():
    tensor = random_sparse_tensor(seed=180, shape=(192, 192, 192), nnz=50)
    art = render_projection(tensor, axis="z", max_size=64)
    lines = art.splitlines()
    assert len(lines) <= 64
    assert max(len(line) for line in lines) <= 64
    with pytest.raises(ValueError):
        render_projection(tensor, max_size=0)


def test_density_ramp_monotonic():
    # One stack of 10 occupied voxels vs a single voxel: denser symbol.
    coords = np.array([[0, 0, z] for z in range(10)] + [[3, 3, 0]])
    tensor = SparseTensor3D(coords, np.ones((11, 1)), (4, 4, 10))
    art = render_projection(tensor, axis="z")
    lines = art.splitlines()
    ramp = " .:-=+*#%@"
    assert ramp.index(lines[0][0]) > ramp.index(lines[3][3])


def test_tile_map():
    coords = np.array([[0, 0, 0], [9, 9, 9]])
    tensor = SparseTensor3D(coords, np.ones((2, 1)), (16, 16, 16))
    grid = TileGrid(tensor, (8, 8, 8))
    art = render_tile_map(grid, axis="z")
    lines = art.splitlines()
    assert lines[0] == "#."
    assert lines[1] == ".#"


def test_occupancy_summary():
    tensor = random_sparse_tensor(seed=181, shape=(8, 8, 8), nnz=12)
    text = occupancy_summary(tensor)
    assert "12 active sites" in text
    assert "8x8x8" in text
