"""Tests for the command-line report generator."""

import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.experiments == []
    assert args.seed == 0


def test_main_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["table9"])


def test_cli_table2_output(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "BRAM" in out
    assert "365.5" in out


def test_cli_table1_with_seed(capsys):
    assert main(["--seed", "1", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "shapenet" in out


def test_cli_multiple_experiments(capsys):
    assert main(["table1", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table II" in out
    assert "Table III" not in out


def test_cli_stream_subcommand(capsys):
    assert main(
        ["stream", "--frames", "3", "--resolution", "48", "--points", "2000",
         "--step-rad", "0", "--noise", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "streamed 3 frames" in out
    assert "rulebook hit rate" in out
    assert "matching seconds" in out
    assert "scatter seconds" in out
    # Static scene: frames after the first hit the session's cache.
    assert "(2 hits, 1 misses)" in out


def test_cli_stream_rejects_bad_frames():
    with pytest.raises(SystemExit):
        main(["stream", "--frames", "0"])


def test_cli_stream_help_does_not_run_experiments(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["stream", "--help"])
    assert excinfo.value.code == 0
    assert "InferenceSession" in capsys.readouterr().out


def test_cli_stream_backend_flag(capsys):
    assert main(
        ["stream", "--frames", "2", "--resolution", "48", "--points", "2000",
         "--step-rad", "0", "--noise", "0", "--backend", "scipy"]
    ) == 0
    assert "streamed 2 frames" in capsys.readouterr().out


def test_cli_stream_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["stream", "--frames", "1", "--backend", "cuda"])


def test_cli_unknown_backend_fails_fast_with_available_list(capsys):
    """Satellite bugfix: an unknown --backend dies at the command line
    with the registered-backend list in the message, instead of a late
    registry error from inside session construction."""
    for subcommand in ("stream", "serve"):
        with pytest.raises(SystemExit) as excinfo:
            main([subcommand, "--backend", "cuda"])
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert "unknown execution backend 'cuda'" in err
        assert "'numpy'" in err and "'scipy'" in err and "'sharded'" in err


def test_cli_backend_accepts_late_registered_backends(capsys):
    """The choice set must come from the live registry, not be frozen at
    parser build time."""
    from repro.engine import NumpyFusedBackend, register_backend

    class AliasBackend(NumpyFusedBackend):
        name = "cli-test-alias"

    register_backend("cli-test-alias", AliasBackend, overwrite=True)
    assert main(
        ["stream", "--frames", "2", "--resolution", "24", "--points", "800",
         "--step-rad", "0", "--noise", "0", "--backend", "cli-test-alias"]
    ) == 0
    assert "streamed 2 frames" in capsys.readouterr().out


def test_cli_stream_delta_on_drifting_scene(capsys):
    assert main(
        ["stream", "--frames", "4", "--resolution", "48", "--points", "2000",
         "--scene", "drifting", "--churn", "0.01", "--delta"]
    ) == 0
    out = capsys.readouterr().out
    assert "drifting scene" in out
    assert "delta matching:" in out
    assert "plan refreshes:" in out
    assert "rulebook=patch" in out


def test_cli_stream_delta_reports_spliced_plans_on_scipy(capsys):
    pytest.importorskip("scipy")
    assert main(
        ["stream", "--frames", "4", "--resolution", "48", "--points", "2000",
         "--scene", "drifting", "--churn", "0.01", "--delta",
         "--backend", "scipy"]
    ) == 0
    out = capsys.readouterr().out
    assert "plan refreshes:" in out
    spliced = int(out.split("plan refreshes:")[1].split("(")[1].split()[0])
    assert spliced > 0  # the scipy backend splices patched plans


def test_cli_stream_delta_threshold_validation():
    with pytest.raises(SystemExit):
        main(["stream", "--frames", "1", "--delta", "1.5"])
    with pytest.raises(SystemExit):
        main(["stream", "--frames", "1", "--scene", "drifting", "--churn", "2"])


def test_cli_serve_subcommand(capsys):
    assert main(
        ["serve", "--frames", "2", "--clients", "3", "--resolution", "24",
         "--points", "1500", "--max-delay-ms", "20"]
    ) == 0
    out = capsys.readouterr().out
    assert "served 6 requests" in out
    assert "micro-batches" in out
    assert "bit-identical: yes" in out


def test_cli_serve_no_baseline(capsys):
    assert main(
        ["serve", "--frames", "1", "--clients", "2", "--resolution", "24",
         "--points", "1000", "--no-baseline"]
    ) == 0
    out = capsys.readouterr().out
    assert "serve throughput" in out
    assert "baseline" not in out


def test_cli_serve_rejects_bad_arguments():
    with pytest.raises(SystemExit):
        main(["serve", "--frames", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--clients", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--max-pending", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--deadline-ms", "0"])


def test_cli_serve_backpressure_flags(capsys):
    assert main(
        ["serve", "--frames", "1", "--clients", "2", "--resolution", "24",
         "--points", "1000", "--no-baseline", "--max-pending", "64",
         "--deadline-ms", "60000"]
    ) == 0
    out = capsys.readouterr().out
    assert "rejected:           0 (0 overload, 0 deadline)" in out


def test_cli_serve_help_mentions_micro_batching(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--help"])
    assert excinfo.value.code == 0
    assert "micro-batching" in capsys.readouterr().out


def test_cli_misplaced_subcommand_hint(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "serve"])
    err = capsys.readouterr().err
    assert "'serve' is a subcommand and must come first" in err


def test_cli_points_subcommand(capsys):
    assert main(
        ["points", "--frames", "3", "--points", "2000",
         "--resolution", "48", "--seed", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "served 3 point-based frames at 48^3" in out
    assert "mapping cache:" in out
    assert "delta splicing:" in out
    assert "modeled mapping cost:" in out
    # The drifting self-query tables splice on warm frames.
    assert "delta-patch" in out


def test_cli_points_delta_zero_disables_splicing(capsys):
    assert main(
        ["points", "--frames", "2", "--points", "1500",
         "--resolution", "48", "--delta", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "0 patches, 0 rebuilds" in out


def test_cli_points_validation():
    with pytest.raises(SystemExit):
        main(["points", "--frames", "0"])
    with pytest.raises(SystemExit):
        main(["points", "--churn", "1.5"])
    with pytest.raises(SystemExit):
        main(["points", "--delta", "2.0"])


def test_cli_points_help_mentions_mapping(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["points", "--help"])
    assert excinfo.value.code == 0
    assert "mapping-ops subsystem" in capsys.readouterr().out


# ----------------------------------------------------------------------
# cluster serving: serve --cluster and the worker subcommand
# ----------------------------------------------------------------------
def test_cli_worker_help_mentions_ready_line(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["worker", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "repro-worker" in out  # the readiness line (argparse wraps it)
    assert "--max-sessions" in out


def test_cli_worker_validation():
    with pytest.raises(SystemExit):
        main(["worker", "--port", "99999"])
    with pytest.raises(SystemExit):
        main(["worker", "--max-sessions", "0"])


def test_cli_worker_misplaced_subcommand_hint(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "worker"])
    err = capsys.readouterr().err
    assert "'worker' is a subcommand and must come first" in err


def test_cli_serve_cluster_validation():
    with pytest.raises(SystemExit):
        main(["serve", "--cluster", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--cluster", "2", "--churn", "1.5"])
    with pytest.raises(SystemExit):
        main(["serve", "--cluster", "2", "--backend", "scipy"])
    with pytest.raises(SystemExit):
        main(["serve", "--cluster", "2", "--delta", "0.5"])


def test_cli_serve_cluster_demo(capsys):
    assert main(
        ["serve", "--cluster", "2", "--frames", "2", "--clients", "2",
         "--resolution", "24", "--points", "800"]
    ) == 0
    out = capsys.readouterr().out
    assert "2-worker loopback cluster" in out
    assert "cluster routing" in out
    assert "groups rerouted" in out
    assert "bit-identical: yes" in out


def _corrupting_serve_frames(monkeypatch):
    """Wrap serve_frames so every served output is perturbed by +1."""
    import repro.runtime as runtime_mod

    real = runtime_mod.serve_frames

    def corrupting(requests, **kwargs):
        outputs, stats = real(requests, **kwargs)
        bad = [out.with_features(out.features + 1.0) for out in outputs]
        return bad, stats

    monkeypatch.setattr(runtime_mod, "serve_frames", corrupting)


def test_cli_serve_exits_nonzero_on_identity_mismatch(monkeypatch, capsys):
    _corrupting_serve_frames(monkeypatch)
    assert main(
        ["serve", "--frames", "1", "--clients", "2", "--resolution", "24",
         "--points", "800"]
    ) == 1
    assert "bit-identical: NO" in capsys.readouterr().out


def test_cli_serve_cluster_exits_nonzero_on_identity_mismatch(
    monkeypatch, capsys
):
    _corrupting_serve_frames(monkeypatch)
    assert main(
        ["serve", "--cluster", "1", "--frames", "1", "--clients", "2",
         "--resolution", "24", "--points", "800"]
    ) == 1
    assert "bit-identical: NO" in capsys.readouterr().out


def test_cli_serve_metrics_port_and_trace_dump(tmp_path, capsys):
    import json

    trace_path = tmp_path / "traces.json"
    assert main(
        ["serve", "--frames", "1", "--clients", "2", "--resolution", "24",
         "--points", "1000", "--no-baseline", "--metrics-port", "0",
         "--trace-dump", str(trace_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "metrics endpoint: http://127.0.0.1:" in out
    assert "traces dumped to:" in out
    traces = json.loads(trace_path.read_text())
    assert traces, "expected at least one micro-batch trace"
    names = [span["name"] for span in traces[0]["spans"]]
    assert names == ["queue-wait", "batch-linger", "execute", "respond"]


def test_cli_serve_rejects_bad_metrics_port():
    with pytest.raises(SystemExit):
        main(["serve", "--metrics-port", "65536"])
    with pytest.raises(SystemExit):
        main(["serve", "--metrics-port", "-1"])
