"""Ablation: traditional dense CNN accelerator on SSCN (Secs. I-II).

Quantifies the degradation the paper motivates ESCA with: a dense
(zero-skipping) accelerator must stream the full 192^3 feature map and
computes the dilated convolution, most of which is wasted work.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.arch import EscaAccelerator
from repro.baselines import DenseAcceleratorModel, workload_from_tensor
from repro.geometry.datasets import load_sample


def run_comparison():
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    tensor = grid.with_features(rng.standard_normal((grid.nnz, 16)))
    workload = workload_from_tensor(tensor, 16, 16)

    esca = EscaAccelerator().run_layer(tensor, out_channels=16)
    dense = DenseAcceleratorModel()
    dense_seconds = dense.layer_seconds(workload)
    rows = [
        ("ESCA", f"{esca.total_seconds * 1e3:.3f}", "0%"),
        (
            "Dense accel",
            f"{dense_seconds * 1e3:.3f}",
            f"{dense.wasted_work_fraction(workload):.1%}",
        ),
    ]
    return rows, dense_seconds / esca.total_seconds


def test_bench_ablation_dense_accel(benchmark, write_report):
    rows, slowdown = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report = format_table(["Platform", "Layer ms", "Wasted MACs"], rows)
    report += f"\nDense accelerator slowdown vs ESCA: {slowdown:.1f}x"
    write_report("ablation_dense_accel", report)
    # The degradation the paper claims is at least an order of magnitude.
    assert slowdown > 10
