"""Benchmark: energy per inference (CPU / GPU / ESCA).

Combines the latency and power models into J/inference for one SS U-Net
pass — the deployment metric behind Table III's 51x power-efficiency
headline.
"""

import pytest

from repro.analysis.energy import energy_comparison, energy_ratio
from repro.analysis.experiments import default_unet
from repro.analysis.reporting import format_table
from repro.arch import EscaAccelerator
from repro.baselines.platform import workloads_from_executions
from repro.geometry.datasets import load_sample
from repro.nn.unet import collect_subconv_workloads


def run_energy():
    sample = load_sample("shapenet", seed=0)
    net = default_unet()
    accel = EscaAccelerator()
    network = accel.run_network(net, sample.grid)
    executions = collect_subconv_workloads(net, sample.grid)
    workloads = workloads_from_executions(executions, accel.config.kernel_size)
    return energy_comparison(network, workloads, config=accel.config)


def test_bench_energy(benchmark, write_report):
    rows = benchmark.pedantic(run_energy, rounds=1, iterations=1)
    report = format_table(
        ["Platform", "Inference ms", "Power W", "Energy mJ"],
        [
            (
                row.platform,
                f"{row.seconds * 1e3:.2f}",
                f"{row.power_watts:.2f}",
                f"{row.energy_millijoules:.2f}",
            )
            for row in rows
        ],
    )
    gpu_ratio = energy_ratio(rows, "Tesla P100 (GPU)")
    cpu_ratio = energy_ratio(rows, "Xeon Gold 6148 (CPU)")
    report += (
        f"\nGPU uses {gpu_ratio:.0f}x and CPU {cpu_ratio:.0f}x "
        "the energy of ESCA per inference"
    )
    write_report("energy_per_inference", report)
    # Energy ordering mirrors the paper's power-efficiency story.
    assert gpu_ratio > 10
    assert cpu_ratio > 10
