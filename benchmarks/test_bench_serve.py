"""Cluster serving benchmark: remote worker fleet vs single node.

Serves a batched drifting-scene workload twice through the same
``SessionServer`` micro-batching front door — once over the ``remote``
backend fanning digest groups across a loopback worker fleet, once over
an in-process numpy session — asserts bit-identity between the two, and
reports the throughput ratio (``results/cluster_speedup.txt``, the
artifact the cluster-smoke CI leg uploads).

Parity is the hard requirement everywhere.  The >= 1.3x speedup
assertion only runs on multi-core machines: process fan-out cannot beat
a single node on one core, so there the report is still written but the
ratio assertion is *skipped* (never faked).
"""

import os
import time

import numpy as np
import pytest

from repro.engine import InferenceSession
from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.runtime import (
    DriftingSceneSource,
    LocalWorkerFleet,
    RemoteShardBackend,
    serve_frames,
)

SPEEDUP_FLOOR = 1.3
CLUSTER_WORKERS = 2


def drifting_requests(frames=4, clients=3, resolution=48, points=4000):
    """frames x clients requests over a drifting scene (distinct digests)."""
    source = DriftingSceneSource(
        base_cloud=make_shapenet_like_cloud(seed=0, n_points=points),
        num_frames=frames,
        churn=0.05,
        seed=0,
    )
    voxelizer = Voxelizer(
        resolution=resolution, normalize=False, occupancy_only=True
    )
    scene = [voxelizer.voxelize(cloud) for cloud in source]
    return [frame for frame in scene for _ in range(clients)]


def served_fps(requests, session, concurrency):
    outputs, stats = serve_frames(
        requests, session=session, concurrency=concurrency, max_delay_s=0.0
    )
    return outputs, stats.fps


def test_bench_cluster_vs_single_node_serve(write_report):
    requests = drifting_requests()
    cores = os.cpu_count() or 1

    single = InferenceSession(backend="numpy")
    single.warm(requests[0])
    single_outputs, single_fps = served_fps(requests, single, concurrency=3)

    fleet = LocalWorkerFleet.spawn(CLUSTER_WORKERS)
    backend = RemoteShardBackend(workers=fleet.addresses)
    try:
        session = InferenceSession(backend=backend)
        session.warm(requests[0])  # local plan warm (remote warms on sync)
        # Cold pass ships spec blobs and warms worker plans; the timed
        # pass below measures the steady serving state.
        served_fps(requests, session, concurrency=3)
        cluster_outputs, cluster_fps = served_fps(
            requests, session, concurrency=3
        )
        cluster_stats = backend.stats
    finally:
        backend.close()
        fleet.terminate()

    for out, ref in zip(cluster_outputs, single_outputs):
        assert out.features.dtype == ref.features.dtype
        assert np.array_equal(out.features, ref.features)

    ratio = cluster_fps / single_fps if single_fps else 0.0
    lines = [
        "Cluster serving vs single node (bit-identical outputs asserted)",
        "",
        f"workload: {len(requests)} requests "
        "(4 drifting frames x 3 clients) at 48^3",
        f"  single-node serve      {single_fps:10.2f} frames/s",
        f"  {CLUSTER_WORKERS}-worker cluster serve {cluster_fps:10.2f} "
        "frames/s",
        f"  cluster vs single      {ratio:10.2f}x "
        f"(floor {SPEEDUP_FLOOR}x on multi-core)",
        "",
        f"routing: {cluster_stats.groups_dispatched} groups / "
        f"{cluster_stats.frames_dispatched} frames dispatched, "
        f"{cluster_stats.spec_syncs} spec syncs, "
        f"{cluster_stats.workers_lost} workers lost",
        "",
        f"machine: {cores} CPU core(s) visible — the speedup floor is "
        "asserted only with >= 2 cores; parity holds regardless",
    ]
    write_report("cluster_speedup", "\n".join(lines))

    assert cluster_fps > 0 and single_fps > 0
    if cores < 2:
        pytest.skip(
            f"{cores} core visible: cluster fan-out cannot amortize; "
            "report written, speedup floor not asserted"
        )
    assert ratio >= SPEEDUP_FLOOR, (
        f"cluster serve managed only {ratio:.2f}x vs single node "
        f"(floor {SPEEDUP_FLOOR}x) — see results/cluster_speedup.txt"
    )


def test_bench_cluster_failover_latency(write_report):
    """Worker loss mid-stream: the reroute completes and is bounded.

    Reports how long the lost-worker batch took versus a healthy batch
    (the reroute pays one transport failure + one spec resync on the
    successor).  Parity is asserted; the latency numbers are
    informational.
    """
    requests = drifting_requests(frames=3, clients=2)
    reference = InferenceSession(backend="numpy")
    expected = [reference.run(frame) for frame in requests]

    fleet = LocalWorkerFleet.spawn(2)
    backend = RemoteShardBackend(workers=fleet.addresses)
    try:
        session = InferenceSession(backend=backend)
        start = time.perf_counter()
        outs = session.run_batch(requests)
        healthy_s = time.perf_counter() - start
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)

        # Kill a worker that owns at least one digest, then re-serve.
        owners = {
            backend.ring.route(t.coords_digest()) for t in requests
        }
        victim = fleet.addresses.index(next(iter(owners)))
        fleet.kill(victim)
        start = time.perf_counter()
        outs = session.run_batch(requests)
        failover_s = time.perf_counter() - start
        for out, ref in zip(outs, expected):
            assert np.array_equal(out.features, ref.features)
        assert backend.stats.workers_lost == 1
        assert backend.stats.groups_rerouted >= 1

        lines = [
            "Cluster failover latency (SIGKILL one of 2 workers mid-stream)",
            "",
            f"  healthy batch   {healthy_s * 1e3:9.2f} ms "
            f"({len(requests)} frames)",
            f"  failover batch  {failover_s * 1e3:9.2f} ms "
            f"(+{(failover_s - healthy_s) * 1e3:.2f} ms for "
            f"{backend.stats.groups_rerouted} rerouted groups)",
            "",
            "all outputs bit-identical to in-process numpy; no request "
            "was lost",
        ]
        write_report("cluster_failover", "\n".join(lines))
    finally:
        backend.close()
        fleet.terminate()
