"""Engine benchmark: fused gather-GEMM-scatter + rulebook caching vs seed.

The seed implementation rebuilt the rulebook for every submanifold layer
and scattered contributions through the buffered ``np.add.at`` reduction.
The engine replaces both: one matching pass per site set (cross-layer
:class:`RulebookCache`) and a fused vectorized apply.  This benchmark
demonstrates the required >=5x median per-layer speedup on the default
ShapeNet-like streaming workload and re-validates exactness against the
seed reference on a full SS U-Net forward.
"""

import statistics
import time

import numpy as np

from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.nn import (
    ApplyStats,
    RulebookCache,
    SSUNet,
    UNetConfig,
    apply_rulebook,
    apply_rulebook_reference,
    build_submanifold_rulebook,
)
from repro.sparse.ops import sparse_allclose


def default_workload():
    """The StreamingRunner default: occupancy grid at 192^3, Sub-Conv 1->16."""
    cloud = make_shapenet_like_cloud(seed=0, n_points=60000)
    grid = Voxelizer(resolution=192, normalize=False, occupancy_only=True).voxelize(
        cloud
    )
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((27, 1, 16))
    return grid, weights


def median_seconds(fn, reps=11, warmup=2):
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_engine_beats_seed_path_5x(write_report):
    grid, weights = default_workload()
    cache = RulebookCache()
    cache.submanifold(grid, 3)  # warm: steady-state frames hit

    def seed_layer():
        # Exactly what the seed did per submanifold layer: rebuild the
        # rulebook, then scatter through np.add.at.
        rulebook = build_submanifold_rulebook(grid, 3)
        return apply_rulebook_reference(rulebook, grid.features, weights, grid.nnz)

    def engine_layer():
        rulebook = cache.submanifold(grid, 3)
        return apply_rulebook(rulebook, grid.features, weights, grid.nnz)

    assert np.array_equal(seed_layer(), engine_layer())

    seed_s = median_seconds(seed_layer)
    engine_s = median_seconds(engine_layer)
    speedup = seed_s / engine_s

    # Scatter-stage breakdown: seed scatter is the np.add.at loop over
    # precomputed contributions; engine scatter comes from ApplyStats.
    rulebook = cache.submanifold(grid, 3)
    contributions = [
        grid.features[rule[:, 0]] @ weights[k] if len(rule) else None
        for k, rule in enumerate(rulebook.rules)
    ]

    def seed_scatter():
        out = np.zeros((grid.nnz, weights.shape[2]))
        for k, rule in enumerate(rulebook.rules):
            if contributions[k] is None:
                continue
            np.add.at(out, rule[:, 1], contributions[k])
        return out

    seed_scatter_s = median_seconds(seed_scatter)
    engine_stats = ApplyStats()
    for _ in range(11):
        apply_rulebook(rulebook, grid.features, weights, grid.nnz, stats=engine_stats)
    engine_scatter_s = engine_stats.scatter_seconds / 11

    report = "\n".join(
        [
            "Engine benchmark — default ShapeNet-like workload "
            f"(nnz={grid.nnz}, matches={rulebook.total_matches}, Sub-Conv 1->16)",
            f"seed per-layer (rebuild + np.add.at): {seed_s * 1e3:8.3f} ms",
            f"engine per-layer (cached + fused):    {engine_s * 1e3:8.3f} ms",
            f"per-layer speedup:                    {speedup:8.2f} x",
            f"seed scatter (np.add.at):             {seed_scatter_s * 1e3:8.3f} ms",
            f"fused scatter:                        {engine_scatter_s * 1e3:8.3f} ms",
            f"scatter-stage speedup:                {seed_scatter_s / engine_scatter_s:8.2f} x",
        ]
    )
    write_report("engine_speedup", report)
    assert speedup >= 5.0, f"engine speedup {speedup:.2f}x below required 5x"


def test_engine_unet_forward_matches_seed_reference(write_report):
    """Full SS U-Net: cached/fused engine vs seed path, sparse_allclose 1e-9."""
    grid, _ = default_workload()
    cfg = UNetConfig(in_channels=1, num_classes=8, base_channels=8, levels=3)
    plain = SSUNet(cfg)(grid)
    cache = RulebookCache()
    cached = SSUNet(cfg, rulebook_cache=cache)(grid)
    assert sparse_allclose(cached, plain, rtol=1e-9)
    assert np.array_equal(cached.features, plain.features)
    assert cache.hits > 0
    write_report(
        "engine_unet_equivalence",
        "SS U-Net forward, engine vs seed reference: bit-identical "
        f"(nnz={grid.nnz}, rulebook cache hits={cache.hits}, "
        f"misses={cache.misses}, hit rate={cache.hit_rate:.2f})",
    )
