"""Delta-engine benchmark: incremental patching vs full rebuilds.

Streams a drifting scene (nearly-static voxel set, a few percent churn
per frame — the SLAM/odometry/surveillance regime) and compares the
warm-stream matching cost of digest-only caching (every frame is a miss
and rebuilds from scratch) against :class:`DeltaRulebookCache` (every
frame after the first is patched from its predecessor).  Bit-identity
of the patched rulebooks is asserted; the acceptance criterion — with
at most 5% per-frame voxel churn, delta matching is at least 2x faster
— is asserted and recorded in ``results/delta_speedup.txt``.
"""

import time

import numpy as np

from repro.engine import DeltaRulebookCache, coordinate_delta
from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.nn import RulebookCache, build_submanifold_rulebook
from repro.runtime import DriftingSceneSource

RESOLUTION = 192
KERNEL = 3


def drifting_tensors(num_frames=6, churn=0.015, jitter_sigma=0.005, seed=0):
    """Voxelized frames of a drifting scene dense enough to be honest.

    ``grid_fraction=0.9`` spreads the object over most of the grid, so
    the scene voxelizes to ~11k active sites at 192^3 — the regime where
    matching cost is dominated by scene size rather than constants.  The
    1.5% point churn lands at ~3% per-frame *voxel* churn (several
    points share a voxel, so voxel churn amplifies point churn).
    """
    cloud = make_shapenet_like_cloud(
        seed=seed, n_points=30000, grid_fraction=0.9
    )
    source = DriftingSceneSource(
        base_cloud=cloud,
        num_frames=num_frames,
        churn=churn,
        jitter_sigma=jitter_sigma,
        seed=seed,
    )
    voxelizer = Voxelizer(
        resolution=RESOLUTION, normalize=False, occupancy_only=True
    )
    return [voxelizer.voxelize(cloud) for cloud in source]


def warm_stream_seconds(cache_factories, tensors, reps=5):
    """Best total matching time for frames 1..N on a warm stream.

    Each rep uses a fresh cache per strategy, feeds frame 0 untimed
    (both strategies pay one full build there), then times the
    remaining lookups — the steady-state cost a streaming deployment
    actually pays per frame.  Strategies are interleaved within each
    rep so machine noise (CI containers share cores) hits both alike,
    and the per-strategy minimum is reported (the standard low-noise
    estimator for ratio benchmarks).
    """
    best = [float("inf")] * len(cache_factories)
    for _ in range(reps):
        for index, factory in enumerate(cache_factories):
            cache = factory()
            cache.submanifold(tensors[0], KERNEL)
            start = time.perf_counter()
            for tensor in tensors[1:]:
                cache.submanifold(tensor, KERNEL)
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_bench_delta_patch_vs_rebuild(write_report):
    tensors = drifting_tensors()
    ratios = [
        coordinate_delta(a.coords, b.coords).ratio
        for a, b in zip(tensors, tensors[1:])
    ]
    # The scenario must stay in the acceptance regime: <=5% voxel churn.
    assert max(ratios) <= 0.05, f"scene churn drifted out of regime: {ratios}"

    # Bit-identity of every patched rulebook against from-scratch.
    delta_cache = DeltaRulebookCache(threshold=0.25)
    for tensor in tensors:
        patched = delta_cache.submanifold(tensor, KERNEL)
        scratch = build_submanifold_rulebook(tensor, KERNEL)
        assert patched.num_inputs == scratch.num_inputs
        assert patched.num_outputs == scratch.num_outputs
        for got, want in zip(patched.rules, scratch.rules):
            assert np.array_equal(got, want)
    assert delta_cache.patches == len(tensors) - 1
    assert delta_cache.rebuilds == 1

    digest_seconds, delta_seconds = warm_stream_seconds(
        [RulebookCache, lambda: DeltaRulebookCache(threshold=0.25)], tensors
    )
    speedup = digest_seconds / delta_seconds
    frames = len(tensors) - 1

    lines = [
        "Incremental rulebook delta engine: patch vs full rebuild",
        "(drifting scene, warm stream, bit-identical rulebooks asserted)",
        "",
        f"scene: {RESOLUTION}^3 grid, nnz per frame "
        f"{min(t.nnz for t in tensors)}-{max(t.nnz for t in tensors)}, "
        f"{frames} warm frames",
        f"per-frame voxel churn: {min(ratios):.2%}-{max(ratios):.2%} "
        "(acceptance regime: <= 5%)",
        "",
        f"  digest-only cache (rebuild per frame) "
        f"{digest_seconds * 1e3 / frames:9.3f} ms/frame",
        f"  delta cache       (patch per frame)   "
        f"{delta_seconds * 1e3 / frames:9.3f} ms/frame",
        f"  speedup: {speedup:.2f}x (acceptance: >= 2x)",
    ]
    write_report("delta_speedup", "\n".join(lines))
    # Acceptance criterion: warm-stream matching with delta= is at least
    # 2x faster than digest-only caching on the <=5% churn scenario.
    assert speedup >= 2.0, f"delta speedup {speedup:.2f}x below 2x"
