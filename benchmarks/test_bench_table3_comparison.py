"""Benchmark regenerating Table III: GPU / FPGA [19] / ESCA comparison.

Simulates the full SS U-Net through the cycle-accurate accelerator and
evaluates the calibrated GPU model on the identical effective workload.
"""

import pytest

from repro.analysis import run_table3


def test_bench_table3_comparison(benchmark, write_report):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    write_report("table3_comparison", result.format())
    ours = result.row("ours")
    gpu = result.row("GPU")
    assert ours.performance_gops == pytest.approx(17.73, rel=0.15)
    assert gpu.performance_gops == pytest.approx(9.40, rel=0.15)
    assert result.performance_ratio_vs_gpu == pytest.approx(1.88, rel=0.2)
    assert result.efficiency_ratio_vs_gpu == pytest.approx(51, rel=0.2)
