"""Ablation: FIFO group depth vs pipeline stalls (Sec. III-C).

The FIFO group decouples the fetch stage from the MUX/CC drain.  Too
shallow and fetch stalls on backpressure; beyond a few entries the
occupancy saturates. Correctness is invariant (asserted in the unit
tests); this bench quantifies the cycle cost.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.arch import AcceleratorConfig, EscaAccelerator
from repro.geometry.datasets import load_sample


@pytest.fixture(scope="module")
def tensor16():
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    return grid.with_features(rng.standard_normal((grid.nnz, 16)))


def run_sweep(tensor):
    rows = []
    for depth in (1, 2, 4, 8, 16):
        config = AcceleratorConfig(fifo_depth=depth)
        result = EscaAccelerator(config).run_layer(tensor, out_channels=16)
        rows.append(
            (
                depth,
                result.total_cycles,
                result.fetch_fifo_stalls,
                result.fifo_max_occupancy,
            )
        )
    return rows


def test_bench_ablation_fifo_depth(benchmark, write_report, tensor16):
    rows = benchmark.pedantic(run_sweep, args=(tensor16,), rounds=1,
                              iterations=1)
    report = format_table(
        ["FIFO depth", "Cycles", "Fetch stalls", "Max occupancy"], rows
    )
    write_report("ablation_fifo_depth", report)
    cycles = [row[1] for row in rows]
    # Deeper FIFOs never hurt.
    assert cycles == sorted(cycles, reverse=True) or len(set(cycles)) == 1
    # Occupancy never exceeds the configured capacity.
    for depth, _, _, occupancy in rows:
        assert occupancy <= depth
