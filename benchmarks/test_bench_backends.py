"""Backend comparison benchmark: numpy vs scipy vs sharded.

Measures the pluggable execution backends on the default streaming
workload (192^3 occupancy grid, Sub-Conv 1->16) at the convolution
level, and on a multi-group ``run_batch`` workload at the session level
(where the sharded backend fans digest groups across worker processes).
Parity is asserted (bit-identical outputs); relative speed is *reported*
— which engine wins is workload- and machine-dependent, and the report
(``results/backend_speedup.txt``) is the artifact CI uploads.
"""

import os
import statistics
import time

import numpy as np

from repro.engine import InferenceSession, get_backend
from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.nn import RulebookCache, UNetConfig
from tests.conftest import random_sparse_tensor


def conv_workload():
    """The StreamingRunner default: occupancy grid at 192^3, Sub-Conv 1->16."""
    cloud = make_shapenet_like_cloud(seed=0, n_points=60000)
    grid = Voxelizer(resolution=192, normalize=False, occupancy_only=True).voxelize(
        cloud
    )
    weights = np.random.default_rng(0).standard_normal((27, 1, 16))
    rulebook = RulebookCache().submanifold(grid, 3)
    return grid, rulebook, weights


def median_seconds(fn, reps=15, warmup=2):
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def batch_workload(groups=4, frames_per_group=3):
    """Multi-group run_batch load: distinct site sets, repeated features."""
    cfg = UNetConfig(in_channels=2, num_classes=8, base_channels=8, levels=3)
    rng = np.random.default_rng(1)
    frames = []
    for g in range(groups):
        base = random_sparse_tensor(
            seed=100 + g, shape=(32, 32, 32), nnz=600, channels=2
        )
        frames.append(base)
        frames.extend(
            base.with_features(rng.standard_normal((base.nnz, 2)))
            for _ in range(frames_per_group - 1)
        )
    return cfg, frames


def test_bench_backend_conv_parity_and_speed(write_report):
    grid, rulebook, weights = conv_workload()
    numpy_backend = get_backend("numpy")
    scipy_backend = get_backend("scipy")
    reference = numpy_backend.execute(rulebook, grid.features, weights, grid.nnz)
    scipy_out = scipy_backend.execute(rulebook, grid.features, weights, grid.nnz)
    assert np.array_equal(scipy_out, reference)

    numpy_s = median_seconds(
        lambda: numpy_backend.execute(rulebook, grid.features, weights, grid.nnz)
    )
    scipy_s = median_seconds(
        lambda: scipy_backend.execute(rulebook, grid.features, weights, grid.nnz)
    )

    cfg, frames = batch_workload()
    local = InferenceSession(unet_config=cfg, backend="numpy")
    sharded = InferenceSession(
        unet_config=cfg, backend=get_backend("sharded", num_workers=2)
    )
    try:
        expected = local.run_batch(frames)
        fanned = sharded.run_batch(frames)
        for out, ref in zip(fanned, expected):
            assert np.array_equal(out.features, ref.features)
        local_s = median_seconds(lambda: local.run_batch(frames), reps=7)
        sharded_s = median_seconds(lambda: sharded.run_batch(frames), reps=7)
    finally:
        sharded.backend.close()

    degraded = " (DEGRADED: scipy absent, numpy fallback)" if getattr(
        scipy_backend, "degraded", False
    ) else ""
    lines = [
        "Execution-backend comparison (bit-identical outputs asserted)",
        "",
        f"Sub-Conv 1->16 @ 192^3, nnz={grid.nnz}, "
        f"matches={rulebook.total_matches}:",
        f"  numpy  fused engine   {numpy_s * 1e3:9.3f} ms/layer",
        f"  scipy  CSR operators  {scipy_s * 1e3:9.3f} ms/layer "
        f"({numpy_s / scipy_s:5.2f}x vs numpy){degraded}",
        "",
        f"run_batch, {len(frames)} frames in 4 digest groups "
        "(3-level U-Net @ 32^3):",
        f"  numpy   local         {local_s * 1e3:9.3f} ms/batch",
        f"  sharded 2-worker pool {sharded_s * 1e3:9.3f} ms/batch "
        f"({local_s / sharded_s:5.2f}x vs local)",
        "",
        f"machine: {os.cpu_count()} CPU core(s) visible — process fan-out "
        "amortizes only with >1 core; parity holds regardless",
    ]
    write_report("backend_speedup", "\n".join(lines))
    # Parity is the hard requirement; relative speed is informational.
    assert numpy_s > 0 and scipy_s > 0 and local_s > 0 and sharded_s > 0
