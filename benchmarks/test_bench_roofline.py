"""Benchmark: roofline placement of every SS U-Net layer.

Shows in one table why the network-level GOPS sits far below the 138.24
GOPS peak: the shallow layers are matching-bound (limited by the SDMU
scan, below both roofs) while the deep layers ride the compute roof.
"""

import pytest

from repro.analysis.experiments import default_unet
from repro.analysis.reporting import format_table
from repro.analysis.roofline import ridge_intensity, roofline_report
from repro.arch import EscaAccelerator
from repro.geometry.datasets import load_sample


def run_roofline():
    sample = load_sample("shapenet", seed=0)
    accel = EscaAccelerator()
    network = accel.run_network(default_unet(), sample.grid)
    return roofline_report(network, config=accel.config), accel.config


def test_bench_roofline(benchmark, write_report):
    points, config = benchmark.pedantic(run_roofline, rounds=1, iterations=1)
    rows = [
        (
            p.name,
            f"{p.operational_intensity:.1f}",
            f"{p.achieved_gops:.1f}",
            f"{p.roof_gops:.1f}",
            f"{p.roof_fraction:.0%}",
            p.bound,
        )
        for p in points
    ]
    report = format_table(
        ["Layer", "Ops/byte", "Achieved GOPS", "Roof GOPS", "Of roof",
         "Bound"],
        rows,
    )
    report += (
        f"\ncompute roof {config.peak_gops:.1f} GOPS; ridge at "
        f"{ridge_intensity(config):.0f} ops/byte"
        "\nnote: 'Achieved' is core (burst) throughput; the memory roof"
        " limits *sustained* system throughput because the paper's design"
        " does not overlap transfers, so tiny layers can burst above it."
    )
    write_report("roofline", report)
    # No layer beats the compute roof; at least one approaches it.
    assert all(p.achieved_gops <= config.peak_gops * 1.001 for p in points)
    assert max(p.achieved_gops for p in points) > 0.7 * config.peak_gops
