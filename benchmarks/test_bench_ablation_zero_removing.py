"""Ablation: the zero removing strategy on vs off (Sec. III-A).

Without zero removing, the SDMU judges every position of the 192^3 grid;
with it, only the active tiles.  The reduction in scanned positions (and
therefore cycles, in the matching-bound regime) is the strategy's entire
benefit, quantified here via the validated analytical model.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.arch import AcceleratorConfig, AnalyticalModel
from repro.geometry.datasets import load_sample


def run_ablation():
    model = AnalyticalModel(AcceleratorConfig())
    rows = []
    for dataset in ("shapenet", "nyu"):
        grid = load_sample(dataset, seed=0).grid
        with_zr = model.estimate_layer(grid.occupancy(), 16, 16)
        without = model.estimate_layer_without_zero_removing(
            grid.occupancy(), 16, 16
        )
        rows.append(
            (
                dataset,
                without,
                with_zr,
                f"{without / with_zr:.1f}x",
            )
        )
    return rows


def test_bench_ablation_zero_removing(benchmark, write_report):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report = format_table(
        ["Dataset", "Cycles w/o removal", "Cycles w/ removal", "Speedup"],
        rows,
    )
    write_report("ablation_zero_removing", report)
    for _, without, with_zr, _ in rows:
        # ~99.7% of tiles are removed at 8^3, so the matching-bound
        # speedup is two orders of magnitude.
        assert without / with_zr > 50
