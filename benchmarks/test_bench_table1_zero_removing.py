"""Benchmark regenerating Table I: analysis of the zero removing strategy.

Prints/persists the measured active-tile counts and removing ratios next
to the paper's, and times the strategy itself on the 192^3 feature maps.
"""

import pytest

from repro.analysis import run_table1
from repro.arch import ZeroRemover
from repro.geometry.datasets import load_sample


def test_bench_table1_zero_removing(benchmark, write_report):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    write_report("table1_zero_removing", result.format())
    for row in result.rows:
        assert row.removing_ratio > 0.99


@pytest.mark.parametrize("tile_size", [4, 8, 12, 16])
def test_bench_zero_removal_speed(benchmark, tile_size):
    """Raw speed of the tile partition at each Table I tile size."""
    grid = load_sample("shapenet", seed=0).grid
    remover = ZeroRemover((tile_size, tile_size, tile_size))
    result = benchmark(remover.remove, grid)
    assert result.active_tiles > 0
