"""Ablation: fixed-point precision sweep (justifies INT8/INT16).

The paper quantizes weights to 8 bits and activations to 16 bits without
an ablation; this bench produces the supporting table: output SNR and
worst-case relative error per bit-width combination on a representative
Sub-Conv layer.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.geometry.datasets import load_sample
from repro.quant import find_point, sweep_precision


def run_sweep():
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    tensor = grid.with_features(rng.standard_normal((grid.nnz, 16)))
    weights = rng.standard_normal((27, 16, 16)) * 0.2
    return sweep_precision(
        tensor, weights, weight_bits=(4, 6, 8, 12), activation_bits=(8, 16)
    )


def test_bench_ablation_precision(benchmark, write_report):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (
            f"INT{p.weight_bits}",
            f"INT{p.activation_bits}",
            f"{p.snr_db:.1f}",
            f"{p.max_rel_error:.4f}",
            "<- paper" if (p.weight_bits, p.activation_bits) == (8, 16) else "",
        )
        for p in points
    ]
    report = format_table(
        ["Weights", "Activations", "SNR (dB)", "Max rel err", ""], rows
    )
    write_report("ablation_precision", report)

    paper_point = find_point(points, 8, 16)
    assert paper_point is not None
    # The paper's configuration is high fidelity...
    assert paper_point.snr_db > 35.0
    assert paper_point.max_rel_error < 0.02
    # ...and dominates the cheaper 4-bit weights decisively.
    int4 = find_point(points, 4, 16)
    assert int4.snr_db < paper_point.snr_db - 15.0
    # More weight bits keep improving SNR at fixed activation bits.
    snr_by_wbits = [find_point(points, w, 16).snr_db for w in (4, 6, 8, 12)]
    assert snr_by_wbits == sorted(snr_by_wbits)
