"""Ablation: performance across input sparsity levels.

The paper's headline setting is ~99.9 % sparsity.  This bench sweeps the
point density of the synthetic generator and reports how matches, cycles
and effective throughput scale — showing the accelerator stays
matching-bound at extreme sparsity and compute-bound as density rises,
with the zero removing strategy's benefit shrinking accordingly.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.arch import AcceleratorConfig, AnalyticalModel
from repro.geometry import Voxelizer, make_shapenet_like_cloud


def run_sweep():
    config = AcceleratorConfig()
    model = AnalyticalModel(config)
    voxelizer = Voxelizer(resolution=192, normalize=False, occupancy_only=True)
    rows = []
    for n_points in (1000, 4000, 16000, 64000):
        cloud = make_shapenet_like_cloud(seed=0, n_points=n_points)
        grid = voxelizer.voxelize(cloud)
        scanned, matches = model.workload_statistics(grid)
        cycles = model.estimate_cycles(scanned, matches, 16, 16)
        no_removal = model.estimate_cycles(grid.volume, matches, 16, 16)
        ops = 2 * matches * 16 * 16
        gops = ops / (cycles / config.clock_hz) / 1e9
        rows.append(
            (
                n_points,
                grid.nnz,
                f"{grid.sparsity:.4%}",
                matches,
                cycles,
                f"{gops:.1f}",
                f"{no_removal / cycles:.0f}x",
            )
        )
    return rows


def test_bench_ablation_sparsity(benchmark, write_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report = format_table(
        ["Points", "Sites", "Sparsity", "Matches", "Cycles", "GOPS",
         "Zero-removal gain"],
        rows,
    )
    write_report("ablation_sparsity", report)
    # Denser inputs -> more sites, more matches, higher effective GOPS.
    sites = [row[1] for row in rows]
    matches = [row[3] for row in rows]
    gops = [float(row[5]) for row in rows]
    assert sites == sorted(sites)
    assert matches == sorted(matches)
    assert gops == sorted(gops)
    # All sweep points remain in the paper's extreme-sparsity regime.
    for row in rows:
        assert float(row[2].rstrip("%")) > 99.0
