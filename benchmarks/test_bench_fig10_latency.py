"""Benchmark regenerating Fig. 10: per-layer time on CPU / GPU / ESCA."""

import pytest

from repro.analysis import run_fig10


def test_bench_fig10_latency(benchmark, write_report):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    write_report("fig10_latency", result.format())
    cpu = result.entry("CPU").layer_seconds
    gpu = result.entry("GPU").layer_seconds
    esca = result.entry("ESCA").layer_seconds
    assert cpu > gpu > esca
    assert cpu / esca == pytest.approx(8.41, rel=0.15)
    assert gpu / esca == pytest.approx(1.89, rel=0.15)
