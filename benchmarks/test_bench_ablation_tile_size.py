"""Ablation: tile size vs scan work and accelerator cycles (Sec. III-A).

The paper argues finer tiles remove more zeros but raise bookkeeping
complexity; it deploys 8^3.  This bench quantifies the trade-off: SRF
positions scanned, simulated cycles, and mask-buffer footprint per tile
size.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.arch import AcceleratorConfig, AnalyticalModel, EscaAccelerator
from repro.geometry.datasets import load_sample


@pytest.fixture(scope="module")
def workload_tensor():
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    return grid.with_features(rng.standard_normal((grid.nnz, 16)))


def run_sweep(tensor, tile_sizes=(4, 8, 12, 16)):
    rows = []
    for size in tile_sizes:
        config = AcceleratorConfig(tile_shape=(size, size, size))
        accel = EscaAccelerator(config)
        encoded = accel.encode(tensor)
        result = accel.run_layer(tensor, out_channels=16)
        rows.append(
            (
                f"{size}^3",
                encoded.grid.num_active_tiles,
                encoded.grid.scanned_positions(),
                result.total_cycles,
                f"{result.time_seconds * 1e3:.3f}",
                f"{encoded.storage_report().mask_kib:.1f}",
            )
        )
    return rows


def test_bench_ablation_tile_size(benchmark, write_report, workload_tensor):
    rows = benchmark.pedantic(run_sweep, args=(workload_tensor,), rounds=1,
                              iterations=1)
    report = format_table(
        ["Tile", "Active Tiles", "Scanned SRFs", "Cycles", "Core ms",
         "Mask KiB"],
        rows,
    )
    write_report("ablation_tile_size", report)
    # Finer tiles scan fewer positions (the Table I trend).  The ordering
    # is not strictly monotonic for every tile size (12^3 aligns poorly
    # with the 48-voxel object footprint), so assert the robust claims:
    # 4^3 scans the fewest positions and every size beats 16^3-or-worse.
    scanned = [row[2] for row in rows]
    assert scanned[0] == min(scanned)
    assert scanned[0] < scanned[1] < scanned[3]
    cycles = [row[3] for row in rows]
    assert cycles[0] == min(cycles)


def test_bench_analytical_tile_sweep_speed(benchmark, workload_tensor):
    """The analytical model sweeps tile sizes cheaply."""

    def sweep():
        out = []
        for size in (4, 8, 12, 16):
            model = AnalyticalModel(
                AcceleratorConfig(tile_shape=(size, size, size))
            )
            out.append(model.estimate_layer(workload_tensor, 16, 16))
        return out

    estimates = benchmark(sweep)
    assert estimates[0] == min(estimates)
