"""Benchmark-suite helpers.

Every table/figure benchmark writes its formatted report into
``results/`` so the regenerated artifacts persist beyond the
pytest-benchmark timing summary.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_report(report_dir):
    """Persist a named report and echo it to stdout (visible with -s)."""

    def _write(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")
        return path

    return _write
