"""Benchmark regenerating Table II: frequency and resource utilization."""

import pytest

from repro.analysis import run_table2
from repro.arch import AcceleratorConfig
from repro.hwmodel import estimate_resources


def test_bench_table2_resources(benchmark, write_report):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    write_report("table2_resources", result.format())
    by_name = {row.resource: row for row in result.rows}
    assert by_name["DSP"].used == 256
    assert by_name["BRAM"].used == pytest.approx(365.5)


def test_bench_resource_estimation_speed(benchmark):
    """The analytical model must be cheap enough for design-space sweeps."""
    config = AcceleratorConfig()
    breakdown = benchmark(estimate_resources, config)
    assert breakdown.fits()
