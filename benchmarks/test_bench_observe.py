"""Observability benchmarks: telemetry overhead and tail latency.

Two claims from the telemetry PR, asserted against a live server:

* **Instrumentation is close to free.**  A session dispatching with
  telemetry enabled (histograms + counter publishing per call) stays
  within 5% of the same session with its registry disabled.
* **Shedding bounds the tail.**  An open-loop Poisson load at 2x the
  measured single-node capacity drives an unbounded queue into
  linearly growing latency; with ``max_pending`` + ``deadline_s``
  configured the server sheds instead, and p99 end-to-end latency of
  the *completed* requests stays under a bound derived from the
  backlog it is allowed to keep.  ``results/serve_tail_latency.txt``
  is the artifact the tier2-observe CI leg uploads.
"""

import time

import numpy as np

from repro.engine import InferenceSession
from repro.nn import UNetConfig
from repro.obs.loadgen import run_load
from repro.obs.metrics import MetricRegistry

BENCH_CFG = UNetConfig(in_channels=2, num_classes=5, base_channels=4, levels=3)
OVERHEAD_CEILING = 1.05


def bench_frame(seed=1, resolution=24, nnz=600):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        rng.integers(0, resolution, size=(nnz, 3)), axis=0
    )
    features = rng.standard_normal((coords.shape[0], 2))
    from repro.sparse.coo import SparseTensor3D

    return SparseTensor3D(coords, features, (resolution,) * 3)


def _min_loop_seconds(session, frame, runs=20, repeats=5):
    """Fastest of ``repeats`` timings of ``runs`` dispatches."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(runs):
            session.run(frame)
        best = min(best, time.perf_counter() - start)
    return best / runs


def test_bench_telemetry_overhead_under_five_percent(write_report):
    frame = bench_frame()
    enabled = InferenceSession(unet_config=BENCH_CFG)
    disabled = InferenceSession(
        unet_config=BENCH_CFG, registry=MetricRegistry(enabled=False)
    )
    enabled.warm(frame)
    disabled.warm(frame)
    # Interleave a throwaway pass so both sessions sit on hot caches.
    _min_loop_seconds(enabled, frame, runs=5, repeats=1)
    _min_loop_seconds(disabled, frame, runs=5, repeats=1)

    with_obs = _min_loop_seconds(enabled, frame)
    without_obs = _min_loop_seconds(disabled, frame)
    ratio = with_obs / without_obs
    lines = [
        "Telemetry overhead: session dispatch, enabled vs disabled registry",
        "",
        f"  disabled registry   {without_obs * 1e3:8.3f} ms/dispatch",
        f"  enabled registry    {with_obs * 1e3:8.3f} ms/dispatch",
        f"  ratio               {ratio:8.3f}x (ceiling {OVERHEAD_CEILING}x)",
    ]
    write_report("telemetry_overhead", "\n".join(lines))
    assert ratio < OVERHEAD_CEILING, (
        f"telemetry-enabled dispatch is {ratio:.3f}x the disabled path "
        f"(ceiling {OVERHEAD_CEILING}x) — see results/telemetry_overhead.txt"
    )


def test_bench_tail_latency_under_overload_with_shedding(write_report):
    frames = [bench_frame(seed) for seed in (1, 2)]
    session = InferenceSession(unet_config=BENCH_CFG)
    for frame in frames:
        session.warm(frame)

    # Measured single-node capacity: steady dispatch time per frame.
    service_s = _min_loop_seconds(session, frames[0], runs=10, repeats=3)
    capacity_hz = 1.0 / service_s
    offered_hz = 2.0 * capacity_hz

    max_pending = 8
    deadline_s = max(0.05, 10.0 * service_s)
    num_requests = 150
    registry = MetricRegistry()
    result, stats = run_load(
        frames,
        rate_hz=offered_hz,
        num_requests=num_requests,
        session=session,
        seed=11,
        max_batch=4,
        max_pending=max_pending,
        deadline_s=deadline_s,
        registry=registry,
    )

    # A completed request queued at most deadline_s, then executed in a
    # micro-batch; generous slack for executor scheduling noise.
    p99_bound_s = deadline_s + 20.0 * service_s
    p99 = result.percentile(99.0)
    lines = [
        "Open-loop tail latency at 2x capacity (shedding enabled)",
        "",
        f"  measured capacity   {capacity_hz:8.1f} req/s "
        f"({service_s * 1e3:.3f} ms/frame)",
        f"  backpressure        max_pending={max_pending}, "
        f"deadline {deadline_s * 1e3:.1f} ms",
        *result.summary_lines(),
        f"  p99 bound           {p99_bound_s * 1e3:8.2f} ms "
        "(deadline + 20x service)",
    ]
    write_report("serve_tail_latency", "\n".join(lines))

    assert result.submitted == num_requests
    assert result.completed > 0 and result.errors == 0
    assert result.shed_total > 0, (
        "2x overload never tripped the shedding path — the tail bound "
        "below would be meaningless"
    )
    assert stats.rejected_overload + stats.rejected_deadline == (
        result.shed_total
    )
    assert registry.get("repro_serve_e2e_seconds").count() == (
        result.completed
    )
    assert p99 <= p99_bound_s, (
        f"p99 {p99 * 1e3:.1f} ms exceeds the shedding-derived bound "
        f"{p99_bound_s * 1e3:.1f} ms — see results/serve_tail_latency.txt"
    )
