"""Microbenchmarks of the SDMU and its software substrates.

Measures matching throughput (SRFs and matches per wall-second of
simulation), rulebook construction, encoding, and the quantized
convolution reference — the hot paths of the repository.
"""

import numpy as np
import pytest

from repro.arch import AcceleratorConfig, EscaAccelerator, Sdmu
from repro.arch.encoding import EncodedFeatureMap
from repro.geometry import Voxelizer, make_shapenet_like_cloud
from repro.geometry.datasets import load_sample
from repro.nn import build_submanifold_rulebook
from repro.quant import QuantizedSubConv
from tests.conftest import random_sparse_tensor


@pytest.fixture(scope="module")
def grid():
    return load_sample("shapenet", seed=0).grid


def test_bench_sdmu_drain(benchmark, grid):
    """Full SDMU matching pass over the ShapeNet-like sample."""
    config = AcceleratorConfig()

    def drain():
        encoded = EncodedFeatureMap(grid, config.tile_shape, kernel_size=3)
        sdmu = Sdmu(encoded, config)
        popped = 0
        cycle = 0
        while not sdmu.is_idle() or cycle == 0:
            if sdmu.pop_match() is not None:
                popped += 1
            sdmu.advance(cycle)
            cycle += 1
        return popped

    popped = benchmark.pedantic(drain, rounds=1, iterations=1)
    assert popped > 0


def test_bench_rulebook_construction(benchmark, grid):
    rulebook = benchmark(build_submanifold_rulebook, grid, 3)
    assert rulebook.total_matches > 0


def test_bench_encoding(benchmark, grid):
    encoded = benchmark(EncodedFeatureMap, grid, (8, 8, 8))
    assert encoded.columns.num_columns > 0


def test_bench_voxelization(benchmark):
    cloud = make_shapenet_like_cloud(seed=0)
    voxelizer = Voxelizer(resolution=192, normalize=False)
    grid = benchmark(voxelizer.voxelize, cloud)
    assert grid.nnz > 0


def test_bench_quantized_subconv_reference(benchmark, grid):
    rng = np.random.default_rng(0)
    tensor = grid.with_features(rng.standard_normal((grid.nnz, 16)))
    weights = rng.standard_normal((27, 16, 16)) * 0.2
    qconv = QuantizedSubConv(weights)
    out = benchmark(qconv.forward, tensor)
    assert out.nnz == tensor.nnz


def test_bench_cycle_sim_small_layer(benchmark):
    """Wall-clock cost of the cycle-accurate simulator itself."""
    tensor = random_sparse_tensor(seed=0, shape=(16, 16, 16), nnz=60, channels=8)
    accel = EscaAccelerator()
    result = benchmark.pedantic(
        accel.run_layer, args=(tensor,), kwargs={"out_channels": 8},
        rounds=2, iterations=1,
    )
    assert result.total_cycles > 0
