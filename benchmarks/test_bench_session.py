"""Session-overhead smoke benchmark.

The :class:`repro.engine.session.InferenceSession` is the mandatory
front door, so its dispatch cost must be negligible: resolving a
rulebook through the session and running the fused engine may add at
most 5 % over calling ``RulebookCache`` + ``apply_rulebook`` directly on
the default streaming workload.  A second check covers the batching
surface: ``run_batch`` over repeated site sets must not be slower than
sequential ``run`` calls by more than the same margin.
"""

import statistics
import time

import numpy as np

from repro.engine import InferenceSession
from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.nn import RulebookCache, UNetConfig, apply_rulebook


def default_workload():
    """The StreamingRunner default: occupancy grid at 192^3, Sub-Conv 1->16."""
    cloud = make_shapenet_like_cloud(seed=0, n_points=60000)
    grid = Voxelizer(resolution=192, normalize=False, occupancy_only=True).voxelize(
        cloud
    )
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((27, 1, 16))
    return grid, weights


def interleaved_medians(fn_a, fn_b, reps=31, warmup=3):
    """Median seconds of two closely-matched paths, sampled alternately.

    Interleaving makes machine-load drift (noisy CI neighbors, thermal
    throttling) hit both paths equally instead of biasing whichever ran
    second, which is what a small relative-overhead assertion needs.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    samples_a, samples_b = [], []
    for _ in range(reps):
        start = time.perf_counter()
        fn_a()
        samples_a.append(time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        samples_b.append(time.perf_counter() - start)
    return statistics.median(samples_a), statistics.median(samples_b)


def test_session_dispatch_overhead_under_5_percent(write_report):
    grid, weights = default_workload()

    cache = RulebookCache()
    cache.submanifold(grid, 3)  # warm both paths

    def direct_layer():
        rulebook = cache.submanifold(grid, 3)
        return apply_rulebook(rulebook, grid.features, weights, grid.nnz)

    session = InferenceSession(rulebook_cache=cache)
    session.subconv(grid, weights)  # warm

    def session_layer():
        return session.subconv(grid, weights)

    assert np.array_equal(direct_layer(), session_layer().features)

    direct_s, session_s = interleaved_medians(direct_layer, session_layer)
    overhead = session_s / direct_s - 1.0

    report = "\n".join(
        [
            "Session dispatch overhead — default ShapeNet-like workload "
            f"(nnz={grid.nnz}, Sub-Conv 1->16)",
            f"direct cache + apply_rulebook: {direct_s * 1e3:8.3f} ms",
            f"session.subconv dispatch:      {session_s * 1e3:8.3f} ms",
            f"overhead:                      {overhead * 100:8.2f} %",
        ]
    )
    write_report("session_overhead", report)
    assert overhead < 0.05, (
        f"session dispatch overhead {overhead * 100:.2f}% exceeds the 5% budget"
    )


def test_run_batch_amortizes_planning(write_report):
    """Batched execution over repeated site sets must not cost more than
    sequential per-frame runs (it shares one plan lookup and one gather)."""
    cloud = make_shapenet_like_cloud(seed=1, n_points=8000)
    grid = Voxelizer(resolution=64, normalize=False, occupancy_only=True).voxelize(
        cloud
    )
    rng = np.random.default_rng(2)
    frames = [
        grid.with_features(rng.standard_normal((grid.nnz, 1))) for _ in range(4)
    ]
    session = InferenceSession(
        unet_config=UNetConfig(in_channels=1, num_classes=8, base_channels=8,
                               levels=3)
    )
    session.run_batch(frames)  # warm plan + caches

    sequential_s, batched_s = interleaved_medians(
        lambda: [session.run(frame) for frame in frames],
        lambda: session.run_batch(frames),
        reps=9,
        warmup=1,
    )

    report = "\n".join(
        [
            f"Batched execution — 4 frames, shared site set (nnz={grid.nnz})",
            f"sequential session.run x4: {sequential_s * 1e3:8.3f} ms",
            f"session.run_batch:         {batched_s * 1e3:8.3f} ms",
            f"batch/sequential ratio:    {batched_s / sequential_s:8.3f}",
        ]
    )
    write_report("session_batching", report)
    assert batched_s <= sequential_s * 1.05, (
        f"run_batch ({batched_s * 1e3:.3f} ms) slower than sequential runs "
        f"({sequential_s * 1e3:.3f} ms) beyond the 5% margin"
    )
