"""Refresh benchmark: spliced CSR plan refresh vs eager re-lowering.

When the delta engine patches a rulebook, a scipy-backed session must
refresh the prepared CSR operators.  The eager path (the base
``ExecutionBackend.refresh``) re-lowers the patched rulebook from
scratch — COO assembly, CSR conversion, per-row index sort; the spliced
path (``ScipySparseBackend.refresh``) lowers straight from the patcher's
pre-seeded splice arrays through the canonical CSC -> CSR conversion.

This benchmark streams the same drifting scene as the delta benchmark
(~11k voxels at 192^3, a few percent voxel churn per frame), patches the
kernel-3 submanifold rulebook along the chain, and times both refresh
strategies on identical inputs.  Bit-identity of the spliced plans is
asserted; the acceptance criterion — with at most 5% per-frame churn,
the spliced refresh is at least 2x cheaper than eager re-lowering — is
asserted and recorded in ``results/refresh_speedup.txt``.
"""

import time

import numpy as np
import pytest

from repro.engine import ScipySparseBackend, coordinate_delta
from repro.engine.delta import patch_submanifold_rulebook
from repro.nn import build_submanifold_rulebook

from benchmarks.test_bench_delta import KERNEL, RESOLUTION, drifting_tensors


def patched_chain(tensors):
    """Consecutive (old rulebook, patched rulebook) pairs of the drift."""
    previous = tensors[0]
    previous_rulebook = build_submanifold_rulebook(previous, KERNEL)
    pairs = []
    for tensor in tensors[1:]:
        delta = coordinate_delta(previous.coords, tensor.coords)
        patched = patch_submanifold_rulebook(
            previous_rulebook, delta, tensor.shape, new_coords=tensor.coords
        )
        pairs.append((previous_rulebook, patched))
        previous, previous_rulebook = tensor, patched
    return pairs


def refresh_seconds(tensors, reps=5):
    """Best total refresh time per strategy on a warm drifting stream.

    Each rep rebuilds both chains with fresh rulebook objects (so no
    memoized plan leaks between strategies), prepares the frame-0 plan
    untimed on both backends (a warm stream starts with a prepared
    plan), and times every subsequent refresh event.  Strategies are
    interleaved within each rep so machine noise hits both alike, and
    the per-strategy minimum is reported.
    """
    best_eager = best_spliced = float("inf")
    for _ in range(reps):
        eager_pairs = patched_chain(tensors)
        spliced_pairs = patched_chain(tensors)
        eager_backend = ScipySparseBackend()
        spliced_backend = ScipySparseBackend()
        eager_backend.plan_for(eager_pairs[0][0])
        spliced_backend.plan_for(spliced_pairs[0][0])
        # Steady-state: the splice scratch amortizes across the stream.
        spliced_backend._splice_buffers(eager_pairs[0][0].total_matches * 2)
        eager = spliced = 0.0
        for (_, eager_new), (spliced_old, spliced_new) in zip(
            eager_pairs, spliced_pairs
        ):
            start = time.perf_counter()
            # Eager re-lowering: what the base-class refresh does.
            eager_backend.plan_for(eager_new)
            eager += time.perf_counter() - start
            start = time.perf_counter()
            spliced_backend.refresh(
                spliced_old, spliced_new, spliced_new._splice
            )
            spliced += time.perf_counter() - start
        assert spliced_backend.plans_spliced == len(spliced_pairs)
        best_eager = min(best_eager, eager)
        best_spliced = min(best_spliced, spliced)
    return best_eager, best_spliced


def test_bench_refresh_splice_vs_relower(write_report):
    if ScipySparseBackend().degraded:
        pytest.skip("scipy not installed")
    tensors = drifting_tensors()
    ratios = [
        coordinate_delta(a.coords, b.coords).ratio
        for a, b in zip(tensors, tensors[1:])
    ]
    assert max(ratios) <= 0.05, f"scene churn drifted out of regime: {ratios}"

    # Bit-identity: every spliced plan equals a cold prepare of the
    # patched rulebook, operator arrays included.
    backend = ScipySparseBackend()
    pairs = patched_chain(tensors)
    backend.plan_for(pairs[0][0])
    for old_rulebook, patched in pairs:
        backend.refresh(old_rulebook, patched, patched._splice)
        spliced = backend.plan_for(patched)
        cold = ScipySparseBackend().prepare(patched)
        for name in ("gather", "scatter"):
            mine = getattr(spliced, name)
            theirs = getattr(cold, name)
            assert np.array_equal(
                np.asarray(mine.indices), np.asarray(theirs.indices)
            )
            assert np.array_equal(
                np.asarray(mine.indptr), np.asarray(theirs.indptr)
            )
            assert np.array_equal(mine.data, theirs.data)
    assert backend.plans_spliced == len(pairs)

    eager_seconds, spliced_seconds = refresh_seconds(tensors)
    speedup = eager_seconds / spliced_seconds
    events = len(tensors) - 1
    total = pairs[0][1].total_matches

    lines = [
        "ScipySparseBackend.refresh: spliced plan refresh vs eager",
        "re-lowering (drifting scene, warm stream, bit-identical plans",
        "asserted)",
        "",
        f"scene: {RESOLUTION}^3 grid, nnz per frame "
        f"{min(t.nnz for t in tensors)}-{max(t.nnz for t in tensors)}, "
        f"~{total} matches per kernel-{KERNEL} rulebook, "
        f"{events} refresh events",
        f"per-frame voxel churn: {min(ratios):.2%}-{max(ratios):.2%} "
        "(acceptance regime: <= 5%)",
        "",
        f"  eager re-lowering (plan_for on the patched rulebook) "
        f"{eager_seconds * 1e3 / events:9.3f} ms/refresh",
        f"  spliced refresh   (pre-seeded splice arrays + csc->csr) "
        f"{spliced_seconds * 1e3 / events:9.3f} ms/refresh",
        f"  speedup: {speedup:.2f}x (acceptance: >= 2x)",
    ]
    write_report("refresh_speedup", "\n".join(lines))
    assert speedup >= 2.0, f"refresh speedup {speedup:.2f}x below 2x"
