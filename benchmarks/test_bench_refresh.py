"""Refresh benchmark: canonical CSC -> CSR lowering vs the COO path.

When the delta engine patches a rulebook, a scipy-backed session must
refresh the prepared CSR operators.  ``ScipySparseBackend`` lowers the
patcher's pre-seeded splice arrays through one canonical path
(``_lower_operators``): gather assembled directly from the offset-major
rows, scatter through its trivial CSC form converted to sorted CSR in
one pass.  Since cold ``prepare`` adopted the same lowering, the legacy
COO assembly (COO matrix, CSR conversion, per-row index sort) survives
only as the beyond-int32 fallback (``_lower_operators_coo``) — and this
benchmark guards the reason: on identical splice arrays the canonical
lowering must stay at least 1.5x cheaper than the COO path
(typical: 1.9-2.3x depending on machine load).

The benchmark streams the same drifting scene as the delta benchmark
(~11k voxels at 192^3, a few percent voxel churn per frame), patches the
kernel-3 submanifold rulebook along the chain, and times both lowerings
on every refresh event.  Bit-identity of the spliced plans against cold
prepares is asserted, the spliced ``refresh`` is asserted to be no
slower than eager re-lowering (it skips nothing the eager path needs,
so it can only win on plan reuse), and the lowering comparison is
recorded in ``results/refresh_speedup.txt``.
"""

import time

import numpy as np
import pytest

from repro.engine import ScipySparseBackend, coordinate_delta
from repro.engine.delta import patch_submanifold_rulebook
from repro.nn import build_submanifold_rulebook

from benchmarks.test_bench_delta import KERNEL, RESOLUTION, drifting_tensors


def patched_chain(tensors):
    """Consecutive (old rulebook, patched rulebook) pairs of the drift."""
    previous = tensors[0]
    previous_rulebook = build_submanifold_rulebook(previous, KERNEL)
    pairs = []
    for tensor in tensors[1:]:
        delta = coordinate_delta(previous.coords, tensor.coords)
        patched = patch_submanifold_rulebook(
            previous_rulebook, delta, tensor.shape, new_coords=tensor.coords
        )
        pairs.append((previous_rulebook, patched))
        previous, previous_rulebook = tensor, patched
    return pairs


def lowering_seconds(pairs, reps=5):
    """Best total lowering time per strategy over the refresh events.

    Every patched rulebook carries the pre-seeded splice plan, so both
    strategies lower the exact same flat arrays.  Strategies are
    interleaved within each rep so machine noise hits both alike, and
    the per-strategy minimum is reported.
    """
    backend = ScipySparseBackend()
    events = [
        (rb._plan, rb.num_inputs, rb.num_outputs) for _, rb in pairs
    ]
    backend._splice_buffers(max(p.total_matches for p, _, _ in events))
    best_canonical = best_coo = float("inf")
    for _ in range(reps):
        canonical = coo = 0.0
        for plan_gs, num_inputs, num_outputs in events:
            start = time.perf_counter()
            assert backend._lower_operators(
                plan_gs, num_inputs, num_outputs
            ) is not None
            canonical += time.perf_counter() - start
            start = time.perf_counter()
            backend._lower_operators_coo(plan_gs, num_inputs, num_outputs)
            coo += time.perf_counter() - start
        best_canonical = min(best_canonical, canonical)
        best_coo = min(best_coo, coo)
    return best_canonical, best_coo


def refresh_seconds(tensors, reps=5):
    """Best total refresh time: spliced refresh vs eager re-lowering.

    Each rep rebuilds both chains with fresh rulebook objects (so no
    memoized plan leaks between strategies), prepares the frame-0 plan
    untimed on both backends (a warm stream starts with a prepared
    plan), and times every subsequent refresh event.
    """
    best_eager = best_spliced = float("inf")
    for _ in range(reps):
        eager_pairs = patched_chain(tensors)
        spliced_pairs = patched_chain(tensors)
        eager_backend = ScipySparseBackend()
        spliced_backend = ScipySparseBackend()
        eager_backend.plan_for(eager_pairs[0][0])
        spliced_backend.plan_for(spliced_pairs[0][0])
        # Steady-state: the splice scratch amortizes across the stream.
        spliced_backend._splice_buffers(eager_pairs[0][0].total_matches * 2)
        eager = spliced = 0.0
        for (_, eager_new), (spliced_old, spliced_new) in zip(
            eager_pairs, spliced_pairs
        ):
            start = time.perf_counter()
            # Eager re-lowering: what the base-class refresh does.
            eager_backend.plan_for(eager_new)
            eager += time.perf_counter() - start
            start = time.perf_counter()
            spliced_backend.refresh(
                spliced_old, spliced_new, spliced_new._splice
            )
            spliced += time.perf_counter() - start
        assert spliced_backend.plans_spliced == len(spliced_pairs)
        best_eager = min(best_eager, eager)
        best_spliced = min(best_spliced, spliced)
    return best_eager, best_spliced


def test_bench_refresh_splice_vs_relower(write_report):
    if ScipySparseBackend().degraded:
        pytest.skip("scipy not installed")
    tensors = drifting_tensors()
    ratios = [
        coordinate_delta(a.coords, b.coords).ratio
        for a, b in zip(tensors, tensors[1:])
    ]
    assert max(ratios) <= 0.05, f"scene churn drifted out of regime: {ratios}"

    # Bit-identity: every spliced plan equals a cold prepare of the
    # patched rulebook, operator arrays included.
    backend = ScipySparseBackend()
    pairs = patched_chain(tensors)
    backend.plan_for(pairs[0][0])
    for old_rulebook, patched in pairs:
        backend.refresh(old_rulebook, patched, patched._splice)
        spliced = backend.plan_for(patched)
        cold = ScipySparseBackend().prepare(patched)
        for name in ("gather", "scatter"):
            mine = getattr(spliced, name)
            theirs = getattr(cold, name)
            assert np.array_equal(
                np.asarray(mine.indices), np.asarray(theirs.indices)
            )
            assert np.array_equal(
                np.asarray(mine.indptr), np.asarray(theirs.indptr)
            )
            assert np.array_equal(mine.data, theirs.data)
    assert backend.plans_spliced == len(pairs)

    canonical_seconds, coo_seconds = lowering_seconds(pairs)
    lowering_speedup = coo_seconds / canonical_seconds
    eager_seconds, spliced_seconds = refresh_seconds(tensors)
    refresh_ratio = eager_seconds / spliced_seconds
    events = len(tensors) - 1
    total = pairs[0][1].total_matches

    lines = [
        "ScipySparseBackend plan lowering: canonical CSC->CSR vs the",
        "legacy COO path, on a drifting warm stream (bit-identical",
        "plans asserted; cold prepare and spliced refresh share the",
        "canonical lowering)",
        "",
        f"scene: {RESOLUTION}^3 grid, nnz per frame "
        f"{min(t.nnz for t in tensors)}-{max(t.nnz for t in tensors)}, "
        f"~{total} matches per kernel-{KERNEL} rulebook, "
        f"{events} refresh events",
        f"per-frame voxel churn: {min(ratios):.2%}-{max(ratios):.2%} "
        "(acceptance regime: <= 5%)",
        "",
        f"  COO lowering (COO assembly + index sort)     "
        f"{coo_seconds * 1e3 / events:9.3f} ms/refresh",
        f"  canonical lowering (direct CSR + csc->csr)   "
        f"{canonical_seconds * 1e3 / events:9.3f} ms/refresh",
        f"  speedup: {lowering_speedup:.2f}x (acceptance: >= 1.5x)",
        "",
        f"  eager re-lowering (plan_for, patched rulebook) "
        f"{eager_seconds * 1e3 / events:9.3f} ms/refresh",
        f"  spliced refresh   (pre-seeded splice arrays)   "
        f"{spliced_seconds * 1e3 / events:9.3f} ms/refresh",
        f"  ratio: {refresh_ratio:.2f}x (splice skips plan re-derivation; "
        "both share the canonical lowering)",
    ]
    write_report("refresh_speedup", "\n".join(lines))
    assert lowering_speedup >= 1.5, (
        f"canonical lowering speedup {lowering_speedup:.2f}x below 1.5x"
    )
    # The spliced refresh does strictly less work than eager
    # re-lowering (plan reuse + shared scratch); allow noise headroom.
    assert refresh_ratio >= 0.9, (
        f"spliced refresh slower than eager re-lowering: {refresh_ratio:.2f}x"
    )
