"""Benchmark: Table I with error bars (multi-seed campaign).

The paper reports one sample per dataset; this bench reports the spread
across five synthetic samples, demonstrating the calibrated generators
are stable and the Table I reproduction is not a single-seed accident.
"""

from repro.analysis import run_table1_statistics
from repro.analysis.experiments import PAPER_TABLE1
from repro.analysis.reporting import format_table


def test_bench_table1_statistics(benchmark, write_report):
    stats = benchmark.pedantic(
        run_table1_statistics, kwargs={"seeds": (0, 1, 2, 3, 4)},
        rounds=1, iterations=1,
    )
    rows = []
    for dataset in ("shapenet", "nyu"):
        for tile in (4, 8, 12, 16):
            summary = stats.summary(dataset, tile)
            paper = PAPER_TABLE1[dataset][tile][0]
            rows.append(
                (
                    dataset,
                    f"{tile}^3",
                    f"{summary.mean:.1f} +- {summary.std:.1f}",
                    f"[{summary.minimum:.0f}, {summary.maximum:.0f}]",
                    paper,
                )
            )
    report = format_table(
        ["Dataset", "Tile", "Active tiles (mean +- std)", "Range", "Paper"],
        rows,
    )
    write_report("table1_statistics", report)
    assert stats.within_band(low=0.4, high=1.8)
