"""Ablation: double-buffered DMA (transfer/compute overlap) — extension.

The paper's design pays PS<->PL transfers serially per layer; this bench
quantifies the headroom a double-buffered DMA would add on the SS U-Net
workload (an extension beyond the published design).
"""

import pytest

from repro.analysis.experiments import default_unet
from repro.analysis.reporting import format_table
from repro.arch import EscaAccelerator, SystemOverheadModel
from repro.geometry.datasets import load_sample


def run_comparison():
    sample = load_sample("shapenet", seed=0)
    net = default_unet()
    rows = []
    results = {}
    for label, overheads in (
        ("serial DMA (paper)", SystemOverheadModel()),
        ("double-buffered DMA", SystemOverheadModel(overlap_transfers=True)),
        ("idealized core", SystemOverheadModel(enabled=False)),
    ):
        run = EscaAccelerator(overheads=overheads).run_network(net, sample.grid)
        results[label] = run
        rows.append(
            (
                label,
                f"{run.total_seconds * 1e3:.2f}",
                f"{run.system_gops():.2f}",
            )
        )
    return rows, results


def test_bench_ablation_overlap(benchmark, write_report):
    rows, results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report = format_table(["Configuration", "Network ms", "GOPS"], rows)
    write_report("ablation_overlap", report)
    serial = results["serial DMA (paper)"]
    overlapped = results["double-buffered DMA"]
    ideal = results["idealized core"]
    assert overlapped.total_seconds <= serial.total_seconds
    assert ideal.total_seconds <= overlapped.total_seconds
    # Identical compute in all three configurations.
    assert serial.total_cycles == overlapped.total_cycles == ideal.total_cycles
