"""Mapping-ops benchmark: sorted buckets vs brute force, delta vs cold.

Two comparisons, both recorded in ``results/mapping_speedup.txt``:

1. The sorting-based kNN kernel against the dense-distance-matrix
   reference on one static voxelized cloud (bit-identity asserted) —
   the payoff of the PointAcc-style bucket dataflow on the integer
   grids the accelerator actually serves.
2. Warm-stream self-query kNN through a :class:`DeltaMappingCache`
   (neighbor tables spliced under churn) against a digest-only
   :class:`MappingCache` (every drifted frame rebuilds) on a drifting
   voxel scene — the acceptance criterion: at <= 5% per-frame voxel
   churn, delta splicing is at least 2x faster.
"""

import time

import numpy as np

from repro.engine import mapping as M
from repro.engine.delta import coordinate_delta
from repro.engine.mapping_delta import DeltaMappingCache, MappingCache
from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer

RESOLUTION = 192
K = 8
KERNEL_POINTS = 8000
KERNEL_RESOLUTION = 128


def drifting_coords(num_frames=6, churn=0.005, seed=0):
    """Canonically sorted voxel coordinates of a slowly drifting scene.

    0.5% point churn lands at ~1-2% per-frame voxel churn (several
    points share a voxel) — comfortably inside the <= 5% acceptance
    regime, where most cached neighborhood rows survive a splice.
    """
    from repro.runtime import DriftingSceneSource

    cloud = make_shapenet_like_cloud(
        seed=seed, n_points=30000, grid_fraction=0.9
    )
    source = DriftingSceneSource(
        base_cloud=cloud,
        num_frames=num_frames,
        churn=churn,
        jitter_sigma=0.0,
        seed=seed,
    )
    voxelizer = Voxelizer(
        resolution=RESOLUTION, normalize=False, occupancy_only=True
    )
    return [voxelizer.voxelize(frame).coords for frame in source]


def best_of(callables, reps=5):
    """Per-strategy minimum over interleaved reps (low-noise estimator)."""
    best = [float("inf")] * len(callables)
    for _ in range(reps):
        for index, fn in enumerate(callables):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def warm_stream_seconds(cache_factories, frames, reps=5):
    """Best total lookup time for frames 1..N on a warm stream.

    Each rep uses a fresh cache per strategy and feeds frame 0 untimed
    (both strategies pay one full build there), then times the
    remaining lookups — the steady-state per-frame cost.  Strategies
    are interleaved within each rep so machine noise hits both alike.
    """
    best = [float("inf")] * len(cache_factories)
    for _ in range(reps):
        for index, factory in enumerate(cache_factories):
            cache = factory()
            cache.knn(frames[0], K)
            start = time.perf_counter()
            for coords in frames[1:]:
                cache.knn(coords, K)
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_bench_mapping_speedups(write_report):
    # -- sorted buckets vs brute force on one static voxel cloud --------
    rng = np.random.default_rng(0)
    cloud = np.unique(
        rng.integers(
            0, KERNEL_RESOLUTION, size=(KERNEL_POINTS, 3)
        ).astype(np.int64),
        axis=0,
    )
    bucket = M.knn(cloud, k=K)
    brute = M.knn_bruteforce(cloud, k=K)
    assert np.array_equal(bucket.indices, brute.indices)
    assert np.array_equal(bucket.distances, brute.distances)
    bucket_s, brute_s = best_of(
        [lambda: M.knn(cloud, k=K), lambda: M.knn_bruteforce(cloud, k=K)],
        reps=3,
    )
    kernel_speedup = brute_s / bucket_s

    # -- warm delta splicing vs cold rebuilds on a drifting scene -------
    frames = drifting_coords()
    ratios = [
        coordinate_delta(a, b).ratio for a, b in zip(frames, frames[1:])
    ]
    assert max(ratios) <= 0.05, f"scene churn out of regime: {ratios}"

    # Bit-identity of every spliced table against a cold search.
    check = DeltaMappingCache(threshold=0.25)
    for coords in frames:
        warm = check.knn(coords, K)
        cold = M.knn(coords, k=K)
        assert np.array_equal(warm.indices, cold.indices)
        assert np.array_equal(warm.distances, cold.distances)
    assert check.patches == len(frames) - 1
    assert check.rebuilds == 1

    digest_s, delta_s = warm_stream_seconds(
        [MappingCache, lambda: DeltaMappingCache(threshold=0.25)], frames
    )
    delta_speedup = digest_s / delta_s

    warm_frames = len(frames) - 1
    lines = [
        "Mapping-ops subsystem: sorting-based kernels and delta splicing",
        "(bit-identity vs brute force / cold rebuild asserted throughout)",
        "",
        f"kNN kernel, static voxel cloud ({len(cloud)} occupied voxels "
        f"on a {KERNEL_RESOLUTION}^3 grid, k={K}):",
        f"  brute force (dense distance matrix) {brute_s * 1e3:9.3f} ms",
        f"  sorted buckets (expanding shells)   {bucket_s * 1e3:9.3f} ms",
        f"  speedup: {kernel_speedup:.2f}x (acceptance: >= 1.5x)",
        "",
        f"warm self-query kNN stream ({RESOLUTION}^3 grid, nnz "
        f"{min(len(c) for c in frames)}-{max(len(c) for c in frames)}, "
        f"{warm_frames} warm frames, voxel churn "
        f"{min(ratios):.2%}-{max(ratios):.2%}):",
        f"  digest-only cache (rebuild per frame) "
        f"{digest_s * 1e3 / warm_frames:9.3f} ms/frame",
        f"  delta cache       (splice per frame)  "
        f"{delta_s * 1e3 / warm_frames:9.3f} ms/frame",
        f"  speedup: {delta_speedup:.2f}x (acceptance: >= 2x)",
    ]
    write_report("mapping_speedup", "\n".join(lines))

    assert kernel_speedup >= 1.5, (
        f"bucket kNN speedup {kernel_speedup:.2f}x below 1.5x"
    )
    # PR acceptance: warm delta-patched kNN at <= 5% churn is >= 2x
    # faster than cold rebuilds.
    assert delta_speedup >= 2.0, (
        f"delta splice speedup {delta_speedup:.2f}x below 2x"
    )
