"""Ablation: computing-array parallelism (Sec. III-D/E).

The paper fixes 16x16 (IC x OC). This bench sweeps the array size and
reports cycles, DSP usage, power, and energy per inference for a
CC-bound layer, exposing the knee that motivates 16x16 at the paper's
workload sizes.
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.arch import AcceleratorConfig, EscaAccelerator
from repro.geometry.datasets import load_sample
from repro.hwmodel import PowerModel, estimate_resources


@pytest.fixture(scope="module")
def tensor64():
    grid = load_sample("shapenet", seed=0).grid
    rng = np.random.default_rng(0)
    return grid.with_features(rng.standard_normal((grid.nnz, 64)))


def run_sweep(tensor):
    rows = []
    for par in (8, 16, 32):
        config = AcceleratorConfig(ic_parallelism=par, oc_parallelism=par)
        result = EscaAccelerator(config).run_layer(tensor, out_channels=64)
        watts = PowerModel().total_watts(config)
        dsp = estimate_resources(config).total.dsp
        energy_mj = watts * result.time_seconds * 1e3
        rows.append(
            (
                f"{par}x{par}",
                int(dsp),
                result.total_cycles,
                f"{result.time_seconds * 1e3:.3f}",
                f"{result.effective_gops():.1f}",
                f"{watts:.2f}",
                f"{energy_mj:.3f}",
            )
        )
    return rows


def test_bench_ablation_parallelism(benchmark, write_report, tensor64):
    rows = benchmark.pedantic(run_sweep, args=(tensor64,), rounds=1,
                              iterations=1)
    report = format_table(
        ["Array", "DSP", "Cycles", "Core ms", "GOPS", "Power W",
         "Energy mJ"],
        rows,
    )
    write_report("ablation_parallelism", report)
    cycles = [row[2] for row in rows]
    # Bigger arrays strictly reduce cycles on a CC-bound layer.
    assert cycles == sorted(cycles, reverse=True)
