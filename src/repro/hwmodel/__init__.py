"""FPGA device catalogs and analytical resource/power models.

These stand in for the Vivado implementation reports behind Table II (see
DESIGN.md, substitution table): resource counts follow structurally from
the architecture configuration; coefficients are calibrated against the
published utilization of the ZCU102 implementation.
"""

from repro.hwmodel.devices import FpgaDevice, ZC7045, ZCU102, device_by_name
from repro.hwmodel.resources import (
    ResourceBreakdown,
    ResourceEstimate,
    estimate_resources,
)
from repro.hwmodel.power import PowerBreakdown, PowerModel

__all__ = [
    "FpgaDevice",
    "ZCU102",
    "ZC7045",
    "device_by_name",
    "ResourceEstimate",
    "ResourceBreakdown",
    "estimate_resources",
    "PowerModel",
    "PowerBreakdown",
]
