"""Analytical power model (Table III's 3.45 W operating point).

Power is modeled as device static power plus per-resource dynamic power
proportional to clock frequency and an activity factor:

``P = P_static + f * (c_dsp * DSP + c_bram * BRAM + c_lut * LUT + c_ff * FF)
      * activity + P_clock_network``

Coefficients are calibrated so that the paper's configuration (256 DSP,
365.5 BRAM, 17.6 k LUT, 12.1 k FF at 270 MHz) dissipates 3.45 W, the
value Table III reports for the ZCU102 implementation.  The functional
form keeps frequency and parallelism sweeps meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.config import AcceleratorConfig
from repro.hwmodel.resources import ResourceBreakdown, estimate_resources

# Calibrated dynamic coefficients, watts per unit per MHz at activity 1.0.
_DSP_W_PER_MHZ = 8.15e-6
_BRAM_W_PER_MHZ = 11.1e-6
_LUT_W_PER_MHZ = 7.4e-8
_FF_W_PER_MHZ = 3.7e-8
_STATIC_W = 0.62
_CLOCK_NETWORK_W_PER_MHZ = 2.6e-3


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts per contribution."""

    static: float
    dsp: float
    bram: float
    logic: float
    clock_network: float

    @property
    def total(self) -> float:
        return self.static + self.dsp + self.bram + self.logic + self.clock_network


class PowerModel:
    """Estimates total on-chip power of one ESCA instance."""

    def __init__(self, activity: float = 1.0) -> None:
        if not 0.0 < activity <= 1.0:
            raise ValueError(f"activity must be in (0, 1], got {activity}")
        self.activity = activity

    def estimate(
        self,
        config: Optional[AcceleratorConfig] = None,
        resources: Optional[ResourceBreakdown] = None,
    ) -> PowerBreakdown:
        config = config or AcceleratorConfig()
        resources = resources or estimate_resources(config)
        total = resources.total
        f_mhz = config.clock_hz / 1e6
        scale = f_mhz * self.activity
        return PowerBreakdown(
            static=_STATIC_W,
            dsp=_DSP_W_PER_MHZ * total.dsp * scale,
            bram=_BRAM_W_PER_MHZ * total.bram36 * scale,
            logic=(_LUT_W_PER_MHZ * total.lut + _FF_W_PER_MHZ * total.ff) * scale,
            clock_network=_CLOCK_NETWORK_W_PER_MHZ * f_mhz,
        )

    def total_watts(self, config: Optional[AcceleratorConfig] = None) -> float:
        return self.estimate(config).total

    def gops_per_watt(
        self, gops: float, config: Optional[AcceleratorConfig] = None
    ) -> float:
        watts = self.total_watts(config)
        if watts <= 0:
            return 0.0
        return gops / watts
