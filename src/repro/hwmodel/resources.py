"""Analytical FPGA resource estimation (Table II).

Every component of the architecture contributes LUT/FF/BRAM/DSP according
to its configuration:

* the computing array consumes one DSP48 per MAC lane
  (``ic_parallelism * oc_parallelism``, 256 at the paper's 16x16);
* the on-chip buffers consume block RAM according to their geometry
  (:class:`repro.arch.buffers.BufferModel`; the 0.5 granularity comes
  from the 18 Kb half-block primitive, hence Table II's 365.5);
* control and datapath glue consume LUTs/FFs with per-unit coefficients
  calibrated against the published implementation (17614 LUT / 12142 FF).

Because every term is parameterized by :class:`AcceleratorConfig`, the
model extrapolates to the parallelism/tile/FIFO sweeps used in the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.buffers import BufferModel
from repro.arch.config import AcceleratorConfig
from repro.hwmodel.devices import FpgaDevice, ZCU102

# Calibrated per-unit glue-logic coefficients (LUTs / FFs).
_LUT_PER_MAC = 20          # multiplier operand muxing + partial-sum wiring
_FF_PER_MAC = 16           # operand/result pipeline registers
_LUT_PER_LANE = 460        # state index generator + address generator
_FF_PER_LANE = 230         # per-lane counters (A, B) and fragment regs
_LUT_MASK_JUDGER = 620
_FF_MASK_JUDGER = 250
_LUT_MUX_BASE = 64         # K^2-to-1 match mux, per lane below
_LUT_PER_MUX_INPUT = 70
_FF_MUX = 181
_LUT_CONTROLLER = 1300
_FF_CONTROLLER = 800
_LUT_ACCUMULATOR_PER_OC = 95   # 32-bit adder + writeback per OC lane
_FF_ACCUMULATOR_PER_OC = 60
_LUT_AXI_DMA = 2600
_FF_AXI_DMA = 2300
_LUT_PER_BUFFER_CTRL = 60
_FF_PER_BUFFER_CTRL = 55


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT/FF/BRAM/DSP consumption of one component (or a total)."""

    lut: float
    ff: float
    bram36: float
    dsp: float

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram36=self.bram36 + other.bram36,
            dsp=self.dsp + other.dsp,
        )


@dataclass
class ResourceBreakdown:
    """Per-component resource estimates plus the total and utilization."""

    components: Dict[str, ResourceEstimate]
    device: FpgaDevice

    @property
    def total(self) -> ResourceEstimate:
        total = ResourceEstimate(0, 0, 0, 0)
        for estimate in self.components.values():
            total = total + estimate
        return total

    def utilization(self) -> Dict[str, float]:
        total = self.total
        return self.device.utilization(total.lut, total.ff, total.bram36, total.dsp)

    def fits(self) -> bool:
        """Whether the design fits on the device."""
        return all(frac <= 1.0 for frac in self.utilization().values())


def buffer_plan(config: AcceleratorConfig) -> List[BufferModel]:
    """On-chip buffer geometry derived from the configuration.

    Widths follow the datapath: activations are ``ic_parallelism`` INT16
    words per access, weights ``ic_parallelism`` INT8 words, partial sums
    ``oc_parallelism`` INT32 words.  The activation buffer is banked per
    decoder lane so all ``K^2`` columns fetch concurrently; the mask
    buffer is ping-ponged so the next tile's masks load during compute.
    """
    lanes = config.decoder_lanes
    act_width = config.ic_parallelism * config.activation_bits
    weight_width = config.ic_parallelism * config.weight_bits
    psum_width = config.oc_parallelism * config.accumulator_bits
    mask_words = (config.mask_buffer_kib * 1024 * 8) // 32
    return [
        BufferModel("mask", depth=int(mask_words), width_bits=32, banks=2),
        BufferModel(
            "weight", depth=config.weight_buffer_depth, width_bits=weight_width
        ),
        BufferModel(
            "activation",
            depth=config.activation_buffer_depth // 4,
            width_bits=act_width,
            banks=lanes,
        ),
        BufferModel(
            "output", depth=config.output_buffer_depth, width_bits=act_width
        ),
        BufferModel(
            "psum", depth=config.output_buffer_depth, width_bits=psum_width
        ),
        BufferModel(
            "fifo_group", depth=config.fifo_depth, width_bits=64, banks=lanes
        ),
        BufferModel("dma_staging", depth=8192, width_bits=weight_width, banks=2),
        BufferModel("bn_params", depth=1024, width_bits=48),
        BufferModel("instruction", depth=512, width_bits=32),
    ]


def estimate_resources(
    config: Optional[AcceleratorConfig] = None,
    device: Optional[FpgaDevice] = None,
) -> ResourceBreakdown:
    """Estimate the FPGA resources of one ESCA instance."""
    config = config or AcceleratorConfig()
    device = device or ZCU102
    lanes = config.decoder_lanes
    macs = config.macs_per_cycle
    buffers = buffer_plan(config)

    components: Dict[str, ResourceEstimate] = {}
    components["computing_array"] = ResourceEstimate(
        lut=_LUT_PER_MAC * macs,
        ff=_FF_PER_MAC * macs,
        bram36=0.0,
        dsp=float(macs),
    )
    components["accumulator"] = ResourceEstimate(
        lut=_LUT_ACCUMULATOR_PER_OC * config.oc_parallelism,
        ff=_FF_ACCUMULATOR_PER_OC * config.oc_parallelism,
        bram36=0.0,
        dsp=0.0,
    )
    components["sdmu_decoder"] = ResourceEstimate(
        lut=_LUT_PER_LANE * lanes + _LUT_MASK_JUDGER,
        ff=_FF_PER_LANE * lanes + _FF_MASK_JUDGER,
        bram36=0.0,
        dsp=0.0,
    )
    components["mux"] = ResourceEstimate(
        lut=_LUT_MUX_BASE + _LUT_PER_MUX_INPUT * lanes,
        ff=_FF_MUX,
        bram36=0.0,
        dsp=0.0,
    )
    components["main_controller"] = ResourceEstimate(
        lut=_LUT_CONTROLLER, ff=_FF_CONTROLLER, bram36=0.0, dsp=0.0
    )
    components["axi_dma"] = ResourceEstimate(
        lut=_LUT_AXI_DMA, ff=_FF_AXI_DMA, bram36=0.0, dsp=0.0
    )
    buffer_bram = sum(buffer.bram36() for buffer in buffers)
    total_banks = sum(buffer.banks for buffer in buffers)
    components["buffers"] = ResourceEstimate(
        lut=_LUT_PER_BUFFER_CTRL * total_banks,
        ff=_FF_PER_BUFFER_CTRL * total_banks,
        bram36=buffer_bram,
        dsp=0.0,
    )
    return ResourceBreakdown(components=components, device=device)
