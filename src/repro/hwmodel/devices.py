"""FPGA device catalog.

Capacities are the published totals of the devices referenced by the
paper: the Zynq UltraScale+ ZCU102 board (XCZU9EG, the paper's platform)
and the Zynq-7000 ZC7045 used by the comparator design [19].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Resource capacity of one FPGA device."""

    name: str
    luts: int
    ffs: int
    bram36: int
    dsps: int

    def utilization(
        self, lut: float, ff: float, bram36: float, dsp: float
    ) -> dict:
        """Fractional utilization of each resource class."""
        return {
            "LUT": lut / self.luts,
            "FF": ff / self.ffs,
            "BRAM": bram36 / self.bram36,
            "DSP": dsp / self.dsps,
        }


ZCU102 = FpgaDevice(
    name="Zynq UltraScale+ ZCU102 (XCZU9EG)",
    luts=274_080,
    ffs=548_160,
    bram36=912,
    dsps=2_520,
)

ZC7045 = FpgaDevice(
    name="Zynq-7000 ZC7045 (XC7Z045)",
    luts=218_600,
    ffs=437_200,
    bram36=545,
    dsps=900,
)

_CATALOG = {device.name: device for device in (ZCU102, ZC7045)}
_ALIASES = {"zcu102": ZCU102, "zc7045": ZC7045}


def device_by_name(name: str) -> FpgaDevice:
    """Look up a device by full name or short alias (case-insensitive)."""
    if name in _CATALOG:
        return _CATALOG[name]
    key = name.lower()
    if key in _ALIASES:
        return _ALIASES[key]
    raise KeyError(f"unknown device {name!r}; known: {sorted(_ALIASES)}")
