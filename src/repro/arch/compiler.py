"""Network compiler: mapping layers onto finite on-chip buffers.

The cycle-accurate model assumes a layer's weights, activations and
masks fit on chip, which holds for the paper's SS U-Net configuration.
Real deployments must handle layers that exceed the buffer plan of
Table II; this module provides that mapping layer:

* **Channel passes** — when a layer's weights exceed the weight buffer,
  the output channels are split into passes (each pass produces complete
  partial sums for its OC slice, so no psum spilling is needed); if a
  single OC slice still does not fit, input channels are split as well
  and partial sums are re-accumulated across IC passes.
* **Tile chunks** — when the active sites exceed the activation/output
  buffers, the active tiles are processed in chunks.
* **Command stream** — every plan lowers to LOAD/RUN/STORE commands with
  byte and cycle costs, which double-checks the transfer accounting of
  :mod:`repro.arch.overhead` and feeds deployment-latency estimates.

Everything here is derived from :class:`AcceleratorConfig` and the
buffer geometry of :func:`repro.hwmodel.resources.buffer_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arch.config import AcceleratorConfig
from repro.arch.tiling import TileGrid
from repro.nn.rulebook import (
    Rulebook,
    RulebookCache,
    get_submanifold_rulebook,
)
from repro.sparse.coo import SparseTensor3D


@dataclass(frozen=True)
class BufferBudget:
    """On-chip capacities in *words* of the respective datapaths.

    One weight word feeds the array one cycle of one OC lane
    (``ic_parallelism`` INT8 weights); one activation word is one site's
    ``ic_parallelism``-channel INT16 slice; one output word is one site's
    ``oc_parallelism``-channel slice.
    """

    weight_words: int
    activation_words_per_bank: int
    output_words: int
    mask_bits: int

    @classmethod
    def from_config(cls, config: AcceleratorConfig) -> "BufferBudget":
        return cls(
            weight_words=config.weight_buffer_depth,
            activation_words_per_bank=config.activation_buffer_depth // 4,
            output_words=config.output_buffer_depth,
            mask_bits=config.mask_buffer_kib * 1024 * 8,
        )


@dataclass(frozen=True)
class ChannelPass:
    """One (IC slice, OC slice) pass of a layer."""

    ic_start: int
    ic_stop: int
    oc_start: int
    oc_stop: int

    @property
    def ic_size(self) -> int:
        return self.ic_stop - self.ic_start

    @property
    def oc_size(self) -> int:
        return self.oc_stop - self.oc_start


@dataclass(frozen=True)
class Command:
    """One step of the lowered execution schedule."""

    kind: str  # load_weights | load_masks | load_activations | run | store_outputs
    bytes: int
    cycles: int
    detail: str = ""


@dataclass
class TileChunk:
    """A contiguous group of active tiles processed together."""

    tile_indices: List[int]
    nnz: int
    matches: int
    scanned_positions: int


@dataclass
class LayerPlan:
    """Mapping of one Sub-Conv layer onto the accelerator."""

    name: str
    in_channels: int
    out_channels: int
    passes: List[ChannelPass]
    chunks: List[TileChunk]
    commands: List[Command] = field(default_factory=list)

    @property
    def num_passes(self) -> int:
        return len(self.passes)

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_bytes(self) -> int:
        return sum(cmd.bytes for cmd in self.commands)

    @property
    def total_run_cycles(self) -> int:
        return sum(cmd.cycles for cmd in self.commands if cmd.kind == "run")

    def ic_passes(self) -> int:
        return len({(p.ic_start, p.ic_stop) for p in self.passes})

    def oc_passes(self) -> int:
        return len({(p.oc_start, p.oc_stop) for p in self.passes})


class CompilationError(ValueError):
    """Raised when a layer cannot be mapped onto the configuration."""


class NetworkCompiler:
    """Plans layers onto the accelerator's finite buffers.

    A :class:`repro.nn.rulebook.RulebookCache` (typically the one owned
    by an :class:`repro.engine.session.InferenceSession`) lets the
    channel-pass/tile-chunk planner reuse the matching pass the network
    forward already performed instead of rebuilding it per layer.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        budget: Optional[BufferBudget] = None,
        rulebook_cache: Optional[RulebookCache] = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.budget = budget or BufferBudget.from_config(self.config)
        self.rulebook_cache = rulebook_cache

    # ------------------------------------------------------------------
    # Channel splitting
    # ------------------------------------------------------------------
    def weight_words(self, ic_size: int, oc_size: int) -> int:
        """Weight-buffer words for an (ic_size, oc_size) channel slice."""
        k3 = self.config.kernel_size ** 3
        ic_steps = -(-ic_size // self.config.ic_parallelism)
        return k3 * oc_size * ic_steps

    def plan_channel_passes(
        self, in_channels: int, out_channels: int
    ) -> List[ChannelPass]:
        """Split channels so each pass's weights fit the weight buffer.

        OC is split first (cheap: each pass owns its outputs); IC is
        split only when a single-OC-lane slice still overflows, in which
        case later IC passes re-accumulate onto the same outputs.
        """
        cfg = self.config
        # Largest OC slice that fits with the full IC range, but never
        # below one array width (shrinking further would starve the OC
        # lanes — splitting IC is preferable at that point).
        oc_floor = min(out_channels, cfg.oc_parallelism)
        oc_tile = out_channels
        while oc_tile > oc_floor and self.weight_words(in_channels, oc_tile) > \
                self.budget.weight_words:
            oc_tile = max(oc_floor, self._shrink(oc_tile, cfg.oc_parallelism))
        ic_tile = in_channels
        if self.weight_words(ic_tile, oc_tile) > self.budget.weight_words:
            # One OC array-width with full IC still overflows: split IC;
            # later IC passes re-accumulate onto the same output slice.
            ic_floor = min(in_channels, cfg.ic_parallelism)
            while ic_tile > ic_floor and self.weight_words(ic_tile, oc_tile) > \
                    self.budget.weight_words:
                ic_tile = max(ic_floor, self._shrink(ic_tile, cfg.ic_parallelism))
            if self.weight_words(ic_tile, oc_tile) > self.budget.weight_words:
                raise CompilationError(
                    f"layer {in_channels}x{out_channels} cannot fit the "
                    f"weight buffer ({self.budget.weight_words} words) even "
                    f"at minimum slice size "
                    f"({self.weight_words(ic_tile, oc_tile)} words needed)"
                )
        passes = []
        for ic_start in range(0, in_channels, ic_tile):
            ic_stop = min(in_channels, ic_start + ic_tile)
            for oc_start in range(0, out_channels, oc_tile):
                oc_stop = min(out_channels, oc_start + oc_tile)
                passes.append(ChannelPass(ic_start, ic_stop, oc_start, oc_stop))
        return passes

    @staticmethod
    def _shrink(size: int, step: int) -> int:
        """Next smaller slice size, aligned down to ``step`` when possible."""
        if size > step:
            return (size - 1) // step * step
        return size // 2

    # ------------------------------------------------------------------
    # Tile chunking
    # ------------------------------------------------------------------
    def plan_tile_chunks(
        self,
        tensor: SparseTensor3D,
        in_channels: int,
        rulebook: Optional[Rulebook] = None,
    ) -> List[TileChunk]:
        """Group active tiles so activations/outputs fit per chunk.

        Matches are attributed to the chunk of their *output* site via
        the reference rulebook, so per-chunk cycle estimates are exact.
        A session-provided ``rulebook`` (or the compiler's attached
        cache) avoids re-running the matching the forward already did.
        """
        grid = TileGrid(tensor, self.config.tile_shape)
        tiles = grid.active_tiles
        if not tiles:
            return []
        ic_steps = max(1, -(-in_channels // self.config.ic_parallelism))
        act_capacity_sites = self.budget.activation_words_per_bank // ic_steps
        out_capacity_sites = self.budget.output_words
        capacity = max(1, min(act_capacity_sites, out_capacity_sites))
        if rulebook is None:
            rulebook = get_submanifold_rulebook(
                tensor, self.config.kernel_size, cache=self.rulebook_cache
            )
        per_output = rulebook.matches_per_output()
        tile_volume = grid.tile_volume()

        chunks: List[TileChunk] = []
        current: List[int] = []
        current_nnz = 0
        current_matches = 0
        for index, tile in enumerate(tiles):
            tile_matches = int(per_output[tile.rows].sum())
            if current and current_nnz + tile.nnz > capacity:
                chunks.append(
                    TileChunk(
                        tile_indices=current,
                        nnz=current_nnz,
                        matches=current_matches,
                        scanned_positions=len(current) * tile_volume,
                    )
                )
                current, current_nnz, current_matches = [], 0, 0
            if tile.nnz > capacity:
                raise CompilationError(
                    f"a single tile holds {tile.nnz} sites but buffers fit "
                    f"only {capacity}; decrease tile size or channel width"
                )
            current.append(index)
            current_nnz += tile.nnz
            current_matches += tile_matches
        if current:
            chunks.append(
                TileChunk(
                    tile_indices=current,
                    nnz=current_nnz,
                    matches=current_matches,
                    scanned_positions=len(current) * tile_volume,
                )
            )
        return chunks

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def plan_layer(
        self,
        tensor: SparseTensor3D,
        out_channels: int,
        name: str = "subconv",
        rulebook: Optional[Rulebook] = None,
    ) -> LayerPlan:
        """Full mapping of one Sub-Conv layer: passes, chunks, commands."""
        cfg = self.config
        in_channels = tensor.num_channels
        passes = self.plan_channel_passes(in_channels, out_channels)
        chunks = self.plan_tile_chunks(tensor, in_channels, rulebook=rulebook)
        plan = LayerPlan(
            name=name,
            in_channels=in_channels,
            out_channels=out_channels,
            passes=passes,
            chunks=chunks,
        )
        k3 = cfg.kernel_size ** 3
        act_bytes_per_site = in_channels * cfg.activation_bits // 8
        out_bytes_per_site = out_channels * cfg.activation_bits // 8
        commands: List[Command] = []
        for chunk_id, chunk in enumerate(chunks):
            commands.append(
                Command(
                    kind="load_masks",
                    bytes=chunk.scanned_positions // 8,
                    cycles=0,
                    detail=f"chunk {chunk_id}: {len(chunk.tile_indices)} tiles",
                )
            )
            commands.append(
                Command(
                    kind="load_activations",
                    bytes=chunk.nnz * act_bytes_per_site,
                    cycles=0,
                    detail=f"chunk {chunk_id}: {chunk.nnz} sites",
                )
            )
            for pass_id, channel_pass in enumerate(passes):
                weight_bytes = (
                    k3 * channel_pass.ic_size * channel_pass.oc_size
                    * cfg.weight_bits // 8
                )
                commands.append(
                    Command(
                        kind="load_weights",
                        bytes=weight_bytes,
                        cycles=0,
                        detail=f"chunk {chunk_id} pass {pass_id}",
                    )
                )
                run_cycles = self._run_cycles(chunk, channel_pass)
                commands.append(
                    Command(
                        kind="run",
                        bytes=0,
                        cycles=run_cycles,
                        detail=(
                            f"chunk {chunk_id} pass {pass_id}: "
                            f"IC[{channel_pass.ic_start}:{channel_pass.ic_stop}] "
                            f"OC[{channel_pass.oc_start}:{channel_pass.oc_stop}]"
                        ),
                    )
                )
            commands.append(
                Command(
                    kind="store_outputs",
                    bytes=chunk.nnz * out_bytes_per_site,
                    cycles=0,
                    detail=f"chunk {chunk_id}",
                )
            )
        plan.commands = commands
        return plan

    def _run_cycles(self, chunk: TileChunk, channel_pass: ChannelPass) -> int:
        cfg = self.config
        sdmu = chunk.scanned_positions * cfg.srf_cadence
        cc = chunk.matches * cfg.cc_cycles_per_match(
            channel_pass.ic_size, channel_pass.oc_size
        )
        return max(sdmu, chunk.matches, cc) + 8

    def plan_network(
        self, layers: List[Tuple[SparseTensor3D, int, str]]
    ) -> List[LayerPlan]:
        """Plan a list of ``(tensor, out_channels, name)`` layers."""
        return [
            self.plan_layer(tensor, out_channels, name=name)
            for tensor, out_channels, name in layers
        ]
