"""Architecture configuration of the ESCA accelerator.

Defaults reproduce the paper's implementation point (Sec. III-E / IV-A):
kernel ``3^3`` (so ``K^2 = 9`` decoder lanes and FIFOs), computing-array
parallelism 16x16 (IC x OC, 256 MACs), tile size ``8^3``, ZCU102 at
270 MHz, INT8 weights and INT16 activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class SdmuTiming:
    """Cycle timing of the SDMU matching pipeline (Fig. 7(b)).

    Attributes
    ----------
    srf_cadence_cycles:
        Cycles the read-masks stage occupies per sparse receptive field
        (SRF).  The paper reads the K mask columns of an SRF sequentially,
        giving a cadence of K cycles for ``K = 3`` (Fig. 7(b) shows SRFs
        issuing every 3 cycles); 0 selects ``kernel_size`` automatically.
    judge_cycles:
        Pipelined latency of the judge + state-index-generation stage.
    fetch_port_width:
        Activation-buffer reads per column bank per cycle during the
        fetch step (1 in the paper: one read port per bank).
    """

    srf_cadence_cycles: int = 0
    judge_cycles: int = 1
    fetch_port_width: int = 1

    def resolve_cadence(self, kernel_size: int) -> int:
        if self.srf_cadence_cycles < 0:
            raise ValueError("srf_cadence_cycles must be >= 0")
        return self.srf_cadence_cycles or kernel_size


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full parameter set of one ESCA instance.

    ``execution_backend`` names the software compute engine a session
    built from this config evaluates rulebooks with (see
    :mod:`repro.engine.backend`); it parameterizes the deployment the
    same way the hardware knobs do and travels with the config through
    :meth:`to_dict` / :meth:`from_dict`.  Validation against the
    registry happens at session construction (the registry is openly
    extensible, so the config only checks the name's well-formedness).
    """

    kernel_size: int = 3
    tile_shape: Tuple[int, int, int] = (8, 8, 8)
    ic_parallelism: int = 16
    oc_parallelism: int = 16
    fifo_depth: int = 16
    clock_hz: float = 270e6
    weight_bits: int = 8
    activation_bits: int = 16
    accumulator_bits: int = 32
    mask_buffer_kib: int = 64
    activation_buffer_depth: int = 8192
    weight_buffer_depth: int = 16384
    output_buffer_depth: int = 4096
    execution_backend: str = "numpy"
    #: Churn-ratio bound for incremental rulebook patching in sessions
    #: built from this config (see :mod:`repro.engine.delta`).  ``0.0``
    #: (default) keeps all-or-nothing digest caching; a value in
    #: ``(0, 1]`` lets a digest miss patch the nearest recent matching
    #: whose coordinate delta stays below the bound.
    delta_threshold: float = 0.0
    timing: SdmuTiming = field(default_factory=SdmuTiming)

    def __post_init__(self) -> None:
        if not isinstance(self.execution_backend, str) or not self.execution_backend:
            raise ValueError(
                "execution_backend must be a non-empty backend name, got "
                f"{self.execution_backend!r}"
            )
        if not 0.0 <= float(self.delta_threshold) <= 1.0:
            raise ValueError(
                "delta_threshold must lie in [0, 1] (0 disables delta "
                f"matching), got {self.delta_threshold!r}"
            )
        if self.kernel_size <= 0 or self.kernel_size % 2 == 0:
            raise ValueError(
                f"kernel_size must be odd and positive, got {self.kernel_size}"
            )
        if len(self.tile_shape) != 3 or any(t <= 0 for t in self.tile_shape):
            raise ValueError(f"tile_shape must be 3 positive ints, got {self.tile_shape}")
        if self.ic_parallelism <= 0 or self.oc_parallelism <= 0:
            raise ValueError("computing-array parallelism must be positive")
        if self.fifo_depth <= 0:
            raise ValueError(f"fifo_depth must be positive, got {self.fifo_depth}")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {self.clock_hz}")
        for bits_name in ("weight_bits", "activation_bits", "accumulator_bits"):
            if getattr(self, bits_name) < 2:
                raise ValueError(f"{bits_name} must be >= 2")

    @property
    def decoder_lanes(self) -> int:
        """Number of decoder lanes / FIFOs: ``K^2`` (one per SRF column)."""
        return self.kernel_size ** 2

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulates per cycle of the computing array."""
        return self.ic_parallelism * self.oc_parallelism

    @property
    def peak_gops(self) -> float:
        """Peak throughput in GOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.clock_hz / 1e9

    @property
    def srf_cadence(self) -> int:
        return self.timing.resolve_cadence(self.kernel_size)

    def cc_cycles_per_match(self, in_channels: int, out_channels: int) -> int:
        """Computing-core occupancy of one match (Sec. III-D loop unrolling)."""
        ic_steps = -(-int(in_channels) // self.ic_parallelism)
        oc_steps = -(-int(out_channels) // self.oc_parallelism)
        return max(1, ic_steps * oc_steps)

    # ------------------------------------------------------------------
    # Serialization (experiment reproducibility)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every parameter."""
        return {
            "kernel_size": self.kernel_size,
            "tile_shape": list(self.tile_shape),
            "ic_parallelism": self.ic_parallelism,
            "oc_parallelism": self.oc_parallelism,
            "fifo_depth": self.fifo_depth,
            "clock_hz": self.clock_hz,
            "weight_bits": self.weight_bits,
            "activation_bits": self.activation_bits,
            "accumulator_bits": self.accumulator_bits,
            "mask_buffer_kib": self.mask_buffer_kib,
            "activation_buffer_depth": self.activation_buffer_depth,
            "weight_buffer_depth": self.weight_buffer_depth,
            "output_buffer_depth": self.output_buffer_depth,
            "execution_backend": self.execution_backend,
            "delta_threshold": self.delta_threshold,
            "timing": {
                "srf_cadence_cycles": self.timing.srf_cadence_cycles,
                "judge_cycles": self.timing.judge_cycles,
                "fetch_port_width": self.timing.fetch_port_width,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AcceleratorConfig":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        payload = dict(data)
        timing_data = payload.pop("timing", {})
        payload["timing"] = SdmuTiming(**timing_data)
        if "tile_shape" in payload:
            payload["tile_shape"] = tuple(payload["tile_shape"])
        return cls(**payload)
