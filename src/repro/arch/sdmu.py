"""Sparse data matching unit (SDMU) — cycle-accurate model.

Implements the matching pipeline of Sec. III-C / Figs. 6-7:

1. **Read masks** — the scanner walks every voxel position of the active
   tiles in order; the read stage occupies ``srf_cadence`` cycles per SRF
   (the paper reads the K mask columns sequentially; Fig. 7(b) shows a
   3-cycle cadence for K=3).
2. **Judge state + generate state index** — the mask judger checks the
   center bit.  Active SRFs get their per-lane state indexes ``(A, B)``
   and address fragments ``(A, A-B)``; non-active SRFs skip fetching.
3. **Fetch activations** — per-lane banked buffers each deliver
   ``fetch_port_width`` activations per cycle into the lane's FIFO;
   the stage occupies the maximum per-lane occupancy and stalls on FIFO
   backpressure.
4. **MUX** — drains one match per cycle toward the computing core, in
   calculation order: match groups are completed in SRF order, lanes in
   decoder order within a group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.arch.config import AcceleratorConfig
from repro.arch.encoding import EncodedFeatureMap
from repro.arch.timeline import MatchingTimeline
from repro.sim.fifo import HardwareFifo
from repro.sim.trace import StatsCounter, Utilization


@dataclass(frozen=True)
class Match:
    """One (activation, weight) pair of a match group: ``(A_a, W_b)_c``."""

    srf_seq: int
    lane: int
    activation_row: int
    weight_index: int


@dataclass
class MatchGroup:
    """All matches of one active SRF, split per decoder lane."""

    srf_seq: int
    output_row: int
    center: Tuple[int, int, int]
    lane_matches: List[List[Match]]

    @property
    def total_matches(self) -> int:
        return sum(len(lane) for lane in self.lane_matches)

    @property
    def max_lane_depth(self) -> int:
        return max((len(lane) for lane in self.lane_matches), default=0)

    def lane_counts(self) -> List[int]:
        return [len(lane) for lane in self.lane_matches]


@dataclass
class _FetchState:
    group: MatchGroup
    next_index: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.next_index:
            self.next_index = [0] * len(self.group.lane_matches)

    def done(self) -> bool:
        return all(
            idx >= len(lane)
            for idx, lane in zip(self.next_index, self.group.lane_matches)
        )


class SrfScanner:
    """Iterates SRF center positions over the active tiles in scan order.

    The scan is x-major / z-innermost so that the innermost axis matches
    the column orientation of the encoding (state index ``A`` accumulates
    along z).  ``tile_subset`` restricts the scan to selected active
    tiles (by position in the active-tile list), which is how chunked
    execution scans one chunk while neighbor data in halo tiles stays
    visible through the global encoding.
    """

    def __init__(
        self,
        encoded: EncodedFeatureMap,
        tile_subset: Optional[List[int]] = None,
    ) -> None:
        self.encoded = encoded
        all_tiles = encoded.grid.active_tiles
        if tile_subset is None:
            self.tiles = all_tiles
        else:
            for index in tile_subset:
                if not 0 <= index < len(all_tiles):
                    raise ValueError(
                        f"tile index {index} out of range "
                        f"(0..{len(all_tiles) - 1})"
                    )
            self.tiles = [all_tiles[index] for index in sorted(tile_subset)]
        self.total_positions = len(self.tiles) * encoded.grid.tile_volume()

    def __iter__(self) -> Iterator[Tuple[int, Tuple[int, int, int]]]:
        seq = 0
        shape = self.encoded.tensor.shape
        for tile in self.tiles:
            ox, oy, oz = tile.origin
            tx, ty, tz = self.encoded.grid.tile_shape
            for x in range(ox, min(ox + tx, shape[0])):
                for y in range(oy, min(oy + ty, shape[1])):
                    for z in range(oz, min(oz + tz, shape[2])):
                        yield seq, (x, y, z)
                        seq += 1


class Sdmu:
    """Cycle-accurate SDMU: scanner, mask judger, fetcher, FIFO group, MUX.

    The unit is advanced by :meth:`advance` once per cycle, *after* the
    downstream computing core (reverse pipeline order gives synchronous
    semantics).  ``pop_match`` is called by the pipeline to move one match
    from the FIFO group to the computing core.
    """

    def __init__(
        self,
        encoded: EncodedFeatureMap,
        config: AcceleratorConfig,
        timeline: Optional[MatchingTimeline] = None,
        tile_subset: Optional[List[int]] = None,
    ):
        if encoded.kernel_size != config.kernel_size:
            raise ValueError(
                f"encoding kernel {encoded.kernel_size} != config kernel "
                f"{config.kernel_size}"
            )
        self.encoded = encoded
        self.config = config
        self.timeline = timeline
        self.tile_subset = tile_subset
        self.lanes = config.decoder_lanes
        self.fifos = [
            HardwareFifo(config.fifo_depth, name=f"lane{i}")
            for i in range(self.lanes)
        ]
        self.scanner = SrfScanner(encoded, tile_subset=tile_subset)
        self._scan_iter = iter(self.scanner)
        self._scan_exhausted = False

        # Pipeline registers.
        self._read_stage: Optional[Tuple[int, Tuple[int, int, int]]] = None
        self._read_remaining = 0
        self._judge_stage: Optional[Tuple[int, Tuple[int, int, int]]] = None
        self._fetch_state: Optional[_FetchState] = None

        # MUX state: groups awaiting drain, in SRF order.
        self._group_queue: List[MatchGroup] = []
        self._mux_group: Optional[MatchGroup] = None
        self._mux_lane = 0
        self._mux_lane_remaining: List[int] = []

        self.stats = StatsCounter()
        self.read_util = Utilization()
        self.fetch_util = Utilization()
        self.mux_util = Utilization()

    # ------------------------------------------------------------------
    # Functional helpers (also used directly by tests)
    # ------------------------------------------------------------------
    def build_match_group(
        self, seq: int, center: Tuple[int, int, int]
    ) -> MatchGroup:
        """Assemble the match group of an active SRF from the encoding."""
        lane_matches: List[List[Match]] = []
        for lane, raw in enumerate(self.encoded.match_group(center)):
            lane_matches.append(
                [
                    Match(
                        srf_seq=seq,
                        lane=lane,
                        activation_row=row,
                        weight_index=widx,
                    )
                    for row, widx in raw
                ]
            )
        output_row = self.encoded.tensor.row_of(center)
        if output_row is None:
            raise ValueError(f"active SRF at inactive site {center}")
        return MatchGroup(
            srf_seq=seq,
            output_row=output_row,
            center=center,
            lane_matches=lane_matches,
        )

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    def pop_match(self) -> Optional[Tuple[Match, MatchGroup]]:
        """MUX output: the next ``(match, group)`` in calculation order.

        Returns ``None`` when no match is available this cycle (either no
        pending group, or the fetch stage has not pushed the next match
        yet).  One call per cycle at most.
        """
        group = self._current_mux_group()
        if group is None:
            self.mux_util.record(False)
            return None
        # Skip exhausted lanes.
        while (
            self._mux_lane < self.lanes
            and self._mux_lane_remaining[self._mux_lane] == 0
        ):
            self._mux_lane += 1
        if self._mux_lane >= self.lanes:
            # Group fully drained; switch next cycle.
            self._mux_group = None
            self.mux_util.record(False)
            return None
        fifo = self.fifos[self._mux_lane]
        if fifo.is_empty:
            # The fetch stage has not pushed this match yet.
            self.mux_util.record(False)
            self.stats.add("mux_wait_on_fetch")
            return None
        match: Match = fifo.pop()
        self._mux_lane_remaining[self._mux_lane] -= 1
        self.stats.add("matches_popped")
        self.mux_util.record(True)
        if all(count == 0 for count in self._mux_lane_remaining):
            self._mux_group = None
        return match, group

    def _current_mux_group(self) -> Optional[MatchGroup]:
        if self._mux_group is None and self._group_queue:
            self._mux_group = self._group_queue.pop(0)
            self._mux_lane = 0
            self._mux_lane_remaining = self._mux_group.lane_counts()
        return self._mux_group

    def advance(self, cycle: int) -> None:
        """One clock edge: fetch -> judge -> read (reverse order)."""
        self._advance_fetch(cycle)
        self._advance_judge(cycle)
        self._advance_read(cycle)
        for fifo in self.fifos:
            fifo.observe()

    def _advance_fetch(self, cycle: int) -> None:
        state = self._fetch_state
        if state is None:
            self.fetch_util.record(False)
            return
        if self.timeline is not None:
            self.timeline.record(state.group.srf_seq, "fetch", cycle)
        pushed_any = False
        stalled = False
        for lane, matches in enumerate(state.group.lane_matches):
            idx = state.next_index[lane]
            budget = self.config.timing.fetch_port_width
            while budget > 0 and idx < len(matches):
                if not self.fifos[lane].try_push(matches[idx]):
                    stalled = True
                    break
                idx += 1
                budget -= 1
                pushed_any = True
                self.stats.add("matches_pushed")
            state.next_index[lane] = idx
        if stalled:
            self.stats.add("fetch_fifo_stalls")
        self.fetch_util.record(pushed_any)
        if state.done():
            self._fetch_state = None
            self.stats.add("groups_fetched")

    def _advance_judge(self, cycle: int) -> None:
        if self._judge_stage is None:
            return
        seq, center = self._judge_stage
        if self.timeline is not None:
            self.timeline.record(seq, "judge", cycle)
        active = self.encoded.mask.is_active(*center)
        if not active:
            self.stats.add("srf_skipped")
            self._judge_stage = None
            return
        if self._fetch_state is not None:
            # Fetch stage busy; judge holds (pipeline backpressure).
            self.stats.add("judge_stalls")
            return
        group = self.build_match_group(seq, center)
        self.stats.add("srf_active")
        self.stats.add("matches_generated", group.total_matches)
        self._fetch_state = _FetchState(group=group)
        self._group_queue.append(group)
        self._judge_stage = None

    def _advance_read(self, cycle: int) -> None:
        if self._read_stage is None:
            if self._scan_exhausted:
                self.read_util.record(False)
                return
            nxt = next(self._scan_iter, None)
            if nxt is None:
                self._scan_exhausted = True
                self.read_util.record(False)
                return
            self._read_stage = nxt
            self._read_remaining = self.config.srf_cadence
        self.read_util.record(True)
        if self.timeline is not None:
            self.timeline.record(self._read_stage[0], "read", cycle)
        self._read_remaining -= 1
        if self._read_remaining <= 0:
            if self._judge_stage is None:
                self._judge_stage = self._read_stage
                self._read_stage = None
                self.stats.add("srf_read")
            else:
                self.stats.add("read_stalls")
                self._read_remaining = 1  # retry the handoff next cycle

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        """All SRFs scanned, matched, and drained through the MUX."""
        return (
            self._scan_exhausted
            and self._read_stage is None
            and self._judge_stage is None
            and self._fetch_state is None
            and self._mux_group is None
            and not self._group_queue
            and all(fifo.is_empty for fifo in self.fifos)
        )

    def fifo_max_occupancy(self) -> int:
        return max(fifo.stats.max_occupancy for fifo in self.fifos)
