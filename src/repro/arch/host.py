"""Host-side (PS / ARM) execution model for non-Sub-Conv layers.

The paper's accelerator targets the ``3^3`` submanifold convolutions;
the SS U-Net's strided downsampling convolutions, transposed upsampling
convolutions, and the ``1^3`` classifier head run on the Zynq PS (ARM
Cortex-A53) in a deployment like the paper's.  This model estimates
their cost so :meth:`EscaAccelerator.run_network` can optionally report
a true end-to-end latency — an extension beyond the paper's published
numbers (which the ESCA calibration constants already absorb; see
EXPERIMENTS.md).

Rulebooks are **session-provided**: pass an explicit ``rulebook`` (as
:meth:`repro.engine.session.InferenceSession.estimate` does from its
network plan) or a shared :class:`repro.nn.rulebook.RulebookCache`;
only when neither is given does the model fall back to building the
matching itself, the pre-session behavior.

Rates are set to conservative Cortex-A53 values: NEON GEMM throughput of
about 1.2 effective GOPS and ~8 M coordinate-hash probes per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.nn.functional import normalize_weights
from repro.nn.rulebook import (
    Rulebook,
    RulebookCache,
    get_sparse_conv_rulebook,
    get_submanifold_rulebook,
)
from repro.nn.unet import LayerExecution


@dataclass(frozen=True)
class HostLayerRun:
    """Estimated host-side execution of one non-Sub-Conv layer."""

    name: str
    kind: str
    matches: int
    effective_ops: int
    seconds: float


class HostExecutionModel:
    """ARM-side timing model for the layers ESCA does not accelerate."""

    def __init__(
        self,
        gemm_ops_per_s: float = 1.2e9,
        probe_rate_per_s: float = 8.0e6,
        dispatch_seconds: float = 0.02e-3,
    ) -> None:
        if gemm_ops_per_s <= 0 or probe_rate_per_s <= 0:
            raise ValueError("rates must be positive")
        if dispatch_seconds < 0:
            raise ValueError("dispatch_seconds must be non-negative")
        self.gemm_ops_per_s = gemm_ops_per_s
        self.probe_rate_per_s = probe_rate_per_s
        self.dispatch_seconds = dispatch_seconds

    def run_layer(
        self,
        execution: LayerExecution,
        rulebook: Optional[Rulebook] = None,
        cache: Optional[RulebookCache] = None,
    ) -> HostLayerRun:
        """Estimate one recorded layer execution.

        ``rulebook`` short-circuits matching entirely (the session's
        plan already holds it); otherwise ``cache`` amortizes it across
        layers and frames; otherwise the matching is rebuilt per call.
        The timing model still charges the probe cost either way — the
        host CPU performs the hash probes regardless of what the model
        software reuses.
        """
        tensor = execution.input_tensor
        if execution.kind == "subconv":
            if rulebook is None:
                rulebook = get_submanifold_rulebook(
                    tensor, execution.kernel_size, cache=cache
                )
            probes = tensor.nnz * execution.kernel_size ** 3
        elif execution.kind in ("sparseconv", "invconv"):
            # For "invconv" the recorded tensor is the fine reference set,
            # whose forward rulebook is exactly the transposed matching.
            if rulebook is None:
                rulebook, _ = get_sparse_conv_rulebook(
                    tensor,
                    kernel_size=execution.kernel_size,
                    stride=execution.stride,
                    cache=cache,
                )
            probes = tensor.nnz * execution.kernel_size ** 3
        else:
            raise ValueError(f"unknown layer kind {execution.kind!r}")
        matches = rulebook.total_matches
        ops = 2 * matches * execution.in_channels * execution.out_channels
        seconds = (
            self.dispatch_seconds
            + probes / self.probe_rate_per_s
            + ops / self.gemm_ops_per_s
        )
        return HostLayerRun(
            name=execution.name,
            kind=execution.kind,
            matches=matches,
            effective_ops=ops,
            seconds=seconds,
        )

    def run_layers(
        self,
        executions: List[LayerExecution],
        cache: Optional[RulebookCache] = None,
    ) -> List[HostLayerRun]:
        return [
            self.run_layer(execution, cache=cache) for execution in executions
        ]

    def execute_layer(
        self,
        execution: LayerExecution,
        features: np.ndarray,
        weights: np.ndarray,
        rulebook: Optional[Rulebook] = None,
        cache: Optional[RulebookCache] = None,
        backend=None,
        stats=None,
    ) -> Tuple[np.ndarray, HostLayerRun]:
        """Numerically execute one host-side layer through the backend seam.

        Where :meth:`run_layer` only *estimates* the PS cost, this runs
        the actual arithmetic the PS would perform, through an
        :class:`repro.engine.backend.ExecutionBackend` (``backend`` is a
        registry name, a backend instance, or ``None`` for the fused
        numpy default).  Returns the output feature rows alongside the
        usual :class:`HostLayerRun` timing record, so deployment
        software can serve the non-accelerated layers with the same
        swappable engines as the session's hot path.
        """
        # Imported lazily: repro.engine.session imports this module.
        from repro.engine.backend import ExecutionBackend, get_backend

        if backend is None or isinstance(backend, str):
            backend = get_backend(backend or "numpy")
        if not isinstance(backend, ExecutionBackend):
            raise TypeError(
                "backend must be a registry name or an ExecutionBackend, "
                f"got {type(backend).__name__}"
            )
        tensor = execution.input_tensor
        weights = normalize_weights(weights, execution.kernel_size)
        if execution.kind == "subconv":
            if rulebook is None:
                rulebook = get_submanifold_rulebook(
                    tensor, execution.kernel_size, cache=cache
                )
            apply_rb, num_outputs = rulebook, tensor.nnz
        elif execution.kind in ("sparseconv", "invconv"):
            # The recorded tensor is the matching reference: the strided
            # conv's input, or the fine site set a transposed conv restores.
            if rulebook is None:
                rulebook, _ = get_sparse_conv_rulebook(
                    tensor,
                    kernel_size=execution.kernel_size,
                    stride=execution.stride,
                    cache=cache,
                )
            if execution.kind == "invconv":
                apply_rb, num_outputs = rulebook.transposed(), tensor.nnz
            else:
                apply_rb, num_outputs = rulebook, rulebook.num_outputs
        else:
            raise ValueError(f"unknown layer kind {execution.kind!r}")
        out = backend.execute(
            apply_rb, features, weights, num_outputs, stats=stats
        )
        run = self.run_layer(execution, rulebook=rulebook)
        return out, run
