"""System-level overhead model: PS<->PL transfers and host orchestration.

The cycle-accurate pipeline models the on-chip dataflow only.  The
paper's end-to-end numbers (Table III: 17.73 GOPS; Fig. 10: ~1 ms per
Sub-Conv layer) additionally include, per layer:

* DMA of weights (INT8), input/output activations (INT16) and index
  masks between off-chip DRAM and the on-chip buffers, at an effective
  PS<->PL bandwidth far below the DDR4 peak (single AXI HP port, no
  double buffering is claimed by the paper);
* host-side layer orchestration (driver call, configuration, interrupt).

Both constants are *calibrated* against the paper's published operating
point and recorded in EXPERIMENTS.md: with ``host_sync_seconds = 0.5 ms``
and ``effective_bandwidth = 1.2 GB/s``, the simulated SS U-Net lands at
the paper's ~17.7 GOPS while the bare pipeline explains Fig. 10's per-
layer latency.  Set ``enabled=False`` to study the idealized core.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferVolume:
    """Bytes moved between DRAM and the accelerator for one layer."""

    weight_bytes: int
    input_activation_bytes: int
    output_activation_bytes: int
    mask_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.weight_bytes
            + self.input_activation_bytes
            + self.output_activation_bytes
            + self.mask_bytes
        )


def layer_transfer_volume(
    nnz_in: int,
    nnz_out: int,
    in_channels: int,
    out_channels: int,
    kernel_volume: int,
    mask_bits: int,
    weight_bits: int = 8,
    activation_bits: int = 16,
) -> TransferVolume:
    """Transfer volume of one Sub-Conv layer under the paper's encoding."""
    return TransferVolume(
        weight_bytes=kernel_volume * in_channels * out_channels * weight_bits // 8,
        input_activation_bytes=nnz_in * in_channels * activation_bits // 8,
        output_activation_bytes=nnz_out * out_channels * activation_bits // 8,
        mask_bytes=-(-mask_bits // 8),
    )


@dataclass(frozen=True)
class SystemOverheadModel:
    """Per-layer system overhead in seconds.

    Parameters
    ----------
    host_sync_seconds:
        Fixed host orchestration cost per accelerated layer.
    effective_bandwidth_bytes_per_s:
        Sustained PS<->PL DMA bandwidth.
    enabled:
        When ``False``, :meth:`layer_overhead_seconds` returns 0 (the
        idealized-core view).
    overlap_transfers:
        Extension beyond the paper: with double-buffered DMA, transfers
        hide behind computation and only the non-overlapped remainder
        (``max(0, transfer - compute)``) counts.  The paper's design does
        not claim double buffering, so this defaults to ``False``; the
        ablation benchmark quantifies the headroom.
    """

    host_sync_seconds: float = 0.5e-3
    effective_bandwidth_bytes_per_s: float = 1.2e9
    enabled: bool = True
    overlap_transfers: bool = False

    def __post_init__(self) -> None:
        if self.host_sync_seconds < 0:
            raise ValueError("host_sync_seconds must be non-negative")
        if self.effective_bandwidth_bytes_per_s <= 0:
            raise ValueError("effective bandwidth must be positive")

    def transfer_seconds(self, volume: TransferVolume) -> float:
        return volume.total_bytes / self.effective_bandwidth_bytes_per_s

    def layer_overhead_seconds(
        self, volume: TransferVolume, compute_seconds: float = 0.0
    ) -> float:
        """Overhead added on top of ``compute_seconds`` of pipeline time."""
        if not self.enabled:
            return 0.0
        transfer = self.transfer_seconds(volume)
        if self.overlap_transfers:
            transfer = max(0.0, transfer - max(0.0, compute_seconds))
        return self.host_sync_seconds + transfer
