"""The ESCA accelerator model — the paper's contribution.

Subpackages map one-to-one onto Fig. 9 of the paper:

* :mod:`repro.arch.config` — architecture parameters (tile size, kernel
  size, 16x16 computing-array parallelism, FIFO depths, clock).
* :mod:`repro.arch.tiling` — the tile-based zero removing strategy
  (Sec. III-A, Table I).
* :mod:`repro.arch.encoding` — the index-mask / valid-data encoding
  scheme (Sec. III-B, Fig. 4), including the column store that gives the
  state indexes ``(A, B)`` their addressing semantics.
* :mod:`repro.arch.sdmu` — the sparse data matching unit (Sec. III-C,
  Figs. 6-7): mask judger, state index generator, address generator,
  FIFO group and MUX, as a cycle-accurate pipeline.
* :mod:`repro.arch.computing_core` — the computing core (Sec. III-D,
  Fig. 8): a 16x16 multiply-accumulate array plus accumulator.
* :mod:`repro.arch.buffers` — on-chip buffer models feeding the
  resource estimation of Table II.
* :mod:`repro.arch.accelerator` — the top-level simulator
  (:class:`EscaAccelerator`) and the analytical performance model.
"""

from repro.arch.config import AcceleratorConfig, SdmuTiming
from repro.arch.tiling import Tile, TileGrid, ZeroRemovalResult, ZeroRemover
from repro.arch.encoding import ColumnStore, EncodedFeatureMap, IndexMask
from repro.arch.sdmu import Match, MatchGroup, Sdmu
from repro.arch.computing_core import ComputingCore, OutputWriter
from repro.arch.buffers import BufferModel
from repro.arch.host import HostExecutionModel, HostLayerRun
from repro.arch.timeline import MatchingTimeline, StageSpan
from repro.arch.compiler import (
    BufferBudget,
    ChannelPass,
    Command,
    CompilationError,
    LayerPlan,
    NetworkCompiler,
    TileChunk,
)
from repro.arch.mapping_model import (
    GATHER_PORTS,
    MAPPING_PIPELINE_FILL_CYCLES,
    MappingCostModel,
    MappingOpEstimate,
    MappingPhaseSpan,
    MappingSimulation,
)
from repro.arch.overhead import (
    SystemOverheadModel,
    TransferVolume,
    layer_transfer_volume,
)
from repro.arch.accelerator import (
    AnalyticalModel,
    EscaAccelerator,
    LayerRunResult,
    NetworkRunResult,
    PlannedLayerRunResult,
)

__all__ = [
    "AcceleratorConfig",
    "SdmuTiming",
    "Tile",
    "TileGrid",
    "ZeroRemover",
    "ZeroRemovalResult",
    "IndexMask",
    "ColumnStore",
    "EncodedFeatureMap",
    "Match",
    "MatchGroup",
    "Sdmu",
    "ComputingCore",
    "OutputWriter",
    "BufferModel",
    "HostExecutionModel",
    "HostLayerRun",
    "MatchingTimeline",
    "StageSpan",
    "NetworkCompiler",
    "BufferBudget",
    "ChannelPass",
    "TileChunk",
    "Command",
    "LayerPlan",
    "CompilationError",
    "MappingCostModel",
    "MappingOpEstimate",
    "MappingPhaseSpan",
    "MappingSimulation",
    "MAPPING_PIPELINE_FILL_CYCLES",
    "GATHER_PORTS",
    "SystemOverheadModel",
    "TransferVolume",
    "layer_transfer_volume",
    "EscaAccelerator",
    "AnalyticalModel",
    "LayerRunResult",
    "NetworkRunResult",
    "PlannedLayerRunResult",
]
