"""Cycle model for the mapping operators on a PointAcc-style datapath.

PointAcc (PAPERS.md) executes every mapping operation — kNN, ball query,
FPS, grouping — on one unified pipeline: a merge-sort network orders
point keys, a comparator array merges sorted streams into neighborhood
candidates, and a gather unit streams the matched rows out of on-chip
memory.  This module prices the workload counters a
:class:`repro.engine.mapping.MappingStats` records against that
three-phase pipeline, reusing the host :class:`AcceleratorConfig` for
the clock and datapath width so mapping-op estimates are comparable
with the sparse-convolution cycle model in :mod:`repro.arch.accelerator`:

* **sort** — the bitonic/merge network sorts ``N`` packed cell keys with
  ``lanes`` comparators: ``ceil(N * ceil(log2 N) / lanes)`` cycles;
* **merge** — each candidate pair costs one comparator slot:
  ``ceil(candidates / lanes)`` cycles (FPS folds its per-iteration
  distance sweeps into the same counter);
* **gather** — one matched row per port and cycle:
  ``ceil(matches / ports)`` cycles.

A pipeline-fill constant mirrors the convolution model's latency floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.arch.config import AcceleratorConfig

#: Cycles to fill the sort/merge/gather pipeline before it streams.
MAPPING_PIPELINE_FILL_CYCLES = 16

#: Memory ports feeding the gather unit.
GATHER_PORTS = 4

_PHASES = ("sort", "merge", "gather")


@dataclass(frozen=True)
class MappingOpEstimate:
    """Modeled cycle cost of one mapping-operator invocation."""

    op: str
    method: str
    num_points: int
    num_queries: int
    sort_cycles: int
    merge_cycles: int
    gather_cycles: int

    @property
    def total_cycles(self) -> int:
        return (
            self.sort_cycles
            + self.merge_cycles
            + self.gather_cycles
            + MAPPING_PIPELINE_FILL_CYCLES
        )

    def phase_cycles(self) -> Tuple[Tuple[str, int], ...]:
        return (
            ("sort", self.sort_cycles),
            ("merge", self.merge_cycles),
            ("gather", self.gather_cycles),
        )

    def seconds(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz


@dataclass(frozen=True)
class MappingPhaseSpan:
    """One phase of one op on the simulated timeline, in cycles."""

    op: str
    phase: str
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class MappingSimulation:
    """Cycle-resolved timeline of a sequence of mapping ops.

    Ops execute back to back (the mapping unit is a single shared
    pipeline); each op contributes one span per non-empty phase.
    """

    spans: Tuple[MappingPhaseSpan, ...]
    total_cycles: int
    clock_hz: float

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.clock_hz


class MappingCostModel:
    """Prices :class:`MappingStats` workloads on the unified pipeline."""

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()
        self.lanes = self.config.ic_parallelism
        self.gather_ports = GATHER_PORTS

    def estimate(self, stats) -> MappingOpEstimate:
        """Cycle estimate for one recorded mapping-op invocation."""
        num_points = int(stats.num_points)
        sort_cycles = 0
        if num_points > 1 and stats.op != "group_points":
            depth = max(1, math.ceil(math.log2(num_points)))
            sort_cycles = math.ceil(num_points * depth / self.lanes)
        merge_cycles = math.ceil(int(stats.candidates) / self.lanes)
        gather_cycles = math.ceil(int(stats.matches) / self.gather_ports)
        return MappingOpEstimate(
            op=stats.op,
            method=stats.method,
            num_points=num_points,
            num_queries=int(stats.num_queries),
            sort_cycles=int(sort_cycles),
            merge_cycles=int(merge_cycles),
            gather_cycles=int(gather_cycles),
        )

    def simulate(
        self, estimates: Sequence[MappingOpEstimate]
    ) -> MappingSimulation:
        """Lay the ops out back to back as sort → merge → gather spans."""
        spans = []
        cursor = 0
        for estimate in estimates:
            cursor += MAPPING_PIPELINE_FILL_CYCLES
            for phase, cycles in estimate.phase_cycles():
                if cycles <= 0:
                    continue
                spans.append(
                    MappingPhaseSpan(
                        op=estimate.op,
                        phase=phase,
                        start=cursor,
                        end=cursor + cycles,
                    )
                )
                cursor += cycles
        return MappingSimulation(
            spans=tuple(spans),
            total_cycles=cursor,
            clock_hz=self.config.clock_hz,
        )
