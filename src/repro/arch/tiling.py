"""Tile-based zero removing strategy (Sec. III-A, Table I).

The feature map is divided into tiles of a fixed configurable size; fully
sparse tiles are removed before any per-voxel processing, because the
submanifold convolution of an all-zero region is identically zero.  Only
the remaining *active tiles* are scanned by the SDMU, which is where the
strategy saves time: the number of sparse receptive fields judged drops
from the full grid volume to ``active_tiles * tile_volume``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sparse.coo import SparseTensor3D

TileIndex = Tuple[int, int, int]


@dataclass(frozen=True)
class Tile:
    """One active tile of the feature map.

    Attributes
    ----------
    index:
        Tile grid index ``(tx, ty, tz)``.
    origin:
        Voxel coordinate of the tile's minimum corner.
    rows:
        Row indices (into the parent tensor) of the active sites inside
        this tile, in the parent's lexicographic order.
    """

    index: TileIndex
    origin: Tuple[int, int, int]
    rows: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.rows)


class TileGrid:
    """Partition of a sparse tensor into fixed-size tiles.

    Parameters
    ----------
    tensor:
        The feature map to partition.
    tile_shape:
        Tile extents ``(N, M, L)``; the paper sweeps cubic 4/8/12/16 and
        deploys ``8^3``.  Grid dimensions are rounded up, so shapes that
        do not divide evenly are supported (edge tiles are smaller).
    """

    def __init__(self, tensor: SparseTensor3D, tile_shape: Tuple[int, int, int]):
        if len(tile_shape) != 3 or any(int(t) <= 0 for t in tile_shape):
            raise ValueError(f"tile_shape must be 3 positive ints, got {tile_shape}")
        self.tensor = tensor
        self.tile_shape = (int(tile_shape[0]), int(tile_shape[1]), int(tile_shape[2]))
        self.grid_dims = tuple(
            -(-tensor.shape[axis] // self.tile_shape[axis]) for axis in range(3)
        )
        tile_arr = np.asarray(self.tile_shape, dtype=np.int64)
        if tensor.nnz:
            tile_of_site = tensor.coords // tile_arr[None, :]
        else:
            tile_of_site = np.zeros((0, 3), dtype=np.int64)
        self._tiles: Dict[TileIndex, Tile] = {}
        if len(tile_of_site):
            unique, inverse = np.unique(tile_of_site, axis=0, return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            boundaries = np.searchsorted(inverse[order], np.arange(len(unique)))
            boundaries = np.append(boundaries, len(inverse))
            for i, tile_index in enumerate(map(tuple, unique.tolist())):
                rows = np.sort(order[boundaries[i]:boundaries[i + 1]])
                origin = tuple(
                    int(tile_index[axis] * self.tile_shape[axis]) for axis in range(3)
                )
                self._tiles[tile_index] = Tile(
                    index=tile_index, origin=origin, rows=rows
                )

    @property
    def total_tiles(self) -> int:
        """Number of tiles covering the full grid ("All Tiles" in Table I)."""
        return int(np.prod(self.grid_dims))

    @property
    def active_tiles(self) -> List[Tile]:
        """Tiles containing at least one nonzero activation, in scan order."""
        return [self._tiles[key] for key in sorted(self._tiles)]

    @property
    def num_active_tiles(self) -> int:
        return len(self._tiles)

    def tile_at(self, index: TileIndex) -> Tile | None:
        return self._tiles.get(tuple(int(v) for v in index))

    def is_active(self, index: TileIndex) -> bool:
        return tuple(int(v) for v in index) in self._tiles

    def tile_volume(self) -> int:
        return self.tile_shape[0] * self.tile_shape[1] * self.tile_shape[2]

    def scanned_positions(self) -> int:
        """Voxel positions the SDMU must judge after zero removing."""
        return self.num_active_tiles * self.tile_volume()


@dataclass(frozen=True)
class ZeroRemovalResult:
    """Outcome of the zero removing strategy for one feature map."""

    tile_shape: Tuple[int, int, int]
    active_tiles: int
    total_tiles: int
    grid: TileGrid

    @property
    def removing_ratio(self) -> float:
        """Fraction of tiles removed — the "Removing Ratio" of Table I."""
        if self.total_tiles == 0:
            return 0.0
        return 1.0 - self.active_tiles / self.total_tiles

    @property
    def scanned_positions(self) -> int:
        return self.grid.scanned_positions()

    @property
    def scan_reduction(self) -> float:
        """Ratio of full-grid positions to positions actually scanned."""
        scanned = self.scanned_positions
        if scanned == 0:
            return float("inf")
        return self.grid.tensor.volume / scanned


class ZeroRemover:
    """Applies the tile-based zero removing strategy."""

    def __init__(self, tile_shape: Tuple[int, int, int] = (8, 8, 8)) -> None:
        self.tile_shape = tile_shape

    def remove(self, tensor: SparseTensor3D) -> ZeroRemovalResult:
        """Partition ``tensor`` and drop fully sparse tiles.

        Removal is lossless by construction: every nonzero site lies in an
        active tile, so the concatenation of active-tile sites equals the
        original site set (asserted by the test suite, and guaranteed by
        the submanifold property for the convolution output as well).
        """
        grid = TileGrid(tensor, self.tile_shape)
        return ZeroRemovalResult(
            tile_shape=grid.tile_shape,
            active_tiles=grid.num_active_tiles,
            total_tiles=grid.total_tiles,
            grid=grid,
        )

    def sweep(
        self, tensor: SparseTensor3D, tile_sizes: Tuple[int, ...] = (4, 8, 12, 16)
    ) -> List[ZeroRemovalResult]:
        """Run the Table I sweep over cubic tile sizes."""
        return [self.remove_cubic(tensor, size) for size in tile_sizes]

    def remove_cubic(self, tensor: SparseTensor3D, size: int) -> ZeroRemovalResult:
        return ZeroRemover((size, size, size)).remove(tensor)
