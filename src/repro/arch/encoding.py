"""Index-mask / valid-data encoding scheme (Sec. III-B, Fig. 4).

The feature map is encoded into two data types:

* **Index mask** — one bit per voxel position of the active tiles,
  telling whether the activation there is nonzero
  (:class:`IndexMask`).
* **Valid data** — the nonzero activations, stored densely in
  feature-map-column order (:class:`ColumnStore`), plus the weights.

The column store is what gives the SDMU's *state index* ``(A, B)`` its
meaning: for a feature-map column (a line along the innermost axis),
``A`` is the running count of nonzero activations up to the bottom of the
current sparse receptive field — i.e. one past the highest activation-
buffer address of the match group — and ``B`` is the number of
activations inside the SRF window, so the *address fragment*
``(A, A-B)`` delimits exactly the activations to fetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.tiling import TileGrid
from repro.sparse.coo import SparseTensor3D


class IndexMask:
    """One-bit-per-voxel sparsity map of the feature map.

    Stored densely over the grid for O(1) lookup; the *storage cost*
    reported to the resource model counts only the active tiles, which is
    what the hardware keeps in its mask buffer after zero removing.
    """

    def __init__(self, tensor: SparseTensor3D) -> None:
        self.shape = tensor.shape
        self._bits = np.zeros(tensor.shape, dtype=bool)
        if tensor.nnz:
            coords = tensor.coords
            self._bits[coords[:, 0], coords[:, 1], coords[:, 2]] = True

    def is_active(self, x: int, y: int, z: int) -> bool:
        """Mask bit at ``(x, y, z)``; out-of-bounds positions read as 0."""
        if not (0 <= x < self.shape[0] and 0 <= y < self.shape[1]
                and 0 <= z < self.shape[2]):
            return False
        return bool(self._bits[x, y, z])

    def column_bits(self, x: int, y: int, z_lo: int, z_hi: int) -> np.ndarray:
        """Mask bits of one SRF column: positions ``z_lo..z_hi`` inclusive.

        Out-of-bounds positions contribute 0 bits, exactly as the
        hardware's boundary handling zero-pads the mask stream.
        """
        length = z_hi - z_lo + 1
        bits = np.zeros(length, dtype=bool)
        if not (0 <= x < self.shape[0] and 0 <= y < self.shape[1]):
            return bits
        lo = max(z_lo, 0)
        hi = min(z_hi, self.shape[2] - 1)
        if lo > hi:
            return bits
        bits[lo - z_lo: hi - z_lo + 1] = self._bits[x, y, lo: hi + 1]
        return bits

    def popcount(self) -> int:
        return int(self._bits.sum())


class ColumnStore:
    """Nonzero activations stored densely per feature-map column.

    A *column* is the set of sites sharing ``(x, y)``, ordered by ``z``
    (the SDMU's scan axis).  This is the activation-buffer layout that
    makes the prefix counter ``A`` a valid buffer address.
    """

    def __init__(self, tensor: SparseTensor3D) -> None:
        self.tensor = tensor
        self._columns: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        coords = tensor.coords
        if len(coords):
            # coords are lexicographically sorted, so per-(x, y) groups are
            # contiguous and already z-ascending.
            xy = coords[:, :2]
            change = np.any(np.diff(xy, axis=0) != 0, axis=1)
            starts = np.concatenate([[0], np.where(change)[0] + 1])
            ends = np.concatenate([starts[1:], [len(coords)]])
            for start, end in zip(starts, ends):
                key = (int(coords[start, 0]), int(coords[start, 1]))
                zs = coords[start:end, 2].copy()
                rows = np.arange(start, end, dtype=np.int64)
                self._columns[key] = (zs, rows)

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def column(self, x: int, y: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        return self._columns.get((int(x), int(y)))

    def prefix_count(self, x: int, y: int, z: int) -> int:
        """Number of nonzeros in column ``(x, y)`` with ``z' <= z``.

        This is the state index ``A`` when ``z`` is the bottom of the SRF
        window: the running count "cumulated for each SRF" (Sec. III-C).
        """
        entry = self._columns.get((int(x), int(y)))
        if entry is None:
            return 0
        zs, _ = entry
        return int(np.searchsorted(zs, z, side="right"))

    def count_in(self, x: int, y: int, z_lo: int, z_hi: int) -> int:
        """State index ``B``: activations with ``z_lo <= z <= z_hi``."""
        entry = self._columns.get((int(x), int(y)))
        if entry is None:
            return 0
        zs, _ = entry
        return int(
            np.searchsorted(zs, z_hi, side="right")
            - np.searchsorted(zs, z_lo, side="left")
        )

    def rows_in(
        self, x: int, y: int, z_lo: int, z_hi: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Address-fragment fetch: ``(rows, zs)`` inside the window."""
        entry = self._columns.get((int(x), int(y)))
        if entry is None:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        zs, rows = entry
        lo = int(np.searchsorted(zs, z_lo, side="left"))
        hi = int(np.searchsorted(zs, z_hi, side="right"))
        return rows[lo:hi], zs[lo:hi]

    def total_entries(self) -> int:
        return self.tensor.nnz


@dataclass(frozen=True)
class StorageReport:
    """Encoded sizes, feeding the buffer/BRAM model (Table II)."""

    mask_bits: int
    activation_words: int
    activation_bits_per_word: int
    num_columns: int

    @property
    def mask_kib(self) -> float:
        return self.mask_bits / 8.0 / 1024.0

    @property
    def activation_kib(self) -> float:
        return self.activation_words * self.activation_bits_per_word / 8.0 / 1024.0


class EncodedFeatureMap:
    """A feature map after zero removing + index-mask/valid-data encoding.

    This is the data structure the accelerator actually consumes; it
    bundles the tile grid (scan order), the index mask (judging), and the
    column store (state-index addressing).
    """

    def __init__(
        self,
        tensor: SparseTensor3D,
        tile_shape: Tuple[int, int, int],
        kernel_size: int = 3,
        activation_bits: int = 16,
    ) -> None:
        if kernel_size % 2 == 0 or kernel_size <= 0:
            raise ValueError(f"kernel_size must be odd positive, got {kernel_size}")
        self.tensor = tensor
        self.kernel_size = int(kernel_size)
        self.half = self.kernel_size // 2
        self.grid = TileGrid(tensor, tile_shape)
        self.mask = IndexMask(tensor)
        self.columns = ColumnStore(tensor)
        self.activation_bits = int(activation_bits)

    # ------------------------------------------------------------------
    # SDMU-facing queries
    # ------------------------------------------------------------------
    def column_offsets(self) -> List[Tuple[int, int]]:
        """The ``K^2`` SRF column offsets ``(dx, dy)`` in decoder-lane order."""
        rng = range(-self.half, self.half + 1)
        return [(dx, dy) for dx in rng for dy in rng]

    def state_index(
        self, center: Tuple[int, int, int], offset: Tuple[int, int], active: bool
    ) -> Tuple[int, int]:
        """State index ``(A, B)`` of one SRF column (Sec. III-C).

        ``A`` accumulates per feature-map column as the SRF slides; ``B``
        is the in-window count when the SRF is active, else 0 (the paper's
        convention for non-active states).
        """
        x, y, z = center
        cx, cy = x + offset[0], y + offset[1]
        a = self.columns.prefix_count(cx, cy, z + self.half)
        if not active:
            return a, 0
        b = self.columns.count_in(cx, cy, z - self.half, z + self.half)
        return a, b

    def address_fragment(
        self, center: Tuple[int, int, int], offset: Tuple[int, int], active: bool
    ) -> Tuple[int, int]:
        """Address fragment ``(A, A-B)``: fetch rows ``[A-B, A)``."""
        a, b = self.state_index(center, offset, active)
        return a, a - b

    def fetch_column_matches(
        self, center: Tuple[int, int, int], offset: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        """Matches of one SRF column: ``(activation_row, weight_index)``.

        The weight index follows the ``kernel_offsets`` ordering used by
        the reference rulebook, so SDMU output is directly comparable.
        """
        x, y, z = center
        dx, dy = offset
        rows, zs = self.columns.rows_in(x + dx, y + dy, z - self.half, z + self.half)
        k = self.kernel_size
        lane_base = ((dx + self.half) * k + (dy + self.half)) * k
        return [
            (int(row), lane_base + int(zv - z + self.half))
            for row, zv in zip(rows, zs)
        ]

    def match_group(
        self, center: Tuple[int, int, int]
    ) -> List[List[Tuple[int, int]]]:
        """The full match group of one active SRF, per decoder lane."""
        return [
            self.fetch_column_matches(center, offset)
            for offset in self.column_offsets()
        ]

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def storage_report(self) -> StorageReport:
        """Sizes of the encoded representation kept on chip."""
        mask_bits = self.grid.num_active_tiles * self.grid.tile_volume()
        return StorageReport(
            mask_bits=mask_bits,
            activation_words=self.tensor.nnz,
            activation_bits_per_word=self.activation_bits * self.tensor.num_channels,
            num_columns=self.columns.num_columns,
        )
