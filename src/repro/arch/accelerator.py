"""Top-level ESCA accelerator simulator (Fig. 9).

:class:`EscaAccelerator` runs one submanifold-convolution layer (or a
whole SS U-Net) through the cycle-accurate SDMU + computing-core
pipeline, under the main-controller schedule: active tiles in order, SRFs
in scan order, matches in calculation order.  Outputs are integer-exact
against the quantized reference (:mod:`repro.quant`).

:class:`AnalyticalModel` provides a closed-form cycle estimate (validated
against the simulator in the test suite) used for fast design-space
sweeps and for the no-zero-removing ablation, where simulating all
``192^3`` positions cycle-by-cycle would be pointless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.computing_core import ComputingCore, OutputWriter
from repro.arch.config import AcceleratorConfig
from repro.arch.encoding import EncodedFeatureMap
from repro.arch.overhead import (
    SystemOverheadModel,
    TransferVolume,
    layer_transfer_volume,
)
from repro.arch.host import HostExecutionModel, HostLayerRun
from repro.arch.sdmu import Sdmu
from repro.nn.init import conv_weight
from repro.nn.functional import normalize_weights
from repro.nn.rulebook import build_submanifold_rulebook, get_submanifold_rulebook
from repro.nn.unet import SSUNet, collect_all_executions
from repro.quant.fixed_point import ACT_INT16, WEIGHT_INT8
from repro.quant.quantizer import quantize_tensor
from repro.sim.kernel import Component, SimulationKernel
from repro.sparse.coo import SparseTensor3D


@dataclass
class LayerRunResult:
    """Outcome of simulating one Sub-Conv layer."""

    layer_name: str
    config: AcceleratorConfig
    total_cycles: int
    matches: int
    active_srfs: int
    scanned_positions: int
    in_channels: int
    out_channels: int
    accumulators: np.ndarray
    output: SparseTensor3D
    act_scale: float
    weight_scale: float
    sdmu_stats: Dict[str, int]
    cc_stats: Dict[str, int]
    cc_utilization: float
    fifo_max_occupancy: int
    fetch_fifo_stalls: int
    transfer: TransferVolume
    overhead_seconds: float

    @property
    def effective_macs(self) -> int:
        return self.matches * self.in_channels * self.out_channels

    @property
    def effective_ops(self) -> int:
        """Nonzero MACs only, 2 ops each — the paper's GOPS convention."""
        return 2 * self.effective_macs

    @property
    def saturated_accumulators(self) -> int:
        """Output values exceeding the accumulator's integer range.

        The simulator accumulates in int64 so correctness checks stay
        exact; this reports how many outputs would have clipped in the
        configured hardware accumulator (0 for calibrated inputs).
        """
        bits = self.config.accumulator_bits
        limit = 1 << (bits - 1)
        return int(
            ((self.accumulators >= limit) | (self.accumulators < -limit)).sum()
        )

    @property
    def time_seconds(self) -> float:
        """On-chip pipeline time (the idealized-core view)."""
        return self.total_cycles / self.config.clock_hz

    @property
    def total_seconds(self) -> float:
        """End-to-end layer time including system overheads."""
        return self.time_seconds + self.overhead_seconds

    def effective_gops(self) -> float:
        """Core throughput: effective ops over pipeline time."""
        if self.total_cycles == 0:
            return 0.0
        return self.effective_ops / self.time_seconds / 1e9

    def system_gops(self) -> float:
        """End-to-end throughput, the quantity Table III reports."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.effective_ops / self.total_seconds / 1e9


@dataclass
class NetworkRunResult:
    """Aggregate of per-layer runs over a whole network.

    ``layers`` are the accelerated Sub-Conv executions; ``host_layers``
    (populated with ``include_host_layers=True``) are the PS-side
    strided/transposed/pointwise layers the paper's design leaves to the
    ARM cores.
    """

    layers: List[LayerRunResult] = field(default_factory=list)
    host_layers: List[HostLayerRun] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def effective_ops(self) -> int:
        return sum(layer.effective_ops for layer in self.layers)

    @property
    def time_seconds(self) -> float:
        """Pipeline time only (idealized core)."""
        return sum(layer.time_seconds for layer in self.layers)

    @property
    def total_seconds(self) -> float:
        """End-to-end time including per-layer system overheads."""
        return sum(layer.total_seconds for layer in self.layers)

    @property
    def host_seconds(self) -> float:
        """Estimated PS-side time for the non-accelerated layers."""
        return sum(run.seconds for run in self.host_layers)

    @property
    def end_to_end_seconds(self) -> float:
        """Accelerated layers (with overheads) plus host-side layers."""
        return self.total_seconds + self.host_seconds

    def effective_gops(self) -> float:
        if self.time_seconds == 0:
            return 0.0
        return self.effective_ops / self.time_seconds / 1e9

    def system_gops(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.effective_ops / self.total_seconds / 1e9


@dataclass
class PlannedLayerRunResult:
    """Outcome of executing a layer under a compiler plan."""

    layer_name: str
    config: AcceleratorConfig
    plan: "LayerPlan"
    total_cycles: int
    matches: int
    in_channels: int
    out_channels: int
    accumulators: np.ndarray
    output: SparseTensor3D
    act_scale: float
    weight_scale: float
    overhead_seconds: float

    @property
    def effective_ops(self) -> int:
        return 2 * self.matches * self.in_channels * self.out_channels

    @property
    def time_seconds(self) -> float:
        return self.total_cycles / self.config.clock_hz

    @property
    def total_seconds(self) -> float:
        return self.time_seconds + self.overhead_seconds

    def effective_gops(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.effective_ops / self.time_seconds / 1e9


class _EscaPipeline(Component):
    """Main-controller view: SDMU and CC executed in pipeline.

    Advancement is in reverse pipeline order (writer, core, MUX handoff,
    SDMU), which yields synchronous one-cycle-register semantics without
    extra staging state.
    """

    name = "esca-pipeline"

    def __init__(
        self,
        sdmu: Sdmu,
        core: ComputingCore,
        writer: OutputWriter,
    ) -> None:
        self.sdmu = sdmu
        self.core = core
        self.writer = writer
        self._group_remaining: Dict[int, int] = {}
        self._group_rows: Dict[int, int] = {}
        self._pending_rows: List[int] = []
        self._writer_queue_depth = 4
        self.writer_stalls = 0

    def commit(self, cycle: int) -> None:
        self.writer.tick()
        if self._pending_rows and self.writer.can_accept:
            self._pending_rows.pop(0)
            self.writer.accept_row()
        self.core.tick()
        if self.core.can_accept and len(self._pending_rows) < self._writer_queue_depth:
            popped = self.sdmu.pop_match()
            if popped is not None:
                match, group = popped
                seq = group.srf_seq
                if seq not in self._group_remaining:
                    self._group_remaining[seq] = group.total_matches
                    self._group_rows[seq] = group.output_row
                self.core.accept(match, output_row=group.output_row)
                self._group_remaining[seq] -= 1
                if self._group_remaining[seq] == 0:
                    self._pending_rows.append(self._group_rows[seq])
                    del self._group_remaining[seq]
                    del self._group_rows[seq]
        elif not self.core.can_accept:
            pass
        else:
            self.writer_stalls += 1 if self._pending_rows else 0
        self.sdmu.advance(cycle)

    def is_idle(self) -> bool:
        return (
            self.sdmu.is_idle()
            and self.core.is_idle()
            and self.writer.is_idle()
            and not self._pending_rows
            and not self._group_remaining
        )


class EscaAccelerator:
    """The ESCA accelerator: encode, match, compute — cycle-accurately."""

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        overheads: Optional[SystemOverheadModel] = None,
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.overheads = overheads if overheads is not None else SystemOverheadModel()

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, tensor: SparseTensor3D) -> EncodedFeatureMap:
        """Zero removing + index-mask/valid-data encoding of a feature map."""
        return EncodedFeatureMap(
            tensor,
            self.config.tile_shape,
            kernel_size=self.config.kernel_size,
            activation_bits=self.config.activation_bits,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_layer(
        self,
        tensor: SparseTensor3D,
        weights: Optional[np.ndarray] = None,
        out_channels: Optional[int] = None,
        seed: int = 0,
        layer_name: str = "subconv",
        verify: bool = False,
        max_cycles: int = 50_000_000,
    ) -> LayerRunResult:
        """Simulate one Sub-Conv layer on ``tensor``.

        Either real-valued ``weights`` (``(K^3, Cin, Cout)`` or 5D) are
        supplied, or ``out_channels`` is given and weights are generated
        deterministically from ``seed``.  With ``verify=True`` the
        accumulator memory is checked bit-exactly against the quantized
        reference rulebook implementation before returning.
        """
        cfg = self.config
        if weights is None:
            if out_channels is None:
                raise ValueError("provide either weights or out_channels")
            rng = np.random.default_rng(seed)
            weights = conv_weight(
                rng, cfg.kernel_size ** 3, tensor.num_channels, int(out_channels)
            )
        weights = normalize_weights(weights, cfg.kernel_size)
        if weights.shape[1] != tensor.num_channels:
            raise ValueError(
                f"weights expect Cin={weights.shape[1]}, tensor has "
                f"{tensor.num_channels}"
            )

        weights_q = quantize_tensor(weights, WEIGHT_INT8)
        acts_q = quantize_tensor(tensor.features, ACT_INT16)

        encoded = self.encode(tensor)
        cycles, sdmu, core = self._simulate_pass(
            encoded, acts_q.data, weights_q.data, tensor.nnz,
            max_cycles=max_cycles,
        )

        if verify:
            self._verify_against_reference(
                tensor, acts_q.data, weights_q.data, core.accumulators
            )

        transfer = layer_transfer_volume(
            nnz_in=tensor.nnz,
            nnz_out=tensor.nnz,
            in_channels=int(weights.shape[1]),
            out_channels=int(weights.shape[2]),
            kernel_volume=cfg.kernel_size ** 3,
            mask_bits=encoded.storage_report().mask_bits,
            weight_bits=cfg.weight_bits,
            activation_bits=cfg.activation_bits,
        )
        overhead_seconds = self.overheads.layer_overhead_seconds(
            transfer, compute_seconds=cycles / cfg.clock_hz
        )

        acc_scale = acts_q.scale * weights_q.scale
        output = tensor.with_features(core.accumulators.astype(np.float64) * acc_scale)
        return LayerRunResult(
            layer_name=layer_name,
            config=cfg,
            total_cycles=cycles,
            matches=core.stats.get("matches_processed"),
            active_srfs=sdmu.stats.get("srf_active"),
            scanned_positions=encoded.grid.scanned_positions(),
            in_channels=int(weights.shape[1]),
            out_channels=int(weights.shape[2]),
            accumulators=core.accumulators.copy(),
            output=output,
            act_scale=acts_q.scale,
            weight_scale=weights_q.scale,
            sdmu_stats=sdmu.stats.as_dict(),
            cc_stats=core.stats.as_dict(),
            cc_utilization=core.util.fraction,
            fifo_max_occupancy=sdmu.fifo_max_occupancy(),
            fetch_fifo_stalls=sdmu.stats.get("fetch_fifo_stalls"),
            transfer=transfer,
            overhead_seconds=overhead_seconds,
        )

    def _simulate_pass(
        self,
        encoded: EncodedFeatureMap,
        acts_q: np.ndarray,
        weights_q: np.ndarray,
        num_outputs: int,
        tile_subset: Optional[List[int]] = None,
        max_cycles: int = 50_000_000,
    ) -> Tuple[int, Sdmu, ComputingCore]:
        """Run one SDMU + CC pass and return ``(cycles, sdmu, core)``."""
        sdmu = Sdmu(encoded, self.config, tile_subset=tile_subset)
        core = ComputingCore(
            self.config, acts_q, weights_q, num_outputs=num_outputs
        )
        writer = OutputWriter(self.config, out_channels=weights_q.shape[2])
        pipeline = _EscaPipeline(sdmu, core, writer)
        kernel = SimulationKernel([pipeline], max_cycles=max_cycles)
        kernel.run_until_idle(settle_cycles=0)
        return kernel.cycle, sdmu, core

    def run_planned_layer(
        self,
        tensor: SparseTensor3D,
        weights: Optional[np.ndarray] = None,
        out_channels: Optional[int] = None,
        seed: int = 0,
        layer_name: str = "subconv",
        compiler: Optional["NetworkCompiler"] = None,
        verify: bool = False,
        max_cycles: int = 50_000_000,
        rulebook_cache=None,
    ) -> "PlannedLayerRunResult":
        """Execute a layer under a compiler plan (chunks x channel passes).

        Each tile chunk is scanned separately while the *global* encoding
        stays visible, so halo neighbors in other chunks are matched
        correctly; channel passes slice the quantized weights and
        activations and re-accumulate integer partial sums.  The combined
        accumulators are therefore bit-identical to a monolithic
        :meth:`run_layer` (asserted with ``verify=True``).
        """
        from repro.arch.compiler import NetworkCompiler  # local: avoid cycle

        cfg = self.config
        if weights is None:
            if out_channels is None:
                raise ValueError("provide either weights or out_channels")
            rng = np.random.default_rng(seed)
            weights = conv_weight(
                rng, cfg.kernel_size ** 3, tensor.num_channels, int(out_channels)
            )
        weights = normalize_weights(weights, cfg.kernel_size)
        if weights.shape[1] != tensor.num_channels:
            raise ValueError(
                f"weights expect Cin={weights.shape[1]}, tensor has "
                f"{tensor.num_channels}"
            )
        compiler = compiler or NetworkCompiler(cfg, rulebook_cache=rulebook_cache)
        plan = compiler.plan_layer(
            tensor, int(weights.shape[2]), name=layer_name
        )

        weights_q = quantize_tensor(weights, WEIGHT_INT8)
        acts_q = quantize_tensor(tensor.features, ACT_INT16)
        encoded = self.encode(tensor)

        out_ch = int(weights.shape[2])
        accumulators = np.zeros((tensor.nnz, out_ch), dtype=np.int64)
        total_cycles = 0
        total_matches = 0
        for chunk in plan.chunks:
            for pass_id, channel_pass in enumerate(plan.passes):
                act_slice = acts_q.data[
                    :, channel_pass.ic_start:channel_pass.ic_stop
                ]
                weight_slice = weights_q.data[
                    :,
                    channel_pass.ic_start:channel_pass.ic_stop,
                    channel_pass.oc_start:channel_pass.oc_stop,
                ]
                cycles, _, core = self._simulate_pass(
                    encoded,
                    act_slice,
                    weight_slice,
                    tensor.nnz,
                    tile_subset=chunk.tile_indices,
                    max_cycles=max_cycles,
                )
                accumulators[
                    :, channel_pass.oc_start:channel_pass.oc_stop
                ] += core.accumulators
                total_cycles += cycles
                if pass_id == 0:
                    total_matches += core.stats.get("matches_processed")

        if verify:
            self._verify_against_reference(
                tensor, acts_q.data, weights_q.data, accumulators
            )

        core_seconds = total_cycles / cfg.clock_hz
        overhead_seconds = 0.0
        if self.overheads.enabled:
            transfer_seconds = (
                plan.total_bytes / self.overheads.effective_bandwidth_bytes_per_s
            )
            if self.overheads.overlap_transfers:
                transfer_seconds = max(0.0, transfer_seconds - core_seconds)
            overhead_seconds = self.overheads.host_sync_seconds + transfer_seconds

        acc_scale = acts_q.scale * weights_q.scale
        output = tensor.with_features(accumulators.astype(np.float64) * acc_scale)
        return PlannedLayerRunResult(
            layer_name=layer_name,
            config=cfg,
            plan=plan,
            total_cycles=total_cycles,
            matches=total_matches,
            in_channels=int(weights.shape[1]),
            out_channels=out_ch,
            accumulators=accumulators,
            output=output,
            act_scale=acts_q.scale,
            weight_scale=weights_q.scale,
            overhead_seconds=overhead_seconds,
        )

    @staticmethod
    def _verify_against_reference(
        tensor: SparseTensor3D,
        acts_q: np.ndarray,
        weights_q: np.ndarray,
        accumulators: np.ndarray,
    ) -> None:
        rulebook = build_submanifold_rulebook(tensor, round(len(weights_q) ** (1 / 3)))
        expected = np.zeros_like(accumulators)
        for k, rule in enumerate(rulebook.rules):
            if len(rule) == 0:
                continue
            contribution = acts_q[rule[:, 0]].astype(np.int64) @ weights_q[k]
            np.add.at(expected, rule[:, 1], contribution)
        if not np.array_equal(expected, accumulators):
            bad = int((expected != accumulators).any(axis=1).sum())
            raise AssertionError(
                f"accelerator accumulators mismatch reference on {bad} rows"
            )

    def run_network(
        self,
        net: SSUNet,
        tensor: SparseTensor3D,
        verify: bool = False,
        include_host_layers: bool = False,
        host_model: Optional[HostExecutionModel] = None,
        rulebook_cache=None,
    ) -> NetworkRunResult:
        """Simulate every Sub-Conv execution of ``net`` applied to ``tensor``.

        Every ``K^3`` Sub-Conv layer runs through the cycle-accurate
        pipeline with the network's own (quantized) weights.  The strided
        downsampling/upsampling layers and the pointwise head are not
        Sub-Conv workloads; with ``include_host_layers=True`` their
        PS-side cost is estimated by :class:`HostExecutionModel` and
        reported in ``host_layers`` (an end-to-end extension beyond the
        paper's published accounting).

        ``rulebook_cache`` (typically session-owned, see
        :class:`repro.engine.session.InferenceSession`) is threaded
        through both the recording forward pass and the host model, so
        no consumer rebuilds a matching the session already holds.
        """
        executions = collect_all_executions(net, tensor, cache=rulebook_cache)
        workloads = [
            ex
            for ex in executions
            if ex.kind == "subconv" and ex.kernel_size == self.config.kernel_size
        ]
        result = NetworkRunResult()
        if include_host_layers:
            model = host_model or HostExecutionModel()
            host_side = [
                ex
                for ex in executions
                if not (
                    ex.kind == "subconv"
                    and ex.kernel_size == self.config.kernel_size
                )
            ]
            result.host_layers = model.run_layers(host_side, cache=rulebook_cache)
        for workload in workloads:
            layer = self._find_layer(net, workload.name)
            run = self.run_layer(
                workload.input_tensor,
                weights=layer.weight.value,
                layer_name=workload.name,
                verify=verify,
            )
            result.layers.append(run)
        return result

    @staticmethod
    def _find_layer(net: SSUNet, name: str):
        stack = [net]
        while stack:
            module = stack.pop()
            if getattr(module, "name", None) == name:
                return module
            stack.extend(child for _, child in module.named_children())
        raise KeyError(f"layer {name!r} not found in network")


class AnalyticalModel:
    """Closed-form cycle estimate of the ESCA pipeline.

    The pipeline throughput is governed by its slowest stage:

    * SDMU issue: ``scanned_positions * srf_cadence`` cycles;
    * MUX drain: one match per cycle;
    * computing core: ``matches * ceil(Cin/16) * ceil(Cout/16)`` cycles.

    A small constant covers pipeline fill/drain.  The estimate is
    validated against the cycle-accurate simulator in the test suite.
    """

    PIPELINE_FILL_CYCLES = 8

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()

    def matching(self, tensor: SparseTensor3D, cache=None):
        """The submanifold rulebook for ``tensor`` at the configured kernel.

        ``cache`` (a :class:`repro.nn.rulebook.RulebookCache`) lets
        repeated estimates over the same site set — e.g. consecutive
        frames of a static scene — skip the matching pass entirely.
        """
        return get_submanifold_rulebook(
            tensor, self.config.kernel_size, cache=cache
        )

    def scanned_positions(self, tensor: SparseTensor3D) -> int:
        """Positions the SDMU scans under the zero-removing tiling."""
        encoded = EncodedFeatureMap(
            tensor, self.config.tile_shape, kernel_size=self.config.kernel_size
        )
        return encoded.grid.scanned_positions()

    def workload_statistics(
        self, tensor: SparseTensor3D, cache=None
    ) -> Tuple[int, int]:
        """``(scanned_positions, total_matches)`` for ``tensor``."""
        return (
            self.scanned_positions(tensor),
            self.matching(tensor, cache=cache).total_matches,
        )

    def estimate_cycles(
        self,
        scanned_positions: int,
        total_matches: int,
        in_channels: int,
        out_channels: int,
    ) -> int:
        cfg = self.config
        sdmu_cycles = scanned_positions * cfg.srf_cadence
        mux_cycles = total_matches
        cc_cycles = total_matches * cfg.cc_cycles_per_match(
            in_channels, out_channels
        )
        return max(sdmu_cycles, mux_cycles, cc_cycles) + self.PIPELINE_FILL_CYCLES

    def estimate_layer(
        self,
        tensor: SparseTensor3D,
        in_channels: int,
        out_channels: int,
        cache=None,
    ) -> int:
        scanned, matches = self.workload_statistics(tensor, cache=cache)
        return self.estimate_cycles(scanned, matches, in_channels, out_channels)

    def estimate_layer_without_zero_removing(
        self,
        tensor: SparseTensor3D,
        in_channels: int,
        out_channels: int,
    ) -> int:
        """Ablation: scan the *full* grid instead of the active tiles."""
        rulebook = build_submanifold_rulebook(tensor, self.config.kernel_size)
        return self.estimate_cycles(
            tensor.volume, rulebook.total_matches, in_channels, out_channels
        )
