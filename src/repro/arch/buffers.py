"""On-chip buffer models (mask / activation / weight / output buffers).

These track capacity and access counts during simulation and provide the
block-RAM estimates consumed by the Table II resource model.  The basic
storage unit on the ZCU102 is the 36 Kb block RAM, splittable into two
independent 18 Kb halves — which is why Table II reports a fractional
count (365.5).
"""

from __future__ import annotations

from dataclasses import dataclass

BRAM36_BITS = 36 * 1024


@dataclass
class BufferModel:
    """One on-chip buffer.

    Parameters
    ----------
    name:
        Identifier used in reports.
    depth:
        Number of addressable words.
    width_bits:
        Word width in bits.
    banks:
        Independent banks (the activation buffer is banked per decoder
        lane so all ``K^2`` columns fetch in parallel).
    """

    name: str
    depth: int
    width_bits: int
    banks: int = 1

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.width_bits <= 0 or self.banks <= 0:
            raise ValueError(
                f"buffer {self.name!r}: depth/width/banks must be positive"
            )
        self.reads = 0
        self.writes = 0

    @property
    def capacity_bits(self) -> int:
        return self.depth * self.width_bits * self.banks

    def record_read(self, count: int = 1) -> None:
        self.reads += count

    def record_write(self, count: int = 1) -> None:
        self.writes += count

    def bram36(self) -> float:
        """Estimated 36 Kb BRAM usage (0.5 granularity, per bank).

        Each bank needs at least half a BRAM36 (one 18 Kb primitive);
        beyond that, usage grows with capacity in half-block steps.
        """
        per_bank_bits = self.depth * self.width_bits
        half_blocks = max(1, -(-per_bank_bits // (BRAM36_BITS // 2)))
        return 0.5 * half_blocks * self.banks

    def utilization_of(self, used_words: int) -> float:
        """Fraction of the buffer filled by ``used_words`` entries."""
        return min(1.0, used_words / (self.depth * self.banks))
