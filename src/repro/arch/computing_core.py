"""Computing core (CC) — the 16x16 MAC array plus accumulator (Sec. III-D).

One *match* carries the activation vector of one neighbor voxel; the
computing array broadcasts the ``n+1`` input-channel activations to all
``m+1`` computing units, each producing the partial sum of one output
channel (Fig. 8).  Channel dimensions beyond the array parallelism are
covered by loop unrolling over ``ceil(Cin/16) * ceil(Cout/16)`` passes,
which is the per-match occupancy of the array.

The arithmetic is the integer contract of :mod:`repro.quant`: INT16
activations x INT8 weights accumulated in wide integer accumulators, so
the simulator's outputs can be compared bit-exactly against the quantized
reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.config import AcceleratorConfig
from repro.arch.sdmu import Match
from repro.sim.trace import StatsCounter, Utilization


class ComputingCore:
    """Cycle-accurate computing core.

    Parameters
    ----------
    config:
        Accelerator configuration (array parallelism, bit widths).
    activations_q:
        ``(N, Cin)`` integer activation matrix (the activation buffer).
    weights_q:
        ``(K^3, Cin, Cout)`` integer weight tensor (the weight buffer).
    num_outputs:
        Number of output rows (equals N for submanifold convolution).
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        activations_q: np.ndarray,
        weights_q: np.ndarray,
        num_outputs: int,
    ) -> None:
        activations_q = np.asarray(activations_q)
        weights_q = np.asarray(weights_q)
        if activations_q.ndim != 2:
            raise ValueError(
                f"activations must be (N, Cin), got {activations_q.shape}"
            )
        if weights_q.ndim != 3:
            raise ValueError(
                f"weights must be (K^3, Cin, Cout), got {weights_q.shape}"
            )
        if activations_q.shape[1] != weights_q.shape[1]:
            raise ValueError(
                f"channel mismatch: activations Cin={activations_q.shape[1]}, "
                f"weights Cin={weights_q.shape[1]}"
            )
        self.config = config
        self.activations = activations_q.astype(np.int64)
        self.weights = weights_q.astype(np.int64)
        self.in_channels = int(weights_q.shape[1])
        self.out_channels = int(weights_q.shape[2])
        self.accumulators = np.zeros(
            (int(num_outputs), self.out_channels), dtype=np.int64
        )
        self.cycles_per_match = config.cc_cycles_per_match(
            self.in_channels, self.out_channels
        )
        self._busy_remaining = 0
        self._current: Optional[Match] = None
        self._current_output_row: int = -1
        self.stats = StatsCounter()
        self.util = Utilization()

    # ------------------------------------------------------------------
    # Cycle behaviour
    # ------------------------------------------------------------------
    @property
    def can_accept(self) -> bool:
        """Whether the array can latch a new match this cycle."""
        return self._busy_remaining == 0

    def accept(self, match: Match, output_row: int) -> None:
        """Latch one match; the array is busy for the unrolled passes.

        The multiply-accumulate arithmetic is applied immediately (it is
        timing-independent: integer accumulation commutes), while the
        occupancy is modeled by :meth:`tick`.
        """
        if not self.can_accept:
            raise RuntimeError("computing core accept() while busy")
        self._current = match
        self._current_output_row = int(output_row)
        self._busy_remaining = self.cycles_per_match
        activation = self.activations[match.activation_row]
        weight_plane = self.weights[match.weight_index]
        self.accumulators[output_row] += activation @ weight_plane
        self.stats.add("matches_processed")
        self.stats.add(
            "effective_macs", self.in_channels * self.out_channels
        )

    def tick(self) -> None:
        """Advance one cycle of array occupancy."""
        if self._busy_remaining > 0:
            self._busy_remaining -= 1
            self.util.record(True)
            if self._busy_remaining == 0:
                self._current = None
        else:
            self.util.record(False)

    def is_idle(self) -> bool:
        return self._busy_remaining == 0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def effective_macs(self) -> int:
        return self.stats.get("effective_macs")

    @property
    def effective_ops(self) -> int:
        """Two ops (multiply + add) per MAC, the paper's GOPS convention."""
        return 2 * self.effective_macs


class OutputWriter:
    """Streams finished output rows to the output buffer.

    Writing one output row takes ``ceil(Cout / oc_parallelism)`` cycles
    (one array-width beat per pass); writes overlap with computation but
    back-to-back group completions can stall the core.
    """

    def __init__(self, config: AcceleratorConfig, out_channels: int) -> None:
        self.cycles_per_row = max(
            1, -(-int(out_channels) // config.oc_parallelism)
        )
        self._busy_remaining = 0
        self.rows_written = 0
        self.util = Utilization()

    @property
    def can_accept(self) -> bool:
        return self._busy_remaining == 0

    def accept_row(self) -> None:
        if not self.can_accept:
            raise RuntimeError("output writer accept while busy")
        self._busy_remaining = self.cycles_per_row
        self.rows_written += 1

    def tick(self) -> None:
        if self._busy_remaining > 0:
            self._busy_remaining -= 1
            self.util.record(True)
        else:
            self.util.record(False)

    def is_idle(self) -> bool:
        return self._busy_remaining == 0
