"""Pipeline timeline recording — reproduces Fig. 7(b) from the simulator.

Fig. 7(b) of the paper shows the matching steps (read masks, judge +
generate state index, fetch activations) executing in a pipeline with a
K-cycle cadence per SRF.  :class:`MatchingTimeline` records the actual
per-cycle stage occupancy of the cycle-accurate SDMU and renders it as an
ASCII timing diagram, so the pipelining claim is *observed*, not assumed
(the test suite asserts the 3-cycle stagger for K = 3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

STAGE_SYMBOLS = {"read": "R", "judge": "J", "fetch": "F"}
STAGE_ORDER = ("read", "judge", "fetch")


@dataclass(frozen=True)
class StageSpan:
    """Contiguous cycles one SRF spent in one stage."""

    srf_seq: int
    stage: str
    start_cycle: int
    end_cycle: int  # inclusive

    @property
    def duration(self) -> int:
        return self.end_cycle - self.start_cycle + 1


class MatchingTimeline:
    """Records (srf, stage, cycle) occupancy events and renders them.

    The recorder is bounded: only the first ``max_srfs`` SRFs are kept,
    which is all a timing diagram needs.
    """

    def __init__(self, max_srfs: int = 32) -> None:
        if max_srfs <= 0:
            raise ValueError(f"max_srfs must be positive, got {max_srfs}")
        self.max_srfs = int(max_srfs)
        self._cycles: Dict[Tuple[int, str], List[int]] = defaultdict(list)
        self._seen: set = set()

    def record(self, srf_seq: int, stage: str, cycle: int) -> None:
        """Mark ``srf_seq`` as occupying ``stage`` during ``cycle``."""
        if stage not in STAGE_SYMBOLS:
            raise ValueError(f"unknown stage {stage!r}")
        if srf_seq >= self.max_srfs and srf_seq not in self._seen:
            return
        self._seen.add(srf_seq)
        self._cycles[(srf_seq, stage)].append(cycle)

    def spans(self) -> List[StageSpan]:
        """All recorded spans, merged into contiguous runs."""
        result: List[StageSpan] = []
        for (seq, stage), cycles in sorted(self._cycles.items()):
            cycles = sorted(set(cycles))
            run_start = cycles[0]
            prev = cycles[0]
            for cycle in cycles[1:]:
                if cycle == prev + 1:
                    prev = cycle
                    continue
                result.append(StageSpan(seq, stage, run_start, prev))
                run_start = prev = cycle
            result.append(StageSpan(seq, stage, run_start, prev))
        result.sort(key=lambda s: (s.srf_seq, STAGE_ORDER.index(s.stage), s.start_cycle))
        return result

    def stage_start(self, srf_seq: int, stage: str) -> Optional[int]:
        """First cycle ``srf_seq`` occupied ``stage`` (None if never)."""
        cycles = self._cycles.get((srf_seq, stage))
        return min(cycles) if cycles else None

    def srf_sequences(self) -> List[int]:
        return sorted({seq for seq, _ in self._cycles})

    def render(self, max_rows: int = 8, max_cycles: int = 72) -> str:
        """ASCII timing diagram in the style of Fig. 7(b).

        One row per SRF; ``R`` = read masks, ``J`` = judge + generate
        state index, ``F`` = fetch activations.
        """
        sequences = self.srf_sequences()[:max_rows]
        if not sequences:
            return "(empty timeline)"
        first_cycle = min(
            min(cycles) for key, cycles in self._cycles.items()
            if key[0] in sequences
        )
        lines = []
        for seq in sequences:
            row = [" "] * max_cycles
            for stage, symbol in STAGE_SYMBOLS.items():
                for cycle in self._cycles.get((seq, stage), ()):  # type: ignore[arg-type]
                    offset = cycle - first_cycle
                    if 0 <= offset < max_cycles:
                        row[offset] = symbol
            lines.append(f"SRF {seq:<4d} |" + "".join(row).rstrip())
        ruler = "".join(
            "|" if i % 10 == 0 else "." for i in range(max_cycles)
        )
        lines.append("cycle    |" + ruler)
        lines.append(
            f"(cycle origin = {first_cycle}; R=read masks, J=judge+generate, "
            "F=fetch activations)"
        )
        return "\n".join(lines)
