"""ESCA: reproduction of "An Efficient FPGA Accelerator for Point Cloud".

This package is a from-scratch, repository-scale reproduction of the SOCC
2022 paper by Wang et al.  It contains:

* ``repro.sparse`` — a COO sparse 3D tensor library for voxelized point
  clouds.
* ``repro.geometry`` — point clouds, voxelization, and synthetic
  ShapeNet-like / NYU-like dataset generators.
* ``repro.nn`` — a functional reference implementation of submanifold
  sparse convolution (Sub-Conv), strided sparse convolution and
  deconvolution, and the 3D submanifold sparse U-Net (SS U-Net).
* ``repro.quant`` — INT8/INT16 fixed-point quantization, as used by the
  paper's FPGA implementation.
* ``repro.arch`` — the paper's contribution: the tile-based zero removing
  strategy, the index-mask/valid-data encoding scheme, the sparse data
  matching unit (SDMU), the computing core (CC), and a cycle-accurate
  simulator of the full ESCA accelerator.
* ``repro.hwmodel`` — FPGA device catalogs and analytical resource/power
  models (Table II).
* ``repro.baselines`` — GPU / CPU / dense-accelerator execution models
  used for the comparisons in Table III and Fig. 10.
* ``repro.analysis`` — metrics, report formatting, and one experiment
  function per table/figure of the paper's evaluation.
* ``repro.engine`` — the unified :class:`InferenceSession` front door:
  one object owning the rulebook cache, cross-scale plan cache,
  accelerator/host configuration, and quantization settings, with
  single-frame, batched, and estimate execution surfaces; pluggable
  execution backends underneath, and an incremental rulebook delta
  engine (``repro.engine.delta``) that patches cached matchings for
  nearly-static streams instead of rebuilding them.

Quickstart::

    from repro import (
        make_shapenet_like_cloud, Voxelizer, EscaAccelerator,
        AcceleratorConfig,
    )

    cloud = make_shapenet_like_cloud(seed=0)
    grid = Voxelizer(resolution=192, normalize=False).voxelize(cloud)
    accel = EscaAccelerator(AcceleratorConfig())
    result = accel.run_layer(grid, out_channels=16)
    print(result.total_cycles, result.effective_gops())
"""

from repro.version import __version__
from repro.sparse import SparseTensor3D
from repro.geometry import (
    PointCloud,
    Voxelizer,
    make_nyu_like_cloud,
    make_shapenet_like_cloud,
)
from repro.nn import SSUNet, SubmanifoldConv3d, UNetConfig, submanifold_conv3d
from repro.arch import (
    AcceleratorConfig,
    AnalyticalModel,
    EscaAccelerator,
    TileGrid,
    ZeroRemover,
)
from repro.analysis import (
    run_fig10,
    run_table1,
    run_table2,
    run_table3,
)
from repro.engine import (
    DeltaRulebookCache,
    ExecutionBackend,
    InferenceSession,
    PlanCache,
    QuantizationSpec,
    available_backends,
    coordinate_delta,
    get_backend,
    patch_rulebook,
    register_backend,
)

__all__ = [
    "__version__",
    "SparseTensor3D",
    "PointCloud",
    "Voxelizer",
    "make_shapenet_like_cloud",
    "make_nyu_like_cloud",
    "SSUNet",
    "UNetConfig",
    "SubmanifoldConv3d",
    "submanifold_conv3d",
    "AcceleratorConfig",
    "AnalyticalModel",
    "EscaAccelerator",
    "TileGrid",
    "ZeroRemover",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig10",
    "InferenceSession",
    "PlanCache",
    "QuantizationSpec",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "DeltaRulebookCache",
    "coordinate_delta",
    "patch_rulebook",
]
