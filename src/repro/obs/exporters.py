"""Export surfaces for the metric registry.

Two exporters, both stdlib-only:

* ``MetricsHTTPServer`` — a daemon-threaded ``http.server`` exposing
  ``/metrics`` (Prometheus text), ``/metrics.json`` (JSON render),
  ``/traces`` (recent trace dump when a tracer is attached) and
  ``/healthz``.  This is what ``python -m repro serve --metrics-port P``
  binds.
* ``PeriodicSnapshotLogger`` — a daemon thread emitting a one-line
  counter/gauge summary every ``period_s`` seconds through a caller
  supplied ``emit`` callable (``print`` by default).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Tracer

__all__ = ["MetricsHTTPServer", "PeriodicSnapshotLogger"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(registry: MetricRegistry, tracer: Optional[Tracer]):
    class _Handler(BaseHTTPRequestHandler):
        def _reply(self, body: str, content_type: str,
                   status: int = 200) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self):  # noqa: N802 (http.server API)
            if self.path in ("/metrics", "/"):
                self._reply(
                    registry.render("prometheus"), PROMETHEUS_CONTENT_TYPE
                )
            elif self.path == "/metrics.json":
                self._reply(registry.render("json"), "application/json")
            elif self.path == "/traces":
                body = tracer.dump_json() if tracer is not None else "[]"
                self._reply(body, "application/json")
            elif self.path == "/healthz":
                self._reply("ok\n", "text/plain; charset=utf-8")
            else:
                self._reply("not found\n", "text/plain; charset=utf-8", 404)

        def log_message(self, format, *args):  # noqa: A002
            pass  # scrape traffic stays off stderr

    return _Handler


class MetricsHTTPServer:
    """Serve a registry (and optional tracer) over HTTP on a thread."""

    def __init__(self, registry: MetricRegistry, port: int = 0,
                 host: str = "127.0.0.1",
                 tracer: Optional[Tracer] = None):
        self.registry = registry
        self.tracer = tracer
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        if self._httpd is not None:
            return self
        handler = _make_handler(self.registry, self.tracer)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def _summarise(registry: MetricRegistry) -> str:
    parts = []
    for metric in registry.metrics():
        if metric.kind == "histogram":
            continue
        for key, value in sorted(metric.series().items()):
            suffix = "{%s}" % ",".join(key) if key else ""
            if float(value).is_integer():
                parts.append(f"{metric.name}{suffix}={int(value)}")
            else:
                parts.append(f"{metric.name}{suffix}={value:.4g}")
    return " ".join(parts) if parts else "(no series yet)"


class PeriodicSnapshotLogger:
    """Emit a one-line registry summary every ``period_s`` seconds."""

    def __init__(self, registry: MetricRegistry, period_s: float = 10.0,
                 emit: Callable[[str], None] = print):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.registry = registry
        self.period_s = period_s
        self._emit = emit
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.wait(self.period_s):
            self._emit(f"[metrics] {_summarise(self.registry)}")

    def start(self) -> "PeriodicSnapshotLogger":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-metrics-log", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PeriodicSnapshotLogger":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
