"""Dependency-free metric registry: counters, gauges, histograms.

The registry is the single telemetry surface shared by the session,
server and cluster tiers.  Design points, in order of importance:

* **Thread-safe.**  Every mutation takes the registry lock.  Counters
  and gauges are therefore safe to bump from the asyncio dispatch loop,
  executor threads and client threads at once — this is what backs the
  ``ServeStats`` accounting that used to race.
* **Near-zero overhead when disabled.**  ``registry.enabled = False``
  turns every ``Histogram.observe`` and timing helper into a single
  attribute check.  Counters and gauges keep counting regardless: they
  are the accounting backbone of ``ServeStats``/``ClusterStats`` and a
  plain locked add is already cheap.
* **Small-tuple labels.**  A metric declares its label *names* once
  (``labels=("stage",)``); each observation supplies the label *values*
  and series are keyed on the resulting tuple.  Cardinality is expected
  to stay tiny (stages, backends, shed reasons, worker addresses).
* **Quantiles from buckets.**  Histograms use fixed log-spaced latency
  buckets and estimate p50/p90/p99 by linear interpolation inside the
  bucket holding the target rank — the classic Prometheus
  ``histogram_quantile`` scheme, computed locally.

Rendering: ``registry.render()`` emits Prometheus text exposition
format; ``registry.render("json")`` emits a JSON document with the same
content.  ``registry.snapshot()`` returns the raw dict for programmatic
use (periodic snapshot logging, tests).
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "MetricRegistry",
]

# Log-spaced latency buckets: 50us .. 10s in 1-2.5-5 steps.  Wide
# enough for a sub-millisecond warm frame and a multi-second cold
# cluster batch on the same axis.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

# Powers of two for micro-batch sizes (max_batch defaults to 16 but
# callers may raise it).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_series(name: str, labels: Tuple[str, ...],
                   key: Tuple[str, ...], extra: str = "") -> str:
    pairs = [
        f'{label}="{_escape_label_value(value)}"'
        for label, value in zip(labels, key)
    ]
    if extra:
        pairs.append(extra)
    if not pairs:
        return name
    return f"{name}{{{','.join(pairs)}}}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base class: name, help text, declared label names, shared lock."""

    kind = "untyped"

    def __init__(self, registry: "MetricRegistry", name: str, help: str,
                 labels: Tuple[str, ...]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help = help
        self.labels = tuple(labels)

    def _key(self, label_values: Dict[str, str]) -> Tuple[str, ...]:
        if len(label_values) != len(self.labels):
            raise ValueError(
                f"{self.name} expects labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            )
        try:
            return tuple(str(label_values[label]) for label in self.labels)
        except KeyError as exc:
            raise ValueError(
                f"{self.name} expects labels {self.labels}, "
                f"got {tuple(sorted(label_values))}"
            ) from exc

    def series(self) -> Dict[Tuple[str, ...], float]:
        raise NotImplementedError

    def render_prometheus(self) -> List[str]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            series = {
                ",".join(key) if key else "": value
                for key, value in self.series().items()
            }
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labels),
            "series": series,
        }

    def _header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(Metric):
    """Monotonic (per series) float counter.

    ``sync_to`` exists so pre-existing python-side counters (cache
    hits, frames run) can mirror their absolute totals into the
    registry without double counting — the registry value is simply
    pinned to the caller's source of truth.
    """

    kind = "counter"

    def __init__(self, registry, name, help, labels):
        super().__init__(registry, name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **label_values: str) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def sync_to(self, value: float, **label_values: str) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **label_values: str) -> float:
        key = self._key(label_values)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)

    def render_prometheus(self) -> List[str]:
        lines = self._header()
        for key, value in sorted(self.series().items()):
            lines.append(
                f"{_format_series(self.name, self.labels, key)} "
                f"{_format_value(value)}"
            )
        return lines


class Gauge(Metric):
    """A value that goes up and down (queue depth, warm sessions)."""

    kind = "gauge"

    def __init__(self, registry, name, help, labels):
        super().__init__(registry, name, help, labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **label_values: str) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **label_values: str) -> None:
        key = self._key(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **label_values: str) -> None:
        self.inc(-amount, **label_values)

    def value(self, **label_values: str) -> float:
        key = self._key(label_values)
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)

    def render_prometheus(self) -> List[str]:
        lines = self._header()
        for key, value in sorted(self.series().items()):
            lines.append(
                f"{_format_series(self.name, self.labels, key)} "
                f"{_format_value(value)}"
            )
        return lines


class _HistogramSeries:
    __slots__ = ("counts", "total", "sum")

    def __init__(self, num_buckets: int):
        self.counts = [0] * (num_buckets + 1)  # +1 overflow (+Inf)
        self.total = 0
        self.sum = 0.0


class Histogram(Metric):
    """Fixed-bucket histogram with bucket-based quantile estimation.

    ``observe`` is the only hot-path call and honours the registry's
    ``enabled`` flag: when telemetry is off it is a single attribute
    check and return.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labels,
                 buckets: Iterable[float] = LATENCY_BUCKETS_S):
        super().__init__(registry, name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"{name}: buckets must be a non-empty ascending sequence"
            )
        self.buckets = bounds
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **label_values: str) -> None:
        if not self._registry.enabled:
            return
        key = self._key(label_values)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets)
                )
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            series.counts[idx] += 1
            series.total += 1
            series.sum += value

    def count(self, **label_values: str) -> int:
        key = self._key(label_values)
        with self._lock:
            series = self._series.get(key)
            return series.total if series else 0

    def sum(self, **label_values: str) -> float:
        key = self._key(label_values)
        with self._lock:
            series = self._series.get(key)
            return series.sum if series else 0.0

    def quantile(self, q: float, **label_values: str) -> float:
        """Estimate the q-quantile (q in [0, 1]) from bucket counts.

        Linear interpolation inside the target bucket; observations in
        the overflow bucket clamp to the highest finite bound.  Returns
        ``nan`` for an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = self._key(label_values)
        with self._lock:
            series = self._series.get(key)
            if series is None or series.total == 0:
                return math.nan
            counts = list(series.counts)
            total = series.total
        rank = q * total
        cumulative = 0.0
        for i, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += count
        return self.buckets[-1]

    def series(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return {key: s.total for key, s in self._series.items()}

    def summaries(self) -> Dict[Tuple[str, ...], Dict[str, float]]:
        """Per-series count/sum/p50/p90/p99 — the snapshot-log payload."""
        with self._lock:
            keys = list(self._series)
        out = {}
        for key in keys:
            label_values = dict(zip(self.labels, key))
            out[key] = {
                "count": self.count(**label_values),
                "sum": self.sum(**label_values),
                "p50": self.quantile(0.50, **label_values),
                "p90": self.quantile(0.90, **label_values),
                "p99": self.quantile(0.99, **label_values),
            }
        return out

    def render_prometheus(self) -> List[str]:
        lines = self._header()
        with self._lock:
            snapshot = {
                key: (list(s.counts), s.total, s.sum)
                for key, s in self._series.items()
            }
        bucket_name = self.name + "_bucket"
        for key, (counts, total, total_sum) in sorted(snapshot.items()):
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                le = 'le="%s"' % _format_value(bound)
                series = _format_series(bucket_name, self.labels, key, le)
                lines.append(f"{series} {cumulative}")
            series = _format_series(
                bucket_name, self.labels, key, 'le="+Inf"'
            )
            lines.append(f"{series} {total}")
            lines.append(
                f"{_format_series(self.name + '_sum', self.labels, key)} "
                f"{repr(float(total_sum))}"
            )
            lines.append(
                f"{_format_series(self.name + '_count', self.labels, key)} "
                f"{total}"
            )
        return lines

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["buckets"] = list(self.buckets)
        data["summaries"] = {
            ",".join(key) if key else "": summary
            for key, summary in self.summaries().items()
        }
        return data


class MetricRegistry:
    """Named metric registry with idempotent declarations.

    Declaring the same name twice with the same kind/labels returns the
    existing metric (so a session and a server can both "declare" a
    shared metric); conflicting redeclarations raise.
    """

    def __init__(self, enabled: bool = True):
        self._lock = threading.RLock()
        self._metrics: Dict[str, Metric] = {}
        self.enabled = bool(enabled)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _declare(self, cls, name, help, labels, **kwargs) -> Metric:
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labels != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labels}"
                    )
                return existing
            metric = cls(self, name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Iterable[float] = LATENCY_BUCKETS_S) -> Histogram:
        return self._declare(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {metric.name: metric.to_dict() for metric in self.metrics()}

    def render(self, fmt: str = "prometheus") -> str:
        if fmt == "prometheus":
            lines: List[str] = []
            for metric in self.metrics():
                lines.extend(metric.render_prometheus())
            return "\n".join(lines) + "\n" if lines else ""
        if fmt == "json":
            return json.dumps(self.snapshot(), indent=2, sort_keys=True)
        raise ValueError(f"unknown render format {fmt!r}")
