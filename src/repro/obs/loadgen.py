"""Open-loop (Poisson-arrival) load generator for :class:`SessionServer`.

Closed-loop clients (submit, await, repeat) self-throttle under
overload: the offered rate collapses to whatever the server sustains
and tail latency looks flatteringly bounded.  An *open-loop* generator
keeps arriving at the configured rate regardless of completions —
exactly how independent users behave — so queueing delay, deadline
sheds and overload rejections actually show up in the measured
distribution.  This is the harness behind
``benchmarks/test_bench_observe.py`` and the
``results/serve_tail_latency.txt`` artifact.

Arrivals are a Poisson process: inter-arrival gaps are drawn from an
exponential distribution (``random.expovariate``) with a seeded RNG so
runs are reproducible.  Each arrival submits one frame (round-robin
over the supplied pool) on its own task and never waits for earlier
requests.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.runtime.server import (
    DeadlineExceeded,
    ServerOverloaded,
    SessionServer,
)

__all__ = ["LoadResult", "run_open_loop", "run_load"]


def _percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (numpy's default method)."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return float(ordered[lower])
    fraction = rank - lower
    return float(
        ordered[lower] + (ordered[upper] - ordered[lower]) * fraction
    )


@dataclass
class LoadResult:
    """Outcome of one open-loop run at a fixed offered rate."""

    offered_rate_hz: float
    submitted: int = 0
    completed: int = 0
    shed_overload: int = 0
    shed_deadline: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    #: Per-completed-request end-to-end seconds (submit -> result).
    latencies_s: List[float] = field(default_factory=list)

    @property
    def shed_total(self) -> int:
        return self.shed_overload + self.shed_deadline

    @property
    def achieved_rate_hz(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    def percentile(self, p: float) -> float:
        return _percentile(self.latencies_s, p)

    def summary_lines(self) -> List[str]:
        p50 = self.percentile(50.0) * 1e3
        p90 = self.percentile(90.0) * 1e3
        p99 = self.percentile(99.0) * 1e3
        return [
            f"offered {self.offered_rate_hz:8.1f} req/s | "
            f"achieved {self.achieved_rate_hz:8.1f} req/s | "
            f"completed {self.completed:4d}/{self.submitted:<4d} | "
            f"shed {self.shed_overload:3d} overload "
            f"+ {self.shed_deadline:3d} deadline",
            f"  e2e latency  p50 {p50:8.2f} ms   p90 {p90:8.2f} ms   "
            f"p99 {p99:8.2f} ms",
        ]


async def run_open_loop(
    server: SessionServer,
    frames: Sequence,
    rate_hz: float,
    num_requests: int,
    seed: int = 0,
) -> LoadResult:
    """Drive a *running* server with Poisson arrivals at ``rate_hz``.

    Submits ``num_requests`` frames (round-robin over ``frames``) with
    exponential inter-arrival gaps, never waiting for completions, then
    awaits all outstanding requests and returns the tallied
    :class:`LoadResult`.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if num_requests < 1:
        raise ValueError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if not frames:
        raise ValueError("need at least one frame to submit")
    rng = random.Random(seed)
    result = LoadResult(offered_rate_hz=float(rate_hz))

    async def one_request(frame) -> None:
        start = time.perf_counter()
        try:
            await server.submit(frame)
        except ServerOverloaded:
            result.shed_overload += 1
        except DeadlineExceeded:
            result.shed_deadline += 1
        except Exception:
            result.errors += 1
        else:
            result.completed += 1
            result.latencies_s.append(time.perf_counter() - start)

    t0 = time.perf_counter()
    tasks = []
    for i in range(num_requests):
        tasks.append(
            asyncio.get_running_loop().create_task(
                one_request(frames[i % len(frames)])
            )
        )
        result.submitted += 1
        if i + 1 < num_requests:
            await asyncio.sleep(rng.expovariate(rate_hz))
    await asyncio.gather(*tasks)
    result.wall_seconds = time.perf_counter() - t0
    return result


def run_load(
    frames: Sequence,
    rate_hz: float,
    num_requests: int,
    session=None,
    seed: int = 0,
    **server_kwargs,
) -> tuple:
    """Blocking convenience: build a server, run one open-loop burst.

    Returns ``(LoadResult, ServeStats)`` — the client-side latency
    tally plus the server's own accounting for the same run.
    """

    async def _run():
        async with SessionServer(
            session=session, **server_kwargs
        ) as server:
            result = await run_open_loop(
                server, frames, rate_hz, num_requests, seed=seed
            )
            stats = server.stats
        return result, stats

    return asyncio.run(_run())


def sweep_rates(
    frames: Sequence,
    rates_hz: Sequence[float],
    num_requests: int,
    session=None,
    seed: int = 0,
    **server_kwargs,
) -> List[tuple]:
    """Run one open-loop burst per offered rate; returns result pairs."""
    out = []
    for rate in rates_hz:
        out.append(
            run_load(
                frames,
                rate,
                num_requests,
                session=session,
                seed=seed,
                **server_kwargs,
            )
        )
    return out
