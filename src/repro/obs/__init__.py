"""repro.obs — dependency-free telemetry for the serving stack.

The production instrument panel the ROADMAP's "Serving QoS +
observability hardening" item asks for:

* :mod:`repro.obs.metrics` — ``MetricRegistry`` with ``Counter`` /
  ``Gauge`` / fixed-bucket ``Histogram`` (log-spaced latency buckets,
  bucket-based p50/p90/p99, tuple labels, thread-safe, near-zero
  overhead when disabled) plus Prometheus-text and JSON rendering.
* :mod:`repro.obs.trace` — ``Span`` / ``Trace`` / ``Tracer``: bounded
  ring buffer of per-request stage timelines with JSON export.
* :mod:`repro.obs.exporters` — stdlib ``http.server`` metrics endpoint
  and a periodic snapshot logger.
* :mod:`repro.obs.loadgen` — open-loop (Poisson-arrival) load
  generator for tail-latency benchmarking of ``SessionServer``.

Every component of the stack (session, server, cluster backend,
worker) creates a private registry by default; passing one registry
through all tiers — as ``python -m repro serve --metrics-port`` does —
unifies them into a single scrape surface.

``loadgen`` imports the runtime tier, so it is exposed lazily to keep
``repro.obs`` itself import-light and dependency-free.
"""

from repro.obs.exporters import MetricsHTTPServer, PeriodicSnapshotLogger
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricRegistry,
)
from repro.obs.trace import Span, Trace, Tracer

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "LoadResult",
    "MetricRegistry",
    "MetricsHTTPServer",
    "PeriodicSnapshotLogger",
    "Span",
    "Trace",
    "Tracer",
    "run_load",
    "run_open_loop",
]

_LOADGEN_NAMES = {"LoadResult", "run_load", "run_open_loop"}


def __getattr__(name):
    if name in _LOADGEN_NAMES:
        from repro.obs import loadgen

        return getattr(loadgen, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
