"""Per-request stage timelines: spans, traces, and a bounded tracer.

A ``Trace`` is one request's (or one micro-batch's) timeline through
the serving stack: queue-wait → batch-linger → prepare/patch →
execute → respond.  Each stage is a ``Span`` with monotonic start/end
offsets relative to the trace origin, so a dumped trace reads as a
waterfall.

The ``Tracer`` keeps a fixed-capacity ring buffer of the most recent
traces (old ones fall off the back) and serialises them to JSON for
``python -m repro serve --trace-dump PATH``.  All mutation is
lock-guarded; recording a span is two ``perf_counter`` calls and a
dataclass append, and a disabled tracer reduces every call to a no-op
object.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Span", "Trace", "Tracer"]


@dataclass
class Span:
    """One named stage inside a trace; times are seconds from origin."""

    name: str
    start_s: float
    end_s: Optional[float] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "seconds": self.seconds,
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        return data


class _SpanContext:
    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span):
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace.finish_span(self._span)


class Trace:
    """A bounded-lifetime timeline of spans for one request/batch."""

    __slots__ = ("name", "meta", "spans", "wall_time", "_origin", "_lock")

    def __init__(self, name: str, meta: Optional[Dict[str, object]] = None):
        self.name = name
        self.meta: Dict[str, object] = dict(meta or {})
        self.spans: List[Span] = []
        self.wall_time = time.time()
        self._origin = time.perf_counter()
        self._lock = threading.Lock()

    def elapsed(self) -> float:
        return time.perf_counter() - self._origin

    def span(self, name: str, **meta: object) -> _SpanContext:
        """Context manager recording ``name`` from enter to exit."""
        span = Span(name=name, start_s=self.elapsed(), meta=dict(meta))
        with self._lock:
            self.spans.append(span)
        return _SpanContext(self, span)

    def finish_span(self, span: Span) -> None:
        if span.end_s is None:
            span.end_s = self.elapsed()

    def add_span(self, name: str, start_s: float, end_s: float,
                 **meta: object) -> Span:
        """Record an already-measured stage (offsets from trace origin)."""
        span = Span(
            name=name, start_s=start_s, end_s=end_s, meta=dict(meta)
        )
        with self._lock:
            self.spans.append(span)
        return span

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            spans = [span.to_dict() for span in self.spans]
        return {
            "name": self.name,
            "wall_time": self.wall_time,
            "meta": dict(self.meta),
            "spans": spans,
        }


class Tracer:
    """Fixed-capacity ring buffer of recent traces.

    ``enabled=False`` makes ``start`` return a ``Trace`` that is simply
    never retained — callers keep one code path either way.
    """

    def __init__(self, capacity: int = 256, enabled: bool = True):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.enabled = bool(enabled)
        self._traces: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def start(self, name: str, **meta: object) -> Trace:
        trace = Trace(name, meta)
        if self.enabled:
            with self._lock:
                self._traces.append(trace)
        return trace

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def recent(self, n: Optional[int] = None) -> List[Trace]:
        with self._lock:
            traces = list(self._traces)
        if n is not None:
            traces = traces[-n:]
        return traces

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def dump(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        return [trace.to_dict() for trace in self.recent(n)]

    def dump_json(self, n: Optional[int] = None, indent: int = 2) -> str:
        return json.dumps(self.dump(n), indent=indent)

    def dump_to(self, path, n: Optional[int] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_json(n))
            handle.write("\n")
