"""Quantization fidelity analysis — the precision ablation.

The paper fixes INT8 weights / INT16 activations (Sec. IV-A) without an
ablation.  This module quantifies the choice: for a Sub-Conv layer it
sweeps weight/activation bit widths and reports the signal-to-noise
ratio and worst-case relative error of the fixed-point output against
the float reference, which the precision benchmark turns into the
justification table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.functional import submanifold_conv3d
from repro.quant.fixed_point import FixedPointFormat
from repro.quant.quantizer import QuantizedSubConv
from repro.sparse.coo import SparseTensor3D


def feature_snr_db(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Signal-to-noise ratio of ``candidate`` against ``reference`` in dB."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {candidate.shape}"
        )
    signal = float((reference ** 2).sum())
    noise = float(((reference - candidate) ** 2).sum())
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


def max_relative_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Max abs error normalized by the reference peak magnitude."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    peak = float(np.abs(reference).max()) if reference.size else 0.0
    if peak == 0.0:
        return 0.0
    return float(np.abs(reference - candidate).max()) / peak


@dataclass(frozen=True)
class PrecisionPoint:
    """Fidelity of one (weight bits, activation bits) configuration."""

    weight_bits: int
    activation_bits: int
    snr_db: float
    max_rel_error: float


def sweep_precision(
    tensor: SparseTensor3D,
    weights: np.ndarray,
    weight_bits: Sequence[int] = (4, 6, 8, 12),
    activation_bits: Sequence[int] = (8, 16),
    kernel_size: int = 3,
) -> List[PrecisionPoint]:
    """Fixed-point fidelity sweep of one Sub-Conv layer.

    Returns one :class:`PrecisionPoint` per (weight, activation) bit
    combination, ordered as iterated.
    """
    reference = submanifold_conv3d(tensor, weights, kernel_size=kernel_size)
    points: List[PrecisionPoint] = []
    for w_bits in weight_bits:
        for a_bits in activation_bits:
            qconv = QuantizedSubConv(
                weights,
                kernel_size=kernel_size,
                weight_fmt=FixedPointFormat(bits=int(w_bits), name=f"INT{w_bits}"),
                act_fmt=FixedPointFormat(bits=int(a_bits), name=f"INT{a_bits}"),
            )
            quantized = qconv.forward(tensor)
            points.append(
                PrecisionPoint(
                    weight_bits=int(w_bits),
                    activation_bits=int(a_bits),
                    snr_db=feature_snr_db(
                        reference.features, quantized.features
                    ),
                    max_rel_error=max_relative_error(
                        reference.features, quantized.features
                    ),
                )
            )
    return points


def find_point(
    points: Sequence[PrecisionPoint], weight_bits: int, activation_bits: int
) -> Optional[PrecisionPoint]:
    """The sweep entry for a given configuration, or ``None``."""
    for point in points:
        if (point.weight_bits, point.activation_bits) == (
            weight_bits,
            activation_bits,
        ):
            return point
    return None
