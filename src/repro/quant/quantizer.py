"""Per-tensor calibration and the integer-arithmetic Sub-Conv.

:class:`QuantizedSubConv` is the arithmetic contract of the accelerator:
INT8 weights times INT16 activations accumulated in INT32, then
requantized back to INT16 with a per-layer output scale.  The
cycle-accurate computing core reproduces these integer outputs exactly
(integer addition is associative, so accumulation order is irrelevant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.functional import apply_rulebook, normalize_weights
from repro.nn.rulebook import Rulebook, build_submanifold_rulebook
from repro.quant.fixed_point import (
    ACC_INT32,
    ACT_INT16,
    WEIGHT_INT8,
    FixedPointFormat,
    dequantize,
    quantize,
    saturate,
)
from repro.sparse.coo import SparseTensor3D


def fold_batchnorm(
    weights: np.ndarray,
    bias: Optional[np.ndarray],
    bn_scale: np.ndarray,
    bn_shift: np.ndarray,
) -> tuple:
    """Fold an affine batch norm into the preceding convolution.

    Given ``y = conv(x, W) + b`` followed by ``z = y * s + t`` (per
    output channel), returns ``(W', b')`` with
    ``conv(x, W') + b' == z`` exactly: ``W'[..., c] = W[..., c] * s[c]``
    and ``b' = b * s + t``.  Folding before quantization is how INT8
    deployments (like the paper's) absorb the BN layers for free.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 3:
        raise ValueError(f"weights must be (K^3, Cin, Cout), got {weights.shape}")
    bn_scale = np.asarray(bn_scale, dtype=np.float64).reshape(-1)
    bn_shift = np.asarray(bn_shift, dtype=np.float64).reshape(-1)
    out_channels = weights.shape[2]
    if len(bn_scale) != out_channels or len(bn_shift) != out_channels:
        raise ValueError(
            f"BN parameters must have {out_channels} channels, got "
            f"{len(bn_scale)}/{len(bn_shift)}"
        )
    folded_weights = weights * bn_scale[None, None, :]
    base_bias = (
        np.zeros(out_channels) if bias is None
        else np.asarray(bias, dtype=np.float64).reshape(-1)
    )
    folded_bias = base_bias * bn_scale + bn_shift
    return folded_weights, folded_bias


def calibrate_scale(
    values: np.ndarray, fmt: FixedPointFormat, headroom: float = 1.0
) -> float:
    """Symmetric max-abs calibration: one LSB = ``max|x| * headroom / max_code``."""
    values = np.asarray(values, dtype=np.float64)
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    if peak == 0.0:
        return 1.0 / fmt.max_value
    if headroom <= 0.0:
        raise ValueError(f"headroom must be positive, got {headroom}")
    return peak * headroom / fmt.max_value


def calibrate_scale_batch(
    stack: np.ndarray, fmt: FixedPointFormat, headroom: float = 1.0
) -> np.ndarray:
    """Per-frame :func:`calibrate_scale` over a ``(B, ...)`` stack.

    Returns shape ``(B,)``.  Bit-identical to calling
    :func:`calibrate_scale` on each frame: the max-abs reduction is
    exact, and the ``peak * headroom / max_code`` arithmetic runs the
    same operations in the same order, just elementwise.
    """
    if headroom <= 0.0:
        raise ValueError(f"headroom must be positive, got {headroom}")
    stack = np.asarray(stack, dtype=np.float64)
    batch = stack.shape[0]
    if stack.ndim < 2 or stack.size == 0:
        peaks = np.zeros(batch, dtype=np.float64)
    else:
        axes = tuple(range(1, stack.ndim))
        peaks = np.max(np.abs(stack), axis=axes)
    return np.where(
        peaks == 0.0, 1.0 / fmt.max_value, peaks * headroom / fmt.max_value
    )


@dataclass
class QuantizedTensor:
    """Integer data plus the real value of one LSB."""

    data: np.ndarray
    scale: float
    fmt: FixedPointFormat

    def dequantized(self) -> np.ndarray:
        return dequantize(self.data, self.scale)

    @property
    def shape(self):
        return self.data.shape


def quantize_tensor(
    values: np.ndarray,
    fmt: FixedPointFormat,
    scale: Optional[float] = None,
) -> QuantizedTensor:
    """Quantize ``values`` with an optionally pre-calibrated scale."""
    if scale is None:
        scale = calibrate_scale(values, fmt)
    return QuantizedTensor(quantize(values, scale, fmt), scale, fmt)


class QuantizedSubConv:
    """Integer-arithmetic submanifold convolution.

    Parameters
    ----------
    weights:
        Real-valued ``(K^3, Cin, Cout)`` (or 5D) weights; quantized to
        ``weight_fmt`` at construction.
    kernel_size:
        Cubic kernel size ``K``.
    weight_scale:
        Optional pre-calibrated weight scale.
    weight_fmt / act_fmt:
        Fixed-point formats; default to the paper's INT8 weights and
        INT16 activations.  The precision ablation sweeps these.
    """

    def __init__(
        self,
        weights: np.ndarray,
        kernel_size: int = 3,
        weight_scale: Optional[float] = None,
        weight_fmt: FixedPointFormat = WEIGHT_INT8,
        act_fmt: FixedPointFormat = ACT_INT16,
    ) -> None:
        weights = normalize_weights(weights, kernel_size)
        self.kernel_size = int(kernel_size)
        self.weight_fmt = weight_fmt
        self.act_fmt = act_fmt
        self.weights_q = quantize_tensor(weights, weight_fmt, scale=weight_scale)
        self.in_channels = int(weights.shape[1])
        self.out_channels = int(weights.shape[2])

    def integer_forward(
        self,
        activations_q: np.ndarray,
        tensor: SparseTensor3D,
        rulebook: Optional[Rulebook] = None,
    ) -> np.ndarray:
        """Pure-integer forward: INT16 x INT8 -> INT32 accumulators.

        ``activations_q`` is the ``(N, Cin)`` INT16 integer feature matrix
        aligned with ``tensor``'s rows.  Returns INT32 accumulators
        (saturation applied once at the end, as the hardware does in its
        output stage).
        """
        if activations_q.shape != (tensor.nnz, self.in_channels):
            raise ValueError(
                f"activations shape {activations_q.shape} != "
                f"({tensor.nnz}, {self.in_channels})"
            )
        if rulebook is None:
            rulebook = build_submanifold_rulebook(tensor, self.kernel_size)
        acc = apply_rulebook(
            rulebook,
            activations_q.astype(np.int64),
            self.weights_q.data.astype(np.int64),
            tensor.nnz,
        )
        return saturate(acc.astype(np.int64), ACC_INT32)

    def forward(
        self,
        tensor: SparseTensor3D,
        act_scale: Optional[float] = None,
        out_scale: Optional[float] = None,
        rulebook: Optional[Rulebook] = None,
    ) -> SparseTensor3D:
        """Quantize -> integer conv -> requantize to INT16 -> dequantize.

        Returns a real-valued tensor whose features passed through the
        full fixed-point pipeline, i.e. what the FPGA would produce.
        """
        acts = quantize_tensor(tensor.features, self.act_fmt, scale=act_scale)
        acc = self.integer_forward(acts.data, tensor, rulebook=rulebook)
        acc_scale = acts.scale * self.weights_q.scale
        real = dequantize(acc, acc_scale)
        if out_scale is None:
            out_scale = calibrate_scale(real, self.act_fmt)
        out_q = quantize(real, out_scale, self.act_fmt)
        return tensor.with_features(dequantize(out_q, out_scale))
