"""Fixed-point formats and saturating integer conversions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement integer format.

    Attributes
    ----------
    bits:
        Total bit width (including sign).
    name:
        Human-readable label used in reports (e.g. ``"INT8"``).
    """

    bits: int
    name: str

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError(f"need at least 2 bits, got {self.bits}")

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def levels(self) -> int:
        return 1 << self.bits


WEIGHT_INT8 = FixedPointFormat(bits=8, name="INT8")
ACT_INT16 = FixedPointFormat(bits=16, name="INT16")
ACC_INT32 = FixedPointFormat(bits=32, name="INT32")


def saturate(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Clamp integer ``values`` into the representable range of ``fmt``."""
    return np.clip(values, fmt.min_value, fmt.max_value)


def quantize(values: np.ndarray, scale, fmt: FixedPointFormat) -> np.ndarray:
    """Quantize real ``values`` to integers: ``round(values / scale)``, saturated.

    ``scale`` is the real value of one least-significant bit — a scalar,
    or an array broadcasting against ``values`` (e.g. per-frame scales
    shaped ``(B, 1, 1)`` against a ``(B, N, C)`` stack; the division is
    elementwise either way, so the batched result is bit-identical to
    quantizing each frame with its own scalar).
    """
    scale_arr = np.asarray(scale, dtype=np.float64)
    if np.any(scale_arr <= 0.0) or not np.all(np.isfinite(scale_arr)):
        raise ValueError(f"scale must be positive and finite, got {scale}")
    q = np.rint(np.asarray(values, dtype=np.float64) / scale_arr)
    return saturate(q, fmt).astype(np.int64)


def dequantize(values: np.ndarray, scale) -> np.ndarray:
    """Map integers back to reals: ``values * scale`` (scalar or
    broadcastable per-frame scale array)."""
    return np.asarray(values, dtype=np.float64) * np.asarray(
        scale, dtype=np.float64
    )


def quantization_error(values: np.ndarray, scale: float, fmt: FixedPointFormat) -> float:
    """Maximum absolute round-trip error of quantizing ``values``."""
    round_trip = dequantize(quantize(values, scale, fmt), scale)
    if np.asarray(values).size == 0:
        return 0.0
    return float(np.max(np.abs(np.asarray(values, dtype=np.float64) - round_trip)))
