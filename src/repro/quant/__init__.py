"""Fixed-point quantization (INT8 weights / INT16 activations).

The paper quantizes the pre-trained SS U-Net to 8-bit weights and 16-bit
activations (Sec. IV-A).  This package provides the formats, saturating
conversions, calibration, and an integer-arithmetic Sub-Conv layer whose
outputs the cycle-accurate accelerator must match *bit-exactly*.
"""

from repro.quant.fixed_point import (
    ACT_INT16,
    WEIGHT_INT8,
    FixedPointFormat,
    dequantize,
    quantize,
    saturate,
)
from repro.quant.quantizer import (
    QuantizedSubConv,
    QuantizedTensor,
    calibrate_scale,
    calibrate_scale_batch,
    fold_batchnorm,
    quantize_tensor,
)
from repro.quant.analysis import (
    PrecisionPoint,
    feature_snr_db,
    find_point,
    max_relative_error,
    sweep_precision,
)

__all__ = [
    "FixedPointFormat",
    "WEIGHT_INT8",
    "ACT_INT16",
    "quantize",
    "dequantize",
    "saturate",
    "calibrate_scale",
    "calibrate_scale_batch",
    "fold_batchnorm",
    "QuantizedTensor",
    "quantize_tensor",
    "QuantizedSubConv",
    "PrecisionPoint",
    "feature_snr_db",
    "max_relative_error",
    "sweep_precision",
    "find_point",
]
