"""Traditional dense-CNN accelerator applied to SSCN (degradation study).

Secs. I-II of the paper argue that CNN accelerators (Eyeriss, GoSPA, ...)
degrade severely on submanifold sparse convolution because they cannot
perform the matching operation: they must (a) stream the *dense* feature
map from DRAM position by position, and (b) compute the *dilated*
traditional convolution, whose outputs at non-submanifold sites are
wasted work.

This model quantifies both effects for an accelerator with the same MAC
array and clock as ESCA:

* streaming the dense ``X*Y*Z*Cin`` INT16 feature map at DRAM bandwidth;
* computing one MAC per (input nonzero, kernel offset) pair — i.e. a
  zero-skipping dense accelerator — of which only the submanifold
  fraction is useful.
"""

from __future__ import annotations

from repro.arch.config import AcceleratorConfig
from repro.baselines.platform import PlatformModel, SubConvWorkload


class DenseAcceleratorModel(PlatformModel):
    """Zero-skipping dense CNN accelerator running a Sub-Conv workload."""

    name = "Dense CNN accelerator (Eyeriss-like)"

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        dram_bandwidth_bytes_per_s: float = 19.2e9,
        power_watts: float = 3.45,
    ) -> None:
        if dram_bandwidth_bytes_per_s <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        self.config = config or AcceleratorConfig()
        self.dram_bandwidth_bytes_per_s = dram_bandwidth_bytes_per_s
        self.power_watts = power_watts

    def stream_seconds(self, workload: SubConvWorkload) -> float:
        """Time to stream the dense feature map (no index mask available)."""
        dense_bytes = (
            workload.volume * workload.in_channels
            * self.config.activation_bits // 8
        )
        return dense_bytes / self.dram_bandwidth_bytes_per_s

    def compute_seconds(self, workload: SubConvWorkload) -> float:
        """Dilated-convolution MACs on the zero-skipping array."""
        dilated_pairs = workload.nnz * workload.kernel_volume
        macs = dilated_pairs * workload.in_channels * workload.out_channels
        macs_per_second = self.config.macs_per_cycle * self.config.clock_hz
        return macs / macs_per_second

    def layer_seconds(self, workload: SubConvWorkload) -> float:
        """Streaming and compute overlap; the slower one dominates."""
        return max(self.stream_seconds(workload), self.compute_seconds(workload))

    def wasted_work_fraction(self, workload: SubConvWorkload) -> float:
        """Fraction of performed MACs that land on non-submanifold outputs."""
        dilated_pairs = workload.nnz * workload.kernel_volume
        if dilated_pairs == 0:
            return 0.0
        return 1.0 - workload.matches / dilated_pairs
