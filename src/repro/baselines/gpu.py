"""Tesla P100 execution model for SSCN (SpConv-style).

GPU execution of a Sub-Conv layer decomposes into three phases the paper
identifies as the bottleneck (Secs. I-II: "the matching operation also
limits their performance"):

1. **Kernel launch / framework overhead** per layer — fixed.
2. **Rulebook construction**: building and probing a coordinate hash for
   every (site, offset) pair.  GPUs execute this at a modest effective
   probe rate because of atomics and irregular memory access.
3. **Gather-GEMM-scatter**: the effective (nonzero) MACs run at a small
   fraction of peak FP32 throughput because gathers/scatters break
   coalescing and the per-offset GEMMs are small.

Constants are calibrated to the published operating point — 9.40 GOPS /
90.56 W for the SS U-Net on a P100 (Table III) and ~1.89x ESCA on one
full-resolution Sub-Conv layer (Fig. 10) — and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.baselines.platform import PlatformModel, SubConvWorkload


class GpuExecutionModel(PlatformModel):
    """Calibrated P100 timing model."""

    name = "Tesla P100 (GPU)"

    def __init__(
        self,
        launch_seconds: float = 0.30e-3,
        probe_rate_per_s: float = 92.7e6,
        effective_gemm_ops_per_s: float = 15.06e9,
        power_watts: float = 90.56,
    ) -> None:
        if launch_seconds < 0:
            raise ValueError("launch_seconds must be non-negative")
        if probe_rate_per_s <= 0 or effective_gemm_ops_per_s <= 0:
            raise ValueError("rates must be positive")
        self.launch_seconds = launch_seconds
        self.probe_rate_per_s = probe_rate_per_s
        self.effective_gemm_ops_per_s = effective_gemm_ops_per_s
        self.power_watts = power_watts

    def matching_seconds(self, workload: SubConvWorkload) -> float:
        """Rulebook build: one hash probe per (site, kernel offset)."""
        return workload.matching_probes / self.probe_rate_per_s

    def compute_seconds(self, workload: SubConvWorkload) -> float:
        """Gather-GEMM-scatter over the effective ops."""
        return workload.effective_ops / self.effective_gemm_ops_per_s

    def layer_seconds(self, workload: SubConvWorkload) -> float:
        return (
            self.launch_seconds
            + self.matching_seconds(workload)
            + self.compute_seconds(workload)
        )
