"""Baseline execution models for the Table III / Fig. 10 comparisons.

The paper compares ESCA against a Tesla P100 GPU and a Xeon Gold 6148 CPU
running the SS U-Net, plus the FPGA PointNet accelerator of Zheng et al.
[19] (published numbers).  None of that hardware is available here, so
:class:`GpuExecutionModel` and :class:`CpuExecutionModel` reproduce the
*mechanism* of each platform's inefficiency on SSCN — per-kernel launch
overhead, hash-based rulebook matching, and low-efficiency gather-GEMM —
with constants calibrated to the paper's published operating points
(GPU: 9.40 GOPS / 90.56 W on the network, 1.89x ESCA per layer;
CPU: 8.41x ESCA per layer).  See DESIGN.md's substitution table.
"""

from repro.baselines.platform import PlatformModel, SubConvWorkload, workload_from_tensor
from repro.baselines.cpu import CpuExecutionModel
from repro.baselines.gpu import GpuExecutionModel
from repro.baselines.dense_accel import DenseAcceleratorModel
from repro.baselines.comparators import (
    PUBLISHED_ESCA,
    PUBLISHED_FPGA_POINTNET,
    PUBLISHED_GPU_P100,
    PublishedResult,
)

__all__ = [
    "PlatformModel",
    "SubConvWorkload",
    "workload_from_tensor",
    "GpuExecutionModel",
    "CpuExecutionModel",
    "DenseAcceleratorModel",
    "PublishedResult",
    "PUBLISHED_GPU_P100",
    "PUBLISHED_FPGA_POINTNET",
    "PUBLISHED_ESCA",
]
