"""Xeon Gold 6148 execution model for SSCN.

Same phase decomposition as the GPU model (matching + gather-GEMM) with
CPU-typical rates: serial hash probing with cache-unfriendly access, and
modest effective GEMM throughput on the small, gather-bound per-offset
matrix products.  Calibrated so one full-resolution Sub-Conv layer runs
~8.41x slower than ESCA, the speedup the paper reports in Fig. 10.
"""

from __future__ import annotations

from repro.baselines.platform import PlatformModel, SubConvWorkload


class CpuExecutionModel(PlatformModel):
    """Calibrated Xeon Gold 6148 timing model."""

    name = "Xeon Gold 6148 (CPU)"

    def __init__(
        self,
        dispatch_seconds: float = 0.05e-3,
        probe_rate_per_s: float = 25.0e6,
        effective_gemm_ops_per_s: float = 2.16e9,
        power_watts: float = 150.0,
    ) -> None:
        if dispatch_seconds < 0:
            raise ValueError("dispatch_seconds must be non-negative")
        if probe_rate_per_s <= 0 or effective_gemm_ops_per_s <= 0:
            raise ValueError("rates must be positive")
        self.dispatch_seconds = dispatch_seconds
        self.probe_rate_per_s = probe_rate_per_s
        self.effective_gemm_ops_per_s = effective_gemm_ops_per_s
        self.power_watts = power_watts

    def matching_seconds(self, workload: SubConvWorkload) -> float:
        return workload.matching_probes / self.probe_rate_per_s

    def compute_seconds(self, workload: SubConvWorkload) -> float:
        return workload.effective_ops / self.effective_gemm_ops_per_s

    def layer_seconds(self, workload: SubConvWorkload) -> float:
        return (
            self.dispatch_seconds
            + self.matching_seconds(workload)
            + self.compute_seconds(workload)
        )
