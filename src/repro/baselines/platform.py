"""Common workload abstraction shared by all platform models.

Every platform (ESCA, GPU, CPU, dense accelerator) executes the identical
*effective* workload of a Sub-Conv layer: the matches of the matching
operation and the implied multiply-accumulates.  This module extracts
that description from a sparse tensor so the comparison benchmarks are
apples-to-apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.nn.rulebook import build_submanifold_rulebook
from repro.nn.unet import LayerExecution
from repro.sparse.coo import SparseTensor3D


@dataclass(frozen=True)
class SubConvWorkload:
    """The platform-independent description of one Sub-Conv layer."""

    name: str
    nnz: int
    matches: int
    in_channels: int
    out_channels: int
    kernel_size: int
    volume: int

    @property
    def kernel_volume(self) -> int:
        return self.kernel_size ** 3

    @property
    def effective_macs(self) -> int:
        return self.matches * self.in_channels * self.out_channels

    @property
    def effective_ops(self) -> int:
        """2 ops per nonzero MAC — the GOPS convention of the paper."""
        return 2 * self.effective_macs

    @property
    def matching_probes(self) -> int:
        """Neighbor queries of the matching operation (nnz x K^3)."""
        return self.nnz * self.kernel_volume


def workload_from_tensor(
    tensor: SparseTensor3D,
    in_channels: int,
    out_channels: int,
    kernel_size: int = 3,
    name: str = "subconv",
) -> SubConvWorkload:
    """Build the workload description of one Sub-Conv layer."""
    rulebook = build_submanifold_rulebook(tensor, kernel_size)
    return SubConvWorkload(
        name=name,
        nnz=tensor.nnz,
        matches=rulebook.total_matches,
        in_channels=int(in_channels),
        out_channels=int(out_channels),
        kernel_size=int(kernel_size),
        volume=tensor.volume,
    )


def workloads_from_executions(
    executions: List[LayerExecution], kernel_size: int = 3
) -> List[SubConvWorkload]:
    """Workloads of every recorded Sub-Conv execution with kernel ``K``."""
    return [
        workload_from_tensor(
            ex.input_tensor,
            ex.in_channels,
            ex.out_channels,
            kernel_size=ex.kernel_size,
            name=ex.name,
        )
        for ex in executions
        if ex.kernel_size == kernel_size
    ]


class PlatformModel:
    """Base interface: seconds to execute one Sub-Conv layer."""

    name: str = "platform"
    power_watts: float = float("nan")

    def layer_seconds(self, workload: SubConvWorkload) -> float:
        raise NotImplementedError

    def network_seconds(self, workloads: List[SubConvWorkload]) -> float:
        return sum(self.layer_seconds(w) for w in workloads)

    def network_gops(self, workloads: List[SubConvWorkload]) -> float:
        seconds = self.network_seconds(workloads)
        if seconds <= 0:
            return 0.0
        ops = sum(w.effective_ops for w in workloads)
        return ops / seconds / 1e9

    def gops_per_watt(self, gops: float) -> float:
        if self.power_watts <= 0:
            return 0.0
        return gops / self.power_watts
