"""Published literature numbers used in Table III.

The FPGA PointNet accelerator of Zheng et al. [19] appears in Table III
as published numbers only (the paper did not re-run it), and the paper's
own GPU measurement and ESCA row are kept here as the reference the
reproduction is compared against in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PublishedResult:
    """One row of Table III as published."""

    label: str
    device: str
    frequency_mhz: float | None
    model: str
    precision: str
    power_watts: float
    performance_gops: float

    @property
    def power_efficiency(self) -> float:
        """GOPS per watt."""
        if self.power_watts <= 0:
            return 0.0
        return self.performance_gops / self.power_watts


PUBLISHED_GPU_P100 = PublishedResult(
    label="GPU",
    device="Tesla P100",
    frequency_mhz=None,
    model="SS U-Net",
    precision="FP32",
    power_watts=90.56,
    performance_gops=9.40,
)

PUBLISHED_FPGA_POINTNET = PublishedResult(
    label="[19]",
    device="Zynq XC7Z045",
    frequency_mhz=100.0,
    model="O-PointNet",
    precision="INT16",
    power_watts=2.15,
    performance_gops=1.21,
)

PUBLISHED_ESCA = PublishedResult(
    label="ours (paper)",
    device="Zynq ZCU102",
    frequency_mhz=270.0,
    model="SS U-Net",
    precision="INT8/INT16",
    power_watts=3.45,
    performance_gops=17.73,
)
