"""Cluster worker: a TCP endpoint hosting warm sessions per spec digest.

``python -m repro worker --port P`` turns one process into a serving
node of the cluster tier: it accepts coordinator connections speaking
the :mod:`repro.runtime.wire` protocol and answers the five request
frames —

* ``SPEC_SYNC`` ships a pickled ``(net, precision, quantization)``
  blob (the :class:`repro.engine.backend.ShardSpecStore` payload);
  the worker builds a warm :class:`~repro.engine.session.
  InferenceSession` for the blob's digest.  Digests are the unit of
  deployment: a new blob is a *new* digest and a *new* session, while
  the old one keeps serving until retired — which is exactly the
  zero-downtime weight-swap story.
* ``PREPARE`` warms one plan (site set ``coords``/``shape``) on a
  spec's session — the coordinator replays these when a worker rejoins
  so traffic lands on warm plans.
* ``EXECUTE_BATCH`` runs one ``run_batch`` digest group and returns the
  stacked output features, bit-identical to in-process execution (the
  worker reconstructs frames exactly like the process-pool worker of
  :mod:`repro.engine.backend` and runs the fused numpy engine).
* ``HEALTH`` reports liveness and warmth (known digests, prepared
  plans, served counters) without touching the compute path.
* ``REFRESH`` retires spec sessions (all, or all but one digest).

Request handling is one asyncio task per frame, so a long
``EXECUTE_BATCH`` never blocks a ``HEALTH`` probe; compute itself runs
on the default executor behind a per-worker lock (one session is not
thread-safe, and one process has one set of cores anyway), and each
connection's replies serialize on a write lock.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import time
from collections import OrderedDict
from typing import Callable, Optional, Set, Tuple

import numpy as np

from repro.runtime.wire import (
    ChecksumError,
    ConnectionClosed,
    Frame,
    MessageType,
    ProtocolError,
    error_payload,
    read_frame,
    write_frame,
)

DEFAULT_MAX_SESSIONS = 4


class UnknownSpecError(RuntimeError):
    """A request named a spec digest this worker has never been synced.

    The coordinator treats this as "re-send SPEC_SYNC and retry", not as
    a dead worker — it is the normal first contact after a rejoin or a
    ring reroute.
    """


def _build_session(spec_blob: bytes):
    """Unpickle one spec blob into a warm numpy-backed session."""
    from repro.engine.session import InferenceSession

    net, precision, quantization = pickle.loads(spec_blob)
    return InferenceSession(
        net=net,
        precision=precision,
        quantization=quantization,
        backend="numpy",
    )


class ClusterWorker:
    """One serving node: warm sessions keyed by spec digest.

    ``max_sessions`` bounds how many spec generations stay warm (LRU):
    during a weight swap both the old and the new digest serve
    concurrently, but a worker must not accumulate every deployment it
    has ever seen.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.host = host
        self.port = int(port)  # 0 = ephemeral; rebound by start()
        self.max_sessions = int(max_sessions)
        self._sessions: "OrderedDict[bytes, object]" = OrderedDict()
        #: (spec digest, coord digest) pairs whose plan is warm — via
        #: PREPARE replay or a served EXECUTE_BATCH.
        self._prepared: Set[Tuple[bytes, bytes]] = set()
        self._compute_lock = asyncio.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_at = time.monotonic()
        self.groups_served = 0
        self.frames_served = 0
        #: Requests currently waiting for (or holding) the compute lock
        #: — the worker-side queue depth HEALTH reports upstream.
        self._compute_waiters = 0

    @property
    def queue_depth(self) -> int:
        """Compute requests queued or running right now."""
        return self._compute_waiters

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> asyncio.base_events.Server:
        """Bind the listening socket (resolving ``port=0``) and serve."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._started_at = time.monotonic()
        return self._server

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._sessions.clear()
        self._prepared.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        inflight: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ConnectionClosed:
                    break  # routine client disconnect
                except (ProtocolError, ChecksumError, ConnectionError, OSError):
                    break  # garbled or dead stream: drop the connection
                task = asyncio.get_running_loop().create_task(
                    self._dispatch(frame, writer, write_lock)
                )
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            if inflight:
                await asyncio.gather(*tuple(inflight), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self,
        frame: Frame,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            payload = frame.load()
            if frame.type == MessageType.SPEC_SYNC:
                result = await self._spec_sync(payload)
            elif frame.type == MessageType.PREPARE:
                result = await self._prepare(payload)
            elif frame.type == MessageType.EXECUTE_BATCH:
                result = await self._execute_batch(payload)
            elif frame.type == MessageType.HEALTH:
                result = self._health(payload)
            elif frame.type == MessageType.REFRESH:
                result = self._refresh(payload)
            else:
                raise ProtocolError(
                    f"{frame.type.name} is not a request frame"
                )
            reply_type, reply = MessageType.OK, result
        except Exception as exc:
            reply_type, reply = MessageType.ERROR, error_payload(exc)
        try:
            async with write_lock:
                await write_frame(writer, reply_type, frame.request_id, reply)
        except (ConnectionError, OSError):
            pass  # client left before the answer; nothing to tell it

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _session(self, spec_digest: bytes):
        session = self._sessions.get(spec_digest)
        if session is None:
            raise UnknownSpecError(
                f"spec {spec_digest.hex()} is not synced to this worker"
            )
        self._sessions.move_to_end(spec_digest)
        return session

    async def _spec_sync(self, payload: dict) -> dict:
        digest: bytes = payload["digest"]
        built = False
        if digest not in self._sessions:
            blob: bytes = payload["blob"]
            self._compute_waiters += 1
            try:
                async with self._compute_lock:
                    session = await asyncio.get_running_loop().run_in_executor(
                        None, _build_session, blob
                    )
            finally:
                self._compute_waiters -= 1
            self._sessions[digest] = session
            built = True
            while len(self._sessions) > self.max_sessions:
                retired, _ = self._sessions.popitem(last=False)
                self._prepared = {
                    pair for pair in self._prepared if pair[0] != retired
                }
        self._sessions.move_to_end(digest)
        return {"digest": digest, "built": built, "specs": len(self._sessions)}

    def _warm_plan(self, session, coords, shape) -> int:
        from repro.sparse.coo import SparseTensor3D

        coords = np.asarray(coords)
        template = SparseTensor3D(
            coords,
            np.ones((len(coords), 1), dtype=np.float64),
            tuple(shape),
        )
        session.warm(template)
        return template.nnz

    async def _prepare(self, payload: dict) -> dict:
        spec_digest: bytes = payload["spec"]
        session = self._session(spec_digest)
        self._compute_waiters += 1
        try:
            async with self._compute_lock:
                nnz = await asyncio.get_running_loop().run_in_executor(
                    None,
                    self._warm_plan,
                    session,
                    payload["coords"],
                    payload["shape"],
                )
        finally:
            self._compute_waiters -= 1
        self._prepared.add((spec_digest, payload.get("digest", b"")))
        return {"nnz": nnz}

    def _run_group(self, session, payload: dict) -> np.ndarray:
        from repro.sparse.coo import SparseTensor3D

        features = np.asarray(payload["features"])
        template = SparseTensor3D(
            np.asarray(payload["coords"]),
            features[0],
            tuple(payload["shape"]),
        )
        frames = [template] + [
            template.with_features(features[b])
            for b in range(1, features.shape[0])
        ]
        outs = session.run_batch(frames)
        return np.stack([out.features for out in outs])

    async def _execute_batch(self, payload: dict) -> dict:
        spec_digest: bytes = payload["spec"]
        session = self._session(spec_digest)
        self._compute_waiters += 1
        try:
            async with self._compute_lock:
                stacked = await asyncio.get_running_loop().run_in_executor(
                    None, self._run_group, session, payload
                )
        finally:
            self._compute_waiters -= 1
        self._prepared.add((spec_digest, payload.get("digest", b"")))
        self.groups_served += 1
        self.frames_served += int(np.asarray(payload["features"]).shape[0])
        return {"features": stacked}

    def _health(self, payload) -> dict:
        # ``queue_depth`` and ``warm_sessions`` are additive telemetry
        # (this wire version's coordinators read them with defaults, so
        # frames from older workers that lack them still parse).
        return {
            "pid": os.getpid(),
            "port": self.port,
            "uptime_s": time.monotonic() - self._started_at,
            "specs": [digest.hex() for digest in self._sessions],
            "prepared": sorted(
                coord.hex() for _spec, coord in self._prepared
            ),
            "groups_served": self.groups_served,
            "frames_served": self.frames_served,
            "max_sessions": self.max_sessions,
            "queue_depth": self.queue_depth,
            "warm_sessions": len(self._sessions),
        }

    def _refresh(self, payload) -> dict:
        keep = None if payload is None else payload.get("keep")
        dropped = [
            digest for digest in self._sessions if digest != keep
        ]
        for digest in dropped:
            del self._sessions[digest]
        self._prepared = {
            pair for pair in self._prepared if pair[0] not in set(dropped)
        }
        return {
            "dropped": [digest.hex() for digest in dropped],
            "kept": [digest.hex() for digest in self._sessions],
        }


READY_PREFIX = "repro-worker ready"


def ready_line(worker: ClusterWorker) -> str:
    """The startup announcement a fleet spawner parses for the port."""
    return (
        f"{READY_PREFIX} host={worker.host} port={worker.port} "
        f"pid={os.getpid()}"
    )


def parse_ready_line(line: str) -> Tuple[str, int]:
    """Extract ``(host, port)`` from a worker's readiness announcement."""
    if not line.startswith(READY_PREFIX):
        raise ValueError(f"not a worker readiness line: {line!r}")
    fields = dict(
        part.split("=", 1) for part in line.split() if "=" in part
    )
    return fields["host"], int(fields["port"])


async def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    max_sessions: int = DEFAULT_MAX_SESSIONS,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Run one worker until cancelled (the ``python -m repro worker`` body).

    ``announce`` receives the readiness line once the socket is bound —
    the CLI prints it to stdout so a parent that spawned the worker with
    ``--port 0`` can learn the ephemeral port.
    """
    worker = ClusterWorker(host=host, port=port, max_sessions=max_sessions)
    server = await worker.start()
    if announce is not None:
        announce(ready_line(worker))
    try:
        async with server:
            await server.serve_forever()
    finally:
        await worker.stop()
