"""Cluster coordinator: the ``remote`` execution backend over TCP workers.

This module promotes the process-pool seam of
:class:`repro.engine.backend.ShardedProcessBackend` to a cross-machine
tier.  :class:`RemoteShardBackend` is a registered
:class:`~repro.engine.backend.ExecutionBackend` (name ``"remote"``)
whose :meth:`~RemoteShardBackend.run_groups` fans ``run_batch`` digest
groups out to :mod:`repro.runtime.worker` processes over the
:mod:`repro.runtime.wire` protocol:

* **Digest-affine routing via a consistent-hash ring.**  Each worker
  address owns ``replicas`` virtual points on a hash circle; a group
  routes to the first live point at or after its coordinate digest.
  The same site set therefore always reaches the same worker (whose
  plan cache is warm for it), and losing a worker only moves *its*
  digests — to their ring successors — instead of reshuffling the whole
  fleet the way ``hash % n`` would.
* **Failure handling.**  Every request carries a timeout; a transport
  failure (dead socket, timeout, garbled frame) marks the worker lost
  (``stats.workers_lost``), re-routes the group to the ring successor,
  re-syncs the spec there if needed, and retries — bounded by
  ``retries`` (``stats.groups_rerouted`` counts the re-routes).
  Worker-side *application* errors (an ``ERROR`` frame) propagate to
  the caller instead: a request that is wrong on one worker is wrong on
  all of them.  The one exception is the worker answering "unknown
  spec" — the normal first contact after a restart — which triggers a
  spec re-sync and a retry on the *same* worker.
* **Warm rejoin.**  The shared
  :class:`~repro.engine.backend.ShardSpecStore` records every served
  site set; :meth:`RemoteShardBackend.rejoin` replays the current spec
  blob plus ``PREPARE`` frames for the recorded seeds, so a returning
  worker's sessions and plans are warm *before* traffic reaches it.
* **Zero-downtime weight swaps.**  A new network pickles to a new spec
  blob with a new digest; ``SPEC_SYNC`` ships it while workers keep
  serving the old digest, and traffic moves atomically with the next
  ``run_groups`` call (see ``docs/cluster.md``).

The coordinator owns a private event loop on a daemon thread, so the
synchronous backend surface (``run_groups`` is called from
``InferenceSession.run_batch``, possibly inside a
:class:`~repro.runtime.server.SessionServer` executor thread) drives
the async fan-out without touching any caller's loop.

:class:`LocalWorkerFleet` spawns loopback ``python -m repro worker``
subprocesses for demos, tests, and the ``python -m repro serve
--cluster N`` front door.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.engine.backend import (
    BackendCapabilities,
    ExecutionBackend,
    GroupTask,
    NumpyFusedBackend,
    ShardSpecStore,
    register_backend,
)
from repro.obs.metrics import MetricRegistry
from repro.runtime.wire import (
    ChecksumError,
    ConnectionClosed,
    MessageType,
    ProtocolError,
    RemoteWorkerError,
    raise_if_error,
    read_frame,
    write_frame,
)

Address = Tuple[str, int]

#: Transport-level failures that mark a worker lost (vs application
#: errors, which propagate to the caller).
TRANSPORT_ERRORS = (
    ConnectionClosed,
    ProtocolError,
    ChecksumError,
    ConnectionError,
    asyncio.TimeoutError,
    OSError,
)


class ClusterError(RuntimeError):
    """The coordinator ran out of live workers (or retries) for a group."""


def parse_address(address: Union[str, Address]) -> Address:
    """Normalize ``"host:port"`` strings and ``(host, port)`` pairs."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"worker address must be 'host:port', got {address!r}"
            )
        return host, int(port)
    host, port = address
    return str(host), int(port)


def format_address(address: Address) -> str:
    return f"{address[0]}:{address[1]}"


@dataclass
class ClusterStats:
    """Coordinator-side counters of one :class:`RemoteShardBackend`."""

    groups_dispatched: int = 0
    frames_dispatched: int = 0
    #: Workers declared dead after a transport failure (each counted
    #: once until it rejoins).
    workers_lost: int = 0
    #: Re-route events: a group moved to a ring successor after its
    #: worker failed mid-request.
    groups_rerouted: int = 0
    #: Spec blobs shipped to workers (cold syncs, rejoins, weight swaps).
    spec_syncs: int = 0
    #: Workers revived via :meth:`RemoteShardBackend.rejoin`.
    rejoins: int = 0


class HashRing:
    """Consistent hashing of digests onto worker addresses.

    Each node owns ``replicas`` virtual points (BLAKE2b of
    ``"host:port#i"``) on a 64-bit circle.  :meth:`route` walks
    clockwise from the digest's own hash to the first point whose node
    is in the caller's live set — so node loss re-routes only the lost
    node's arcs, and a rejoining node reclaims exactly its old arcs
    (which is what makes warm-rejoin worth replaying plans for).
    """

    def __init__(
        self, nodes: Sequence[Address] = (), replicas: int = 64
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, Address]] = []
        self._hashes: List[int] = []
        self._nodes: Set[Address] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: bytes) -> int:
        return int.from_bytes(
            hashlib.blake2b(key, digest_size=8).digest(), "big"
        )

    @property
    def nodes(self) -> Tuple[Address, ...]:
        return tuple(sorted(self._nodes))

    def add(self, node: Address) -> None:
        node = parse_address(node)
        if node in self._nodes:
            return
        self._nodes.add(node)
        label = format_address(node)
        for replica in range(self.replicas):
            point = self._hash(f"{label}#{replica}".encode())
            index = bisect.bisect_left(self._hashes, point)
            self._hashes.insert(index, point)
            self._points.insert(index, (point, node))

    def route(
        self, digest: bytes, live: Optional[Set[Address]] = None
    ) -> Optional[Address]:
        """The first live node clockwise of ``digest`` (``None`` if none)."""
        if not self._points:
            return None
        eligible = self._nodes if live is None else live
        if not eligible:
            return None
        start = bisect.bisect_right(self._hashes, self._hash(digest))
        for step in range(len(self._points)):
            _, node = self._points[(start + step) % len(self._points)]
            if node in eligible:
                return node
        return None

    def preference(self, digest: bytes) -> Tuple[Address, ...]:
        """Every node in clockwise order from ``digest`` (failover order)."""
        order: List[Address] = []
        seen: Set[Address] = set()
        if not self._points:
            return ()
        start = bisect.bisect_right(self._hashes, self._hash(digest))
        for step in range(len(self._points)):
            _, node = self._points[(start + step) % len(self._points)]
            if node not in seen:
                seen.add(node)
                order.append(node)
        return tuple(order)


class _WorkerLink:
    """One coordinator connection: pipelined request/reply correlation.

    Requests are written under a lock and correlated to replies by the
    frame's ``request_id`` (a background receive task resolves pending
    futures), so health probes never queue behind a long
    ``EXECUTE_BATCH``.  Any transport failure fails *every* pending
    future — the caller decides what that means for the worker.
    """

    def __init__(self, address: Address) -> None:
        self.address = address
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._recv_task: Optional[asyncio.Task] = None
        self._send_lock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()
        self._next_id = 0

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self, timeout: float) -> None:
        # Serialized: concurrent groups routed to a cold worker must
        # share one connection (and one receive loop), not race two.
        async with self._connect_lock:
            if self.connected:
                return
            host, port = self.address
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
            self._recv_task = asyncio.get_running_loop().create_task(
                self._recv_loop()
            )

    async def _recv_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                future = self._pending.pop(frame.request_id, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except TRANSPORT_ERRORS as exc:
            self._teardown(exc)
        except asyncio.CancelledError:
            self._teardown(ConnectionClosed("link closed"))
            raise

    def _teardown(self, exc: BaseException) -> None:
        """Dead stream: disconnect *before* failing the waiters.

        With the receive loop gone, nothing can ever resolve a pending
        future — so the writer must be nulled here, or the next
        ``request`` would write into the dead socket and sit out its
        full timeout waiting for a reply that cannot arrive.
        """
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionClosed(
                        f"worker {format_address(self.address)} link failed: "
                        f"{exc}"
                    )
                )

    async def request(
        self,
        msg_type: MessageType,
        payload: object,
        timeout: Optional[float],
    ) -> object:
        """Send one request and await its ``OK`` payload.

        Raises :class:`RemoteWorkerError` on an ``ERROR`` reply and a
        transport error (which also fails the link) on anything else.
        """
        self._next_id += 1
        request_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                # Re-read under the lock: a concurrent failure handler
                # may have torn the link down since our caller routed.
                writer = self._writer
                if writer is None:
                    raise ConnectionClosed(
                        f"worker {format_address(self.address)} "
                        f"is not connected"
                    )
                await write_frame(writer, msg_type, request_id, payload)
            frame = await asyncio.wait_for(future, timeout)
        except BaseException:
            self._pending.pop(request_id, None)
            if future.done() and not future.cancelled():
                future.exception()  # mark retrieved; the raise below wins
            raise
        return raise_if_error(frame).load()

    async def close(self) -> None:
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
            self._recv_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
        self._fail_pending(ConnectionClosed("link closed"))


class _LoopThread:
    """A private asyncio loop on a daemon thread (sync -> async bridge)."""

    def __init__(self, name: str = "repro-cluster") -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=name, daemon=True
        )
        self._thread.start()

    def run(self, coroutine, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout)

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        self._loop.close()


class RemoteShardBackend(ExecutionBackend):
    """Routes ``run_batch`` digest groups to TCP workers (name ``remote``).

    Per-convolution :meth:`execute` / :meth:`execute_batch` calls
    delegate to the fused numpy engine in-process, exactly like the
    process-pool backend — remoting is a batch strategy, not a kernel —
    so outputs stay bit-identical to local execution for every session
    precision.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  May be empty at construction; add via :meth:`rejoin`.
    spec_store:
        The shared :class:`ShardSpecStore`; a private one is built if
        omitted.  Sharing one store between a process-pool backend and
        a remote backend gives both the same spec blob and seed replay.
    request_timeout_s / connect_timeout_s:
        Per-request and per-connect bounds; a breach is a transport
        failure (worker lost), not a hang.
    retries:
        How many times one group may be re-routed to a ring successor
        before :class:`ClusterError` propagates.
    heartbeat_s:
        Optional background health-probe period.  ``None`` (default)
        disables the prober — request traffic already detects loss — so
        tests and short demos stay deterministic.
    registry:
        The :class:`repro.obs.metrics.MetricRegistry` receiving the
        coordinator's ``repro_cluster_*`` telemetry: per-worker RTT
        histograms, dispatch/reroute/rejoin counters mirroring
        :attr:`stats`, and the per-worker queue-depth / warm-session
        gauges fed by HEALTH reports.  ``None`` (default) creates a
        private registry.
    """

    name = "remote"

    def __init__(
        self,
        workers: Sequence[Union[str, Address]] = (),
        spec_store: Optional[ShardSpecStore] = None,
        request_timeout_s: float = 60.0,
        connect_timeout_s: float = 5.0,
        retries: int = 2,
        replicas: int = 64,
        heartbeat_s: Optional[float] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        super().__init__()
        if request_timeout_s <= 0 or connect_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        self._inner = NumpyFusedBackend()
        self.spec_store = spec_store if spec_store is not None else ShardSpecStore()
        self.request_timeout_s = float(request_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.retries = int(retries)
        self.heartbeat_s = heartbeat_s
        self.stats = ClusterStats()
        self.ring = HashRing(
            [parse_address(worker) for worker in workers], replicas=replicas
        )
        self._live: Set[Address] = set(self.ring.nodes)
        self._links: Dict[Address, _WorkerLink] = {}
        #: Which spec digests each worker has been synced (reset on loss).
        self._synced: Dict[Address, Set[bytes]] = {}
        self._sync_locks: Dict[Address, asyncio.Lock] = {}
        self._loop_thread: Optional[_LoopThread] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._closed = False
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._m_groups = reg.counter(
            "repro_cluster_groups_total",
            "Digest groups dispatched to the worker fleet.",
        )
        self._m_frames = reg.counter(
            "repro_cluster_frames_total",
            "Frames dispatched inside those groups.",
        )
        self._m_workers_lost = reg.counter(
            "repro_cluster_workers_lost_total",
            "Workers declared dead after a transport failure.",
        )
        self._m_reroutes = reg.counter(
            "repro_cluster_reroutes_total",
            "Groups re-routed to a ring successor after worker loss.",
        )
        self._m_spec_syncs = reg.counter(
            "repro_cluster_spec_syncs_total",
            "Spec blobs shipped to workers.",
        )
        self._m_rejoins = reg.counter(
            "repro_cluster_rejoins_total",
            "Workers revived via rejoin().",
        )
        self._m_rtt = reg.histogram(
            "repro_cluster_rtt_seconds",
            "EXECUTE_BATCH round-trip time per worker.",
            labels=("worker",),
        )
        self._m_worker_depth = reg.gauge(
            "repro_cluster_worker_queue_depth",
            "Worker compute queue depth from its last HEALTH report.",
            labels=("worker",),
        )
        self._m_worker_warm = reg.gauge(
            "repro_cluster_worker_warm_sessions",
            "Warm spec sessions from the worker's last HEALTH report.",
            labels=("worker",),
        )

    def _note_health(self, address: Address, report: dict) -> None:
        """Feed one HEALTH report into the coordinator gauges.

        The telemetry fields are additive in this wire version: reports
        from older workers lack them, so they default (queue depth 0,
        warmth from the spec list) instead of failing to parse.
        """
        worker = format_address(address)
        self._m_worker_depth.set(
            report.get("queue_depth", 0), worker=worker
        )
        self._m_worker_warm.set(
            report.get("warm_sessions", len(report.get("specs", ()))),
            worker=worker,
        )

    # ------------------------------------------------------------------
    # Local compute surface (same shape as the process-pool backend)
    # ------------------------------------------------------------------
    def prepare(self, rulebook):
        return self._inner.prepare(rulebook)

    def execute(self, rulebook, in_features, weights, num_outputs, stats=None):
        return self._inner.execute(
            rulebook, in_features, weights, num_outputs, stats=stats
        )

    def execute_batch(self, rulebook, stack, weights, num_outputs, stats=None):
        return self._inner.execute_batch(
            rulebook, stack, weights, num_outputs, stats=stats
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            description=(
                "digest groups routed to TCP workers via a consistent-hash "
                "ring with failover"
            ),
            native_batch=True,
            sharded=True,
            offload_single_group=True,
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def live_workers(self) -> Tuple[Address, ...]:
        return tuple(sorted(self._live))

    def _loop(self) -> _LoopThread:
        if self._closed:
            raise RuntimeError("RemoteShardBackend is closed")
        if self._loop_thread is None:
            self._loop_thread = _LoopThread()
            if self.heartbeat_s is not None:
                self._loop_thread.run(self._start_heartbeat())
        return self._loop_thread

    async def _start_heartbeat(self) -> None:
        self._heartbeat_task = asyncio.get_running_loop().create_task(
            self._heartbeat_loop()
        )

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_s)
            for address in tuple(self._live):
                try:
                    link = await self._link(address)
                    report = await link.request(
                        MessageType.HEALTH, {}, self.connect_timeout_s
                    )
                    self._note_health(address, report)
                except TRANSPORT_ERRORS:
                    await self._mark_lost(address)

    async def _link(self, address: Address) -> _WorkerLink:
        link = self._links.get(address)
        if link is None:
            link = _WorkerLink(address)
            self._links[address] = link
        if not link.connected:
            await link.connect(self.connect_timeout_s)
        return link

    async def _mark_lost(self, address: Address) -> None:
        """Declare one worker dead: drop its link, sync state, and count it."""
        if address in self._live:
            self._live.discard(address)
            self.stats.workers_lost += 1
            self._m_workers_lost.inc()
        self._synced.pop(address, None)
        link = self._links.pop(address, None)
        if link is not None:
            await link.close()

    async def _ensure_spec(
        self, address: Address, link: _WorkerLink, digest: bytes, blob: bytes
    ) -> None:
        # One sync per (worker, digest): concurrent groups routed to a
        # cold worker serialize here so the blob crosses the wire once.
        lock = self._sync_locks.setdefault(address, asyncio.Lock())
        async with lock:
            synced = self._synced.setdefault(address, set())
            if digest in synced:
                return
            await link.request(
                MessageType.SPEC_SYNC,
                {"digest": digest, "blob": blob},
                self.request_timeout_s,
            )
            synced.add(digest)
            self.stats.spec_syncs += 1
            self._m_spec_syncs.inc()

    # ------------------------------------------------------------------
    # Group fan-out
    # ------------------------------------------------------------------
    def run_groups(self, net, precision, quantization, groups):
        if not groups:
            return []
        blob = self.spec_store.payload(net, precision, quantization)
        digest = self.spec_store.digest
        for task in groups:
            self.spec_store.record_seed(
                task.digest or task.coords.tobytes(), task.coords, task.shape
            )
        self.stats.groups_dispatched += len(groups)
        self.stats.frames_dispatched += sum(
            task.features.shape[0] for task in groups
        )
        self._m_groups.inc(len(groups))
        self._m_frames.inc(
            sum(task.features.shape[0] for task in groups)
        )
        # Generous outer bound: every group gets its own per-request
        # timeouts inside; this only guards against a wedged loop.
        outer = (
            (self.retries + 1)
            * (self.request_timeout_s + self.connect_timeout_s)
            + self.request_timeout_s
        )
        return self._loop().run(
            self._run_groups_async(digest, blob, groups), timeout=outer
        )

    async def _run_groups_async(
        self, digest: bytes, blob: bytes, groups: Sequence[GroupTask]
    ) -> List[np.ndarray]:
        return list(
            await asyncio.gather(
                *(self._run_group(digest, blob, task) for task in groups)
            )
        )

    async def _run_group(
        self, digest: bytes, blob: bytes, task: GroupTask
    ) -> np.ndarray:
        group_digest = task.digest or task.coords.tobytes()
        payload = {
            "spec": digest,
            "coords": task.coords,
            "shape": tuple(task.shape),
            "features": task.features,
            "digest": group_digest,
        }
        reroutes = 0
        excluded: Set[Address] = set()
        resynced: Set[Address] = set()
        last_error: Optional[BaseException] = None
        while True:
            address = self.ring.route(group_digest, self._live - excluded)
            if address is None:
                raise ClusterError(
                    f"no live worker for group {group_digest.hex()[:16]} "
                    f"(live={sorted(map(format_address, self._live))}, "
                    f"excluded={sorted(map(format_address, excluded))})"
                ) from last_error
            try:
                link = await self._link(address)
                await self._ensure_spec(address, link, digest, blob)
                sent = time.monotonic()
                reply = await link.request(
                    MessageType.EXECUTE_BATCH, payload, self.request_timeout_s
                )
                self._m_rtt.observe(
                    time.monotonic() - sent,
                    worker=format_address(address),
                )
                return np.asarray(reply["features"])
            except RemoteWorkerError as exc:
                if exc.kind == "UnknownSpecError" and address not in resynced:
                    # Worker restarted behind a live link: re-sync the
                    # spec and retry in place (not a loss, not a reroute).
                    # Once per worker — a worker that forgets a spec it
                    # was just synced is broken, not cold.
                    self._synced.setdefault(address, set()).discard(digest)
                    resynced.add(address)
                    last_error = exc
                    continue
                raise  # application error: same answer on every worker
            except TRANSPORT_ERRORS as exc:
                await self._mark_lost(address)
                excluded.add(address)
                last_error = exc
                if reroutes >= self.retries:
                    raise ClusterError(
                        f"group {group_digest.hex()[:16]} failed after "
                        f"{reroutes} re-route(s); last worker "
                        f"{format_address(address)} died with: {exc}"
                    ) from exc
                reroutes += 1
                self.stats.groups_rerouted += 1
                self._m_reroutes.inc()

    # ------------------------------------------------------------------
    # Membership operations: rejoin, health, weight swap
    # ------------------------------------------------------------------
    def rejoin(self, address: Union[str, Address]) -> dict:
        """Revive (or add) one worker and warm it before traffic arrives.

        Replays the current spec blob (``SPEC_SYNC``) and a ``PREPARE``
        for every site set recorded in the spec store, then marks the
        worker live — so the digests whose ring arcs the worker reclaims
        land on warm plans.  Returns the worker's ``HEALTH`` report.
        """
        address = parse_address(address)
        report = self._loop().run(
            self._rejoin_async(address),
            timeout=self.connect_timeout_s + 4 * self.request_timeout_s,
        )
        return report

    async def _rejoin_async(self, address: Address) -> dict:
        self.ring.add(address)
        link = await self._link(address)
        digest = self.spec_store.digest
        if digest is not None:
            await self._ensure_spec(address, link, digest, self.spec_store.blob)
            for seed_digest, coords, shape in self.spec_store.seeds():
                await link.request(
                    MessageType.PREPARE,
                    {
                        "spec": digest,
                        "coords": coords,
                        "shape": shape,
                        "digest": seed_digest,
                    },
                    self.request_timeout_s,
                )
        report = await link.request(
            MessageType.HEALTH, {}, self.request_timeout_s
        )
        self._note_health(address, report)
        self._live.add(address)
        self.stats.rejoins += 1
        self._m_rejoins.inc()
        return report

    def worker_health(self) -> Dict[str, dict]:
        """``HEALTH`` reports of every live worker, keyed by address."""
        return self._loop().run(
            self._worker_health_async(),
            timeout=self.connect_timeout_s + 2 * self.request_timeout_s,
        )

    async def _worker_health_async(self) -> Dict[str, dict]:
        reports: Dict[str, dict] = {}
        for address in tuple(sorted(self._live)):
            try:
                link = await self._link(address)
                report = await link.request(
                    MessageType.HEALTH, {}, self.request_timeout_s
                )
                self._note_health(address, report)
                reports[format_address(address)] = report
            except TRANSPORT_ERRORS:
                await self._mark_lost(address)
        return reports

    def sync_spec(self, net, precision: str = "float64", quantization=None) -> bytes:
        """Push a spec blob to every live worker ahead of traffic.

        The zero-downtime half of a weight swap: workers warm the new
        digest's session while still serving the old one; the next
        ``run_groups`` with the new net routes to already-warm sessions.
        Returns the new spec digest.
        """
        if quantization is None:
            from repro.engine.session import QuantizationSpec

            quantization = QuantizationSpec()
        blob = self.spec_store.payload(net, precision, quantization)
        digest = self.spec_store.digest
        self._loop().run(
            self._sync_spec_async(digest, blob),
            timeout=self.connect_timeout_s + 2 * self.request_timeout_s,
        )
        return digest

    async def _sync_spec_async(self, digest: bytes, blob: bytes) -> None:
        for address in tuple(sorted(self._live)):
            try:
                link = await self._link(address)
                await self._ensure_spec(address, link, digest, blob)
            except TRANSPORT_ERRORS:
                await self._mark_lost(address)

    def retire_spec(self, keep: Optional[bytes]) -> None:
        """Ask every live worker to drop sessions other than ``keep``."""
        self._loop().run(
            self._retire_spec_async(keep),
            timeout=self.connect_timeout_s + 2 * self.request_timeout_s,
        )

    async def _retire_spec_async(self, keep: Optional[bytes]) -> None:
        for address in tuple(sorted(self._live)):
            try:
                link = await self._link(address)
                await link.request(
                    MessageType.REFRESH, {"keep": keep}, self.request_timeout_s
                )
                synced = self._synced.get(address)
                if synced is not None:
                    synced.intersection_update({keep} if keep else set())
            except TRANSPORT_ERRORS:
                await self._mark_lost(address)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        super().close()
        if self._loop_thread is not None:
            try:
                self._loop_thread.run(self._shutdown_async(), timeout=10)
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self._loop_thread.stop()
            self._loop_thread = None
        self._links.clear()
        self._synced.clear()
        self.spec_store.clear()
        self._closed = True

    async def _shutdown_async(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        for link in tuple(self._links.values()):
            await link.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Loopback fleets for demos, tests, and CI
# ----------------------------------------------------------------------
@dataclass
class LocalWorkerFleet:
    """N loopback ``python -m repro worker`` subprocesses.

    Spawns workers on ephemeral ports, parses their readiness lines for
    the bound addresses, and owns their lifetime.  ``kill`` SIGKILLs one
    worker (the failover drill); ``restart`` spawns a replacement on a
    fresh port (pair it with :meth:`RemoteShardBackend.rejoin`).
    """

    processes: List[subprocess.Popen] = field(default_factory=list)
    addresses: List[Address] = field(default_factory=list)

    @classmethod
    def spawn(
        cls,
        num_workers: int,
        max_sessions: int = 4,
        startup_timeout_s: float = 60.0,
    ) -> "LocalWorkerFleet":
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        fleet = cls()
        for _ in range(num_workers):
            fleet.add_worker(
                max_sessions=max_sessions,
                startup_timeout_s=startup_timeout_s,
            )
        return fleet

    def add_worker(
        self, max_sessions: int = 4, startup_timeout_s: float = 60.0
    ) -> Address:
        """Spawn one more worker and return its bound address."""
        from repro.runtime.worker import parse_ready_line

        package_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--port", "0", "--max-sessions", str(max_sessions),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        line = self._await_ready(process, startup_timeout_s)
        address = parse_ready_line(line.strip())
        self.processes.append(process)
        self.addresses.append(address)
        return address

    @staticmethod
    def _await_ready(process: subprocess.Popen, timeout_s: float) -> str:
        import selectors

        selector = selectors.DefaultSelector()
        selector.register(process.stdout, selectors.EVENT_READ)
        try:
            events = selector.select(timeout=timeout_s)
        finally:
            selector.close()
        if not events:
            process.kill()
            raise TimeoutError(
                f"worker did not announce readiness within {timeout_s}s"
            )
        line = process.stdout.readline()
        if not line:
            stderr = process.stderr.read() if process.stderr else ""
            process.kill()
            raise RuntimeError(
                f"worker exited before announcing readiness; stderr:\n{stderr}"
            )
        return line

    def kill(self, index: int) -> Address:
        """SIGKILL one worker (mid-stream failover drill); returns its address."""
        process = self.processes[index]
        process.kill()
        process.wait(timeout=30)
        return self.addresses[index]

    def restart(self, index: int, max_sessions: int = 4) -> Address:
        """Replace worker ``index`` with a fresh process on a new port."""
        try:
            self.kill(index)
        except Exception:  # pragma: no cover - already dead is fine
            pass
        address = self.add_worker(max_sessions=max_sessions)
        # add_worker appended; move the fresh worker into the old slot.
        self.processes[index] = self.processes.pop()
        self.addresses[index] = self.addresses.pop()
        return self.addresses[index]

    def terminate(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                process.wait(timeout=30)
            for stream in (process.stdout, process.stderr):
                if stream is not None:
                    stream.close()
        self.processes.clear()
        self.addresses.clear()

    def __enter__(self) -> "LocalWorkerFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


register_backend("remote", RemoteShardBackend)
