"""Streaming execution of point-cloud frames on the accelerator model.

The runner is a thin per-frame loop over an
:class:`repro.engine.session.InferenceSession`: the session owns the
cross-frame :class:`repro.nn.rulebook.RulebookCache` (frames whose voxel
set matches a previously seen frame skip the matching pass entirely),
the accelerator configuration, and the overhead model, so the streaming
path shares one matching state with every other consumer.  Per-frame
engine statistics (rulebook hits/misses, matching and scatter seconds)
are reported in :class:`FrameResult` / :class:`StreamStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.arch.config import AcceleratorConfig
from repro.arch.overhead import SystemOverheadModel, layer_transfer_volume
from repro.arch.tiling import TileGrid
from repro.engine.session import InferenceSession
from repro.geometry.point_cloud import PointCloud
from repro.geometry.synthetic import make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.nn.functional import ApplyStats
from repro.nn.init import conv_weight
from repro.nn.rulebook import RulebookCache
from repro.sparse.coo import SparseTensor3D


class RotatingSceneSource:
    """Deterministic frame source: a scene rotating about the z axis.

    Mimics what a spinning LiDAR platform observes of a static object:
    each frame is the base cloud rotated by ``step_rad`` about the scene
    center plus fresh per-frame sensor noise.
    """

    def __init__(
        self,
        base_cloud: Optional[PointCloud] = None,
        num_frames: int = 10,
        step_rad: float = 0.15,
        noise_sigma: float = 0.001,
        seed: int = 0,
    ) -> None:
        if num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {num_frames}")
        self.base_cloud = base_cloud or make_shapenet_like_cloud(seed=seed)
        self.num_frames = int(num_frames)
        self.step_rad = float(step_rad)
        self.noise_sigma = float(noise_sigma)
        self.seed = int(seed)

    def frames(self) -> Iterator[PointCloud]:
        center = np.array([0.5, 0.5, 0.5])
        for frame_id in range(self.num_frames):
            angle = frame_id * self.step_rad
            shifted = PointCloud(self.base_cloud.points - center)
            rotated = shifted.rotated_z(angle)
            points = rotated.points + center
            if self.noise_sigma > 0.0:
                rng = np.random.default_rng(self.seed * 1_000_003 + frame_id)
                points = points + rng.normal(
                    scale=self.noise_sigma, size=points.shape
                )
            np.clip(points, 0.0, 1.0 - 1e-9, out=points)
            yield PointCloud(points)

    def __iter__(self) -> Iterator[PointCloud]:
        return self.frames()


class DriftingSceneSource:
    """Deterministic frame source: a nearly-static scene with voxel churn.

    Models the workloads the incremental delta engine targets (SLAM,
    odometry, a surveillance camera): the scene is static except for a
    small per-frame fraction of drifting measurements.  Each frame,
    ``churn * n_points`` randomly chosen points jump to the jittered
    neighborhood of other surface points (flickering returns, moving
    clutter), and the change is cumulative — the scene drifts instead of
    oscillating around frame 0.  The per-frame *voxel* churn therefore
    stays of the order of ``churn``, so consecutive frames are digest
    misses but near-matches: exactly the regime where
    :class:`repro.engine.delta.DeltaRulebookCache` patches instead of
    rebuilding.
    """

    def __init__(
        self,
        base_cloud: Optional[PointCloud] = None,
        num_frames: int = 10,
        churn: float = 0.02,
        jitter_sigma: float = 0.01,
        seed: int = 0,
    ) -> None:
        if num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {num_frames}")
        if not 0.0 <= churn <= 1.0:
            raise ValueError(f"churn must be in [0, 1], got {churn}")
        if jitter_sigma < 0.0:
            raise ValueError(
                f"jitter_sigma must be >= 0, got {jitter_sigma}"
            )
        self.base_cloud = base_cloud or make_shapenet_like_cloud(seed=seed)
        self.num_frames = int(num_frames)
        self.churn = float(churn)
        self.jitter_sigma = float(jitter_sigma)
        self.seed = int(seed)

    def frames(self) -> Iterator[PointCloud]:
        points = np.array(self.base_cloud.points, dtype=np.float64)
        n = len(points)
        for frame_id in range(self.num_frames):
            if frame_id > 0 and self.churn > 0.0 and n > 0:
                rng = np.random.default_rng(
                    self.seed * 1_000_003 + frame_id
                )
                moved = max(1, int(round(self.churn * n)))
                victims = rng.choice(n, size=moved, replace=False)
                donors = rng.choice(n, size=moved, replace=False)
                points[victims] = points[donors] + rng.normal(
                    scale=self.jitter_sigma, size=(moved, 3)
                )
                np.clip(points, 0.0, 1.0 - 1e-9, out=points)
            yield PointCloud(points.copy())

    def __iter__(self) -> Iterator[PointCloud]:
        return self.frames()


@dataclass(frozen=True)
class FrameResult:
    """Execution record of one streamed frame.

    The engine fields describe the software-side sparse-conv engine:
    ``rulebook_hits`` / ``rulebook_misses`` are this frame's rulebook
    cache lookups, ``matching_seconds`` is the wall-clock time spent in
    (or saved by skipping) rulebook construction, and ``scatter_seconds``
    is the fused engine's scatter-stage time when the runner executes the
    reference convolution (see ``StreamingRunner(execute_reference=True)``).
    """

    frame_id: int
    nnz: int
    active_tiles: int
    matches: int
    core_seconds: float
    total_seconds: float
    effective_ops: int
    rulebook_hits: int = 0
    rulebook_misses: int = 0
    #: Of this frame's ``rulebook_misses``, how many were served by
    #: incremental patching (only nonzero with a delta-enabled session).
    rulebook_patches: int = 0
    #: Backend plans refreshed after this frame's patches, and the
    #: subset spliced incrementally instead of re-lowered (nonzero only
    #: for backends with an incremental ``refresh``, e.g. ``scipy``).
    plan_refreshes: int = 0
    plan_splices: int = 0
    matching_seconds: float = 0.0
    scatter_seconds: float = 0.0


@dataclass
class StreamStats:
    """Aggregate statistics of one streaming run."""

    frames: List[FrameResult] = field(default_factory=list)
    #: Preallocated per-frame latency vector, rebuilt only when the
    #: stream grows (frames are append-only during a run), so repeated
    #: percentile queries do not re-collect a Python list each call.
    _latencies: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def total_seconds(self) -> float:
        return sum(frame.total_seconds for frame in self.frames)

    @property
    def fps(self) -> float:
        """Sustained frames per second over the whole stream.

        Raises a clear :class:`ValueError` on an empty stream (there is
        no frame rate to report) instead of surfacing a zero division.
        """
        if not self.frames:
            raise ValueError(
                "fps is undefined on an empty stream (no frames recorded)"
            )
        if self.total_seconds == 0.0:
            return 0.0
        return self.num_frames / self.total_seconds

    def latency_percentile(self, percentile: float) -> float:
        """Per-frame end-to-end latency percentile in seconds.

        ``percentile`` must lie in ``[0, 100]``; an empty stream raises
        :class:`ValueError` (there is no latency distribution to query).
        """
        if not np.isfinite(percentile) or not 0.0 <= percentile <= 100.0:
            raise ValueError(
                f"percentile must be in [0, 100], got {percentile!r}"
            )
        if not self.frames:
            raise ValueError(
                "latency_percentile is undefined on an empty stream "
                "(no frames recorded)"
            )
        if self._latencies is None or len(self._latencies) != len(
            self.frames
        ):
            self._latencies = np.fromiter(
                (frame.total_seconds for frame in self.frames),
                dtype=np.float64,
                count=len(self.frames),
            )
        return float(np.percentile(self._latencies, percentile))

    def mean_gops(self) -> float:
        if self.total_seconds == 0.0:
            return 0.0
        ops = sum(frame.effective_ops for frame in self.frames)
        return ops / self.total_seconds / 1e9

    # ------------------------------------------------------------------
    # Engine statistics
    # ------------------------------------------------------------------
    @property
    def rulebook_hits(self) -> int:
        return sum(frame.rulebook_hits for frame in self.frames)

    @property
    def rulebook_misses(self) -> int:
        return sum(frame.rulebook_misses for frame in self.frames)

    @property
    def rulebook_patches(self) -> int:
        return sum(frame.rulebook_patches for frame in self.frames)

    @property
    def plan_refreshes(self) -> int:
        return sum(frame.plan_refreshes for frame in self.frames)

    @property
    def plan_splices(self) -> int:
        return sum(frame.plan_splices for frame in self.frames)

    @property
    def rulebook_hit_rate(self) -> float:
        lookups = self.rulebook_hits + self.rulebook_misses
        if lookups == 0:
            return 0.0
        return self.rulebook_hits / lookups

    @property
    def matching_seconds(self) -> float:
        return sum(frame.matching_seconds for frame in self.frames)

    @property
    def scatter_seconds(self) -> float:
        return sum(frame.scatter_seconds for frame in self.frames)


class StreamingRunner:
    """Runs a Sub-Conv layer per frame and collects latency statistics.

    The runner is a thin frame loop: matching, cycle estimation, and
    configuration all live in the :class:`InferenceSession` it wraps.
    Construct it either from a ``session`` (sharing caches with other
    consumers) or from the individual components, which are then used to
    build a private session.

    Parameters
    ----------
    session:
        The inference session to run against.  Mutually exclusive with
        ``config`` / ``overheads`` / ``rulebook_cache``.
    config:
        Accelerator configuration (legacy construction path).
    in_channels / out_channels:
        The Sub-Conv workload executed per frame (the full-resolution
        encoder layer is the latency-dominant one; see Fig. 10).
    resolution:
        Voxel grid side (192 in the paper).
    detailed:
        ``True`` runs the cycle-accurate simulator per frame; ``False``
        (default) uses the validated analytical model, which is what a
        deployment-planning sweep wants.
    rulebook_cache:
        Cross-frame rulebook cache; frames whose voxel set matches an
        earlier frame skip the matching pass (a cache hit).
    execute_reference:
        ``True`` additionally runs the session's execution backend on
        every frame with deterministic weights, populating
        ``FrameResult.scatter_seconds``.  Only meaningful in analytical
        mode; adds real compute per frame.
    backend:
        Execution-backend registry name (or instance) for the private
        session built from the legacy keyword form; mutually exclusive
        with ``session=`` (the session already owns its backend).
    delta:
        Incremental-matching knob forwarded to the private session (see
        ``InferenceSession(delta=)``): ``True`` or a churn-ratio
        threshold enables rulebook patching for near-match frames.
        Mutually exclusive with ``session=``.
    """

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        in_channels: int = 1,
        out_channels: int = 16,
        resolution: int = 192,
        detailed: bool = False,
        overheads: Optional[SystemOverheadModel] = None,
        rulebook_cache: Optional[RulebookCache] = None,
        execute_reference: bool = False,
        session: Optional[InferenceSession] = None,
        backend=None,
        delta=None,
    ) -> None:
        if session is None:
            session = InferenceSession(
                accelerator_config=config,
                overheads=overheads,
                rulebook_cache=rulebook_cache,
                backend=backend,
                delta=delta,
            )
        elif (
            config is not None
            or overheads is not None
            or rulebook_cache is not None
            or backend is not None
            or delta is not None
        ):
            raise ValueError(
                "pass either session= or config/overheads/rulebook_cache/"
                "backend/delta, not both — the session owns those components"
            )
        self.session = session
        self.config = session.accelerator_config
        self.overheads = session.overheads
        self.rulebook_cache = session.rulebook_cache
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.voxelizer = Voxelizer(
            resolution=resolution, normalize=False, occupancy_only=True
        )
        self.detailed = bool(detailed)
        self.execute_reference = bool(execute_reference)
        self._reference_weights = (
            conv_weight(
                np.random.default_rng(0),
                self.config.kernel_size ** 3,
                self.in_channels,
                self.out_channels,
            )
            if self.execute_reference
            else None
        )

    def _frame_tensor(self, cloud: PointCloud, rng: np.random.Generator) -> SparseTensor3D:
        grid = self.voxelizer.voxelize(cloud)
        if self.in_channels == 1:
            return grid
        return grid.with_features(
            rng.standard_normal((grid.nnz, self.in_channels))
        )

    def run(self, source) -> StreamStats:
        """Stream every frame of ``source`` through the accelerator model.

        ``source`` is any iterable of :class:`PointCloud` frames with a
        ``seed`` attribute (:class:`RotatingSceneSource`,
        :class:`DriftingSceneSource`, or a custom feed).
        """
        stats = StreamStats()
        rng = np.random.default_rng(source.seed)
        session = self.session
        accelerator = session.accelerator()
        cache = self.rulebook_cache
        for frame_id, cloud in enumerate(source):
            tensor = self._frame_tensor(cloud, rng)
            tiles = TileGrid(tensor, self.config.tile_shape)
            hits_before, misses_before = cache.hits, cache.misses
            patches_before = getattr(cache, "patches", 0)
            backend = session.backend
            refreshes_before = getattr(backend, "plans_refreshed", 0)
            splices_before = getattr(backend, "plans_spliced", 0)
            matching_seconds = 0.0
            scatter_seconds = 0.0
            if self.detailed:
                run = accelerator.run_layer(
                    tensor, out_channels=self.out_channels,
                    layer_name=f"frame{frame_id}",
                )
                core_seconds = run.time_seconds
                total_seconds = run.total_seconds
                matches = run.matches
                ops = run.effective_ops
            else:
                t0 = time.perf_counter()
                rulebook = session.matching(tensor)
                matching_seconds = time.perf_counter() - t0
                matches = rulebook.total_matches
                scanned = session.analytical.scanned_positions(tensor)
                cycles = session.analytical.estimate_cycles(
                    scanned, matches, self.in_channels, self.out_channels
                )
                core_seconds = cycles / self.config.clock_hz
                volume = layer_transfer_volume(
                    nnz_in=tensor.nnz,
                    nnz_out=tensor.nnz,
                    in_channels=self.in_channels,
                    out_channels=self.out_channels,
                    kernel_volume=self.config.kernel_size ** 3,
                    mask_bits=tiles.num_active_tiles * tiles.tile_volume(),
                    weight_bits=self.config.weight_bits,
                    activation_bits=self.config.activation_bits,
                )
                total_seconds = core_seconds + self.overheads.layer_overhead_seconds(
                    volume, compute_seconds=core_seconds
                )
                ops = 2 * matches * self.in_channels * self.out_channels
                if self.execute_reference:
                    apply_stats = ApplyStats()
                    session.backend.execute(
                        rulebook,
                        tensor.features,
                        self._reference_weights,
                        tensor.nnz,
                        stats=apply_stats,
                    )
                    scatter_seconds = apply_stats.scatter_seconds
            stats.frames.append(
                FrameResult(
                    frame_id=frame_id,
                    nnz=tensor.nnz,
                    active_tiles=tiles.num_active_tiles,
                    matches=matches,
                    core_seconds=core_seconds,
                    total_seconds=total_seconds,
                    effective_ops=ops,
                    rulebook_hits=cache.hits - hits_before,
                    rulebook_misses=cache.misses - misses_before,
                    rulebook_patches=getattr(cache, "patches", 0)
                    - patches_before,
                    plan_refreshes=getattr(backend, "plans_refreshed", 0)
                    - refreshes_before,
                    plan_splices=getattr(backend, "plans_spliced", 0)
                    - splices_before,
                    matching_seconds=matching_seconds,
                    scatter_seconds=scatter_seconds,
                )
            )
        return stats
