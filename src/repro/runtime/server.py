"""Async serving front door: an asyncio request queue over a session.

The ROADMAP's "millions of users" direction needs more than a per-frame
loop: many concurrent clients submit frames, and the server should
exploit the session's batching guarantees — frames sharing a coordinate
digest are bit-identical whether run one at a time or stacked — to turn
queue depth into throughput.  :class:`SessionServer` does exactly that:

* clients ``await server.submit(tensor)`` and get the network output for
  their frame back, unaware of batching;
* a single dispatcher task drains the queue, coalescing up to
  ``max_batch`` requests (waiting at most ``max_delay_s`` for
  stragglers) into one
  :meth:`repro.engine.session.InferenceSession.run_batch` call, which
  groups the micro-batch by coordinate digest internally — so concurrent
  requests over the same scene share one plan, one gather and one
  scatter per offset;
* results are **bit-identical** to per-request ``session.run`` calls,
  for every execution backend (the batching contract of PR 2 plus the
  backend-parity contract of this module's sibling
  :mod:`repro.engine.backend`).

``python -m repro serve`` runs a self-contained demo: a rotating scene
with several concurrent clients per frame, reporting sustained
throughput against a sequential (unbatched) baseline.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.engine.session import InferenceSession
from repro.obs.metrics import BATCH_SIZE_BUCKETS, MetricRegistry
from repro.obs.trace import Tracer
from repro.sparse.coo import SparseTensor3D


class ServerOverloaded(RuntimeError):
    """Raised by :meth:`SessionServer.submit` when the queue is full.

    A server constructed with ``max_pending`` bounds the number of
    accepted-but-unserved requests; beyond it, submissions fail fast
    with this error instead of queueing unboundedly (the client can shed
    load or retry with backoff).
    """


class DeadlineExceeded(RuntimeError):
    """A request waited in the queue longer than its ``deadline_s``.

    Raised *to the submitting client* (via its awaited future) when the
    dispatcher dequeues the request after the deadline already passed —
    the frame is dropped without being executed, keeping an overloaded
    server from burning compute on answers nobody is waiting for.
    """


@dataclass
class ServeStats:
    """Aggregate statistics of one serving run.

    ``wall_seconds`` spans from the first request's dequeue to the last
    batch's completion — it *includes* the dispatcher's coalescing
    linger and event-loop scheduling, so ``fps`` is honest sustained
    throughput.  ``busy_seconds`` is the time actually spent inside
    ``run_batch`` (the compute fraction of the span).

    Instances are immutable-in-practice *snapshots*: the live counters
    behind them are ``repro_serve_*`` metrics in the server's
    :class:`repro.obs.metrics.MetricRegistry`, whose lock makes the
    dispatch-loop and submit-path mutations race-free (they used to be
    bare ``+=`` on this dataclass).  Read :attr:`SessionServer.stats`
    for a fresh snapshot.
    """

    requests: int = 0
    micro_batches: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    #: Backpressure accounting: submissions refused at the queue bound
    #: and dequeued requests dropped past their deadline.
    rejected_overload: int = 0
    rejected_deadline: int = 0
    #: Dequeued requests whose future was already done — the client
    #: cancelled (or otherwise settled) while the request sat in the
    #: queue — dropped before any compute was spent on them.
    rejected_cancelled: int = 0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def max_batch_size(self) -> int:
        return max(self.batch_sizes, default=0)

    @property
    def fps(self) -> float:
        """Sustained served frames per second (wall clock).

        Raises a clear :class:`ValueError` before any request completed
        (there is no throughput to report yet).
        """
        if self.requests == 0:
            raise ValueError(
                "fps is undefined before any request was served"
            )
        if self.wall_seconds == 0.0:
            return 0.0
        return self.requests / self.wall_seconds


class SessionServer:
    """Micro-batching asyncio front door over an :class:`InferenceSession`.

    One dispatcher task owns the session; submissions from any number of
    client tasks are queued, coalesced, and executed batch-wise.  The
    server therefore composes with every backend: a sharded backend
    additionally fans the micro-batch's digest groups across worker
    processes.

    Parameters
    ----------
    session:
        The warm session to serve (a default one is built if omitted).
    max_batch:
        Upper bound on requests per ``run_batch`` dispatch.
    max_delay_s:
        How long the dispatcher waits for additional requests once one
        is pending.  ``0`` dispatches whatever is immediately queued
        (pure latency mode); a small positive value trades microseconds
        of latency for larger digest groups (throughput mode).
    max_pending:
        Bound on accepted-but-unserved requests.  ``None`` (default)
        queues without limit; with a bound, :meth:`submit` raises
        :class:`ServerOverloaded` once the backlog reaches it, so
        overload surfaces at the edge instead of as unbounded memory
        growth and stale answers.
    deadline_s:
        Per-request queueing deadline.  A request still waiting when the
        dispatcher reaches it past the deadline is rejected with
        :class:`DeadlineExceeded` instead of being executed.  ``None``
        (default) disables deadlines.
    registry:
        The :class:`repro.obs.metrics.MetricRegistry` receiving the
        server's ``repro_serve_*`` telemetry (and backing
        :attr:`stats`).  ``None`` (default) creates a private registry,
        keeping one server's accounting isolated even when several
        servers serve the same session over time.  Pass the session's
        registry (as ``python -m repro serve --metrics-port`` does) to
        expose session + server metrics on one scrape surface; sharing
        one registry across *concurrently live* servers merges their
        serve counters.
    tracer:
        Ring buffer receiving one per-micro-batch stage timeline
        (queue-wait → batch-linger → execute → respond).  ``None``
        builds a private 256-deep :class:`repro.obs.trace.Tracer`;
        tracing follows ``registry.enabled``.
    """

    def __init__(
        self,
        session: Optional[InferenceSession] = None,
        max_batch: int = 16,
        max_delay_s: float = 0.002,
        max_pending: Optional[int] = None,
        deadline_s: Optional[float] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {max_delay_s}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1 (or None), got {max_pending}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive (or None), got {deadline_s}"
            )
        self.session = session if session is not None else InferenceSession()
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else Tracer(capacity=256)
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._closed = False
        self._span_start: Optional[float] = None
        self._pending = 0
        # Dispatcher-owned accumulators (single task, no races): the
        # cross-thread counters live in the registry instead.
        self._batch_sizes: List[int] = []
        self._busy_seconds = 0.0
        self._wall_seconds = 0.0
        reg = self.registry
        self._m_requests = reg.counter(
            "repro_serve_requests_total",
            "Requests served to completion.",
        )
        self._m_batches = reg.counter(
            "repro_serve_batches_total",
            "Micro-batches dispatched to run_batch.",
        )
        self._m_shed = reg.counter(
            "repro_serve_shed_total",
            "Requests shed before compute, by reason.",
            labels=("reason",),
        )
        self._m_depth = reg.gauge(
            "repro_serve_queue_depth",
            "Accepted-but-unserved requests right now.",
        )
        self._m_e2e = reg.histogram(
            "repro_serve_e2e_seconds",
            "End-to-end latency: enqueue to response.",
        )
        self._m_wait = reg.histogram(
            "repro_serve_queue_wait_seconds",
            "Queue wait: enqueue to dequeue by the dispatcher.",
        )
        self._m_linger = reg.histogram(
            "repro_serve_linger_seconds",
            "Batch-coalescing linger after the first dequeue.",
        )
        self._m_execute = reg.histogram(
            "repro_serve_execute_seconds",
            "run_batch executor time per micro-batch.",
        )
        self._m_batch_size = reg.histogram(
            "repro_serve_batch_size",
            "Dispatched micro-batch sizes.",
            buckets=BATCH_SIZE_BUCKETS,
        )

    @property
    def stats(self) -> ServeStats:
        """A point-in-time :class:`ServeStats` snapshot.

        Every counter is read from the registry under its lock; the
        dispatcher-owned accumulators (batch sizes, busy/wall seconds)
        are copied as-is.
        """
        return ServeStats(
            requests=int(self._m_requests.value()),
            micro_batches=int(self._m_batches.value()),
            batch_sizes=list(self._batch_sizes),
            wall_seconds=self._wall_seconds,
            busy_seconds=self._busy_seconds,
            rejected_overload=int(self._m_shed.value(reason="overload")),
            rejected_deadline=int(self._m_shed.value(reason="deadline")),
            rejected_cancelled=int(self._m_shed.value(reason="cancelled")),
        )

    def _track_pending(self, delta: int) -> None:
        self._pending += delta
        self._m_depth.set(self._pending)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SessionServer":
        """Start the dispatcher task (idempotent)."""
        if self._dispatcher is None:
            self._closed = False
            self._queue = asyncio.Queue()
            self._pending = 0
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        return self

    async def stop(self) -> None:
        """Drain pending requests, then stop the dispatcher."""
        if self._dispatcher is None:
            return
        self._closed = True
        await self._queue.put(None)  # sentinel wakes the dispatcher
        await self._dispatcher
        self._dispatcher = None
        self._queue = None

    async def __aenter__(self) -> "SessionServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    async def submit(self, tensor: SparseTensor3D) -> SparseTensor3D:
        """Queue one frame and await its network output.

        Bit-identical to ``session.run(tensor)``; concurrency and
        batching are invisible to the caller.  With ``max_pending`` set,
        raises :class:`ServerOverloaded` instead of queueing once the
        backlog is full; with ``deadline_s`` set, may raise
        :class:`DeadlineExceeded` if the request could not be dispatched
        in time.
        """
        if self._dispatcher is None or self._closed:
            raise RuntimeError(
                "SessionServer is not running; use 'async with server:' or "
                "await server.start()"
            )
        if self.max_pending is not None and self._pending >= self.max_pending:
            self._m_shed.inc(reason="overload")
            raise ServerOverloaded(
                f"server backlog is full ({self._pending} pending requests, "
                f"max_pending={self.max_pending}); shed load or retry with "
                "backoff"
            )
        future = asyncio.get_running_loop().create_future()
        self._track_pending(1)
        await self._queue.put((tensor, future, time.monotonic()))
        return await future

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _collect_batch(self, first) -> list:
        """Coalesce up to ``max_batch`` requests around ``first``."""
        batch = [first]
        if self.max_delay_s > 0:
            deadline = asyncio.get_running_loop().time() + self.max_delay_s
            while len(batch) < self.max_batch:
                timeout = deadline - asyncio.get_running_loop().time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    break
                if item is None:
                    self._queue.put_nowait(None)  # keep the stop sentinel
                    break
                batch.append(item)
        else:
            while len(batch) < self.max_batch and not self._queue.empty():
                item = self._queue.get_nowait()
                if item is None:
                    self._queue.put_nowait(None)
                    break
                batch.append(item)
        return batch

    def _drop_cancelled(self, batch: list) -> list:
        """Drop dequeued requests whose future is already done.

        A client that cancels (or errors) while its request waits in the
        queue leaves a completed future behind; executing its frame
        would spend compute on an answer nobody awaits.  Dropped
        requests keep ``_pending`` exact and are counted in
        ``stats.rejected_cancelled``.
        """
        live = []
        for item in batch:
            if item[1].done():
                self._track_pending(-1)
                self._m_shed.inc(reason="cancelled")
            else:
                live.append(item)
        return live

    def _expire_overdue(self, batch: list) -> list:
        """Reject dequeued requests whose queueing deadline passed.

        Returns the still-live requests; expired ones get a
        :class:`DeadlineExceeded` on their future without touching the
        session (no compute is spent on answers nobody awaits).
        """
        if self.deadline_s is None:
            return batch
        now = time.monotonic()
        live = []
        for item in batch:
            tensor, future, enqueued = item
            waited = now - enqueued
            if waited > self.deadline_s:
                self._track_pending(-1)
                self._m_shed.inc(reason="deadline")
                if not future.done():
                    future.set_exception(
                        DeadlineExceeded(
                            f"request waited {waited * 1e3:.1f} ms in the "
                            f"queue, past its {self.deadline_s * 1e3:.1f} ms "
                            "deadline"
                        )
                    )
            else:
                live.append(item)
        return live

    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            if first is None:
                if self._queue.empty():
                    return
                # Requests are still queued behind the sentinel: rotate
                # it to the back and drain them first.
                self._queue.put_nowait(None)
                continue
            if self._span_start is None:
                self._span_start = time.perf_counter()
            dequeue_t = time.monotonic()
            batch = self._expire_overdue(
                self._drop_cancelled(await self._collect_batch(first))
            )
            if not batch:
                continue
            collect_end_t = time.monotonic()
            tensors = [tensor for tensor, _, _ in batch]
            pre = self.session.stats if self.registry.enabled else None
            start = time.perf_counter()
            try:
                # run_batch groups the micro-batch by coordinate digest:
                # one plan / gather / scatter per distinct site set.  The
                # compute runs on the default executor so the loop keeps
                # accepting, shedding, and cancelling while the backend
                # works; only this coroutine touches the session, so
                # session state stays single-threaded.
                outputs = await asyncio.get_running_loop().run_in_executor(
                    None, self.session.run_batch, tensors
                )
            except Exception as exc:  # propagate to every waiting client
                for _, future, _ in batch:
                    self._track_pending(-1)
                    if not future.done():
                        future.set_exception(exc)
                continue
            end = time.perf_counter()
            exec_end_t = time.monotonic()
            self._m_requests.inc(len(batch))
            self._m_batches.inc()
            self._batch_sizes.append(len(batch))
            self._busy_seconds += end - start
            self._wall_seconds = end - self._span_start
            for (_, future, _), output in zip(batch, outputs):
                self._track_pending(-1)
                if not future.done():
                    future.set_result(output)
            self._record_batch(
                batch,
                dequeue_t=dequeue_t,
                collect_end_t=collect_end_t,
                execute_s=end - start,
                exec_end_t=exec_end_t,
                respond_t=time.monotonic(),
                pre=pre,
            )

    def _record_batch(
        self,
        batch: list,
        dequeue_t: float,
        collect_end_t: float,
        execute_s: float,
        exec_end_t: float,
        respond_t: float,
        pre,
    ) -> None:
        """Histograms + one stage-timeline trace for a dispatched batch.

        The timeline (queue-wait → batch-linger → execute → respond) is
        laid out on the shared monotonic clock, origin at the earliest
        member's enqueue.  Prepare/patch work happens *inside* the
        execute span (the session's own ``repro_session_*`` histograms
        carry that split); its cache activity is attached as span
        metadata from the session-stats delta across the batch.
        """
        if not self.registry.enabled:
            return
        waits = [dequeue_t - enqueued for _, _, enqueued in batch]
        for wait in waits:
            self._m_wait.observe(max(wait, 0.0))
        self._m_linger.observe(max(collect_end_t - dequeue_t, 0.0))
        self._m_execute.observe(execute_s)
        self._m_batch_size.observe(len(batch))
        for _, _, enqueued in batch:
            self._m_e2e.observe(max(respond_t - enqueued, 0.0))
        if not self.tracer.enabled:
            return
        post = self.session.stats
        origin = min(enqueued for _, _, enqueued in batch)
        trace = self.tracer.start("micro-batch", size=len(batch))
        trace.add_span(
            "queue-wait", 0.0, dequeue_t - origin, max_wait_s=max(waits)
        )
        trace.add_span("batch-linger", dequeue_t - origin,
                       collect_end_t - origin)
        trace.add_span(
            "execute",
            collect_end_t - origin,
            exec_end_t - origin,
            run_batch_s=execute_s,
            plan_misses=post.plan_misses - pre.plan_misses,
            delta_patches=post.delta_patches - pre.delta_patches,
            plans_spliced=post.plans_spliced - pre.plans_spliced,
        )
        trace.add_span("respond", exec_end_t - origin, respond_t - origin)


async def serve(
    frames: Sequence[SparseTensor3D],
    session: Optional[InferenceSession] = None,
    concurrency: int = 8,
    max_batch: int = 16,
    max_delay_s: float = 0.002,
    max_pending: Optional[int] = None,
    deadline_s: Optional[float] = None,
    registry: Optional[MetricRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> tuple:
    """Serve ``frames`` through a :class:`SessionServer`, preserving order.

    Spins up the server, submits every frame from ``concurrency``
    concurrent client tasks (modeling independent users), and returns
    ``(outputs, stats)`` with ``outputs[i]`` corresponding to
    ``frames[i]``.  This is both the programmatic entry point and the
    engine under ``python -m repro serve``.

    With backpressure configured (``max_pending`` / ``deadline_s``),
    rejected requests leave ``outputs[i]`` as ``None`` and are counted
    in ``stats.rejected_overload`` / ``stats.rejected_deadline`` — the
    demo clients shed load instead of crashing, as a real edge would.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    frames = list(frames)
    outputs: List[Optional[SparseTensor3D]] = [None] * len(frames)
    pending = asyncio.Queue()
    for index, frame in enumerate(frames):
        pending.put_nowait((index, frame))

    async with SessionServer(
        session=session,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        max_pending=max_pending,
        deadline_s=deadline_s,
        registry=registry,
        tracer=tracer,
    ) as server:

        async def client() -> None:
            while True:
                try:
                    index, frame = pending.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    outputs[index] = await server.submit(frame)
                except (ServerOverloaded, DeadlineExceeded):
                    pass  # counted in stats; outputs[index] stays None

        await asyncio.gather(
            *(client() for _ in range(min(concurrency, max(len(frames), 1))))
        )
        stats = server.stats
    return outputs, stats


def serve_frames(
    frames: Sequence[SparseTensor3D],
    session: Optional[InferenceSession] = None,
    **kwargs,
) -> tuple:
    """Blocking convenience wrapper around :func:`serve`."""
    return asyncio.run(serve(frames, session=session, **kwargs))
