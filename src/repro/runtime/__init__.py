"""Frame-stream runtime: the LiDAR application setting of Fig. 1.

The paper motivates ESCA with streaming point-cloud workloads
(autonomous driving, VR/AR).  This package provides a minimal runtime
for that setting: deterministic synthetic frame sources (a rotating
scene, as a spinning LiDAR sees), and a streaming runner that voxelizes,
encodes and executes each frame on the accelerator model, reporting
per-frame latency statistics and sustained frames per second.
"""

from repro.runtime.stream import (
    FrameResult,
    RotatingSceneSource,
    StreamStats,
    StreamingRunner,
)

__all__ = [
    "RotatingSceneSource",
    "StreamingRunner",
    "FrameResult",
    "StreamStats",
]
