"""Frame-stream runtime: the LiDAR application setting of Fig. 1.

The paper motivates ESCA with streaming point-cloud workloads
(autonomous driving, VR/AR).  This package provides a minimal runtime
for that setting: deterministic synthetic frame sources (a rotating
scene, as a spinning LiDAR sees), a streaming runner that voxelizes,
encodes and executes each frame on the accelerator model, and an
asyncio serving front door (:class:`SessionServer`) that micro-batches
concurrent requests by coordinate digest into batched session runs.
"""

from repro.runtime.server import (
    DeadlineExceeded,
    ServerOverloaded,
    ServeStats,
    SessionServer,
    serve,
    serve_frames,
)
from repro.runtime.stream import (
    DriftingSceneSource,
    FrameResult,
    RotatingSceneSource,
    StreamStats,
    StreamingRunner,
)

__all__ = [
    "RotatingSceneSource",
    "DriftingSceneSource",
    "StreamingRunner",
    "FrameResult",
    "StreamStats",
    "SessionServer",
    "ServeStats",
    "ServerOverloaded",
    "DeadlineExceeded",
    "serve",
    "serve_frames",
]
