"""Frame-stream runtime: the LiDAR application setting of Fig. 1.

The paper motivates ESCA with streaming point-cloud workloads
(autonomous driving, VR/AR).  This package provides a minimal runtime
for that setting: deterministic synthetic frame sources (a rotating
scene, as a spinning LiDAR sees), a streaming runner that voxelizes,
encodes and executes each frame on the accelerator model, and an
asyncio serving front door (:class:`SessionServer`) that micro-batches
concurrent requests by coordinate digest into batched session runs.

The cluster serving tier lives here too: :mod:`repro.runtime.wire`
(the length-prefixed frame protocol), :mod:`repro.runtime.worker`
(``python -m repro worker`` — warm sessions per spec digest behind a
TCP socket), and :mod:`repro.runtime.cluster`
(:class:`RemoteShardBackend`, the registered ``"remote"`` execution
backend fanning ``run_batch`` digest groups across a worker fleet with
consistent-hash routing and failover).  Importing this package
registers the ``remote`` backend.
"""

from repro.runtime.cluster import (
    ClusterError,
    ClusterStats,
    HashRing,
    LocalWorkerFleet,
    RemoteShardBackend,
)
from repro.runtime.server import (
    DeadlineExceeded,
    ServerOverloaded,
    ServeStats,
    SessionServer,
    serve,
    serve_frames,
)
from repro.runtime.stream import (
    DriftingSceneSource,
    FrameResult,
    RotatingSceneSource,
    StreamStats,
    StreamingRunner,
)
from repro.runtime.worker import ClusterWorker, serve_worker
from repro.runtime.wire import RemoteWorkerError, WireError

__all__ = [
    "ClusterError",
    "ClusterStats",
    "ClusterWorker",
    "HashRing",
    "LocalWorkerFleet",
    "RemoteShardBackend",
    "RemoteWorkerError",
    "WireError",
    "serve_worker",
    "RotatingSceneSource",
    "DriftingSceneSource",
    "StreamingRunner",
    "FrameResult",
    "StreamStats",
    "SessionServer",
    "ServeStats",
    "ServerOverloaded",
    "DeadlineExceeded",
    "serve",
    "serve_frames",
]
