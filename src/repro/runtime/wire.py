"""Length-prefixed asyncio wire protocol of the cluster serving tier.

The coordinator (:class:`repro.runtime.cluster.RemoteShardBackend`) and
the workers (:mod:`repro.runtime.worker`) exchange *frames*: a fixed
binary header followed by a pickled payload.  The header is
deliberately boring — the whole protocol fits in one ``struct`` —

::

    !4sBBQII  =  magic    4 bytes   b"ESC1"
                 version  1 byte    PROTOCOL_VERSION
                 type     1 byte    MessageType
                 request  8 bytes   correlation id (echoed in the reply)
                 length   4 bytes   payload byte count
                 crc32    4 bytes   zlib.crc32 of the payload

so a reader can always resynchronize its expectations: a bad magic or
version is a :class:`ProtocolError` (you connected the wrong thing), a
checksum mismatch is a :class:`ChecksumError` (the bytes got mangled),
and a short read mid-frame is a :class:`ProtocolError` (the peer died
mid-sentence).  A clean EOF *between* frames raises
:class:`ConnectionClosed` — the one shutdown that is not an error.

Request/response framing is symmetric: every request frame
(``PREPARE`` / ``EXECUTE_BATCH`` / ``REFRESH`` / ``HEALTH`` /
``SPEC_SYNC``) is answered by exactly one ``OK`` or ``ERROR`` frame
carrying the same ``request_id``, so a client may pipeline requests
over one connection and correlate replies out of order.  ``ERROR``
payloads carry the worker-side exception class name and message
(:func:`raise_if_error` re-raises them as :class:`RemoteWorkerError`),
never a pickled exception object — unpickling arbitrary classes from a
failure path is how error handling grows its own failure modes.

Payloads are pickled with :data:`pickle.HIGHEST_PROTOCOL` (numpy
arrays cross zero-copy on pickle 5 buffers within a process, and
compactly over the wire).  :data:`MAX_PAYLOAD_BYTES` bounds what a
reader will allocate from a length field before trusting the stream.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Optional, Tuple

PROTOCOL_VERSION = 1
MAGIC = b"ESC1"

_HEADER = struct.Struct("!4sBBQII")
HEADER_BYTES = _HEADER.size

#: Refuse to allocate more than this from a frame's length field (a
#: corrupted or hostile header must not become a 4 GiB allocation).
MAX_PAYLOAD_BYTES = 1 << 30

_MAX_REQUEST_ID = (1 << 64) - 1


class MessageType(IntEnum):
    """Frame types of the cluster protocol, version 1."""

    #: Warm one plan: ``{"spec": digest, "coords", "shape"}``.
    PREPARE = 1
    #: Run one digest group: ``{"spec": digest, "coords", "shape",
    #: "features", "digest"}`` -> ``{"features": (B, N, Cout)}``.
    EXECUTE_BATCH = 2
    #: Retire spec sessions: ``{"keep": digest | None}``.
    REFRESH = 3
    #: Liveness + warmth probe: ``{}`` -> counters and known digests.
    HEALTH = 4
    #: Ship a spec blob: ``{"digest", "blob"}`` (zero-downtime swaps).
    SPEC_SYNC = 5
    #: Successful reply; payload is the handler's result object.
    OK = 6
    #: Failed reply; payload names the worker-side exception.
    ERROR = 7


#: Request types a worker accepts (everything except the reply types).
REQUEST_TYPES = (
    MessageType.PREPARE,
    MessageType.EXECUTE_BATCH,
    MessageType.REFRESH,
    MessageType.HEALTH,
    MessageType.SPEC_SYNC,
)


class WireError(RuntimeError):
    """Base class of every protocol-level failure."""


class ProtocolError(WireError):
    """Malformed stream: bad magic/version/type, or a truncated frame."""


class ChecksumError(WireError):
    """Payload bytes do not match the header's CRC-32."""


class ConnectionClosed(WireError):
    """The peer closed the connection cleanly between frames."""


class RemoteWorkerError(RuntimeError):
    """A worker answered with an ``ERROR`` frame.

    ``kind`` is the worker-side exception class name (string, never an
    unpickled class), so the coordinator can tell an application error
    (bad request — do *not* fail the worker over) from transport death.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame: ``(type, request_id, payload bytes)``."""

    type: MessageType
    request_id: int
    payload: bytes

    def load(self) -> Any:
        """Unpickle the payload (``None`` for an empty payload)."""
        if not self.payload:
            return None
        return pickle.loads(self.payload)


def encode_frame(
    msg_type: MessageType,
    request_id: int,
    obj: Any = None,
    payload: Optional[bytes] = None,
) -> bytes:
    """Serialize one frame: header + pickled ``obj`` (or raw ``payload``)."""
    if not 0 <= request_id <= _MAX_REQUEST_ID:
        raise ValueError(f"request_id must fit in 64 bits, got {request_id}")
    if payload is None:
        payload = b"" if obj is None else pickle.dumps(
            obj, protocol=pickle.HIGHEST_PROTOCOL
        )
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD_BYTES "
            f"({MAX_PAYLOAD_BYTES})"
        )
    header = _HEADER.pack(
        MAGIC,
        PROTOCOL_VERSION,
        int(msg_type),
        request_id,
        len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def decode_header(header: bytes) -> Tuple[MessageType, int, int, int]:
    """Validate a header buffer -> ``(type, request_id, length, crc)``."""
    if len(header) != HEADER_BYTES:
        raise ProtocolError(
            f"header must be {HEADER_BYTES} bytes, got {len(header)}"
        )
    magic, version, raw_type, request_id, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad magic {magic!r}: peer is not speaking the cluster protocol"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this build speaks {PROTOCOL_VERSION})"
        )
    try:
        msg_type = MessageType(raw_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {raw_type}") from None
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds MAX_PAYLOAD_BYTES "
            f"({MAX_PAYLOAD_BYTES})"
        )
    return msg_type, request_id, length, crc


def decode_frame(buffer: bytes) -> Frame:
    """Decode one complete frame from ``buffer`` (exact length required)."""
    msg_type, request_id, length, crc = decode_header(buffer[:HEADER_BYTES])
    payload = buffer[HEADER_BYTES:]
    if len(payload) != length:
        raise ProtocolError(
            f"frame declares {length} payload bytes but carries {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise ChecksumError(
            f"payload checksum mismatch on {msg_type.name} frame "
            f"(request {request_id})"
        )
    return Frame(msg_type, request_id, payload)


async def read_frame(reader: asyncio.StreamReader) -> Frame:
    """Read and validate one frame from ``reader``.

    Raises :class:`ConnectionClosed` on a clean EOF between frames and
    :class:`ProtocolError` on a mid-frame EOF — the distinction is what
    lets a worker treat client disconnect as routine while the
    coordinator treats a half-written reply as a lost worker.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed between frames") from None
        raise ProtocolError(
            f"stream ended {len(exc.partial)} bytes into a frame header"
        ) from None
    msg_type, request_id, length, crc = decode_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"stream ended {len(exc.partial)}/{length} bytes into a "
            f"{msg_type.name} payload"
        ) from None
    if zlib.crc32(payload) != crc:
        raise ChecksumError(
            f"payload checksum mismatch on {msg_type.name} frame "
            f"(request {request_id})"
        )
    return Frame(msg_type, request_id, payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    msg_type: MessageType,
    request_id: int,
    obj: Any = None,
) -> None:
    """Encode and send one frame, draining the transport buffer."""
    writer.write(encode_frame(msg_type, request_id, obj))
    await writer.drain()


def error_payload(exc: BaseException) -> dict:
    """The ``ERROR`` frame body describing a worker-side exception."""
    return {"kind": type(exc).__name__, "message": str(exc)}


def raise_if_error(frame: Frame) -> Frame:
    """Pass ``OK`` frames through; re-raise ``ERROR`` frames.

    Anything other than ``OK``/``ERROR`` in reply position is a
    :class:`ProtocolError` — the peer is confused, not just failing.
    """
    if frame.type == MessageType.OK:
        return frame
    if frame.type == MessageType.ERROR:
        body = frame.load() or {}
        raise RemoteWorkerError(
            str(body.get("kind", "RuntimeError")),
            str(body.get("message", "worker reported an error")),
        )
    raise ProtocolError(
        f"expected an OK/ERROR reply, got a {frame.type.name} frame"
    )
