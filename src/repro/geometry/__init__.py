"""Point-cloud geometry substrate.

Provides the :class:`PointCloud` container, the :class:`Voxelizer` that
turns metric point clouds into :class:`~repro.sparse.SparseTensor3D`
feature maps (``192^3`` in the paper), and synthetic generators standing
in for the ShapeNet and NYU Depth v2 samples (see DESIGN.md for the
substitution rationale).
"""

from repro.geometry.point_cloud import PointCloud
from repro.geometry.voxelizer import Voxelizer
from repro.geometry.synthetic import (
    make_nyu_like_cloud,
    make_shapenet_like_cloud,
)
from repro.geometry.datasets import DatasetCatalog, load_sample

__all__ = [
    "PointCloud",
    "Voxelizer",
    "make_shapenet_like_cloud",
    "make_nyu_like_cloud",
    "DatasetCatalog",
    "load_sample",
]
