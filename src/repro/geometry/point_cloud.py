"""The :class:`PointCloud` container and basic geometric transforms."""

from __future__ import annotations

from typing import Optional

import numpy as np


class PointCloud:
    """A set of 3D points with optional per-point features.

    Parameters
    ----------
    points:
        ``(N, 3)`` float array of metric coordinates.
    features:
        Optional ``(N, C)`` float array (e.g. intensity, color).
    """

    def __init__(self, points: np.ndarray, features: Optional[np.ndarray] = None):
        points = np.asarray(points, dtype=np.float64)
        if points.size == 0:
            points = points.reshape(0, 3)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {points.shape}")
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.ndim == 1:
                features = features.reshape(-1, 1)
            if len(features) != len(points):
                raise ValueError(
                    f"points ({len(points)}) and features ({len(features)}) disagree"
                )
        self.points = points
        self.features = features

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        channels = 0 if self.features is None else self.features.shape[1]
        return f"PointCloud(n={len(self)}, feature_channels={channels})"

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """``(min_xyz, max_xyz)`` of the cloud; zeros for an empty cloud."""
        if len(self) == 0:
            zero = np.zeros(3)
            return zero, zero
        return self.points.min(axis=0), self.points.max(axis=0)

    def normalized_to_unit_cube(self, margin: float = 0.0) -> "PointCloud":
        """Uniformly rescale into ``[margin, 1 - margin]^3``, centered.

        The aspect ratio is preserved (single scale factor), matching how
        ShapeNet models are conventionally normalized before voxelization.
        """
        if not 0.0 <= margin < 0.5:
            raise ValueError(f"margin must be in [0, 0.5), got {margin}")
        if len(self) == 0:
            return PointCloud(self.points.copy(), self.features)
        lo, hi = self.bounds()
        extent = float((hi - lo).max())
        if extent == 0.0:
            centered = np.full_like(self.points, 0.5)
            return PointCloud(centered, self.features)
        scale = (1.0 - 2.0 * margin) / extent
        center = (lo + hi) / 2.0
        points = (self.points - center) * scale + 0.5
        return PointCloud(points, self.features)

    def transformed(self, rotation: np.ndarray, translation: np.ndarray) -> "PointCloud":
        """Apply ``p @ R.T + t``."""
        rotation = np.asarray(rotation, dtype=np.float64)
        translation = np.asarray(translation, dtype=np.float64)
        if rotation.shape != (3, 3):
            raise ValueError(f"rotation must be (3, 3), got {rotation.shape}")
        points = self.points @ rotation.T + translation.reshape(1, 3)
        return PointCloud(points, self.features)

    def rotated_z(self, angle_rad: float) -> "PointCloud":
        """Rotate about the +z axis."""
        c, s = np.cos(angle_rad), np.sin(angle_rad)
        rotation = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
        return self.transformed(rotation, np.zeros(3))

    def jittered(self, sigma: float, rng: np.random.Generator) -> "PointCloud":
        """Add isotropic Gaussian noise of standard deviation ``sigma``."""
        noise = rng.normal(scale=sigma, size=self.points.shape)
        return PointCloud(self.points + noise, self.features)

    def subsampled(self, n: int, rng: np.random.Generator) -> "PointCloud":
        """Random subset of at most ``n`` points (without replacement)."""
        if n >= len(self):
            return PointCloud(self.points.copy(), self.features)
        idx = rng.choice(len(self), size=n, replace=False)
        features = None if self.features is None else self.features[idx]
        return PointCloud(self.points[idx], features)

    def merged_with(self, other: "PointCloud") -> "PointCloud":
        """Union of two clouds (features must both exist or both be None)."""
        if (self.features is None) != (other.features is None):
            raise ValueError("cannot merge clouds with and without features")
        points = np.concatenate([self.points, other.points], axis=0)
        features = (
            None
            if self.features is None
            else np.concatenate([self.features, other.features], axis=0)
        )
        return PointCloud(points, features)
