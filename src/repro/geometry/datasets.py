"""Dataset registry tying the synthetic generators to the benchmarks.

``load_sample("shapenet", seed)`` returns a :class:`Sample` carrying both
the metric point cloud and its ``192^3`` voxelization, so every experiment
uses identical preprocessing (the paper's Sec. IV-B flow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.geometry.point_cloud import PointCloud
from repro.geometry.synthetic import make_nyu_like_cloud, make_shapenet_like_cloud
from repro.geometry.voxelizer import Voxelizer
from repro.sparse.coo import SparseTensor3D

PAPER_RESOLUTION = 192


@dataclass(frozen=True)
class Sample:
    """One dataset sample: the raw cloud and its voxelized feature map."""

    dataset: str
    seed: int
    cloud: PointCloud
    grid: SparseTensor3D


_GENERATORS: Dict[str, Callable[[int], PointCloud]] = {
    # "chair" is the calibrated Table I stand-in; see EXPERIMENTS.md.
    "shapenet": lambda seed: make_shapenet_like_cloud(seed=seed, category="chair"),
    "nyu": lambda seed: make_nyu_like_cloud(seed=seed),
}


class DatasetCatalog:
    """Registry of named synthetic datasets.

    New datasets can be registered at runtime, which the tests use to
    exercise the experiment harness on custom workloads.
    """

    def __init__(self) -> None:
        self._generators: Dict[str, Callable[[int], PointCloud]] = dict(_GENERATORS)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._generators))

    def register(self, name: str, generator: Callable[[int], PointCloud]) -> None:
        if name in self._generators:
            raise ValueError(f"dataset {name!r} already registered")
        self._generators[name] = generator

    def generate_cloud(self, name: str, seed: int = 0) -> PointCloud:
        if name not in self._generators:
            raise KeyError(
                f"unknown dataset {name!r}; available: {self.names()}"
            )
        return self._generators[name](seed)

    def load(
        self, name: str, seed: int = 0, resolution: int = PAPER_RESOLUTION
    ) -> Sample:
        """Generate and voxelize one sample.

        The synthetic clouds are already calibrated inside ``[0, 1]^3``,
        so voxelization runs with ``normalize=False`` (see
        :mod:`repro.geometry.synthetic`).
        """
        cloud = self.generate_cloud(name, seed)
        voxelizer = Voxelizer(
            resolution=resolution, normalize=False, occupancy_only=True
        )
        return Sample(dataset=name, seed=seed, cloud=cloud, grid=voxelizer.voxelize(cloud))


_DEFAULT_CATALOG = DatasetCatalog()


def load_sample(
    name: str, seed: int = 0, resolution: int = PAPER_RESOLUTION
) -> Sample:
    """Load a sample from the default catalog (``"shapenet"`` or ``"nyu"``)."""
    return _DEFAULT_CATALOG.load(name, seed=seed, resolution=resolution)
