"""Synthetic stand-ins for the ShapeNet and NYU Depth v2 samples.

The paper's Table I reports, for one representative sample of each
dataset voxelized at ``192^3``, the number of *active tiles* at tile sizes
4/8/12/16.  Those counts constrain the spatial statistics of the inputs
tightly:

* ~99.9 % sparsity (a few thousand occupied voxels out of 7.1 M);
* occupied voxels clustered on thin surfaces (planes, struts, shells);
* the object occupying only a fraction of the grid extent — 198 active
  4-tiles together with 14 active 16-tiles is only possible when thin
  structures span a bounding box of roughly 40-60 voxels.

The generators below synthesize such clouds from parametric primitives
(planes, boxes, cylinders, struts).  Default parameters were calibrated so
the active-tile counts land close to Table I; EXPERIMENTS.md records the
measured values next to the paper's.  All generation is deterministic in
``seed``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.geometry.point_cloud import PointCloud

SHAPENET_CATEGORIES = ("chair", "table", "airplane", "lamp")


# ----------------------------------------------------------------------
# Primitive surface samplers (all in an object-local frame, roughly
# inside [0, 1]^3; density is points per unit area decided by callers)
# ----------------------------------------------------------------------
def sample_plane(
    rng: np.random.Generator,
    origin: np.ndarray,
    u_edge: np.ndarray,
    v_edge: np.ndarray,
    n_points: int,
) -> np.ndarray:
    """Uniform samples on the parallelogram ``origin + s*u + t*v``."""
    s = rng.random(n_points)
    t = rng.random(n_points)
    return (
        np.asarray(origin)[None, :]
        + s[:, None] * np.asarray(u_edge)[None, :]
        + t[:, None] * np.asarray(v_edge)[None, :]
    )


def sample_strut(
    rng: np.random.Generator,
    start: np.ndarray,
    end: np.ndarray,
    radius: float,
    n_points: int,
) -> np.ndarray:
    """Samples on a thin cylindrical strut from ``start`` to ``end``."""
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    axis = end - start
    length = np.linalg.norm(axis)
    if length == 0.0:
        return np.tile(start, (n_points, 1))
    axis = axis / length
    # Build an orthonormal frame around the axis.
    helper = np.array([1.0, 0.0, 0.0])
    if abs(axis @ helper) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(axis, helper)
    u /= np.linalg.norm(u)
    v = np.cross(axis, u)
    t = rng.random(n_points) * length
    theta = rng.random(n_points) * 2.0 * np.pi
    return (
        start[None, :]
        + t[:, None] * axis[None, :]
        + radius * np.cos(theta)[:, None] * u[None, :]
        + radius * np.sin(theta)[:, None] * v[None, :]
    )


def sample_cylinder(
    rng: np.random.Generator,
    center: np.ndarray,
    axis: np.ndarray,
    radius: float,
    height: float,
    n_points: int,
) -> np.ndarray:
    """Samples on the lateral surface of a cylinder."""
    center = np.asarray(center, dtype=np.float64)
    half = np.asarray(axis, dtype=np.float64)
    half = half / np.linalg.norm(half) * (height / 2.0)
    return sample_strut(rng, center - half, center + half, radius, n_points)


def sample_sphere(
    rng: np.random.Generator, center: np.ndarray, radius: float, n_points: int
) -> np.ndarray:
    """Uniform samples on a sphere surface."""
    direction = rng.normal(size=(n_points, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    return np.asarray(center)[None, :] + radius * direction


def sample_box_surface(
    rng: np.random.Generator,
    lo: np.ndarray,
    hi: np.ndarray,
    n_points: int,
) -> np.ndarray:
    """Uniform samples on the six faces of an axis-aligned box."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    size = hi - lo
    areas = np.array(
        [
            size[1] * size[2],
            size[1] * size[2],
            size[0] * size[2],
            size[0] * size[2],
            size[0] * size[1],
            size[0] * size[1],
        ]
    )
    total = areas.sum()
    if total == 0.0:
        return np.tile(lo, (n_points, 1))
    face_ids = rng.choice(6, size=n_points, p=areas / total)
    points = lo[None, :] + rng.random((n_points, 3)) * size[None, :]
    points[face_ids == 0, 0] = lo[0]
    points[face_ids == 1, 0] = hi[0]
    points[face_ids == 2, 1] = lo[1]
    points[face_ids == 3, 1] = hi[1]
    points[face_ids == 4, 2] = lo[2]
    points[face_ids == 5, 2] = hi[2]
    return points


# Scene placement: tile sizes 4/8/12/16 share LCM 48, so objects are
# anchored (with a small inset) to a 48-voxel block boundary of the 192
# grid.  Table I's coarse-tile counts (e.g. NYU's 9 active 16-tiles for a
# ~44-voxel plane, i.e. exactly 3x3x1) are only reachable with such
# near-aligned placement; see EXPERIMENTS.md.
_SCENE_BLOCK = 48.0 / 192.0
_SCENE_INSET = 2.0 / 192.0


def _place_in_scene(
    points: np.ndarray,
    grid_fraction: float,
    noise_sigma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Scale an object-frame cloud and anchor it to a scene block."""
    points = points - points.min(axis=0, keepdims=True)
    extent = points.max(axis=0)
    scale = grid_fraction - 2.0 * _SCENE_INSET
    points = points * (scale / max(float(extent.max()), 1e-9))
    blocks = rng.integers(1, 3, size=3)  # block index per axis in {1, 2}
    origin = blocks * _SCENE_BLOCK + _SCENE_INSET
    points = points + origin[None, :]
    if noise_sigma > 0.0:
        points = points + rng.normal(scale=noise_sigma, size=points.shape)
    np.clip(points, 0.0, 1.0 - 1e-9, out=points)
    return points


# ----------------------------------------------------------------------
# ShapeNet-like object builders (object frame: roughly [0, 1]^3, z up)
# ----------------------------------------------------------------------
def _chair_points(rng: np.random.Generator, n_points: int) -> np.ndarray:
    """Seat plane + (short) back plane + four legs."""
    parts = []
    n_seat = int(n_points * 0.45)
    n_back = int(n_points * 0.27)
    n_leg = max(1, (n_points - n_seat - n_back) // 4)
    parts.append(
        sample_plane(rng, [0.05, 0.05, 0.42], [0.9, 0, 0], [0, 0.9, 0], n_seat)
    )
    parts.append(
        sample_plane(rng, [0.05, 0.9, 0.42], [0.9, 0, 0], [0, 0, 0.3], n_back)
    )
    for x, y in ((0.12, 0.12), (0.88, 0.12), (0.12, 0.88), (0.88, 0.88)):
        parts.append(sample_strut(rng, [x, y, 0.0], [x, y, 0.42], 0.008, n_leg))
    return np.concatenate(parts, axis=0)


def _table_points(rng: np.random.Generator, n_points: int) -> np.ndarray:
    """Tabletop + four legs."""
    parts = []
    n_top = int(n_points * 0.62)
    n_leg = max(1, (n_points - n_top) // 4)
    parts.append(
        sample_plane(rng, [0.0, 0.0, 0.72], [1.0, 0, 0], [0, 1.0, 0], n_top)
    )
    for x, y in ((0.08, 0.08), (0.92, 0.08), (0.08, 0.92), (0.92, 0.92)):
        parts.append(sample_strut(rng, [x, y, 0.0], [x, y, 0.72], 0.025, n_leg))
    return np.concatenate(parts, axis=0)


def _airplane_points(rng: np.random.Generator, n_points: int) -> np.ndarray:
    """Fuselage + main wings + tail plane + fin."""
    parts = []
    n_fuse = int(n_points * 0.35)
    n_wing = int(n_points * 0.38)
    n_tail = int(n_points * 0.15)
    n_fin = max(1, n_points - n_fuse - n_wing - n_tail)
    parts.append(
        sample_cylinder(rng, [0.5, 0.5, 0.5], [1, 0, 0], 0.06, 0.95, n_fuse)
    )
    parts.append(
        sample_plane(rng, [0.35, 0.0, 0.5], [0.22, 0, 0], [0, 1.0, 0], n_wing)
    )
    parts.append(
        sample_plane(rng, [0.86, 0.3, 0.5], [0.12, 0, 0], [0, 0.4, 0], n_tail)
    )
    parts.append(
        sample_plane(rng, [0.88, 0.5, 0.5], [0.1, 0, 0], [0, 0, 0.25], n_fin)
    )
    return np.concatenate(parts, axis=0)


def _lamp_points(rng: np.random.Generator, n_points: int) -> np.ndarray:
    """Base disc + pole + shade."""
    parts = []
    n_base = int(n_points * 0.2)
    n_pole = int(n_points * 0.25)
    n_shade = max(1, n_points - n_base - n_pole)
    parts.append(
        sample_plane(rng, [0.3, 0.3, 0.0], [0.4, 0, 0], [0, 0.4, 0], n_base)
    )
    parts.append(sample_strut(rng, [0.5, 0.5, 0.0], [0.5, 0.5, 0.75], 0.02, n_pole))
    parts.append(
        sample_cylinder(rng, [0.5, 0.5, 0.85], [0, 0, 1], 0.18, 0.22, n_shade)
    )
    return np.concatenate(parts, axis=0)


_CATEGORY_BUILDERS: Dict[str, Callable[[np.random.Generator, int], np.ndarray]] = {
    "chair": _chair_points,
    "table": _table_points,
    "airplane": _airplane_points,
    "lamp": _lamp_points,
}


def make_shapenet_like_cloud(
    seed: int = 0,
    category: Optional[str] = None,
    n_points: int = 3800,
    grid_fraction: float = 0.21,
    noise_sigma: float = 0.0015,
) -> PointCloud:
    """A synthetic CAD-like object cloud in ``[0, 1]^3``.

    Parameters
    ----------
    seed:
        Deterministic generator seed.
    category:
        One of :data:`SHAPENET_CATEGORIES`; chosen from the seed when
        ``None``.
    n_points:
        Number of surface samples.
    grid_fraction:
        Fraction of the scene extent occupied by the object (Table I's
        active-tile counts imply roughly 0.2-0.3 at ``192^3``).
    noise_sigma:
        Sensor-noise jitter in scene units.

    The returned cloud lies in ``[0, 1]^3``; voxelize it with
    ``Voxelizer(normalize=False)`` so the object keeps its calibrated
    footprint instead of being stretched to fill the grid.
    """
    if not 0.0 < grid_fraction <= 1.0:
        raise ValueError(f"grid_fraction must be in (0, 1], got {grid_fraction}")
    rng = np.random.default_rng(seed)
    if category is None:
        category = SHAPENET_CATEGORIES[int(rng.integers(len(SHAPENET_CATEGORIES)))]
    if category not in _CATEGORY_BUILDERS:
        raise ValueError(
            f"unknown category {category!r}; expected one of {SHAPENET_CATEGORIES}"
        )
    points = _CATEGORY_BUILDERS[category](rng, n_points)
    points = _place_in_scene(points, grid_fraction, noise_sigma, rng)
    return PointCloud(points)


def make_nyu_like_cloud(
    seed: int = 0,
    n_points: int = 3000,
    grid_fraction: float = 0.23,
    noise_sigma: float = 0.0015,
) -> PointCloud:
    """A synthetic indoor RGB-D style scene crop in ``[0, 1]^3``.

    Mimics the statistics of a voxelized NYU Depth v2 sample: Table I's
    counts (161/33/19/9 active tiles at 4/8/12/16) are those of a single
    dominant floor patch of roughly 44 voxels extent carrying a small
    box-shaped object and a small cylindrical object — coarse-tile counts
    collapse faster than for the ShapeNet-like object because nearly all
    points lie on one plane.
    """
    if not 0.0 < grid_fraction <= 1.0:
        raise ValueError(f"grid_fraction must be in (0, 1], got {grid_fraction}")
    rng = np.random.default_rng(seed)
    parts = []
    n_floor = int(n_points * 0.62)
    n_box = int(n_points * 0.26)
    n_obj = max(1, n_points - n_floor - n_box)
    # Dominant floor patch.
    parts.append(
        sample_plane(rng, [0.0, 0.0, 0.0], [1.0, 0, 0], [0, 1.0, 0], n_floor)
    )
    # A crate-like box resting on the floor and a small cylindrical object.
    parts.append(
        sample_box_surface(rng, [0.58, 0.58, 0.0], [0.82, 0.8, 0.2], n_box)
    )
    parts.append(
        sample_cylinder(rng, [0.25, 0.72, 0.08], [0, 0, 1], 0.05, 0.16, n_obj)
    )
    points = np.concatenate(parts, axis=0)
    points = _place_in_scene(points, grid_fraction, noise_sigma, rng)
    return PointCloud(points)
