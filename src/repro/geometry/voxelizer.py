"""Voxelization of metric point clouds into sparse feature maps.

The paper normalizes each point cloud to a ``192^3`` grid after
voxelization (Sec. IV-B).  :class:`Voxelizer` reproduces that flow: points
are normalized to the unit cube, scaled by the resolution, truncated to
integer voxel coordinates, and duplicate hits are aggregated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.point_cloud import PointCloud
from repro.sparse.coo import SparseTensor3D


class Voxelizer:
    """Maps a :class:`PointCloud` onto a cubic voxel grid.

    Parameters
    ----------
    resolution:
        Grid side length (the paper uses 192).
    normalize:
        When ``True`` (default), the cloud is first normalized to the unit
        cube, so any metric scale is accepted.  When ``False``, points are
        assumed to already lie in ``[0, 1)^3``.
    reduce:
        Aggregation for multiple points hitting the same voxel
        (``"mean"``, ``"sum"`` or ``"max"``).
    occupancy_only:
        When ``True``, the produced features are a single all-ones channel
        regardless of any per-point features.
    """

    def __init__(
        self,
        resolution: int = 192,
        normalize: bool = True,
        reduce: str = "mean",
        occupancy_only: bool = False,
    ) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        self.resolution = int(resolution)
        self.normalize = bool(normalize)
        self.reduce = reduce
        self.occupancy_only = bool(occupancy_only)

    def voxelize(self, cloud: PointCloud) -> SparseTensor3D:
        """Produce the sparse occupancy/feature grid for ``cloud``."""
        shape = (self.resolution, self.resolution, self.resolution)
        if len(cloud) == 0:
            return SparseTensor3D.empty(shape)
        working = cloud.normalized_to_unit_cube() if self.normalize else cloud
        scaled = working.points * self.resolution
        voxels = np.floor(scaled).astype(np.int64)
        # Points exactly on the upper boundary land on resolution; clamp.
        np.clip(voxels, 0, self.resolution - 1, out=voxels)
        if self.occupancy_only or cloud.features is None:
            features: Optional[np.ndarray] = None
        else:
            features = working.features
        return SparseTensor3D.from_points(voxels, features, shape, reduce=self.reduce)

    def voxel_size(self, cloud: PointCloud) -> float:
        """Metric edge length of one voxel for ``cloud`` (after normalization)."""
        if not self.normalize:
            return 1.0 / self.resolution
        lo, hi = cloud.bounds()
        extent = float((hi - lo).max())
        if extent == 0.0:
            return 1.0 / self.resolution
        return extent / self.resolution
