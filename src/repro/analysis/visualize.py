"""ASCII visualization of sparse feature maps and tile grids.

Console-friendly renderings used by the examples and documentation:
occupancy projections of a voxel grid (what Fig. 3's feature maps look
like) and active-tile maps (the zero removing strategy at a glance).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.arch.tiling import TileGrid
from repro.sparse.coo import SparseTensor3D

_DENSITY_RAMP = " .:-=+*#%@"


def _axis_index(axis: str) -> int:
    try:
        return {"x": 0, "y": 1, "z": 2}[axis]
    except KeyError:
        raise ValueError(f"axis must be 'x', 'y' or 'z', got {axis!r}") from None


def _downsample_counts(counts: np.ndarray, max_size: int) -> np.ndarray:
    """Shrink a 2D count map by integer box-summing to fit the console."""
    if max_size <= 0:
        raise ValueError(f"max_size must be positive, got {max_size}")
    factor = max(1, -(-max(counts.shape) // max_size))
    if factor == 1:
        return counts
    pad_r = (-counts.shape[0]) % factor
    pad_c = (-counts.shape[1]) % factor
    padded = np.pad(counts, ((0, pad_r), (0, pad_c)))
    reshaped = padded.reshape(
        padded.shape[0] // factor, factor, padded.shape[1] // factor, factor
    )
    return reshaped.sum(axis=(1, 3))


def render_projection(
    tensor: SparseTensor3D, axis: str = "z", max_size: int = 64
) -> str:
    """Occupancy projection of the grid along ``axis`` as ASCII art.

    Density maps onto the ramp ``" .:-=+*#%@"``; empty rows/columns are
    kept so spatial proportions read correctly.
    """
    ax = _axis_index(axis)
    keep = [a for a in range(3) if a != ax]
    shape_2d: Tuple[int, int] = (tensor.shape[keep[0]], tensor.shape[keep[1]])
    counts = np.zeros(shape_2d, dtype=np.int64)
    if tensor.nnz:
        np.add.at(counts, (tensor.coords[:, keep[0]], tensor.coords[:, keep[1]]), 1)
    counts = _downsample_counts(counts, max_size)
    peak = counts.max()
    if peak == 0:
        return "\n".join(" " * counts.shape[1] for _ in range(counts.shape[0]))
    levels = np.minimum(
        (counts * (len(_DENSITY_RAMP) - 1) + peak - 1) // peak,
        len(_DENSITY_RAMP) - 1,
    )
    return "\n".join(
        "".join(_DENSITY_RAMP[level] for level in row) for row in levels
    )


def render_tile_map(grid: TileGrid, axis: str = "z") -> str:
    """Active-tile map projected along ``axis`` ('#' active, '.' empty).

    A cell is '#' when any tile along the projected axis is active — the
    visual counterpart of Table I's active-tile counts.
    """
    ax = _axis_index(axis)
    keep = [a for a in range(3) if a != ax]
    dims = (grid.grid_dims[keep[0]], grid.grid_dims[keep[1]])
    active = np.zeros(dims, dtype=bool)
    for tile in grid.active_tiles:
        active[tile.index[keep[0]], tile.index[keep[1]]] = True
    return "\n".join(
        "".join("#" if cell else "." for cell in row) for row in active
    )


def occupancy_summary(tensor: SparseTensor3D) -> str:
    """One-line textual summary used by the examples."""
    return (
        f"{tensor.nnz} active sites in {tensor.shape[0]}x{tensor.shape[1]}"
        f"x{tensor.shape[2]} ({tensor.sparsity:.4%} sparse)"
    )
