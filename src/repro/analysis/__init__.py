"""Metrics, report formatting, and the per-table/figure experiment harness."""

from repro.analysis.metrics import (
    effective_gops,
    gops_per_watt,
    relative_error,
    speedup,
)
from repro.analysis.reporting import format_ratio, format_table
from repro.analysis.roofline import (
    RooflinePoint,
    ridge_intensity,
    roofline_point,
    roofline_report,
)
from repro.analysis.visualize import (
    occupancy_summary,
    render_projection,
    render_tile_map,
)
from repro.analysis.campaigns import (
    MetricSummary,
    Table1Statistics,
    ThroughputStatistics,
    run_table1_statistics,
    run_throughput_statistics,
)
from repro.analysis.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    Fig10Result,
    Table1Result,
    Table2Result,
    Table3Result,
    run_fig10,
    run_table1,
    run_table2,
    run_table3,
)

__all__ = [
    "speedup",
    "effective_gops",
    "gops_per_watt",
    "relative_error",
    "format_table",
    "format_ratio",
    "render_projection",
    "render_tile_map",
    "occupancy_summary",
    "RooflinePoint",
    "roofline_point",
    "roofline_report",
    "ridge_intensity",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Fig10Result",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig10",
    "MetricSummary",
    "Table1Statistics",
    "ThroughputStatistics",
    "run_table1_statistics",
    "run_throughput_statistics",
]
