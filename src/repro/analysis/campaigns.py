"""Multi-seed experiment campaigns (statistical robustness).

The paper reports single-sample numbers; a reproduction should show the
spread.  A campaign re-runs an experiment across synthetic-sample seeds
and aggregates mean / standard deviation / extrema per metric, which the
statistics benchmark turns into Table I-with-error-bars and a
GOPS-stability report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.experiments import PAPER_TABLE1
from repro.arch.accelerator import AnalyticalModel
from repro.arch.config import AcceleratorConfig
from repro.arch.tiling import ZeroRemover
from repro.geometry.datasets import load_sample


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one scalar metric across seeds."""

    name: str
    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int

    @classmethod
    def from_values(cls, name: str, values: Sequence[float]) -> "MetricSummary":
        if not values:
            raise ValueError(f"metric {name!r} has no samples")
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            name=name,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            samples=len(arr),
        )

    def format(self) -> str:
        return f"{self.mean:.2f} +- {self.std:.2f} (n={self.samples})"


@dataclass
class Table1Statistics:
    """Active-tile statistics across seeds, per dataset and tile size."""

    summaries: Dict[Tuple[str, int], MetricSummary]
    seeds: Tuple[int, ...]

    def summary(self, dataset: str, tile_size: int) -> MetricSummary:
        return self.summaries[(dataset, tile_size)]

    def within_band(self, low: float = 0.4, high: float = 1.8) -> bool:
        """Whether every mean lies within [low, high] x paper value."""
        for (dataset, tile_size), summary in self.summaries.items():
            paper = PAPER_TABLE1[dataset][tile_size][0]
            if not low * paper <= summary.mean <= high * paper:
                return False
        return True


def run_table1_statistics(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    datasets: Sequence[str] = ("shapenet", "nyu"),
    tile_sizes: Sequence[int] = (4, 8, 12, 16),
) -> Table1Statistics:
    """Table I across seeds: mean/std active tiles per configuration."""
    values: Dict[Tuple[str, int], List[float]] = {
        (dataset, tile): [] for dataset in datasets for tile in tile_sizes
    }
    remover = ZeroRemover()
    for dataset in datasets:
        for seed in seeds:
            grid = load_sample(dataset, seed=seed).grid
            for tile in tile_sizes:
                result = remover.remove_cubic(grid, tile)
                values[(dataset, tile)].append(float(result.active_tiles))
    summaries = {
        key: MetricSummary.from_values(f"{key[0]}@{key[1]}", vals)
        for key, vals in values.items()
    }
    return Table1Statistics(summaries=summaries, seeds=tuple(seeds))


@dataclass
class ThroughputStatistics:
    """Analytical layer-throughput spread across seeds."""

    cycles: MetricSummary
    matches: MetricSummary
    seeds: Tuple[int, ...]


def run_throughput_statistics(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    dataset: str = "shapenet",
    in_channels: int = 16,
    out_channels: int = 16,
    config: AcceleratorConfig | None = None,
) -> ThroughputStatistics:
    """Spread of the analytical per-layer cycle estimate across seeds."""
    config = config or AcceleratorConfig()
    model = AnalyticalModel(config)
    cycle_values: List[float] = []
    match_values: List[float] = []
    for seed in seeds:
        grid = load_sample(dataset, seed=seed).grid
        scanned, matches = model.workload_statistics(grid.occupancy())
        cycles = model.estimate_cycles(
            scanned, matches, in_channels, out_channels
        )
        cycle_values.append(float(cycles))
        match_values.append(float(matches))
    return ThroughputStatistics(
        cycles=MetricSummary.from_values("cycles", cycle_values),
        matches=MetricSummary.from_values("matches", match_values),
        seeds=tuple(seeds),
    )
