"""Small metric helpers shared by experiments and benchmarks."""

from __future__ import annotations


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if candidate_seconds <= 0:
        raise ValueError(f"candidate time must be positive, got {candidate_seconds}")
    return baseline_seconds / candidate_seconds


def effective_gops(effective_ops: int, seconds: float) -> float:
    """Effective (nonzero-MAC) throughput in GOPS."""
    if seconds <= 0:
        raise ValueError(f"time must be positive, got {seconds}")
    return effective_ops / seconds / 1e9


def gops_per_watt(gops: float, watts: float) -> float:
    """Power efficiency as reported in Table III."""
    if watts <= 0:
        raise ValueError(f"power must be positive, got {watts}")
    return gops / watts


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (0 when both are 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)
