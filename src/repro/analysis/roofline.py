"""Roofline analysis of the accelerator.

Places every simulated layer on the classic roofline: achievable
throughput is ``min(peak_gops, operational_intensity * bandwidth)``,
where operational intensity is effective ops per byte moved over the
PS<->PL link.  This makes the two regimes of the ESCA design visible in
one table — the matching-bound shallow layers sit far below both roofs
(the SDMU scan, not the MAC array or DRAM, limits them), while the deep
layers ride the compute roof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch.accelerator import LayerRunResult, NetworkRunResult
from repro.arch.config import AcceleratorConfig
from repro.arch.overhead import SystemOverheadModel


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline."""

    name: str
    operational_intensity: float  # effective ops per transferred byte
    achieved_gops: float          # core throughput of the simulated run
    roof_gops: float              # min(compute roof, memory roof at this OI)
    bound: str                    # "compute" | "memory"

    @property
    def roof_fraction(self) -> float:
        """Fraction of the attainable roof actually achieved."""
        if self.roof_gops == 0:
            return 0.0
        return self.achieved_gops / self.roof_gops


def roofline_point(
    run: LayerRunResult,
    config: Optional[AcceleratorConfig] = None,
    overheads: Optional[SystemOverheadModel] = None,
) -> RooflinePoint:
    """Roofline placement of one simulated layer run."""
    config = config or run.config
    overheads = overheads or SystemOverheadModel()
    total_bytes = run.transfer.total_bytes
    if total_bytes <= 0:
        raise ValueError("layer moved no bytes; roofline is undefined")
    intensity = run.effective_ops / total_bytes
    bandwidth = overheads.effective_bandwidth_bytes_per_s
    memory_roof = intensity * bandwidth / 1e9
    compute_roof = config.peak_gops
    roof = min(compute_roof, memory_roof)
    return RooflinePoint(
        name=run.layer_name,
        operational_intensity=intensity,
        achieved_gops=run.effective_gops(),
        roof_gops=roof,
        bound="compute" if memory_roof >= compute_roof else "memory",
    )


def roofline_report(
    network: NetworkRunResult,
    config: Optional[AcceleratorConfig] = None,
    overheads: Optional[SystemOverheadModel] = None,
) -> List[RooflinePoint]:
    """Roofline placement of every layer of a network run."""
    return [
        roofline_point(run, config=config, overheads=overheads)
        for run in network.layers
    ]


def ridge_intensity(
    config: Optional[AcceleratorConfig] = None,
    overheads: Optional[SystemOverheadModel] = None,
) -> float:
    """Operational intensity where the memory roof meets the compute roof."""
    config = config or AcceleratorConfig()
    overheads = overheads or SystemOverheadModel()
    return config.peak_gops * 1e9 / overheads.effective_bandwidth_bytes_per_s
