"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], indent: str = ""
) -> str:
    """Render an aligned ASCII table (all cells stringified)."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(indent + header_line)
    lines.append(indent + "  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_ratio(measured: float, paper: float, unit: str = "") -> str:
    """``measured (paper: x)`` with a compact numeric format."""
    suffix = f" {unit}" if unit else ""
    return f"{measured:.2f}{suffix} (paper: {paper:.2f}{suffix})"
