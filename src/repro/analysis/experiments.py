"""One experiment function per evaluation artifact of the paper.

* :func:`run_table1` — zero removing analysis (active tiles / removing
  ratio per tile size on the ShapeNet-like and NYU-like samples).
* :func:`run_table2` — FPGA frequency and resource utilization.
* :func:`run_table3` — cross-platform comparison (GPU / FPGA [19] / ESCA).
* :func:`run_fig10` — per-layer time consumption (CPU / GPU / ESCA).

Each returns a structured result holding both the measured values and the
paper's published ones, plus a ``format()`` method producing the table as
text.  The benchmark suite wraps these functions one-to-one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import gops_per_watt
from repro.analysis.reporting import format_table
from repro.arch.accelerator import EscaAccelerator, NetworkRunResult
from repro.arch.config import AcceleratorConfig
from repro.arch.tiling import ZeroRemover
from repro.baselines.cpu import CpuExecutionModel
from repro.baselines.gpu import GpuExecutionModel
from repro.baselines.comparators import (
    PUBLISHED_FPGA_POINTNET,
    PUBLISHED_GPU_P100,
)
from repro.baselines.platform import (
    SubConvWorkload,
    workload_from_tensor,
    workloads_from_executions,
)
from repro.geometry.datasets import load_sample
from repro.hwmodel.power import PowerModel
from repro.hwmodel.resources import estimate_resources
from repro.nn.unet import SSUNet, UNetConfig, collect_subconv_workloads

# ----------------------------------------------------------------------
# Published values
# ----------------------------------------------------------------------
PAPER_TABLE1: Dict[str, Dict[int, Tuple[int, int, float]]] = {
    # dataset -> tile size -> (active tiles, all tiles, removing ratio %)
    "shapenet": {
        4: (198, 110592, 99.82),
        8: (42, 13824, 99.69),
        12: (23, 4096, 99.43),
        16: (14, 1728, 99.18),
    },
    "nyu": {
        4: (161, 110592, 99.85),
        8: (33, 13824, 99.76),
        12: (19, 4096, 99.53),
        16: (9, 1728, 99.48),
    },
}

PAPER_TABLE2 = {
    "frequency_mhz": 270.0,
    "LUT": (17614, 6.43),
    "FF": (12142, 2.22),
    "BRAM": (365.5, 40.08),
    "DSP": (256, 10.16),
}

PAPER_FIG10_SPEEDUP_VS_CPU = 8.41
PAPER_FIG10_SPEEDUP_VS_GPU = 1.89


def default_unet() -> SSUNet:
    """The SS U-Net configuration used throughout the evaluation."""
    return SSUNet(
        UNetConfig(
            in_channels=1, num_classes=16, base_channels=16, levels=4, reps=1
        )
    )


# ----------------------------------------------------------------------
# Table I — zero removing analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    dataset: str
    tile_size: int
    active_tiles: int
    total_tiles: int
    removing_ratio: float
    paper_active_tiles: int
    paper_removing_ratio: float


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def format(self) -> str:
        return format_table(
            [
                "Dataset", "Tile Size", "Active Tiles", "All Tiles",
                "Removing Ratio", "Paper Active", "Paper Ratio",
            ],
            [
                (
                    row.dataset,
                    f"{row.tile_size}^3",
                    row.active_tiles,
                    row.total_tiles,
                    f"{row.removing_ratio:.2%}",
                    row.paper_active_tiles,
                    f"{row.paper_removing_ratio:.2f}%",
                )
                for row in self.rows
            ],
        )


def run_table1(
    seed: int = 0,
    datasets: Tuple[str, ...] = ("shapenet", "nyu"),
    tile_sizes: Tuple[int, ...] = (4, 8, 12, 16),
) -> Table1Result:
    """Reproduce Table I on the synthetic dataset stand-ins."""
    rows: List[Table1Row] = []
    remover = ZeroRemover()
    for dataset in datasets:
        sample = load_sample(dataset, seed=seed)
        for tile_size in tile_sizes:
            result = remover.remove_cubic(sample.grid, tile_size)
            paper_active, paper_total, paper_ratio = PAPER_TABLE1[dataset][tile_size]
            if result.total_tiles != paper_total:
                raise AssertionError(
                    f"grid mismatch: {result.total_tiles} tiles vs paper "
                    f"{paper_total} — resolution must be 192"
                )
            rows.append(
                Table1Row(
                    dataset=dataset,
                    tile_size=tile_size,
                    active_tiles=result.active_tiles,
                    total_tiles=result.total_tiles,
                    removing_ratio=result.removing_ratio,
                    paper_active_tiles=paper_active,
                    paper_removing_ratio=paper_ratio,
                )
            )
    return Table1Result(rows=rows)


# ----------------------------------------------------------------------
# Table II — frequency and resource utilization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    resource: str
    used: float
    available: int
    utilization: float
    paper_used: float
    paper_utilization: float


@dataclass
class Table2Result:
    frequency_mhz: float
    rows: List[Table2Row]

    def format(self) -> str:
        header = f"Frequency: {self.frequency_mhz:.0f} MHz " \
                 f"(paper: {PAPER_TABLE2['frequency_mhz']:.0f} MHz)\n"
        return header + format_table(
            ["Resource", "Used", "Available", "Utilization", "Paper Used",
             "Paper Util"],
            [
                (
                    row.resource,
                    f"{row.used:g}",
                    row.available,
                    f"{row.utilization:.2%}",
                    f"{row.paper_used:g}",
                    f"{row.paper_utilization:.2f}%",
                )
                for row in self.rows
            ],
        )


def run_table2(config: Optional[AcceleratorConfig] = None) -> Table2Result:
    """Reproduce Table II from the analytical resource model."""
    config = config or AcceleratorConfig()
    breakdown = estimate_resources(config)
    total = breakdown.total
    device = breakdown.device
    used = {
        "LUT": total.lut,
        "FF": total.ff,
        "BRAM": total.bram36,
        "DSP": total.dsp,
    }
    available = {
        "LUT": device.luts,
        "FF": device.ffs,
        "BRAM": device.bram36,
        "DSP": device.dsps,
    }
    rows = [
        Table2Row(
            resource=name,
            used=used[name],
            available=available[name],
            utilization=used[name] / available[name],
            paper_used=PAPER_TABLE2[name][0],
            paper_utilization=PAPER_TABLE2[name][1],
        )
        for name in ("LUT", "FF", "BRAM", "DSP")
    ]
    return Table2Result(frequency_mhz=config.clock_hz / 1e6, rows=rows)


# ----------------------------------------------------------------------
# Table III — comparison with other implementations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    label: str
    device: str
    frequency_mhz: Optional[float]
    model: str
    precision: str
    power_watts: float
    performance_gops: float
    power_efficiency: float


@dataclass
class Table3Result:
    rows: List[Table3Row]
    network: NetworkRunResult
    performance_ratio_vs_gpu: float
    efficiency_ratio_vs_gpu: float

    def row(self, label: str) -> Table3Row:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def format(self) -> str:
        table = format_table(
            ["", "Device", "Freq (MHz)", "Model", "Precision", "Power (W)",
             "GOPS", "GOPS/W"],
            [
                (
                    row.label,
                    row.device,
                    "-" if row.frequency_mhz is None else f"{row.frequency_mhz:.0f}",
                    row.model,
                    row.precision,
                    f"{row.power_watts:.2f}",
                    f"{row.performance_gops:.2f}",
                    f"{row.power_efficiency:.2f}",
                )
                for row in self.rows
            ],
        )
        return (
            table
            + f"\nESCA vs GPU performance: {self.performance_ratio_vs_gpu:.2f}x"
            + " (paper: 1.88x)"
            + f"\nESCA vs GPU power efficiency: {self.efficiency_ratio_vs_gpu:.1f}x"
            + " (paper: 51x)"
        )


def run_table3(
    seed: int = 0,
    config: Optional[AcceleratorConfig] = None,
    net: Optional[SSUNet] = None,
    verify: bool = False,
) -> Table3Result:
    """Reproduce Table III: simulate ESCA, model the GPU, quote [19]."""
    config = config or AcceleratorConfig()
    net = net or default_unet()
    sample = load_sample("shapenet", seed=seed)

    accelerator = EscaAccelerator(config)
    network = accelerator.run_network(net, sample.grid, verify=verify)
    esca_gops = network.system_gops()
    esca_power = PowerModel().total_watts(config)
    esca_eff = gops_per_watt(esca_gops, esca_power)

    executions = collect_subconv_workloads(net, sample.grid)
    workloads = workloads_from_executions(executions, config.kernel_size)
    gpu = GpuExecutionModel()
    gpu_gops = gpu.network_gops(workloads)
    gpu_eff = gops_per_watt(gpu_gops, gpu.power_watts)

    rows = [
        Table3Row(
            label="GPU",
            device=PUBLISHED_GPU_P100.device,
            frequency_mhz=None,
            model="SS U-Net",
            precision="FP32",
            power_watts=gpu.power_watts,
            performance_gops=gpu_gops,
            power_efficiency=gpu_eff,
        ),
        Table3Row(
            label="[19]",
            device=PUBLISHED_FPGA_POINTNET.device,
            frequency_mhz=PUBLISHED_FPGA_POINTNET.frequency_mhz,
            model=PUBLISHED_FPGA_POINTNET.model,
            precision=PUBLISHED_FPGA_POINTNET.precision,
            power_watts=PUBLISHED_FPGA_POINTNET.power_watts,
            performance_gops=PUBLISHED_FPGA_POINTNET.performance_gops,
            power_efficiency=PUBLISHED_FPGA_POINTNET.power_efficiency,
        ),
        Table3Row(
            label="ours",
            device="Zynq ZCU102",
            frequency_mhz=config.clock_hz / 1e6,
            model="SS U-Net",
            precision=f"INT{config.weight_bits}/INT{config.activation_bits}",
            power_watts=esca_power,
            performance_gops=esca_gops,
            power_efficiency=esca_eff,
        ),
    ]
    return Table3Result(
        rows=rows,
        network=network,
        performance_ratio_vs_gpu=esca_gops / gpu_gops,
        efficiency_ratio_vs_gpu=esca_eff / gpu_eff,
    )


# ----------------------------------------------------------------------
# Fig. 10 — per-layer time consumption
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Entry:
    platform: str
    layer_seconds: float
    speedup_vs_esca: float  # < 1 means slower than ESCA
    paper_slowdown: Optional[float]  # paper's time ratio vs ESCA


@dataclass
class Fig10Result:
    entries: List[Fig10Entry]
    workload: SubConvWorkload

    def entry(self, platform: str) -> Fig10Entry:
        for item in self.entries:
            if item.platform == platform:
                return item
        raise KeyError(platform)

    def format(self) -> str:
        return format_table(
            ["Platform", "Time (ms)", "Slowdown vs ESCA", "Paper"],
            [
                (
                    e.platform,
                    f"{e.layer_seconds * 1e3:.3f}",
                    f"{1.0 / e.speedup_vs_esca:.2f}x",
                    "-" if e.paper_slowdown is None else f"{e.paper_slowdown:.2f}x",
                )
                for e in self.entries
            ],
        )


def run_fig10(
    seed: int = 0,
    config: Optional[AcceleratorConfig] = None,
    in_channels: int = 16,
    out_channels: int = 16,
) -> Fig10Result:
    """Reproduce Fig. 10: one full-resolution Sub-Conv layer on each platform.

    The representative layer is the full-resolution ``16 -> 16`` Sub-Conv
    of the SS U-Net encoder on the ShapeNet-like sample (the workload
    whose matching cost dominates, which is the regime Fig. 10
    illustrates).
    """
    config = config or AcceleratorConfig()
    sample = load_sample("shapenet", seed=seed)
    rng = np.random.default_rng(seed)
    tensor = sample.grid.with_features(
        rng.standard_normal((sample.grid.nnz, in_channels))
    )
    workload = workload_from_tensor(
        tensor, in_channels, out_channels, config.kernel_size, name="fig10-layer"
    )

    accelerator = EscaAccelerator(config)
    esca_run = accelerator.run_layer(
        tensor, out_channels=out_channels, layer_name="fig10-layer"
    )
    esca_seconds = esca_run.total_seconds
    cpu_seconds = CpuExecutionModel().layer_seconds(workload)
    gpu_seconds = GpuExecutionModel().layer_seconds(workload)

    entries = [
        Fig10Entry(
            platform="CPU",
            layer_seconds=cpu_seconds,
            speedup_vs_esca=esca_seconds / cpu_seconds,
            paper_slowdown=PAPER_FIG10_SPEEDUP_VS_CPU,
        ),
        Fig10Entry(
            platform="GPU",
            layer_seconds=gpu_seconds,
            speedup_vs_esca=esca_seconds / gpu_seconds,
            paper_slowdown=PAPER_FIG10_SPEEDUP_VS_GPU,
        ),
        Fig10Entry(
            platform="ESCA",
            layer_seconds=esca_seconds,
            speedup_vs_esca=1.0,
            paper_slowdown=1.0,
        ),
    ]
    return Fig10Result(entries=entries, workload=workload)
