"""Energy-per-inference analysis across platforms.

Table III compares power and GOPS/W; deployments usually care about
energy per processed frame (J/inference), which combines the power and
latency models already in the repository.  This module produces that
comparison for an arbitrary Sub-Conv workload set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.arch.accelerator import NetworkRunResult
from repro.arch.config import AcceleratorConfig
from repro.baselines.cpu import CpuExecutionModel
from repro.baselines.gpu import GpuExecutionModel
from repro.baselines.platform import PlatformModel, SubConvWorkload
from repro.hwmodel.power import PowerModel


@dataclass(frozen=True)
class EnergyRow:
    """Energy accounting of one platform on one workload set."""

    platform: str
    seconds: float
    power_watts: float

    @property
    def energy_joules(self) -> float:
        return self.seconds * self.power_watts

    @property
    def energy_millijoules(self) -> float:
        return self.energy_joules * 1e3


def esca_energy(
    network: NetworkRunResult,
    config: Optional[AcceleratorConfig] = None,
    power_model: Optional[PowerModel] = None,
) -> EnergyRow:
    """Energy of a simulated ESCA network run."""
    config = config or AcceleratorConfig()
    power = (power_model or PowerModel()).total_watts(config)
    return EnergyRow(
        platform="ESCA",
        seconds=network.total_seconds,
        power_watts=power,
    )


def platform_energy(
    model: PlatformModel, workloads: Sequence[SubConvWorkload]
) -> EnergyRow:
    """Energy of a baseline platform on the same effective workloads."""
    seconds = model.network_seconds(list(workloads))
    return EnergyRow(
        platform=model.name,
        seconds=seconds,
        power_watts=model.power_watts,
    )


def energy_comparison(
    network: NetworkRunResult,
    workloads: Sequence[SubConvWorkload],
    config: Optional[AcceleratorConfig] = None,
) -> List[EnergyRow]:
    """CPU / GPU / ESCA energy for one inference of the workload set."""
    rows = [
        platform_energy(CpuExecutionModel(), workloads),
        platform_energy(GpuExecutionModel(), workloads),
        esca_energy(network, config=config),
    ]
    return rows


def energy_ratio(rows: Sequence[EnergyRow], platform: str) -> float:
    """Energy of ``platform`` relative to ESCA (``> 1`` means worse)."""
    by_name = {row.platform: row for row in rows}
    if "ESCA" not in by_name or platform not in by_name:
        raise KeyError(f"need ESCA and {platform!r} rows")
    esca = by_name["ESCA"].energy_joules
    if esca == 0:
        raise ValueError("ESCA energy is zero")
    return by_name[platform].energy_joules / esca
