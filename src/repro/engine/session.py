"""The unified :class:`InferenceSession` — one entry point for the SS U-Net.

The paper's matching-reuse story (one matching pass serving many
consumers) only pays off when every consumer shares the same rulebooks.
Before this module, each consumer owned its own ad-hoc entry point: the
numeric network threaded a cache through forward kwargs, the streaming
runtime built its own, and the host/compiler models rebuilt rulebooks
from scratch.  The session centralizes that state:

* a :class:`repro.nn.rulebook.RulebookCache` — one matching pass per
  (site set, kernel geometry), shared by the network forward, the
  analytical estimate, the cycle-accurate simulation, the host model,
  and the compiler;
* a cross-scale :class:`PlanCache` — the strided rulebook of U-Net level
  ``L`` fixes the site set of level ``L + 1``, so one walk down the
  scales yields every rulebook the whole network needs (a
  :class:`NetworkPlan`), amortized across frames, batches and estimates;
* the :class:`repro.arch.config.AcceleratorConfig`,
  :class:`repro.arch.host.HostExecutionModel`,
  :class:`repro.arch.overhead.SystemOverheadModel`, and the session's
  quantization settings (:class:`QuantizationSpec`).

The execution surfaces::

    session.run(tensor)            # single-frame network forward
    session.run_batch(tensors)     # multi-frame, stacked features over
                                   # cached plans; bit-identical to
                                   # per-frame run() calls
    session.estimate(tensor)       # analytical cycle/latency model,
                                   # accelerated + host layers
    session.estimate_batch(tensors)  # one plan/estimate per digest group

``run_batch`` groups frames by their coordinate digest: frames sharing a
site set share one plan, one gather and one scatter per offset, with the
per-offset GEMM executed frame by frame on identical contiguous blocks
so batched outputs are bit-identical to sequential ones.

All numeric evaluation flows through the session's pluggable
:class:`repro.engine.backend.ExecutionBackend` (``backend=`` /
``AcceleratorConfig.execution_backend``): the fused numpy engine by
default, cached scipy CSR operators, or a sharded multiprocessing pool
that fans digest groups across warm worker sessions — all bit-identical
for every precision.  The asyncio serving front door
(:mod:`repro.runtime.server`) sits on top of ``run_batch``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.accelerator import (
    AnalyticalModel,
    EscaAccelerator,
    NetworkRunResult,
)
from repro.arch.config import AcceleratorConfig
from repro.arch.host import HostExecutionModel, HostLayerRun
from repro.arch.overhead import SystemOverheadModel, layer_transfer_volume
from repro.arch.tiling import TileGrid
from repro.engine.backend import (
    ExecutionBackend,
    GroupTask,
    NumpyFusedBackend,
    get_backend,
)
from repro.arch.mapping_model import (
    MappingCostModel,
    MappingOpEstimate,
    MappingSimulation,
)
from repro.engine import mapping as mapping_ops
from repro.engine.delta import DEFAULT_DELTA_THRESHOLD, DeltaRulebookCache
from repro.engine.mapping import MappingResult
from repro.engine.mapping_delta import DeltaMappingCache, MappingCache
from repro.nn.functional import ApplyStats, normalize_weights
from repro.obs.metrics import MetricRegistry
from repro.nn.layers import (
    BatchNormSparse,
    ReLUSparse,
    SparseConv3d,
    SparseInverseConv3d,
    SubmanifoldConv3d,
)
from repro.nn.network import Parameter, Sequential
from repro.nn.rulebook import Rulebook, RulebookCache
from repro.nn.unet import LayerExecution, SSUNet, UNetConfig
from repro.quant.fixed_point import (
    ACC_INT32,
    ACT_INT16,
    WEIGHT_INT8,
    FixedPointFormat,
    dequantize,
    quantize,
    saturate,
)
from repro.quant.quantizer import calibrate_scale, calibrate_scale_batch
from repro.sparse.coo import SparseTensor3D

PRECISIONS = ("float64", "float32", "int")


@dataclass(frozen=True)
class QuantizationSpec:
    """Fixed-point formats of the session's quantized (``int``) path.

    Defaults follow the paper's FPGA deployment: INT8 weights, INT16
    activations, INT32 accumulators (saturation applied once per layer).
    """

    weight_fmt: FixedPointFormat = WEIGHT_INT8
    act_fmt: FixedPointFormat = ACT_INT16


@dataclass(frozen=True)
class SessionStats:
    """Snapshot of a session's engine counters.

    ``matching_passes`` counts actual rulebook constructions (cache
    misses); every other rulebook consumption was a reuse.  The tentpole
    invariant — a warm session performs exactly one matching pass per
    (scale, kind) — is asserted against this field in the test suite.
    """

    frames_run: int
    batches_run: int
    estimates: int
    backend: str
    matching_passes: int
    rulebook_hits: int
    rulebook_misses: int
    rulebook_hit_rate: float
    plan_hits: int
    plan_misses: int
    apply_matches: int
    gather_seconds: float
    gemm_seconds: float
    scatter_seconds: float
    simulations: int = 0
    #: Digest misses served by incremental patching / from-scratch
    #: matching (only populated when the session runs a
    #: :class:`repro.engine.delta.DeltaRulebookCache`; with delta
    #: matching active, ``matching_passes`` counts both).
    delta_patches: int = 0
    delta_rebuilds: int = 0
    #: Backend plan-refresh accounting: every patched rulebook the
    #: backend re-prepared (``plans_refreshed``), and the subset it
    #: served by splicing the delta into the cached plan instead of
    #: re-lowering from scratch (``plans_spliced`` — nonzero only for
    #: backends with an incremental ``refresh``, e.g. ``scipy``).
    plans_refreshed: int = 0
    plans_spliced: int = 0
    #: Mapping-ops cache accounting (kNN / ball-query / FPS lookups
    #: routed through the session's :class:`MappingCache`; patch and
    #: rebuild counts are populated when the session runs a delta-
    #: splicing :class:`repro.engine.mapping_delta.DeltaMappingCache`).
    mapping_hits: int = 0
    mapping_misses: int = 0
    mapping_patches: int = 0
    mapping_rebuilds: int = 0


@dataclass(frozen=True)
class SubconvEstimate:
    """Analytical estimate of one Sub-Conv layer (streaming hot path)."""

    rulebook: Rulebook
    matches: int
    scanned_positions: int
    cycles: int
    core_seconds: float


@dataclass(frozen=True)
class LayerEstimate:
    """Analytical estimate of one accelerated (Sub-Conv) network layer."""

    name: str
    level: int
    kernel_size: int
    in_channels: int
    out_channels: int
    nnz: int
    matches: int
    cycles: int
    core_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.core_seconds + self.overhead_seconds

    @property
    def effective_ops(self) -> int:
        return 2 * self.matches * self.in_channels * self.out_channels


@dataclass
class NetworkEstimate:
    """Whole-network analytical estimate: accelerated + host layers."""

    layers: List[LayerEstimate] = field(default_factory=list)
    host_layers: List[HostLayerRun] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def accel_seconds(self) -> float:
        return sum(layer.total_seconds for layer in self.layers)

    @property
    def host_seconds(self) -> float:
        return sum(run.seconds for run in self.host_layers)

    @property
    def end_to_end_seconds(self) -> float:
        return self.accel_seconds + self.host_seconds

    @property
    def effective_ops(self) -> int:
        return sum(layer.effective_ops for layer in self.layers) + sum(
            run.effective_ops for run in self.host_layers
        )

    def effective_gops(self) -> float:
        if self.end_to_end_seconds == 0.0:
            return 0.0
        return self.effective_ops / self.end_to_end_seconds / 1e9


@dataclass
class PointNetworkEstimate:
    """Analytical estimate of a point-based (mapping-ops) network forward.

    One :class:`~repro.arch.mapping_model.MappingOpEstimate` per mapping
    operation the network's forward performed, priced on the unified
    sort/merge/gather pipeline of :mod:`repro.arch.mapping_model`.  The
    dense per-neighborhood MLP work is not modeled here (ROADMAP: host
    MLP modeling for the point family).
    """

    mapping_ops: List[MappingOpEstimate] = field(default_factory=list)
    clock_hz: float = 270e6

    @property
    def total_mapping_cycles(self) -> int:
        return sum(op.total_cycles for op in self.mapping_ops)

    @property
    def mapping_seconds(self) -> float:
        return self.total_mapping_cycles / self.clock_hz


@dataclass
class ScalePlan:
    """Per-scale matching artifacts of a :class:`NetworkPlan`.

    ``template`` is an occupancy tensor carrying this scale's site set
    (features are irrelevant to matching).  ``sub_rulebooks`` maps the
    submanifold kernel sizes used at this scale to their rulebooks;
    ``down_rulebook`` / ``down_coords`` describe the strided convolution
    leaving this scale (``None`` at the deepest scale) — its output
    coordinates *seed the next scale's site set*, which is what makes
    one walk down the scales sufficient for the whole network.
    """

    level: int
    template: SparseTensor3D
    sub_rulebooks: Dict[int, Rulebook] = field(default_factory=dict)
    down_rulebook: Optional[Rulebook] = None
    down_coords: Optional[np.ndarray] = None
    down_kernel: int = 0
    down_stride: int = 0
    _encoding_memo: Dict[Hashable, Tuple[int, int]] = field(
        default_factory=dict, repr=False
    )

    @property
    def nnz(self) -> int:
        return self.template.nnz

    def encoding_statistics(
        self, config: AcceleratorConfig, analytical: AnalyticalModel
    ) -> Tuple[int, int]:
        """Memoized ``(scanned_positions, mask_bits)`` for ``config``."""
        key = (config.tile_shape, config.kernel_size)
        if key not in self._encoding_memo:
            scanned = analytical.scanned_positions(self.template)
            tiles = TileGrid(self.template, config.tile_shape)
            mask_bits = tiles.num_active_tiles * tiles.tile_volume()
            self._encoding_memo[key] = (scanned, mask_bits)
        return self._encoding_memo[key]


@dataclass
class NetworkPlan:
    """Every matching artifact one network forward needs, by scale."""

    signature: Tuple
    scales: List[ScalePlan]
    cache_entries: List[Tuple[Hashable, object]] = field(default_factory=list)

    @property
    def num_scales(self) -> int:
        return len(self.scales)

    def scale(self, level: int) -> ScalePlan:
        return self.scales[level]

    @property
    def matching_passes(self) -> int:
        """Distinct (scale, kind) matchings the plan comprises."""
        count = 0
        for sp in self.scales:
            count += len(sp.sub_rulebooks)
            if sp.down_rulebook is not None:
                count += 1
        return count


def _net_signature(net: SSUNet) -> Tuple:
    """Geometry fingerprint of a network: what a plan's validity depends on."""
    downs = tuple(
        (down.kernel_size, down.stride) for down in net.downs
    )
    return (
        "ssunet",
        net.config.levels,
        net.config.reps,
        net.config.kernel_size,
        net.head.kernel_size,
        downs,
    )


class PlanCache:
    """LRU cache of :class:`NetworkPlan` objects, keyed on the root site set.

    A plan depends only on the input site set, the grid shape and the
    network geometry — never on features or weights — so consecutive
    frames with unchanged voxel sets, every frame of a batch group, and
    every estimate over the same scene reuse one plan.  On a hit, the
    plan's rulebooks are re-seeded into the session's
    :class:`RulebookCache` (without perturbing its hit/miss statistics)
    so module-path forwards stay all-hits even if LRU pressure evicted
    individual entries in between.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, NetworkPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        self._entries.clear()

    def network_plan(
        self, tensor: SparseTensor3D, net: SSUNet, rulebook_cache: RulebookCache
    ) -> NetworkPlan:
        """The (cached) whole-network plan of ``net`` applied to ``tensor``."""
        signature = _net_signature(net)
        key = (signature, tensor.shape, tensor.coords_digest())
        plan = self._entries.get(key)
        if plan is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            for entry_key, entry in plan.cache_entries:
                rulebook_cache.ensure(entry_key, entry)
            return plan
        self.misses += 1
        plan = self._build(tensor, net, signature, rulebook_cache)
        self._entries[key] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return plan

    @staticmethod
    def _build(
        tensor: SparseTensor3D,
        net: SSUNet,
        signature: Tuple,
        cache: RulebookCache,
    ) -> NetworkPlan:
        """Walk down the scales once, building every rulebook via ``cache``.

        The strided rulebook of level ``L`` emits the exact output
        coordinate set of level ``L + 1``, so the next scale's template
        is constructed directly from it — no re-derivation of site sets,
        and every build is routed through the shared cache so the
        network forward, estimate, and host model all hit afterwards.
        """
        levels = len(net.downs) + 1
        kernel = net.config.kernel_size
        template = tensor.occupancy()
        scales: List[ScalePlan] = [None] * levels  # type: ignore[list-item]
        entries: List[Tuple[Hashable, object]] = []
        for level in range(levels):
            plan = ScalePlan(level=level, template=template)
            kernels = {kernel}
            if level == 0:
                kernels.add(net.head.kernel_size)
            sub_books = {k: cache.submanifold(template, k) for k in sorted(kernels)}
            plan.sub_rulebooks.update(sub_books)
            level_entries = [
                (RulebookCache.submanifold_key(template, k), rulebook)
                for k, rulebook in sub_books.items()
            ]
            if level < levels - 1:
                down = net.downs[level]
                rulebook, down_coords = cache.sparse_conv(
                    template, down.kernel_size, down.stride
                )
                plan.down_rulebook = rulebook
                plan.down_coords = down_coords
                plan.down_kernel = down.kernel_size
                plan.down_stride = down.stride
                level_entries.append(
                    (
                        RulebookCache.sparse_conv_key(
                            template, down.kernel_size, down.stride
                        ),
                        (rulebook, down_coords),
                    )
                )
                down_shape = tuple(
                    max(1, -(-s // down.stride)) for s in template.shape
                )
                template = SparseTensor3D(
                    down_coords,
                    np.ones((len(down_coords), 1), dtype=np.float64),
                    down_shape,
                )
            scales[level] = plan
            entries.extend(level_entries)
        return NetworkPlan(
            signature=signature, scales=scales, cache_entries=entries
        )


class InferenceSession:
    """The single front door for running the SS U-Net.

    Owns the rulebook cache, the cross-scale plan cache, the accelerator
    configuration, the host execution model, the system-overhead model,
    and the quantization settings; exposes :meth:`run`,
    :meth:`run_batch`, :meth:`estimate`, and :meth:`simulate`.

    Parameters
    ----------
    net / unet_config:
        The network to serve.  Omitting both defers construction of a
        default :class:`SSUNet` until first use (sessions that only
        serve single-layer streaming estimates never build one).  A
        point-based network (``uses_mapping_ops``, e.g.
        :class:`repro.nn.point_layers.PointNetClassifier`) is served
        through the mapping subsystem instead of the rulebook path.
    precision:
        ``"float64"`` (default, the reference arithmetic), ``"float32"``
        (weights and activations cast once, the pipeline stays float32),
        or ``"int"`` (the paper's fixed-point pipeline per convolution:
        quantize activations, integer accumulate, saturate, dequantize,
        requantize — formats from ``quantization``).
    rulebook_cache / plan_cache:
        Injectable for sharing across sessions; fresh ones by default.
    backend:
        The execution backend evaluating rulebooks against features: a
        registry name (``"numpy"``, ``"scipy"``, ``"sharded"``, or any
        :func:`repro.engine.backend.register_backend` entry) or a
        ready :class:`repro.engine.backend.ExecutionBackend` instance.
        Defaults to ``accelerator_config.execution_backend`` (itself
        ``"numpy"`` by default).  Every shipped backend is bit-identical
        to ``numpy`` for all precisions, so switching backends never
        changes results — only how (and where) they are computed.
    delta:
        Incremental rulebook matching for nearly-static streams (see
        :mod:`repro.engine.delta`).  ``None`` (default) defers to
        ``accelerator_config.delta_threshold`` (0 keeps the digest-only
        cache); ``True`` enables patching at the config threshold (or
        the engine default of 25% churn); a float in ``(0, 1]`` is the
        churn-ratio threshold itself.  Patched rulebooks are
        bit-identical to from-scratch matching, so enabling delta never
        changes results — only how much matching work a digest miss
        costs.
    mapping_cache:
        The neighbor-table cache behind :meth:`map` and point-based
        forwards.  ``None`` (default) follows the session's delta
        posture: a :class:`repro.engine.mapping_delta.DeltaMappingCache`
        at the active delta threshold when delta matching is on, else a
        plain digest-keyed :class:`MappingCache`.
    registry:
        The :class:`repro.obs.metrics.MetricRegistry` receiving the
        session's telemetry (cache hit/miss counters, per-stage and
        per-dispatch latency histograms).  ``None`` (default) creates a
        private registry; pass a shared one to unify session, server
        and cluster metrics on a single scrape surface (as ``python -m
        repro serve --metrics-port`` does).  :attr:`stats` snapshots
        stay exact regardless of whether the registry is enabled.
    """

    def __init__(
        self,
        net: Optional[SSUNet] = None,
        unet_config: Optional[UNetConfig] = None,
        accelerator_config: Optional[AcceleratorConfig] = None,
        host_model: Optional[HostExecutionModel] = None,
        overheads: Optional[SystemOverheadModel] = None,
        rulebook_cache: Optional[RulebookCache] = None,
        plan_cache: Optional[PlanCache] = None,
        precision: str = "float64",
        quantization: Optional[QuantizationSpec] = None,
        backend: Optional[object] = None,
        delta: Optional[object] = None,
        mapping_cache: Optional[MappingCache] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if net is not None and unet_config is not None and net.config != unet_config:
            raise ValueError("net and unet_config disagree; pass only one")
        if precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        self._net = net
        self._unet_config = net.config if net is not None else unet_config
        self.accelerator_config = accelerator_config or AcceleratorConfig()
        self.host_model = host_model or HostExecutionModel()
        self.overheads = (
            overheads if overheads is not None else SystemOverheadModel()
        )
        rulebook_cache = self._resolve_delta_cache(delta, rulebook_cache)
        self.rulebook_cache = (
            rulebook_cache if rulebook_cache is not None else RulebookCache()
        )
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.precision = precision
        self.quantization = quantization or QuantizationSpec()
        if backend is None:
            backend = self.accelerator_config.execution_backend
        if isinstance(backend, str):
            backend = get_backend(backend)
        if not isinstance(backend, ExecutionBackend):
            raise TypeError(
                "backend must be a registry name or an ExecutionBackend, "
                f"got {type(backend).__name__}"
            )
        self.backend = backend
        if isinstance(self.rulebook_cache, DeltaRulebookCache):
            # Plan-invalidation hook: patched rulebooks refresh the
            # backend's prepared artifacts instead of discarding them.
            self.rulebook_cache.register_listener(self.backend)
        if mapping_cache is None:
            # Mapping lookups follow the session's delta posture: delta
            # matching on the rulebook side implies delta splicing of
            # neighbor tables at the same churn threshold.
            threshold = self.delta_threshold
            mapping_cache = (
                DeltaMappingCache(threshold=threshold)
                if threshold > 0.0
                else MappingCache()
            )
        if not isinstance(mapping_cache, MappingCache):
            raise TypeError(
                "mapping_cache must be a MappingCache, got "
                f"{type(mapping_cache).__name__}"
            )
        self.mapping_cache = mapping_cache
        self.mapping_model = MappingCostModel(self.accelerator_config)
        self.analytical = AnalyticalModel(self.accelerator_config)
        self.apply_stats = ApplyStats()
        self._frames_run = 0
        self._batches_run = 0
        self._estimates = 0
        self._simulations = 0
        # The backend's refresh counters are cumulative over its own
        # lifetime (it may predate this session or be shared); baselines
        # make SessionStats report this session's era, and reset with
        # reset_stats like every other counter.
        self._plans_refreshed_base = getattr(backend, "plans_refreshed", 0)
        self._plans_spliced_base = getattr(backend, "plans_spliced", 0)
        # Memoized parameter views: id(param) -> (param, derived arrays).
        # The param object is pinned in the value to keep ids stable.
        self._param_casts: Dict[int, Tuple[Parameter, np.ndarray]] = {}
        self._param_quant: Dict[int, Tuple[Parameter, np.ndarray, float]] = {}
        self.registry = registry if registry is not None else MetricRegistry()
        self._declare_metrics()

    def _declare_metrics(self) -> None:
        """Register the session's telemetry surface (idempotent).

        Counters mirror the :attr:`stats` snapshot (same numbers, same
        session era — they re-sync on :meth:`reset_stats`); the
        histograms are the timing distributions the flat ``SessionStats``
        fields cannot carry.
        """
        reg = self.registry
        reg.gauge(
            "repro_session_info",
            "Session configuration marker; the value is always 1.",
            labels=("backend", "precision"),
        ).set(1, backend=self.backend.name, precision=self.precision)
        self._m_frames = reg.counter(
            "repro_session_frames_total",
            "Frames run through the session (run + run_batch).",
        )
        self._m_batches = reg.counter(
            "repro_session_batches_total",
            "run_batch dispatches.",
        )
        self._m_estimates = reg.counter(
            "repro_session_estimates_total",
            "Analytical estimates computed.",
        )
        self._m_simulations = reg.counter(
            "repro_session_simulations_total",
            "Cycle-accurate simulations run.",
        )
        self._m_cache_lookups = reg.counter(
            "repro_session_cache_lookups_total",
            "Cache lookups by cache (rulebook/plan/mapping) and outcome.",
            labels=("cache", "result"),
        )
        self._m_delta_events = reg.counter(
            "repro_session_delta_events_total",
            "Delta-cache digest misses served by patching vs rebuilt.",
            labels=("cache", "event"),
        )
        self._m_plan_refreshes = reg.counter(
            "repro_session_plan_refreshes_total",
            "Backend plan refreshes: spliced in place vs re-lowered.",
            labels=("outcome",),
        )
        self._m_dispatch = reg.histogram(
            "repro_session_dispatch_seconds",
            "End-to-end session dispatch latency by entry point.",
            labels=("path",),
        )
        self._m_stage = reg.histogram(
            "repro_session_stage_seconds",
            "Engine stage time per dispatch (gather/gemm/scatter).",
            labels=("stage",),
        )

    def _publish(self, snap: "SessionStats") -> None:
        """Mirror a stats snapshot into the registry counters."""
        lookups = self._m_cache_lookups
        lookups.sync_to(snap.rulebook_hits, cache="rulebook", result="hit")
        lookups.sync_to(snap.rulebook_misses, cache="rulebook", result="miss")
        lookups.sync_to(snap.plan_hits, cache="plan", result="hit")
        lookups.sync_to(snap.plan_misses, cache="plan", result="miss")
        lookups.sync_to(snap.mapping_hits, cache="mapping", result="hit")
        lookups.sync_to(snap.mapping_misses, cache="mapping", result="miss")
        delta = self._m_delta_events
        delta.sync_to(snap.delta_patches, cache="rulebook", event="patch")
        delta.sync_to(snap.delta_rebuilds, cache="rulebook", event="rebuild")
        delta.sync_to(snap.mapping_patches, cache="mapping", event="patch")
        delta.sync_to(snap.mapping_rebuilds, cache="mapping", event="rebuild")
        refreshes = self._m_plan_refreshes
        refreshes.sync_to(snap.plans_spliced, outcome="spliced")
        refreshes.sync_to(
            snap.plans_refreshed - snap.plans_spliced, outcome="relowered"
        )
        self._m_frames.sync_to(snap.frames_run)
        self._m_batches.sync_to(snap.batches_run)
        self._m_estimates.sync_to(snap.estimates)
        self._m_simulations.sync_to(snap.simulations)

    def _observe_dispatch(
        self,
        path: str,
        seconds: float,
        stage_base: Tuple[float, float, float],
    ) -> None:
        """Record one dispatch: e2e latency + engine stage deltas."""
        self._m_dispatch.observe(seconds, path=path)
        stats = self.apply_stats
        for stage, base in zip(
            ("gather", "gemm", "scatter"), stage_base
        ):
            delta = getattr(stats, f"{stage}_seconds") - base
            if delta > 0.0:
                self._m_stage.observe(delta, stage=stage)
        self._publish(self._snapshot())

    def _stage_base(self) -> Tuple[float, float, float]:
        stats = self.apply_stats
        return (
            stats.gather_seconds,
            stats.gemm_seconds,
            stats.scatter_seconds,
        )

    def _resolve_delta_cache(
        self, delta: Optional[object], rulebook_cache: Optional[RulebookCache]
    ) -> Optional[RulebookCache]:
        """Apply the ``delta=`` knob to the session's rulebook cache.

        ``None`` defers to ``accelerator_config.delta_threshold`` (0
        disables), ``True``/``False`` toggle with the config threshold
        (or :data:`repro.engine.delta.DEFAULT_DELTA_THRESHOLD`), and a
        float is the churn-ratio threshold itself.  Enabling delta
        matching constructs a :class:`DeltaRulebookCache`; an injected
        plain cache conflicts and is rejected rather than silently
        wrapped (the caller shares it with other sessions).
        """
        if delta is None:
            threshold = self.accelerator_config.delta_threshold
        elif isinstance(delta, bool):
            if delta:
                threshold = (
                    self.accelerator_config.delta_threshold
                    or DEFAULT_DELTA_THRESHOLD
                )
            else:
                threshold = 0.0
                if isinstance(rulebook_cache, DeltaRulebookCache):
                    raise ValueError(
                        "delta=False conflicts with the DeltaRulebookCache "
                        "passed as rulebook_cache"
                    )
        else:
            threshold = float(delta)
            if not 0.0 < threshold <= 1.0:
                raise ValueError(
                    f"delta threshold must be in (0, 1], got {delta!r}"
                )
        if threshold <= 0.0:
            return rulebook_cache
        if rulebook_cache is None:
            return DeltaRulebookCache(threshold=threshold)
        if not isinstance(rulebook_cache, DeltaRulebookCache):
            raise ValueError(
                "delta matching requires a DeltaRulebookCache; pass one as "
                "rulebook_cache (or omit it to get a fresh one) instead of "
                f"a plain {type(rulebook_cache).__name__}"
            )
        return rulebook_cache

    # ------------------------------------------------------------------
    # Owned components
    # ------------------------------------------------------------------
    @property
    def delta_threshold(self) -> float:
        """Active churn-ratio threshold (0.0 when delta matching is off)."""
        cache = self.rulebook_cache
        if isinstance(cache, DeltaRulebookCache):
            return cache.threshold
        return 0.0

    @property
    def net(self) -> SSUNet:
        """The served network (constructed lazily from the config)."""
        if self._net is None:
            self._net = SSUNet(self._unet_config or UNetConfig())
            self._unet_config = self._net.config
        return self._net

    def _mapping_network(self) -> bool:
        """Whether the served network runs on mapping ops (PointNet++-
        family) instead of the rulebook path (see
        :mod:`repro.nn.point_layers`)."""
        return bool(getattr(self._net, "uses_mapping_ops", False))

    @property
    def unet_config(self) -> UNetConfig:
        return self.net.config

    def accelerator(self) -> EscaAccelerator:
        """A cycle-accurate simulator sharing the session's config/overheads."""
        return EscaAccelerator(self.accelerator_config, overheads=self.overheads)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> SessionStats:
        """Point-in-time snapshot of the session's engine counters.

        The same numbers are mirrored into :attr:`registry` (see
        ``docs/observability.md``): reading ``stats`` re-syncs the
        registry's session counters, so the Prometheus view and the
        dataclass view never drift.
        """
        snap = self._snapshot()
        if self.registry.enabled:
            self._publish(snap)
        return snap

    def _snapshot(self) -> SessionStats:
        cache = self.rulebook_cache
        delta_patches = delta_rebuilds = 0
        if isinstance(cache, DeltaRulebookCache):
            delta_patches = cache.patches
            delta_rebuilds = cache.rebuilds
        return SessionStats(
            frames_run=self._frames_run,
            batches_run=self._batches_run,
            estimates=self._estimates,
            backend=self.backend.name,
            matching_passes=cache.misses,
            rulebook_hits=cache.hits,
            rulebook_misses=cache.misses,
            rulebook_hit_rate=cache.hit_rate,
            plan_hits=self.plan_cache.hits,
            plan_misses=self.plan_cache.misses,
            apply_matches=self.apply_stats.matches,
            gather_seconds=self.apply_stats.gather_seconds,
            gemm_seconds=self.apply_stats.gemm_seconds,
            scatter_seconds=self.apply_stats.scatter_seconds,
            simulations=self._simulations,
            delta_patches=delta_patches,
            delta_rebuilds=delta_rebuilds,
            plans_refreshed=getattr(self.backend, "plans_refreshed", 0)
            - self._plans_refreshed_base,
            plans_spliced=getattr(self.backend, "plans_spliced", 0)
            - self._plans_spliced_base,
            mapping_hits=self.mapping_cache.hits,
            mapping_misses=self.mapping_cache.misses,
            mapping_patches=getattr(self.mapping_cache, "patches", 0),
            mapping_rebuilds=getattr(self.mapping_cache, "rebuilds", 0),
        )

    def reset_stats(self) -> None:
        self.rulebook_cache.reset_stats()
        self.mapping_cache.reset_stats()
        self.plan_cache.reset_stats()
        self.apply_stats = ApplyStats()
        self._frames_run = 0
        self._batches_run = 0
        self._estimates = 0
        self._simulations = 0
        self._plans_refreshed_base = getattr(self.backend, "plans_refreshed", 0)
        self._plans_spliced_base = getattr(self.backend, "plans_spliced", 0)
        if self.registry.enabled:
            # Registry counters mirror the session era: a reset re-syncs
            # them to the zeroed snapshot rather than leaving stale totals.
            self._publish(self._snapshot())

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def warm(self, tensor: SparseTensor3D) -> NetworkPlan:
        """Build (or fetch) the whole-network plan for ``tensor``'s site set.

        One walk down the scales constructs every rulebook the network,
        the estimate, and the host model will consume; afterwards every
        consumer is a cache hit.  Idempotent and cheap when warm.
        """
        if self._mapping_network():
            raise TypeError(
                "warm() plans rulebook networks; point-based networks "
                "build neighbor tables on demand through the mapping cache"
            )
        return self.plan_cache.network_plan(tensor, self.net, self.rulebook_cache)

    def matching(
        self, tensor: SparseTensor3D, kernel_size: Optional[int] = None
    ) -> Rulebook:
        """The submanifold rulebook of ``tensor`` via the session cache."""
        k = kernel_size or self.accelerator_config.kernel_size
        return self.rulebook_cache.submanifold(tensor, k)

    def map(self, op: str, points, queries=None, **params) -> MappingResult:
        """One mapping op (kNN / ball query / FPS / grouping) through the
        session's mapping cache.

        ``op`` selects the operator: ``"knn"`` (``k=``), ``"ball_query"``
        (``radius=``, ``max_samples=``), ``"farthest_point_sample"`` or
        ``"fps"`` (``num_samples=``), or ``"group_points"``
        (``indices=``; executed directly — gathers are value-dependent
        and cheap, so they bypass the cache).  Cached lookups are
        bit-identical to calling :mod:`repro.engine.mapping` directly;
        with a :class:`repro.engine.mapping_delta.DeltaMappingCache` a
        near-miss on the point set splices the cached neighbor table
        instead of rebuilding it.
        """

        def take(name: str):
            if name not in params:
                raise TypeError(f"{op!r} requires {name}=")
            return params.pop(name)

        if op == "knn":
            result = self.mapping_cache.knn(points, take("k"), queries=queries)
        elif op == "ball_query":
            result = self.mapping_cache.ball_query(
                points, take("radius"), take("max_samples"), queries=queries
            )
        elif op in ("farthest_point_sample", "fps"):
            if queries is not None:
                raise ValueError("farthest_point_sample takes no queries")
            result = self.mapping_cache.farthest_point_sample(
                points, take("num_samples")
            )
        elif op == "group_points":
            if queries is not None:
                raise ValueError("group_points takes no queries")
            result = mapping_ops.group_points(points, take("indices"))
        else:
            raise ValueError(
                "op must be one of 'knn', 'ball_query', "
                f"'farthest_point_sample', 'group_points'; got {op!r}"
            )
        if params:
            raise TypeError(
                f"unexpected parameters for {op!r}: {sorted(params)}"
            )
        return result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tensor: SparseTensor3D) -> SparseTensor3D:
        """Network forward of one frame through the session caches.

        Rulebook networks return the output :class:`SparseTensor3D`;
        point-based networks (``uses_mapping_ops``, see
        :mod:`repro.nn.point_layers`) return their logits array, with
        every mapping op routed through the session's mapping cache.
        """
        if not self.registry.enabled:
            return self._run_impl(tensor)
        stage_base = self._stage_base()
        start = time.perf_counter()
        out = self._run_impl(tensor)
        self._observe_dispatch(
            "run", time.perf_counter() - start, stage_base
        )
        return out

    def _run_impl(self, tensor: SparseTensor3D) -> SparseTensor3D:
        if self._mapping_network():
            self._frames_run += 1
            return self.net(tensor, mapping_cache=self.mapping_cache)
        plan = self.warm(tensor)
        self._frames_run += 1
        if self.precision == "float64" and isinstance(
            self.backend, NumpyFusedBackend
        ):
            # The module-tree forward is the reference path; every conv
            # resolves its rulebook from the (pre-seeded) session cache.
            return self.net(
                tensor, cache=self.rulebook_cache, stats=self.apply_stats
            )
        # Other precisions — and any non-default backend — go through the
        # batch executor, whose per-frame arithmetic is bit-identical to
        # the module-tree forward (same rulebooks, same GEMM blocks).
        stack = self._prepare_stack([tensor])
        out = _BatchExecutor(self, plan).run(stack)
        return tensor.with_features(out[0])

    def run_batch(
        self, tensors: Sequence[SparseTensor3D]
    ) -> List[SparseTensor3D]:
        """Run many frames with shared weights and stacked features.

        Frames are grouped by coordinate digest: each group shares one
        plan, one gather, and one scatter per offset, which keeps
        outputs bit-identical to per-frame :meth:`run` calls.  Groups of
        one degenerate gracefully to single-frame execution.

        With a sharded backend (``capabilities().sharded``) and more
        than one digest group, whole groups are fanned out across the
        backend's worker pool; each worker executes the fused numpy
        engine in a warm private session, so results stay bit-identical
        while groups run concurrently.
        """
        if not self.registry.enabled:
            return self._run_batch_impl(tensors)
        stage_base = self._stage_base()
        start = time.perf_counter()
        outs = self._run_batch_impl(tensors)
        self._observe_dispatch(
            "run_batch", time.perf_counter() - start, stage_base
        )
        return outs

    def _run_batch_impl(
        self, tensors: Sequence[SparseTensor3D]
    ) -> List[SparseTensor3D]:
        tensors = list(tensors)
        if not tensors:
            return []
        if self._mapping_network():
            # Point networks have no digest-shareable plan; frames run
            # one by one through the shared mapping cache (warm lookups
            # and delta splices do the sharing instead).
            outs = [
                self.net(tensor, mapping_cache=self.mapping_cache)
                for tensor in tensors
            ]
            self._batches_run += 1
            self._frames_run += len(tensors)
            return outs  # type: ignore[return-value]
        self._validate_batch_channels(tensors)
        groups: "OrderedDict[Hashable, List[int]]" = OrderedDict()
        for index, tensor in enumerate(tensors):
            key = (tensor.shape, tensor.coords_digest())
            groups.setdefault(key, []).append(index)
        results: List[Optional[SparseTensor3D]] = [None] * len(tensors)
        capabilities = self.backend.capabilities()
        if capabilities.sharded and (
            len(groups) > 1 or capabilities.offload_single_group
        ):
            self._run_batch_sharded(tensors, groups, results)
        else:
            for indices in groups.values():
                representative = tensors[indices[0]]
                plan = self.warm(representative)
                stack = self._prepare_stack([tensors[i] for i in indices])
                out = _BatchExecutor(self, plan).run(stack)
                for row, index in enumerate(indices):
                    results[index] = tensors[index].with_features(out[row])
        self._batches_run += 1
        self._frames_run += len(tensors)
        return results  # type: ignore[return-value]

    def _run_batch_sharded(
        self,
        tensors: Sequence[SparseTensor3D],
        groups: "OrderedDict[Hashable, List[int]]",
        results: List[Optional[SparseTensor3D]],
    ) -> None:
        """Fan digest groups out across the sharded backend's workers.

        Raw (uncast) features are shipped so each worker's session
        applies exactly the same precision pipeline as a local run;
        plan/rulebook state lives in the workers, not in this session.
        """
        tasks = [
            GroupTask(
                coords=tensors[indices[0]].coords,
                shape=tensors[indices[0]].shape,
                features=np.stack([tensors[i].features for i in indices]),
                digest=tensors[indices[0]].coords_digest(),
            )
            for indices in groups.values()
        ]
        outs = self.backend.run_groups(
            self.net, self.precision, self.quantization, tasks
        )
        for indices, group_out in zip(groups.values(), outs):
            for row, index in enumerate(indices):
                results[index] = tensors[index].with_features(group_out[row])

    def _validate_batch_channels(
        self, tensors: Sequence[SparseTensor3D]
    ) -> None:
        """Clear errors for mismatched inputs, before any stacking.

        Frames must agree with the network's input width *and* with each
        other; without this check a mixed batch would surface as a
        cryptic numpy broadcast/stack error deep inside the executor.
        """
        expected = self.unet_config.in_channels
        for index, tensor in enumerate(tensors):
            if tensor.num_channels != expected:
                counts = sorted({t.num_channels for t in tensors})
                detail = (
                    f" (batch carries channel counts {counts})"
                    if len(counts) > 1
                    else ""
                )
                raise ValueError(
                    f"network expects {expected} input channels, but frame "
                    f"{index} has {tensor.num_channels}{detail}"
                )

    def _prepare_stack(self, tensors: Sequence[SparseTensor3D]) -> np.ndarray:
        """Stack frame features into ``(B, N, C)`` in the session dtype."""
        self._validate_batch_channels(tensors)
        stack = np.stack([tensor.features for tensor in tensors])
        if self.precision == "float32":
            return stack.astype(np.float32)
        return stack.astype(np.float64, copy=False)

    # ------------------------------------------------------------------
    # Single-layer helpers (streaming hot path, benchmarks)
    # ------------------------------------------------------------------
    def subconv(
        self,
        tensor: SparseTensor3D,
        weights: np.ndarray,
        kernel_size: Optional[int] = None,
    ) -> SparseTensor3D:
        """One submanifold convolution through the session caches."""
        k = kernel_size or self.accelerator_config.kernel_size
        weights = normalize_weights(weights, k)
        rulebook = self.rulebook_cache.submanifold(tensor, k)
        out = self.backend.execute(
            rulebook, tensor.features, weights, tensor.nnz, stats=self.apply_stats
        )
        return tensor.with_features(out)

    def estimate_subconv(
        self, tensor: SparseTensor3D, in_channels: int, out_channels: int
    ) -> SubconvEstimate:
        """Analytical single-layer estimate (the streaming per-frame path)."""
        rulebook = self.matching(tensor)
        scanned = self.analytical.scanned_positions(tensor)
        cycles = self.analytical.estimate_cycles(
            scanned, rulebook.total_matches, in_channels, out_channels
        )
        return SubconvEstimate(
            rulebook=rulebook,
            matches=rulebook.total_matches,
            scanned_positions=scanned,
            cycles=cycles,
            core_seconds=cycles / self.accelerator_config.clock_hz,
        )

    # ------------------------------------------------------------------
    # Estimation / simulation
    # ------------------------------------------------------------------
    def estimate(self, tensor: SparseTensor3D) -> NetworkEstimate:
        """Analytical cycle/latency estimate of a full network forward.

        Sub-Conv layers matching the accelerator kernel are estimated
        with the validated analytical model (plus system overheads); the
        strided/transposed/pointwise layers go through the host model —
        all consuming the session plan's rulebooks, so a warm session
        estimates without a single additional matching pass.

        Point-based networks return a :class:`PointNetworkEstimate`
        instead: the forward is replayed once to trace its mapping ops,
        and each op is priced on the unified sort/merge/gather pipeline
        by :class:`repro.arch.mapping_model.MappingCostModel`.
        """
        if not self.registry.enabled:
            return self._estimate_impl(tensor)
        start = time.perf_counter()
        estimate = self._estimate_impl(tensor)
        self._m_dispatch.observe(
            time.perf_counter() - start, path="estimate"
        )
        self._publish(self._snapshot())
        return estimate

    def _estimate_impl(self, tensor: SparseTensor3D) -> NetworkEstimate:
        if self._mapping_network():
            self._estimates += 1
            return PointNetworkEstimate(
                mapping_ops=self._mapping_op_estimates(tensor),
                clock_hz=self.accelerator_config.clock_hz,
            )
        plan = self.warm(tensor)
        self._estimates += 1
        return self._estimate_from_plan(plan)

    def _mapping_op_estimates(self, tensor) -> List[MappingOpEstimate]:
        """Replay a point-network forward, pricing every mapping op."""
        trace: List[MappingResult] = []
        self.net(tensor, mapping_cache=self.mapping_cache, trace=trace)
        return [self.mapping_model.estimate(result.stats) for result in trace]

    def estimate_batch(
        self, tensors: Sequence[SparseTensor3D]
    ) -> List[NetworkEstimate]:
        """Analytical estimates for many frames, one plan per digest group.

        The estimate depends only on a frame's site set (never on its
        features), so frames sharing a coordinate digest share one
        :class:`NetworkPlan` *and* one :class:`NetworkEstimate` — the
        returned list holds the same estimate object at every index of a
        group.  Per-frame parity with :meth:`estimate` is asserted in
        the test suite.
        """
        tensors = list(tensors)
        if self._mapping_network():
            # No site-set sharing for point networks; the per-call
            # method keeps the estimate counter.
            return [self.estimate(tensor) for tensor in tensors]
        results: List[Optional[NetworkEstimate]] = [None] * len(tensors)
        group_estimates: Dict[Hashable, NetworkEstimate] = {}
        for index, tensor in enumerate(tensors):
            key = (tensor.shape, tensor.coords_digest())
            estimate = group_estimates.get(key)
            if estimate is None:
                estimate = self._estimate_from_plan(self.warm(tensor))
                group_estimates[key] = estimate
            results[index] = estimate
        self._estimates += len(tensors)
        return results  # type: ignore[return-value]

    def _estimate_from_plan(self, plan: NetworkPlan) -> NetworkEstimate:
        """Build the whole-network estimate from an already-warm plan."""
        estimate = NetworkEstimate()
        net = self.net
        accel_kernel = self.accelerator_config.kernel_size
        levels = plan.num_scales

        def subconv_layers(block: Sequential) -> Iterable[SubmanifoldConv3d]:
            for module in block:
                if isinstance(module, SubmanifoldConv3d):
                    yield module

        def add_subconv(layer: SubmanifoldConv3d, level: int) -> None:
            scale = plan.scale(level)
            if layer.kernel_size == accel_kernel:
                estimate.layers.append(
                    self._estimate_accelerated(layer.name, layer, scale)
                )
            else:
                execution = LayerExecution(
                    name=layer.name,
                    input_tensor=scale.template,
                    in_channels=layer.in_channels,
                    out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size,
                    kind="subconv",
                )
                estimate.host_layers.append(
                    self.host_model.run_layer(
                        execution,
                        rulebook=scale.sub_rulebooks[layer.kernel_size],
                    )
                )

        for level in range(levels - 1):
            for layer in subconv_layers(net.encoders[level]):
                add_subconv(layer, level)
            scale = plan.scale(level)
            down = net.downs[level]
            estimate.host_layers.append(
                self.host_model.run_layer(
                    LayerExecution(
                        name=down.name,
                        input_tensor=scale.template,
                        in_channels=down.in_channels,
                        out_channels=down.out_channels,
                        kernel_size=down.kernel_size,
                        kind="sparseconv",
                        stride=down.stride,
                    ),
                    rulebook=scale.down_rulebook,
                )
            )
        for layer in subconv_layers(net.bottom):
            add_subconv(layer, levels - 1)
        for level in reversed(range(levels - 1)):
            scale = plan.scale(level)
            up = net.ups[level]
            estimate.host_layers.append(
                self.host_model.run_layer(
                    LayerExecution(
                        name=up.name,
                        # Matching work of a transposed conv is driven by
                        # the fine reference set it restores.
                        input_tensor=scale.template,
                        in_channels=up.in_channels,
                        out_channels=up.out_channels,
                        kernel_size=up.kernel_size,
                        kind="invconv",
                        stride=up.stride,
                    ),
                    rulebook=scale.down_rulebook,
                )
            )
            for layer in subconv_layers(net.decoders[level]):
                add_subconv(layer, level)
        add_subconv(net.head, 0)
        return estimate

    def _estimate_accelerated(
        self, name: str, layer: SubmanifoldConv3d, scale: ScalePlan
    ) -> LayerEstimate:
        cfg = self.accelerator_config
        rulebook = scale.sub_rulebooks[layer.kernel_size]
        scanned, mask_bits = scale.encoding_statistics(cfg, self.analytical)
        cycles = self.analytical.estimate_cycles(
            scanned, rulebook.total_matches, layer.in_channels, layer.out_channels
        )
        core_seconds = cycles / cfg.clock_hz
        volume = layer_transfer_volume(
            nnz_in=scale.nnz,
            nnz_out=scale.nnz,
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            kernel_volume=layer.kernel_size ** 3,
            mask_bits=mask_bits,
            weight_bits=cfg.weight_bits,
            activation_bits=cfg.activation_bits,
        )
        overhead_seconds = self.overheads.layer_overhead_seconds(
            volume, compute_seconds=core_seconds
        )
        return LayerEstimate(
            name=name,
            level=scale.level,
            kernel_size=layer.kernel_size,
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            nnz=scale.nnz,
            matches=rulebook.total_matches,
            cycles=cycles,
            core_seconds=core_seconds,
            overhead_seconds=overhead_seconds,
        )

    def simulate(
        self,
        tensor: SparseTensor3D,
        verify: bool = False,
        include_host_layers: bool = True,
    ) -> NetworkRunResult:
        """Cycle-accurate simulation of the network, session-cached rulebooks.

        Point-based networks return a
        :class:`repro.arch.mapping_model.MappingSimulation` — the traced
        mapping ops laid out back to back on the shared sort/merge/gather
        pipeline (``verify``/``include_host_layers`` do not apply).
        """
        if not self.registry.enabled:
            return self._simulate_impl(
                tensor, verify=verify, include_host_layers=include_host_layers
            )
        start = time.perf_counter()
        result = self._simulate_impl(
            tensor, verify=verify, include_host_layers=include_host_layers
        )
        self._m_dispatch.observe(
            time.perf_counter() - start, path="simulate"
        )
        self._publish(self._snapshot())
        return result

    def _simulate_impl(
        self,
        tensor: SparseTensor3D,
        verify: bool,
        include_host_layers: bool,
    ) -> NetworkRunResult:
        self._simulations += 1
        if self._mapping_network():
            return self.mapping_model.simulate(
                self._mapping_op_estimates(tensor)
            )
        return self._simulate(
            tensor, verify=verify, include_host_layers=include_host_layers
        )

    def simulate_batch(
        self,
        tensors: Sequence[SparseTensor3D],
        verify: bool = False,
        include_host_layers: bool = True,
    ) -> List[NetworkRunResult]:
        """Cycle-accurate simulations for many frames, one pass per digest
        group.

        The simulator's cycle and latency accounting is driven entirely
        by the site set (matching order, scan order, channel widths) —
        never by feature values — so frames sharing a coordinate digest
        share one :class:`NetworkPlan` *and* one cycle-accurate pass:
        the returned list holds the same
        :class:`~repro.arch.accelerator.NetworkRunResult` object at
        every index of a group (the numeric accumulators in it are the
        group representative's, mirroring how :meth:`estimate_batch`
        shares estimate objects).  Timing parity with per-frame
        :meth:`simulate` is asserted in the test suite.
        """
        tensors = list(tensors)
        if self._mapping_network():
            return [self.simulate(tensor, verify=verify) for tensor in tensors]
        results: List[Optional[NetworkRunResult]] = [None] * len(tensors)
        group_results: Dict[Hashable, NetworkRunResult] = {}
        for index, tensor in enumerate(tensors):
            key = (tensor.shape, tensor.coords_digest())
            result = group_results.get(key)
            if result is None:
                result = self._simulate(
                    tensor,
                    verify=verify,
                    include_host_layers=include_host_layers,
                )
                group_results[key] = result
            results[index] = result
        self._simulations += len(tensors)
        return results  # type: ignore[return-value]

    def _simulate(
        self,
        tensor: SparseTensor3D,
        verify: bool,
        include_host_layers: bool,
    ) -> NetworkRunResult:
        self.warm(tensor)
        return self.accelerator().run_network(
            self.net,
            tensor,
            verify=verify,
            include_host_layers=include_host_layers,
            host_model=self.host_model,
            rulebook_cache=self.rulebook_cache,
        )

    # ------------------------------------------------------------------
    # Parameter views (per-precision weight memoization)
    # ------------------------------------------------------------------
    def _cast_param(self, param: Parameter) -> np.ndarray:
        """The parameter value in the session dtype (memoized)."""
        if self.precision != "float32":
            return param.value
        cached = self._param_casts.get(id(param))
        if cached is None or cached[0] is not param:
            cached = (param, param.value.astype(np.float32))
            self._param_casts[id(param)] = cached
        return cached[1]

    def _quantized_param(self, param: Parameter) -> Tuple[np.ndarray, float]:
        """Integer weights plus scale for the fixed-point path (memoized)."""
        cached = self._param_quant.get(id(param))
        if cached is None or cached[0] is not param:
            fmt = self.quantization.weight_fmt
            scale = calibrate_scale(param.value, fmt)
            data = quantize(param.value, scale, fmt)
            cached = (param, data, scale)
            self._param_quant[id(param)] = cached
        return cached[1], cached[2]


class _BatchExecutor:
    """Stacked-feature mirror of :meth:`SSUNet.forward`.

    Walks the module tree in exactly the forward's order, applying each
    layer to a ``(B, N, C)`` feature stack using the plan's rulebooks.
    In float precisions the per-frame arithmetic is bit-identical to the
    module-tree forward (same rulebooks, same contiguous GEMM blocks,
    same elementwise operations); the ``int`` precision runs the
    fixed-point pipeline per convolution.
    """

    def __init__(self, session: InferenceSession, plan: NetworkPlan) -> None:
        self.session = session
        self.plan = plan

    def run(self, stack: np.ndarray) -> np.ndarray:
        net = self.session.net
        plan = self.plan
        levels = plan.num_scales
        skips: List[np.ndarray] = [None] * (levels - 1)  # type: ignore[list-item]
        current = stack
        for level in range(levels - 1):
            current = self._block(net.encoders[level], plan.scale(level), current)
            skips[level] = current
            scale = plan.scale(level)
            down = net.downs[level]
            current = self._conv(
                scale.down_rulebook,
                current,
                down.weight,
                down.bias,
                len(scale.down_coords),
            )
        current = self._block(net.bottom, plan.scale(levels - 1), current)
        for level in reversed(range(levels - 1)):
            scale = plan.scale(level)
            up = net.ups[level]
            if (up.kernel_size, up.stride) != (scale.down_kernel, scale.down_stride):
                raise ValueError(
                    f"upsampling layer {up.name!r} does not mirror the "
                    f"encoder downsampling at level {level}"
                )
            current = self._conv(
                scale.down_rulebook.transposed(),
                current,
                up.weight,
                up.bias,
                scale.nnz,
            )
            current = np.concatenate([skips[level], current], axis=-1)
            current = self._block(net.decoders[level], scale, current)
        head = net.head
        scale0 = plan.scale(0)
        return self._conv(
            self._sub_rulebook(scale0, head.kernel_size),
            current,
            head.weight,
            head.bias,
            scale0.nnz,
        )

    def _sub_rulebook(self, scale: ScalePlan, kernel_size: int) -> Rulebook:
        rulebook = scale.sub_rulebooks.get(kernel_size)
        if rulebook is None:
            rulebook = self.session.rulebook_cache.submanifold(
                scale.template, kernel_size
            )
            scale.sub_rulebooks[kernel_size] = rulebook
        return rulebook

    def _block(
        self, block: Sequential, scale: ScalePlan, stack: np.ndarray
    ) -> np.ndarray:
        for module in block:
            if isinstance(module, Sequential):
                stack = self._block(module, scale, stack)
            elif isinstance(module, SubmanifoldConv3d):
                stack = self._conv(
                    self._sub_rulebook(scale, module.kernel_size),
                    stack,
                    module.weight,
                    module.bias,
                    scale.nnz,
                )
            elif isinstance(module, BatchNormSparse):
                stack = self._batchnorm(module, stack)
            elif isinstance(module, ReLUSparse):
                stack = np.maximum(stack, 0.0)
            elif isinstance(module, (SparseConv3d, SparseInverseConv3d)):
                raise ValueError(
                    "strided convolutions inside encoder/decoder blocks are "
                    "not supported by batched execution"
                )
            else:
                raise ValueError(
                    f"unsupported module {type(module).__name__} in batched "
                    "execution"
                )
        return stack

    def _batchnorm(self, module: BatchNormSparse, stack: np.ndarray) -> np.ndarray:
        session = self.session
        scale = session._cast_param(module.scale).reshape(1, 1, -1)
        shift = session._cast_param(module.shift).reshape(1, 1, -1)
        out = stack * scale
        return out + shift

    def _conv(
        self,
        rulebook: Rulebook,
        stack: np.ndarray,
        weight: Parameter,
        bias: Optional[Parameter],
        num_outputs: int,
    ) -> np.ndarray:
        session = self.session
        if session.precision == "int":
            return self._conv_fixed_point(
                rulebook, stack, weight, bias, num_outputs
            )
        weights = session._cast_param(weight)
        out = session.backend.execute_batch(
            rulebook, stack, weights, num_outputs, stats=session.apply_stats
        )
        if bias is not None:
            out = out + session._cast_param(bias).reshape(1, 1, -1)
        return out

    def _conv_fixed_point(
        self,
        rulebook: Rulebook,
        stack: np.ndarray,
        weight: Parameter,
        bias: Optional[Parameter],
        num_outputs: int,
    ) -> np.ndarray:
        """Batched fixed-point convolution (the paper's arithmetic contract).

        Quantize activations (per-frame calibration), integer-accumulate
        through the rulebook, saturate to the accumulator format,
        dequantize, then requantize the output activations.  The whole
        stack runs through one ``execute_batch`` with per-frame scales
        broadcast as ``(B, 1, 1)``: the quantize/dequantize arithmetic
        is elementwise and the accumulation is exact integer matmul, so
        the result is bit-identical to processing each frame alone.
        """
        session = self.session
        spec = session.quantization
        weights_q, weight_scale = session._quantized_param(weight)
        batch = stack.shape[0]
        if batch == 0:
            return np.empty(
                (0, num_outputs, weights_q.shape[2]), dtype=np.float64
            )
        act_scales = calibrate_scale_batch(stack, spec.act_fmt)
        acts_q = quantize(stack, act_scales[:, None, None], spec.act_fmt)
        acc = session.backend.execute_batch(
            rulebook, acts_q, weights_q, num_outputs,
            stats=session.apply_stats,
        )
        acc = saturate(acc, ACC_INT32)
        real = dequantize(acc, (act_scales * weight_scale)[:, None, None])
        if bias is not None:
            real = real + bias.value.reshape(1, 1, -1)
        out_scales = calibrate_scale_batch(real, spec.act_fmt)[:, None, None]
        return dequantize(
            quantize(real, out_scales, spec.act_fmt), out_scales
        )
