"""Incremental rulebook delta engine for nearly-static streams.

The digest-keyed caches of :mod:`repro.nn.rulebook` are all-or-nothing:
a single voxel of churn between two frames produces a fresh coordinate
digest, a cache miss, and a from-scratch matching pass over the whole
scene.  Real streaming workloads (SLAM, odometry, surveillance) are
*nearly static* — frame ``N+1`` shares almost every voxel with frame
``N`` — so the dominant non-GEMM cost is spent recomputing matchings
that are 95+% identical to ones already cached.  This module upgrades
the cache stack to incremental patching:

* :func:`coordinate_delta` diffs two packed coordinate sets into a
  :class:`CoordinateDelta` (added / removed / stable voxels plus the
  monotone old-row -> new-row mapping);
* :func:`patch_rulebook` locally re-matches only the neighborhoods
  touched by added or removed voxels and splices the result into a
  cached :class:`~repro.nn.rulebook.Rulebook` — **bit-identical** to a
  from-scratch matching pass, for submanifold, strided, and (via
  :meth:`~repro.nn.rulebook.Rulebook.transposed`) transposed
  convolutions;
* :class:`DeltaRulebookCache` layers delta matching onto
  :class:`~repro.nn.rulebook.RulebookCache`: on a digest miss it
  searches recent entries of the same kernel geometry for a near-match
  (churn ratio at most ``threshold``) and patches instead of
  rebuilding, reporting hit / patch / rebuild statistics;
* patch listeners (:meth:`DeltaRulebookCache.register_listener`) let
  :class:`repro.engine.backend.ExecutionBackend` instances refresh
  their prepared artifacts (gather/scatter plans, CSR operators)
  incrementally instead of discarding warm state.

Why bit-identity is achievable cheaply
--------------------------------------
Both coordinate sets are stored canonically sorted, so the stable-row
mapping ``old_to_new`` is *monotone increasing*: remapping the surviving
pairs of a cached rulebook preserves their per-offset ordering, and the
freshly matched pairs (which touch only added voxels) can be spliced in
with one vectorized sorted merge per offset.  The from-scratch builders
emit, per kernel offset, at most one pair per output row (submanifold)
or input row (strided), ordered ascending — exactly what drop + remap +
merge reproduces, array for array.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.nn.rulebook import (
    Rulebook,
    RulebookCache,
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
    lookup_rows,
)
from repro.sparse.coo import SparseTensor3D
from repro.sparse.hashmap import pack_coords, unpack_coords

#: Default churn-ratio bound under which a cached rulebook is patched
#: rather than rebuilt.  At 25% churn a patch still touches a strict
#: minority of the scene; beyond it a from-scratch pass is competitive.
DEFAULT_DELTA_THRESHOLD = 0.25


class DeltaUnsupportedError(ValueError):
    """A rulebook kind/geometry the delta engine cannot patch.

    Raised by :func:`patch_rulebook` for strided rulebooks whose kernel
    size differs from the stride (overlapping receptive fields make the
    output-site support test non-local).  :class:`DeltaRulebookCache`
    treats this as "rebuild from scratch", never as a failure.
    """


@dataclass(frozen=True)
class CoordinateDelta:
    """Diff between two packed coordinate sets (old -> new).

    Both key arrays are the canonically sorted packed coordinates of
    :func:`repro.sparse.hashmap.pack_coords` (ascending, duplicate-free
    — the storage order of :class:`repro.sparse.coo.SparseTensor3D`).

    Attributes
    ----------
    old_keys / new_keys:
        The two sorted packed coordinate sets.
    old_to_new:
        ``(old_size,)`` int64 map from old row to new row, ``-1`` where
        the voxel was removed.  Monotone increasing over stable rows,
        which is what makes order-preserving rulebook patching possible.
    added_new_rows:
        Sorted new-row indices of voxels absent from the old set.
    """

    old_keys: np.ndarray
    new_keys: np.ndarray
    old_to_new: np.ndarray
    added_new_rows: np.ndarray

    @property
    def old_size(self) -> int:
        return len(self.old_keys)

    @property
    def new_size(self) -> int:
        return len(self.new_keys)

    @property
    def num_added(self) -> int:
        return len(self.added_new_rows)

    @property
    def num_removed(self) -> int:
        return self.old_size - (self.new_size - self.num_added)

    @property
    def num_stable(self) -> int:
        return self.new_size - self.num_added

    @property
    def ratio(self) -> float:
        """Churn fraction: voxels touched over the larger set size."""
        denom = max(self.old_size, self.new_size, 1)
        return (self.num_added + self.num_removed) / denom

    @property
    def is_identity(self) -> bool:
        return self.num_added == 0 and self.num_removed == 0


def _as_packed_keys(coords_or_keys: np.ndarray) -> np.ndarray:
    arr = np.asarray(coords_or_keys)
    if arr.ndim == 2:
        return pack_coords(arr)
    if arr.ndim == 1:
        return arr.astype(np.int64, copy=False)
    raise ValueError(
        f"expected (N, 3) coordinates or (N,) packed keys, got {arr.shape}"
    )


def coordinate_delta(
    old: np.ndarray, new: np.ndarray
) -> CoordinateDelta:
    """Diff two coordinate sets given as ``(N, 3)`` coords or packed keys.

    Inputs must be in canonical (sorted packed) order — true of every
    :class:`SparseTensor3D` coordinate array and of keys produced by
    packing one.  Cost is one ``searchsorted`` over the new set, i.e. a
    small fraction of a single-offset matching pass.
    """
    old_keys = _as_packed_keys(old)
    new_keys = _as_packed_keys(new)
    old_to_new = lookup_rows(new_keys, old_keys)
    hit = np.zeros(len(new_keys), dtype=bool)
    stable_rows = old_to_new[old_to_new >= 0]
    hit[stable_rows] = True
    added_new_rows = np.flatnonzero(~hit).astype(np.int64)
    return CoordinateDelta(
        old_keys=old_keys,
        new_keys=new_keys,
        old_to_new=old_to_new,
        added_new_rows=added_new_rows,
    )


# ----------------------------------------------------------------------
# Pair splicing primitives
# ----------------------------------------------------------------------
def _empty_rule() -> np.ndarray:
    return np.zeros((0, 2), dtype=np.int64)


def _remap_pairs(
    rule: np.ndarray,
    in_map: np.ndarray,
    out_map: np.ndarray,
) -> np.ndarray:
    """Surviving pairs of one offset, rows remapped old -> new.

    Pairs whose input or output voxel was removed are dropped; both maps
    are monotone over stable rows, so the result keeps the original
    per-offset ordering.
    """
    if len(rule) == 0:
        return _empty_rule()
    if in_map is out_map:
        mapped = in_map[rule]  # one 2D gather covers both columns
    else:
        mapped = np.empty_like(rule)
        mapped[:, 0] = in_map[rule[:, 0]]
        mapped[:, 1] = out_map[rule[:, 1]]
    keep = (mapped[:, 0] >= 0) & (mapped[:, 1] >= 0)
    if keep.all():
        return mapped
    return mapped[keep]


def _merge_pairs(
    kept: np.ndarray, fresh: np.ndarray, key_col: int
) -> np.ndarray:
    """Merge two pair arrays sorted (and unique) on ``key_col``.

    The from-scratch builders emit at most one pair per key per offset,
    and kept/fresh key sets are disjoint (fresh pairs touch added
    voxels, kept pairs only stable ones), so a single vectorized sorted
    merge reproduces the from-scratch array exactly.
    """
    if len(fresh) == 0:
        return kept if len(kept) else _empty_rule()
    if len(kept) == 0:
        return fresh
    positions = np.searchsorted(kept[:, key_col], fresh[:, key_col])
    merged = np.empty((len(kept) + len(fresh), 2), dtype=np.int64)
    fresh_slots = positions + np.arange(len(fresh))
    kept_slots = np.ones(len(merged), dtype=bool)
    kept_slots[fresh_slots] = False
    merged[fresh_slots] = fresh
    merged[kept_slots] = kept
    return merged


# ----------------------------------------------------------------------
# Submanifold patching
# ----------------------------------------------------------------------
def patch_submanifold_rulebook(
    old: Rulebook,
    delta: CoordinateDelta,
    shape: Tuple[int, int, int],
    new_coords: Optional[np.ndarray] = None,
) -> Rulebook:
    """Patch a cached submanifold rulebook onto the delta's new site set.

    Surviving pairs (both endpoints stable) are row-remapped; pairs
    touching a removed voxel are dropped by the remap; pairs touching an
    added voxel are re-matched locally — for each added output site its
    full neighborhood, and for each added input site the stable outputs
    it newly serves.  The result is bit-identical to
    :func:`repro.nn.rulebook.build_submanifold_rulebook` on the new set.
    """
    if new_coords is None:
        new_coords = unpack_coords(delta.new_keys)
    new_keys = delta.new_keys
    shape_arr = np.asarray(shape, dtype=np.int64)
    added = delta.added_new_rows
    added_flags = np.zeros(delta.new_size, dtype=bool)
    added_flags[added] = True
    added_coords = new_coords[added]
    rules: List[np.ndarray] = []
    for k, offset in enumerate(old.offsets):
        kept = _remap_pairs(old.rules[k], delta.old_to_new, delta.old_to_new)
        # Fresh pairs with an *added output* p: input is p + offset.
        neighbor = added_coords + offset[None, :]
        in_bounds = np.all(
            (neighbor >= 0) & (neighbor < shape_arr[None, :]), axis=1
        )
        in_rows = lookup_rows(new_keys, pack_coords(neighbor[in_bounds]))
        valid = in_rows >= 0
        out_added = np.stack(
            [in_rows[valid], added[in_bounds][valid]], axis=1
        )
        # Fresh pairs with an *added input* a serving a stable output
        # q = a - offset (added outputs were covered above).
        source = added_coords - offset[None, :]
        src_bounds = np.all(
            (source >= 0) & (source < shape_arr[None, :]), axis=1
        )
        out_rows = lookup_rows(new_keys, pack_coords(source[src_bounds]))
        stable_out = (out_rows >= 0) & ~added_flags[np.maximum(out_rows, 0)]
        in_added = np.stack(
            [added[src_bounds][stable_out], out_rows[stable_out]], axis=1
        )
        fresh = np.concatenate([out_added, in_added], axis=0)
        if len(fresh) > 1:
            # Output rows are unique within one offset (disjoint between
            # the two fresh sources as well), so a plain sort suffices.
            fresh = fresh[np.argsort(fresh[:, 1])]
        rules.append(_merge_pairs(kept, fresh, key_col=1))
    return Rulebook(
        kernel_size=old.kernel_size,
        offsets=old.offsets,
        rules=rules,
        num_inputs=delta.new_size,
        num_outputs=delta.new_size,
    )


# ----------------------------------------------------------------------
# Strided patching (kernel_size == stride downsampling)
# ----------------------------------------------------------------------
def patch_sparse_conv_rulebook(
    old: Rulebook,
    old_out_coords: np.ndarray,
    delta: CoordinateDelta,
    stride: int,
    new_coords: Optional[np.ndarray] = None,
) -> Tuple[Rulebook, np.ndarray]:
    """Patch a cached strided rulebook onto the delta's new site set.

    Supports the paper's (and the default network's) non-overlapping
    downsampling, ``kernel_size == stride``: every input voxel ``p``
    then supports exactly one output cell ``p // stride`` under exactly
    one offset ``p % stride``, so output-cell existence and the fresh
    pairs of added inputs are both local.  Overlapping geometries raise
    :class:`DeltaUnsupportedError` (the cache rebuilds instead).

    ``old_out_coords`` are the output coordinates the cached rulebook
    was built with (cache entries store the pair).  Returns
    ``(rulebook, out_coords)`` bit-identical to
    :func:`repro.nn.rulebook.build_sparse_conv_rulebook`.  The
    transposed direction needs no separate patch:
    :meth:`Rulebook.transposed` derives it from the forward rules.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if old.kernel_size != stride:
        raise DeltaUnsupportedError(
            "delta patching of strided rulebooks requires kernel_size == "
            f"stride (non-overlapping cells); got kernel_size="
            f"{old.kernel_size}, stride={stride}"
        )
    if new_coords is None:
        new_coords = unpack_coords(delta.new_keys)
    # New output cells: unique packed down-keys, unpacked back to rows.
    # pack order equals lexicographic row order, so this reproduces
    # np.unique(coords // stride, axis=0) at int64-sort speed.
    down_keys = np.unique(pack_coords(new_coords // stride))
    out_coords = unpack_coords(down_keys)
    # Old output row -> new output row (monotone; the cell of a stable
    # input always survives, cells supported only by removed inputs
    # vanish).
    out_map = lookup_rows(down_keys, pack_coords(old_out_coords))
    added = delta.added_new_rows
    added_coords = new_coords[added]
    rules: List[np.ndarray] = []
    for k, offset in enumerate(old.offsets):
        kept = _remap_pairs(old.rules[k], delta.old_to_new, out_map)
        # Fresh pairs: each added input p contributes to cell
        # (p - offset) / stride exactly when p aligns with the offset.
        shifted = added_coords - offset[None, :]
        aligned = np.all(shifted % stride == 0, axis=1) & np.all(
            shifted >= 0, axis=1
        )
        cells = shifted[aligned] // stride
        out_rows = lookup_rows(down_keys, pack_coords(cells))
        valid = out_rows >= 0
        fresh = np.stack([added[aligned][valid], out_rows[valid]], axis=1)
        rules.append(_merge_pairs(kept, fresh, key_col=0))
    rulebook = Rulebook(
        kernel_size=old.kernel_size,
        offsets=old.offsets,
        rules=rules,
        num_inputs=delta.new_size,
        num_outputs=len(out_coords),
    )
    return rulebook, out_coords


def patch_rulebook(
    old: Rulebook,
    delta: CoordinateDelta,
    *,
    shape: Optional[Tuple[int, int, int]] = None,
    stride: Optional[int] = None,
    old_out_coords: Optional[np.ndarray] = None,
    new_coords: Optional[np.ndarray] = None,
):
    """Dispatch to the submanifold or strided patcher.

    ``stride=None`` selects submanifold patching (``shape`` required for
    the neighbor bounds test) and returns a :class:`Rulebook`; a stride
    selects strided patching (``old_out_coords`` required) and returns
    ``(rulebook, out_coords)``.
    """
    if stride is None:
        if shape is None:
            raise ValueError("submanifold patching requires shape=")
        return patch_submanifold_rulebook(
            old, delta, shape, new_coords=new_coords
        )
    if old_out_coords is None:
        raise ValueError("strided patching requires old_out_coords=")
    return patch_sparse_conv_rulebook(
        old, old_out_coords, delta, stride, new_coords=new_coords
    )


# ----------------------------------------------------------------------
# The delta-aware cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeltaCacheStats:
    """Snapshot of a :class:`DeltaRulebookCache`'s counters.

    ``hits`` are digest hits (free, as before).  Digest misses split
    into ``patches`` (a recent near-match was spliced) and ``rebuilds``
    (from-scratch matching); ``patched_added`` / ``patched_removed``
    count the voxels the patches actually touched.
    """

    hits: int
    patches: int
    rebuilds: int
    patched_added: int
    patched_removed: int

    @property
    def misses(self) -> int:
        return self.patches + self.rebuilds

    @property
    def patch_rate(self) -> float:
        """Fraction of digest misses served by patching."""
        if self.misses == 0:
            return 0.0
        return self.patches / self.misses


class DeltaRulebookCache(RulebookCache):
    """A :class:`RulebookCache` that patches near-matches instead of
    rebuilding.

    Lookup order on a digest miss: recent entries with the same kernel
    geometry (kind, kernel size, stride, grid shape) are scanned from
    most to least recently used; the first whose coordinate delta ratio
    is at most ``threshold`` is patched via :func:`patch_rulebook`.
    Only ``max_candidates`` candidates are diffed per miss (a cheap
    size pre-filter skips hopeless ones), so a miss against a cold or
    fully drifted cache degrades gracefully to one from-scratch build.

    Entries remember the packed coordinate set they were built from
    (``8 * nnz`` bytes per entry) to make the diff possible.  Patched
    entries are inserted under their own digest key, so they serve
    later frames both as digest hits and as patch sources.

    ``register_listener`` attaches objects with a
    ``refresh(old_rulebook, new_rulebook, delta)`` method — the
    :class:`repro.engine.backend.ExecutionBackend` plan-invalidation
    hook — notified after every successful patch so prepared execution
    artifacts follow the rulebook incrementally instead of being
    discarded and rebuilt on first use.
    """

    def __init__(
        self,
        capacity: int = 32,
        threshold: float = DEFAULT_DELTA_THRESHOLD,
        max_candidates: int = 4,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold!r}"
            )
        if max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.threshold = float(threshold)
        self.max_candidates = int(max_candidates)
        # key -> (geometry key, packed coordinate set); insertion order
        # tracks entry recency, pruned in lockstep with ``_entries``.
        self._coord_sets: "OrderedDict[Hashable, Tuple[Hashable, np.ndarray]]" = (
            OrderedDict()
        )
        # Weak references: a cache shared across sessions must not keep
        # discarded sessions' backends alive (or keep refreshing them).
        self._listeners: List["weakref.ref"] = []
        self.patches = 0
        self.rebuilds = 0
        self.patched_added = 0
        self.patched_removed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def delta_stats(self) -> DeltaCacheStats:
        return DeltaCacheStats(
            hits=self.hits,
            patches=self.patches,
            rebuilds=self.rebuilds,
            patched_added=self.patched_added,
            patched_removed=self.patched_removed,
        )

    def reset_stats(self) -> None:
        super().reset_stats()
        self.patches = 0
        self.rebuilds = 0
        self.patched_added = 0
        self.patched_removed = 0

    def clear(self) -> None:
        super().clear()
        self._coord_sets.clear()

    def register_listener(self, listener: object) -> None:
        """Attach a patch listener (``refresh(old, new, delta)``).

        Listeners are held weakly: the cache may outlive many sessions
        (it is explicitly shareable), and must neither pin a discarded
        session's backend nor keep fanning refresh work out to it.
        Dead references are pruned on registration and notification.
        """
        if not callable(getattr(listener, "refresh", None)):
            raise TypeError(
                "listener must expose a refresh(old_rulebook, new_rulebook, "
                f"delta) method, got {type(listener).__name__}"
            )
        alive = [ref for ref in self._listeners if ref() is not None]
        if not any(ref() is listener for ref in alive):
            alive.append(weakref.ref(listener))
        self._listeners = alive

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(self, key: Hashable, entry: object) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._coord_sets.pop(evicted, None)

    def _remember(
        self, key: Hashable, geometry: Hashable, keys: np.ndarray
    ) -> None:
        self._coord_sets[key] = (geometry, keys)
        self._coord_sets.move_to_end(key)

    def _touch(self, key: Hashable) -> None:
        if key in self._coord_sets:
            self._coord_sets.move_to_end(key)

    def _find_patch_source(
        self, geometry: Hashable, new_keys: np.ndarray
    ) -> Optional[Tuple[Hashable, CoordinateDelta]]:
        """Most recent same-geometry entry within the churn threshold."""
        new_size = len(new_keys)
        if new_size == 0:
            return None
        scanned = 0
        for key in reversed(self._coord_sets):
            entry_geometry, old_keys = self._coord_sets[key]
            if entry_geometry != geometry:
                continue
            scanned += 1
            if scanned > self.max_candidates:
                return None
            # Size pre-filter: |old - new| alone already bounds the
            # churn ratio from below, no diff needed to reject.
            bound = max(len(old_keys), new_size, 1)
            if abs(len(old_keys) - new_size) > self.threshold * bound:
                continue
            delta = coordinate_delta(old_keys, new_keys)
            if delta.ratio <= self.threshold:
                return key, delta
        return None

    def _record_patch(self, delta: CoordinateDelta) -> None:
        self.patches += 1
        self.patched_added += delta.num_added
        self.patched_removed += delta.num_removed

    def _notify(
        self, old: Rulebook, new: Rulebook, delta: CoordinateDelta
    ) -> None:
        live = [ref for ref in self._listeners if ref() is not None]
        if len(live) != len(self._listeners):
            self._listeners = live
        for ref in live:
            listener = ref()
            if listener is not None:
                listener.refresh(old, new, delta)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def submanifold(
        self, tensor: SparseTensor3D, kernel_size: int = 3
    ) -> Rulebook:
        key = self.submanifold_key(tensor, kernel_size)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._touch(key)
            return entry
        self.misses += 1
        geometry = ("sub", int(kernel_size), tensor.shape)
        new_keys = pack_coords(tensor.coords)
        source = self._find_patch_source(geometry, new_keys)
        if source is not None:
            source_key, delta = source
            old_rulebook = self._entries[source_key]
            rulebook = patch_submanifold_rulebook(
                old_rulebook, delta, tensor.shape, new_coords=tensor.coords
            )
            self._record_patch(delta)
            self._notify(old_rulebook, rulebook, delta)
        else:
            rulebook = build_submanifold_rulebook(tensor, kernel_size)
            self.rebuilds += 1
        self._insert(key, rulebook)
        self._remember(key, geometry, new_keys)
        return rulebook

    def sparse_conv(
        self, tensor: SparseTensor3D, kernel_size: int = 2, stride: int = 2
    ) -> Tuple[Rulebook, np.ndarray]:
        key = self.sparse_conv_key(tensor, kernel_size, stride)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._touch(key)
            return entry
        self.misses += 1
        geometry = ("down", int(kernel_size), int(stride), tensor.shape)
        # Overlapping cells (kernel != stride) cannot be patched, so
        # neither searching nor remembering coordinate sets pays off.
        patchable = kernel_size == stride
        new_keys = pack_coords(tensor.coords) if patchable else None
        source = (
            self._find_patch_source(geometry, new_keys) if patchable else None
        )
        if source is not None:
            source_key, delta = source
            old_rulebook, old_out_coords = self._entries[source_key]
            rulebook, out_coords = patch_sparse_conv_rulebook(
                old_rulebook,
                old_out_coords,
                delta,
                stride,
                new_coords=tensor.coords,
            )
            self._record_patch(delta)
            self._notify(old_rulebook, rulebook, delta)
        else:
            rulebook, out_coords = build_sparse_conv_rulebook(
                tensor, kernel_size, stride
            )
            self.rebuilds += 1
        entry = (rulebook, out_coords)
        self._insert(key, entry)
        if patchable:
            self._remember(key, geometry, new_keys)
        return entry
