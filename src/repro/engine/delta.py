"""Incremental rulebook delta engine for nearly-static streams.

The digest-keyed caches of :mod:`repro.nn.rulebook` are all-or-nothing:
a single voxel of churn between two frames produces a fresh coordinate
digest, a cache miss, and a from-scratch matching pass over the whole
scene.  Real streaming workloads (SLAM, odometry, surveillance) are
*nearly static* — frame ``N+1`` shares almost every voxel with frame
``N`` — so the dominant non-GEMM cost is spent recomputing matchings
that are 95+% identical to ones already cached.  This module upgrades
the cache stack to incremental patching:

* :func:`coordinate_delta` diffs two packed coordinate sets into a
  :class:`CoordinateDelta` (added / removed / stable voxels plus the
  monotone old-row -> new-row mapping);
* :func:`patch_rulebook` locally re-matches only the neighborhoods
  touched by added or removed voxels and splices the result into a
  cached :class:`~repro.nn.rulebook.Rulebook` — **bit-identical** to a
  from-scratch matching pass, for submanifold, strided (any kernel /
  stride combination, including overlapping ``kernel != stride``
  geometries), and (via :meth:`~repro.nn.rulebook.Rulebook.transposed`)
  transposed convolutions;
* :class:`DeltaRulebookCache` layers delta matching onto
  :class:`~repro.nn.rulebook.RulebookCache`: on a digest miss it
  searches recent entries of the same kernel geometry for a near-match
  (churn ratio at most ``threshold``) and patches instead of
  rebuilding, reporting hit / patch / rebuild statistics;
* patch listeners (:meth:`DeltaRulebookCache.register_listener`) let
  :class:`repro.engine.backend.ExecutionBackend` instances refresh
  their prepared artifacts (gather/scatter plans, CSR operators)
  incrementally instead of discarding warm state.

Why bit-identity is achievable cheaply
--------------------------------------
Both coordinate sets are stored canonically sorted, so the stable-row
mapping ``old_to_new`` is *monotone increasing*: remapping the surviving
pairs of a cached rulebook preserves their per-offset ordering, and the
freshly matched pairs (which touch only added voxels) can be spliced in
with one vectorized sorted merge per offset.  The from-scratch builders
emit, per kernel offset, at most one pair per output row (submanifold)
or input row (strided), ordered ascending — exactly what drop + remap +
merge reproduces, array for array.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.nn.rulebook import (
    GatherScatterPlan,
    Rulebook,
    RulebookCache,
    build_sparse_conv_rulebook,
    build_submanifold_rulebook,
    lookup_rows,
)
from repro.sparse.coo import SparseTensor3D
from repro.sparse.hashmap import pack_coords, unpack_coords

#: Default churn-ratio bound under which a cached rulebook is patched
#: rather than rebuilt.  At 25% churn a patch still touches a strict
#: minority of the scene; beyond it a from-scratch pass is competitive.
DEFAULT_DELTA_THRESHOLD = 0.25


class DeltaUnsupportedError(ValueError):
    """A rulebook kind/geometry the delta engine cannot patch.

    Retained purely as a backward-compatible export: earlier revisions
    raised it for overlapping strided geometries (``kernel_size !=
    stride``), which are patchable now — a changed input voxel perturbs
    at most ``ceil(kernel/stride)^3`` output cells, so existence updates
    stay local.  No shipped code raises or catches it anymore.
    """


@dataclass(frozen=True)
class CoordinateDelta:
    """Diff between two packed coordinate sets (old -> new).

    Both key arrays are the canonically sorted packed coordinates of
    :func:`repro.sparse.hashmap.pack_coords` (ascending, duplicate-free
    — the storage order of :class:`repro.sparse.coo.SparseTensor3D`).

    Attributes
    ----------
    old_keys / new_keys:
        The two sorted packed coordinate sets.
    old_to_new:
        ``(old_size,)`` int64 map from old row to new row, ``-1`` where
        the voxel was removed.  Monotone increasing over stable rows,
        which is what makes order-preserving rulebook patching possible.
    added_new_rows:
        Sorted new-row indices of voxels absent from the old set.
    """

    old_keys: np.ndarray
    new_keys: np.ndarray
    old_to_new: np.ndarray
    added_new_rows: np.ndarray

    @property
    def old_size(self) -> int:
        return len(self.old_keys)

    @property
    def new_size(self) -> int:
        return len(self.new_keys)

    @property
    def num_added(self) -> int:
        return len(self.added_new_rows)

    @property
    def num_removed(self) -> int:
        return self.old_size - (self.new_size - self.num_added)

    @property
    def num_stable(self) -> int:
        return self.new_size - self.num_added

    @property
    def ratio(self) -> float:
        """Churn fraction: voxels touched over the larger set size."""
        denom = max(self.old_size, self.new_size, 1)
        return (self.num_added + self.num_removed) / denom

    @property
    def is_identity(self) -> bool:
        return self.num_added == 0 and self.num_removed == 0


def _as_packed_keys(coords_or_keys: np.ndarray) -> np.ndarray:
    arr = np.asarray(coords_or_keys)
    if arr.ndim == 2:
        return pack_coords(arr)
    if arr.ndim == 1:
        return arr.astype(np.int64, copy=False)
    raise ValueError(
        f"expected (N, 3) coordinates or (N,) packed keys, got {arr.shape}"
    )


def coordinate_delta(
    old: np.ndarray, new: np.ndarray
) -> CoordinateDelta:
    """Diff two coordinate sets given as ``(N, 3)`` coords or packed keys.

    Inputs must be in canonical (sorted packed) order — true of every
    :class:`SparseTensor3D` coordinate array and of keys produced by
    packing one.  Cost is one ``searchsorted`` over the new set, i.e. a
    small fraction of a single-offset matching pass.
    """
    old_keys = _as_packed_keys(old)
    new_keys = _as_packed_keys(new)
    old_to_new = lookup_rows(new_keys, old_keys)
    hit = np.zeros(len(new_keys), dtype=bool)
    stable_rows = old_to_new[old_to_new >= 0]
    hit[stable_rows] = True
    added_new_rows = np.flatnonzero(~hit).astype(np.int64)
    return CoordinateDelta(
        old_keys=old_keys,
        new_keys=new_keys,
        old_to_new=old_to_new,
        added_new_rows=added_new_rows,
    )


@dataclass(frozen=True)
class RulebookDelta(CoordinateDelta):
    """A :class:`CoordinateDelta` enriched with rulebook splice provenance.

    Produced by the patchers and stored on the patched rulebook
    (``Rulebook._splice``); :meth:`DeltaRulebookCache.register_listener`
    listeners receive it as the ``delta`` argument of ``refresh``, so it
    stays a drop-in :class:`CoordinateDelta` for listeners that only
    diff coordinates.  The extra fields let a backend splice its
    prepared execution plan instead of re-lowering the patched rulebook:

    ``out_map``
        ``(old_num_outputs,)`` old output row -> new output row, ``-1``
        where the output site vanished.  Equals :attr:`in_map` for
        submanifold rulebooks; the downsampled-cell map for strided
        ones.  Monotone increasing over surviving rows.
    ``fresh_slots``
        Per kernel offset, the sorted positions of the *freshly matched*
        pairs inside the patched rulebook's rule array for that offset;
        every other position holds a surviving (remapped) pair, in the
        old per-offset order.
    """

    out_map: Optional[np.ndarray] = None
    fresh_slots: Optional[Tuple[np.ndarray, ...]] = None

    @property
    def in_map(self) -> np.ndarray:
        """Old input row -> new input row (alias of ``old_to_new``)."""
        return self.old_to_new


def _enrich(
    delta: CoordinateDelta,
    out_map: np.ndarray,
    fresh_slots: List[np.ndarray],
) -> RulebookDelta:
    return RulebookDelta(
        old_keys=delta.old_keys,
        new_keys=delta.new_keys,
        old_to_new=delta.old_to_new,
        added_new_rows=delta.added_new_rows,
        out_map=out_map,
        fresh_slots=tuple(fresh_slots),
    )


# ----------------------------------------------------------------------
# Pair splicing primitives
# ----------------------------------------------------------------------
def _empty_rule() -> np.ndarray:
    return np.zeros((0, 2), dtype=np.int64)


_NO_SLOTS = np.zeros(0, dtype=np.int64)
_EMPTY_COL = np.zeros(0, dtype=np.int64)


def _remap_columns(
    rule: np.ndarray,
    in_map: np.ndarray,
    out_map: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Surviving pair columns of one offset, rows remapped old -> new.

    Pairs whose input or output voxel was removed are dropped; both maps
    are monotone over stable rows, so the result keeps the original
    per-offset ordering.  Columns come back as two contiguous 1-D
    arrays — the layout the gather/scatter plan consumes directly.
    """
    if len(rule) == 0:
        return _EMPTY_COL, _EMPTY_COL
    mapped_in = in_map[rule[:, 0]]
    mapped_out = out_map[rule[:, 1]]
    # -1 is the only negative either map produces, so a pair survives
    # exactly when the bitwise or of its mapped rows keeps the sign bit
    # clear — one comparison instead of two.
    keep = (mapped_in | mapped_out) >= 0
    if keep.all():
        return mapped_in, mapped_out
    return mapped_in[keep], mapped_out[keep]


def _merge_columns(
    kept_in: np.ndarray,
    kept_out: np.ndarray,
    fresh_in: np.ndarray,
    fresh_out: np.ndarray,
    key_col: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge kept and fresh pair columns sorted (and unique) on the key.

    The from-scratch builders emit at most one pair per key per offset
    (``key_col`` 0 = input row, 1 = output row), and kept/fresh key sets
    are disjoint (fresh pairs touch added voxels, kept pairs only stable
    ones), so a single vectorized sorted merge reproduces the
    from-scratch rule exactly.  Returns ``(in_col, out_col,
    fresh_slots)`` — the merged columns plus the slot positions the
    fresh pairs landed on (the per-offset splice provenance carried by
    :class:`RulebookDelta`).
    """
    if len(fresh_in) == 0:
        return kept_in, kept_out, _NO_SLOTS
    if len(kept_in) == 0:
        return fresh_in, fresh_out, np.arange(len(fresh_in), dtype=np.int64)
    kept_key = kept_out if key_col else kept_in
    fresh_key = fresh_out if key_col else fresh_in
    positions = np.searchsorted(kept_key, fresh_key)
    slots = positions + np.arange(len(fresh_in))
    size = len(kept_in) + len(fresh_in)
    in_col = np.empty(size, dtype=np.int64)
    out_col = np.empty(size, dtype=np.int64)
    kept_mask = np.ones(size, dtype=bool)
    kept_mask[slots] = False
    in_col[slots] = fresh_in
    in_col[kept_mask] = kept_in
    out_col[slots] = fresh_out
    out_col[kept_mask] = kept_out
    return in_col, out_col, slots


def _assemble_rules(
    in_cols: List[np.ndarray], out_cols: List[np.ndarray]
) -> List[np.ndarray]:
    """Stack per-offset columns back into the public ``(n, 2)`` rules."""
    return [
        np.stack([i, o], axis=1) if len(i) else _empty_rule()
        for i, o in zip(in_cols, out_cols)
    ]


def _seed_plan(
    rulebook: Rulebook,
    in_cols: List[np.ndarray],
    out_cols: List[np.ndarray],
) -> None:
    """Pre-seed the rulebook's :class:`GatherScatterPlan` from the merge.

    The spliced columns *are* the plan's flat arrays (concatenated
    offset-major input rows, contiguous per-offset output rows), so the
    patcher hands them over instead of letting ``Rulebook.plan()``
    re-extract them from the stacked rules with strided copies — every
    plan consumer (backend lowering, the fused engine) starts warm.
    Array-for-array identical to a lazily built plan; asserted in the
    delta property suite.
    """
    sizes = [len(col) for col in out_cols]
    segment_starts = np.zeros(len(out_cols) + 1, dtype=np.int64)
    np.cumsum(sizes, out=segment_starts[1:])
    total = int(segment_starts[-1])
    if total:
        in_rows = np.concatenate([col for col in in_cols if len(col)])
    else:
        in_rows = np.zeros(0, dtype=np.int64)
    rulebook._plan = GatherScatterPlan(
        in_rows=in_rows,
        segment_starts=segment_starts,
        out_rows=list(out_cols),
        active_offsets=[k for k, size in enumerate(sizes) if size],
        total_matches=total,
    )


# ----------------------------------------------------------------------
# Submanifold patching
# ----------------------------------------------------------------------
def patch_submanifold_rulebook(
    old: Rulebook,
    delta: CoordinateDelta,
    shape: Tuple[int, int, int],
    new_coords: Optional[np.ndarray] = None,
) -> Rulebook:
    """Patch a cached submanifold rulebook onto the delta's new site set.

    Surviving pairs (both endpoints stable) are row-remapped; pairs
    touching a removed voxel are dropped by the remap; pairs touching an
    added voxel are re-matched locally — for each added output site its
    full neighborhood, and for each added input site the stable outputs
    it newly serves.  The result is bit-identical to
    :func:`repro.nn.rulebook.build_submanifold_rulebook` on the new set.
    """
    if new_coords is None:
        new_coords = unpack_coords(delta.new_keys)
    new_keys = delta.new_keys
    shape_arr = np.asarray(shape, dtype=np.int64)
    added = delta.added_new_rows
    added_flags = np.zeros(delta.new_size, dtype=bool)
    added_flags[added] = True
    added_coords = new_coords[added]
    in_cols: List[np.ndarray] = []
    out_cols: List[np.ndarray] = []
    fresh_slots: List[np.ndarray] = []
    # per-offset loop (K^3 iterations) splicing one rule list per offset;
    # each iteration is vectorized over all rows
    for k, offset in enumerate(old.offsets):  # repro-lint: disable=hot-path
        kept_in, kept_out = _remap_columns(
            old.rules[k], delta.old_to_new, delta.old_to_new
        )
        # Fresh pairs with an *added output* p: input is p + offset.
        neighbor = added_coords + offset[None, :]
        in_bounds = np.all(
            (neighbor >= 0) & (neighbor < shape_arr[None, :]), axis=1
        )
        in_rows = lookup_rows(new_keys, pack_coords(neighbor[in_bounds]))
        valid = in_rows >= 0
        # Fresh pairs with an *added input* a serving a stable output
        # q = a - offset (added outputs were covered above).
        source = added_coords - offset[None, :]
        src_bounds = np.all(
            (source >= 0) & (source < shape_arr[None, :]), axis=1
        )
        out_rows = lookup_rows(new_keys, pack_coords(source[src_bounds]))
        stable_out = (out_rows >= 0) & ~added_flags[np.maximum(out_rows, 0)]
        fresh_in = np.concatenate(
            [in_rows[valid], added[src_bounds][stable_out]]
        )
        fresh_out = np.concatenate(
            [added[in_bounds][valid], out_rows[stable_out]]
        )
        if len(fresh_out) > 1:
            # Output rows are unique within one offset (disjoint between
            # the two fresh sources as well), so a plain sort suffices.
            order = np.argsort(fresh_out)
            fresh_in = fresh_in[order]
            fresh_out = fresh_out[order]
        in_col, out_col, slots = _merge_columns(
            kept_in, kept_out, fresh_in, fresh_out, key_col=1
        )
        in_cols.append(in_col)
        out_cols.append(out_col)
        fresh_slots.append(slots)
    rulebook = Rulebook(
        kernel_size=old.kernel_size,
        offsets=old.offsets,
        rules=_assemble_rules(in_cols, out_cols),
        num_inputs=delta.new_size,
        num_outputs=delta.new_size,
    )
    _seed_plan(rulebook, in_cols, out_cols)
    rulebook._splice = _enrich(delta, delta.old_to_new, fresh_slots)
    return rulebook


# ----------------------------------------------------------------------
# Strided patching (any kernel_size / stride combination)
# ----------------------------------------------------------------------
def _merge_sorted_keys(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted, duplicate-free, disjoint int64 key arrays."""
    if len(b) == 0:
        return a
    if len(a) == 0:
        return b
    positions = np.searchsorted(a, b)
    merged = np.empty(len(a) + len(b), dtype=np.int64)
    b_slots = positions + np.arange(len(b))
    a_slots = np.ones(len(merged), dtype=bool)
    a_slots[b_slots] = False
    merged[b_slots] = b
    merged[a_slots] = a
    return merged


def _strided_candidate_cells(
    coords: np.ndarray, kernel_size: int, stride: int
) -> np.ndarray:
    """Packed keys (sorted, unique) of every output cell whose input
    window ``[q * stride, q * stride + kernel)`` contains a coordinate.

    An input voxel reaches at most ``ceil(kernel / stride)`` cells per
    axis, so the scan is a small fixed fan-out per changed voxel — the
    locality that makes overlapping geometries patchable.
    """
    if len(coords) == 0:
        return np.zeros(0, dtype=np.int64)
    base = coords // stride
    reach = -(-kernel_size // stride)  # ceil
    cells: List[np.ndarray] = []
    # per-shift loop (<= reach^3 iterations), not per-element
    for shift in np.ndindex(reach, reach, reach):  # repro-lint: disable=hot-path
        q = base - np.asarray(shift, dtype=np.int64)[None, :]
        valid = np.all(q >= 0, axis=1) & np.all(
            q * stride + kernel_size > coords, axis=1
        )
        if valid.any():
            cells.append(q[valid])
    if not cells:
        return np.zeros(0, dtype=np.int64)
    return np.unique(pack_coords(np.concatenate(cells, axis=0)))


def _patched_down_keys(
    old_out_keys: np.ndarray,
    delta: CoordinateDelta,
    offsets: np.ndarray,
    kernel_size: int,
    stride: int,
    new_coords: np.ndarray,
) -> np.ndarray:
    """Incrementally updated output cell set of a strided convolution.

    For the non-overlapping ``kernel == stride`` case the cell set is
    simply ``unique(coords // stride)``.  Otherwise existence changes
    are local to the changed inputs: cells reached only by added inputs
    are *born* (an added input sits in their window, so they exist by
    construction), and cells reached by removed inputs *die* exactly
    when their window holds no surviving input — tested with one probe
    per kernel offset over the (few) affected cells.
    """
    if kernel_size == stride:
        # pack order equals lexicographic row order, so this reproduces
        # np.unique(coords // stride, axis=0) at int64-sort speed.
        return np.unique(pack_coords(new_coords // stride))
    added_coords = new_coords[delta.added_new_rows]
    removed_coords = unpack_coords(delta.old_keys[delta.old_to_new < 0])
    birth_candidates = _strided_candidate_cells(
        added_coords, kernel_size, stride
    )
    births = birth_candidates[
        lookup_rows(old_out_keys, birth_candidates) < 0
    ]
    death_candidates = _strided_candidate_cells(
        removed_coords, kernel_size, stride
    )
    death_candidates = death_candidates[
        lookup_rows(old_out_keys, death_candidates) >= 0
    ]
    if len(death_candidates):
        cells = unpack_coords(death_candidates)
        occupied = np.zeros(len(cells), dtype=bool)
        for offset in offsets:
            probes = cells * stride + offset[None, :]
            occupied |= lookup_rows(delta.new_keys, pack_coords(probes)) >= 0
            if occupied.all():
                break
        deaths = death_candidates[~occupied]
    else:
        deaths = np.zeros(0, dtype=np.int64)
    survivors = old_out_keys[lookup_rows(deaths, old_out_keys) < 0]
    return _merge_sorted_keys(survivors, births)


def patch_sparse_conv_rulebook(
    old: Rulebook,
    old_out_coords: np.ndarray,
    delta: CoordinateDelta,
    stride: int,
    new_coords: Optional[np.ndarray] = None,
) -> Tuple[Rulebook, np.ndarray]:
    """Patch a cached strided rulebook onto the delta's new site set.

    Supports every strided geometry.  For the paper's non-overlapping
    downsampling (``kernel_size == stride``) each input voxel ``p``
    supports exactly one output cell ``p // stride``; for overlapping
    geometries (``kernel_size != stride``) a changed input perturbs at
    most ``ceil(kernel / stride)^3`` output cells, so the patcher
    re-derives existence only for that affected neighborhood (births
    from added inputs, deaths probed against the surviving window) and
    re-matches only the pairs of added inputs — stable inputs can never
    create or lose a pair to a surviving cell, because any cell whose
    window holds a stable input exists both before and after the delta.

    ``old_out_coords`` are the output coordinates the cached rulebook
    was built with (cache entries store the pair).  Returns
    ``(rulebook, out_coords)`` bit-identical to
    :func:`repro.nn.rulebook.build_sparse_conv_rulebook`.  The
    transposed direction needs no separate patch:
    :meth:`Rulebook.transposed` derives it from the forward rules.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if new_coords is None:
        new_coords = unpack_coords(delta.new_keys)
    down_keys = _patched_down_keys(
        pack_coords(old_out_coords),
        delta,
        old.offsets,
        old.kernel_size,
        stride,
        new_coords,
    )
    out_coords = unpack_coords(down_keys)
    # Old output row -> new output row (monotone; the cells of stable
    # inputs always survive, cells supported only by removed inputs
    # vanish).
    out_map = lookup_rows(down_keys, pack_coords(old_out_coords))
    added = delta.added_new_rows
    added_coords = new_coords[added]
    in_cols: List[np.ndarray] = []
    out_cols: List[np.ndarray] = []
    fresh_slots: List[np.ndarray] = []
    # per-offset loop (K^3 iterations) splicing one rule list per offset;
    # each iteration is vectorized over all rows
    for k, offset in enumerate(old.offsets):  # repro-lint: disable=hot-path
        kept_in, kept_out = _remap_columns(
            old.rules[k], delta.old_to_new, out_map
        )
        # Fresh pairs: each added input p contributes to cell
        # (p - offset) / stride exactly when p aligns with the offset.
        shifted = added_coords - offset[None, :]
        aligned = np.all(shifted % stride == 0, axis=1) & np.all(
            shifted >= 0, axis=1
        )
        cells = shifted[aligned] // stride
        out_rows = lookup_rows(down_keys, pack_coords(cells))
        valid = out_rows >= 0
        in_col, out_col, slots = _merge_columns(
            kept_in, kept_out, added[aligned][valid], out_rows[valid],
            key_col=0,
        )
        in_cols.append(in_col)
        out_cols.append(out_col)
        fresh_slots.append(slots)
    rulebook = Rulebook(
        kernel_size=old.kernel_size,
        offsets=old.offsets,
        rules=_assemble_rules(in_cols, out_cols),
        num_inputs=delta.new_size,
        num_outputs=len(out_coords),
    )
    _seed_plan(rulebook, in_cols, out_cols)
    rulebook._splice = _enrich(delta, out_map, fresh_slots)
    return rulebook, out_coords


def patch_rulebook(
    old: Rulebook,
    delta: CoordinateDelta,
    *,
    shape: Optional[Tuple[int, int, int]] = None,
    stride: Optional[int] = None,
    old_out_coords: Optional[np.ndarray] = None,
    new_coords: Optional[np.ndarray] = None,
):
    """Dispatch to the submanifold or strided patcher.

    ``stride=None`` selects submanifold patching (``shape`` required for
    the neighbor bounds test) and returns a :class:`Rulebook`; a stride
    selects strided patching (``old_out_coords`` required) and returns
    ``(rulebook, out_coords)``.
    """
    if stride is None:
        if shape is None:
            raise ValueError("submanifold patching requires shape=")
        return patch_submanifold_rulebook(
            old, delta, shape, new_coords=new_coords
        )
    if old_out_coords is None:
        raise ValueError("strided patching requires old_out_coords=")
    return patch_sparse_conv_rulebook(
        old, old_out_coords, delta, stride, new_coords=new_coords
    )


# ----------------------------------------------------------------------
# The delta-aware cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeltaCacheStats:
    """Snapshot of a :class:`DeltaRulebookCache`'s counters.

    ``hits`` are digest hits (free, as before).  Digest misses split
    into ``patches`` (a recent near-match was spliced) and ``rebuilds``
    (from-scratch matching); ``patched_added`` / ``patched_removed``
    count the voxels the patches actually touched.
    """

    hits: int
    patches: int
    rebuilds: int
    patched_added: int
    patched_removed: int

    @property
    def misses(self) -> int:
        return self.patches + self.rebuilds

    @property
    def patch_rate(self) -> float:
        """Fraction of digest misses served by patching."""
        if self.misses == 0:
            return 0.0
        return self.patches / self.misses


class DeltaRulebookCache(RulebookCache):
    """A :class:`RulebookCache` that patches near-matches instead of
    rebuilding.

    Lookup order on a digest miss: recent entries with the same kernel
    geometry (kind, kernel size, stride, grid shape) are scanned from
    most to least recently used; the first whose coordinate delta ratio
    is at most ``threshold`` is patched via :func:`patch_rulebook`.
    Only ``max_candidates`` candidates are diffed per miss (a cheap
    size pre-filter skips hopeless ones), so a miss against a cold or
    fully drifted cache degrades gracefully to one from-scratch build.

    Entries remember the packed coordinate set they were built from
    (``8 * nnz`` bytes per entry) to make the diff possible.  Patched
    entries are inserted under their own digest key, so they serve
    later frames both as digest hits and as patch sources.

    ``register_listener`` attaches objects with a
    ``refresh(old_rulebook, new_rulebook, delta)`` method — the
    :class:`repro.engine.backend.ExecutionBackend` plan-invalidation
    hook — notified after every successful patch so prepared execution
    artifacts follow the rulebook incrementally instead of being
    discarded and rebuilt on first use.
    """

    def __init__(
        self,
        capacity: int = 32,
        threshold: float = DEFAULT_DELTA_THRESHOLD,
        max_candidates: int = 4,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold!r}"
            )
        if max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.threshold = float(threshold)
        self.max_candidates = int(max_candidates)
        # key -> (geometry key, packed coordinate set); insertion order
        # tracks entry recency, pruned in lockstep with ``_entries``.
        self._coord_sets: "OrderedDict[Hashable, Tuple[Hashable, np.ndarray]]" = (
            OrderedDict()
        )
        # Weak references: a cache shared across sessions must not keep
        # discarded sessions' backends alive (or keep refreshing them).
        self._listeners: List["weakref.ref"] = []
        self.patches = 0
        self.rebuilds = 0
        self.patched_added = 0
        self.patched_removed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def delta_stats(self) -> DeltaCacheStats:
        return DeltaCacheStats(
            hits=self.hits,
            patches=self.patches,
            rebuilds=self.rebuilds,
            patched_added=self.patched_added,
            patched_removed=self.patched_removed,
        )

    def reset_stats(self) -> None:
        super().reset_stats()
        self.patches = 0
        self.rebuilds = 0
        self.patched_added = 0
        self.patched_removed = 0

    def clear(self) -> None:
        super().clear()
        self._coord_sets.clear()

    def register_listener(self, listener: object) -> None:
        """Attach a patch listener (``refresh(old, new, delta)``).

        Listeners are held weakly: the cache may outlive many sessions
        (it is explicitly shareable), and must neither pin a discarded
        session's backend nor keep fanning refresh work out to it.
        Dead references are pruned on registration and notification.
        """
        if not callable(getattr(listener, "refresh", None)):
            raise TypeError(
                "listener must expose a refresh(old_rulebook, new_rulebook, "
                f"delta) method, got {type(listener).__name__}"
            )
        alive = [ref for ref in self._listeners if ref() is not None]
        if not any(ref() is listener for ref in alive):
            alive.append(weakref.ref(listener))
        self._listeners = alive

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(self, key: Hashable, entry: object) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._coord_sets.pop(evicted, None)

    def _remember(
        self, key: Hashable, geometry: Hashable, keys: np.ndarray
    ) -> None:
        self._coord_sets[key] = (geometry, keys)
        self._coord_sets.move_to_end(key)

    def _touch(self, key: Hashable) -> None:
        if key in self._coord_sets:
            self._coord_sets.move_to_end(key)

    def _find_patch_source(
        self, geometry: Hashable, new_keys: np.ndarray
    ) -> Optional[Tuple[Hashable, CoordinateDelta]]:
        """Most recent same-geometry entry within the churn threshold."""
        new_size = len(new_keys)
        if new_size == 0:
            return None
        scanned = 0
        for key in reversed(self._coord_sets):
            entry_geometry, old_keys = self._coord_sets[key]
            if entry_geometry != geometry:
                continue
            scanned += 1
            if scanned > self.max_candidates:
                return None
            # Size pre-filter: |old - new| alone already bounds the
            # churn ratio from below, no diff needed to reject.
            bound = max(len(old_keys), new_size, 1)
            if abs(len(old_keys) - new_size) > self.threshold * bound:
                continue
            delta = coordinate_delta(old_keys, new_keys)
            if delta.ratio <= self.threshold:
                return key, delta
        return None

    def _record_patch(self, delta: CoordinateDelta) -> None:
        self.patches += 1
        self.patched_added += delta.num_added
        self.patched_removed += delta.num_removed

    def _notify(
        self, old: Rulebook, new: Rulebook, delta: CoordinateDelta
    ) -> None:
        # Hand listeners the patcher's enriched RulebookDelta when the
        # patched rulebook carries one: it subsumes the coordinate delta
        # and lets backends splice prepared plans instead of re-lowering.
        splice = getattr(new, "_splice", None)
        if splice is not None:
            delta = splice
        live = [ref for ref in self._listeners if ref() is not None]
        if len(live) != len(self._listeners):
            self._listeners = live
        for ref in live:
            listener = ref()
            if listener is not None:
                listener.refresh(old, new, delta)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def submanifold(
        self, tensor: SparseTensor3D, kernel_size: int = 3
    ) -> Rulebook:
        key = self.submanifold_key(tensor, kernel_size)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._touch(key)
            return entry
        self.misses += 1
        geometry = ("sub", int(kernel_size), tensor.shape)
        new_keys = pack_coords(tensor.coords)
        source = self._find_patch_source(geometry, new_keys)
        if source is not None:
            source_key, delta = source
            old_rulebook = self._entries[source_key]
            rulebook = patch_submanifold_rulebook(
                old_rulebook, delta, tensor.shape, new_coords=tensor.coords
            )
            self._record_patch(delta)
            self._notify(old_rulebook, rulebook, delta)
        else:
            rulebook = build_submanifold_rulebook(tensor, kernel_size)
            self.rebuilds += 1
        self._insert(key, rulebook)
        self._remember(key, geometry, new_keys)
        return rulebook

    def sparse_conv(
        self, tensor: SparseTensor3D, kernel_size: int = 2, stride: int = 2
    ) -> Tuple[Rulebook, np.ndarray]:
        key = self.sparse_conv_key(tensor, kernel_size, stride)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._touch(key)
            return entry
        self.misses += 1
        geometry = ("down", int(kernel_size), int(stride), tensor.shape)
        new_keys = pack_coords(tensor.coords)
        source = self._find_patch_source(geometry, new_keys)
        if source is not None:
            source_key, delta = source
            old_rulebook, old_out_coords = self._entries[source_key]
            rulebook, out_coords = patch_sparse_conv_rulebook(
                old_rulebook,
                old_out_coords,
                delta,
                stride,
                new_coords=tensor.coords,
            )
            self._record_patch(delta)
            self._notify(old_rulebook, rulebook, delta)
        else:
            rulebook, out_coords = build_sparse_conv_rulebook(
                tensor, kernel_size, stride
            )
            self.rebuilds += 1
        entry = (rulebook, out_coords)
        self._insert(key, entry)
        self._remember(key, geometry, new_keys)
        return entry
